file(REMOVE_RECURSE
  "libdehealth_datagen.a"
)
