# Empty compiler generated dependencies file for dehealth_datagen.
# This may be replaced when dependencies are built.
