
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/corpus.cc" "src/datagen/CMakeFiles/dehealth_datagen.dir/corpus.cc.o" "gcc" "src/datagen/CMakeFiles/dehealth_datagen.dir/corpus.cc.o.d"
  "/root/repo/src/datagen/forum_generator.cc" "src/datagen/CMakeFiles/dehealth_datagen.dir/forum_generator.cc.o" "gcc" "src/datagen/CMakeFiles/dehealth_datagen.dir/forum_generator.cc.o.d"
  "/root/repo/src/datagen/split.cc" "src/datagen/CMakeFiles/dehealth_datagen.dir/split.cc.o" "gcc" "src/datagen/CMakeFiles/dehealth_datagen.dir/split.cc.o.d"
  "/root/repo/src/datagen/style_profile.cc" "src/datagen/CMakeFiles/dehealth_datagen.dir/style_profile.cc.o" "gcc" "src/datagen/CMakeFiles/dehealth_datagen.dir/style_profile.cc.o.d"
  "/root/repo/src/datagen/vocabulary.cc" "src/datagen/CMakeFiles/dehealth_datagen.dir/vocabulary.cc.o" "gcc" "src/datagen/CMakeFiles/dehealth_datagen.dir/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dehealth_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dehealth_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dehealth_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
