file(REMOVE_RECURSE
  "CMakeFiles/dehealth_datagen.dir/corpus.cc.o"
  "CMakeFiles/dehealth_datagen.dir/corpus.cc.o.d"
  "CMakeFiles/dehealth_datagen.dir/forum_generator.cc.o"
  "CMakeFiles/dehealth_datagen.dir/forum_generator.cc.o.d"
  "CMakeFiles/dehealth_datagen.dir/split.cc.o"
  "CMakeFiles/dehealth_datagen.dir/split.cc.o.d"
  "CMakeFiles/dehealth_datagen.dir/style_profile.cc.o"
  "CMakeFiles/dehealth_datagen.dir/style_profile.cc.o.d"
  "CMakeFiles/dehealth_datagen.dir/vocabulary.cc.o"
  "CMakeFiles/dehealth_datagen.dir/vocabulary.cc.o.d"
  "libdehealth_datagen.a"
  "libdehealth_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dehealth_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
