
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bipartite_matching.cc" "src/graph/CMakeFiles/dehealth_graph.dir/bipartite_matching.cc.o" "gcc" "src/graph/CMakeFiles/dehealth_graph.dir/bipartite_matching.cc.o.d"
  "/root/repo/src/graph/community.cc" "src/graph/CMakeFiles/dehealth_graph.dir/community.cc.o" "gcc" "src/graph/CMakeFiles/dehealth_graph.dir/community.cc.o.d"
  "/root/repo/src/graph/correlation_graph.cc" "src/graph/CMakeFiles/dehealth_graph.dir/correlation_graph.cc.o" "gcc" "src/graph/CMakeFiles/dehealth_graph.dir/correlation_graph.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/graph/CMakeFiles/dehealth_graph.dir/graph_stats.cc.o" "gcc" "src/graph/CMakeFiles/dehealth_graph.dir/graph_stats.cc.o.d"
  "/root/repo/src/graph/landmarks.cc" "src/graph/CMakeFiles/dehealth_graph.dir/landmarks.cc.o" "gcc" "src/graph/CMakeFiles/dehealth_graph.dir/landmarks.cc.o.d"
  "/root/repo/src/graph/shortest_path.cc" "src/graph/CMakeFiles/dehealth_graph.dir/shortest_path.cc.o" "gcc" "src/graph/CMakeFiles/dehealth_graph.dir/shortest_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dehealth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
