file(REMOVE_RECURSE
  "libdehealth_graph.a"
)
