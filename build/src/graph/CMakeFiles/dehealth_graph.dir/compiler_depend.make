# Empty compiler generated dependencies file for dehealth_graph.
# This may be replaced when dependencies are built.
