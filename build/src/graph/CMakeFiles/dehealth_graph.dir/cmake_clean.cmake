file(REMOVE_RECURSE
  "CMakeFiles/dehealth_graph.dir/bipartite_matching.cc.o"
  "CMakeFiles/dehealth_graph.dir/bipartite_matching.cc.o.d"
  "CMakeFiles/dehealth_graph.dir/community.cc.o"
  "CMakeFiles/dehealth_graph.dir/community.cc.o.d"
  "CMakeFiles/dehealth_graph.dir/correlation_graph.cc.o"
  "CMakeFiles/dehealth_graph.dir/correlation_graph.cc.o.d"
  "CMakeFiles/dehealth_graph.dir/graph_stats.cc.o"
  "CMakeFiles/dehealth_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/dehealth_graph.dir/landmarks.cc.o"
  "CMakeFiles/dehealth_graph.dir/landmarks.cc.o.d"
  "CMakeFiles/dehealth_graph.dir/shortest_path.cc.o"
  "CMakeFiles/dehealth_graph.dir/shortest_path.cc.o.d"
  "libdehealth_graph.a"
  "libdehealth_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dehealth_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
