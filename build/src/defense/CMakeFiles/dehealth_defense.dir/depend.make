# Empty dependencies file for dehealth_defense.
# This may be replaced when dependencies are built.
