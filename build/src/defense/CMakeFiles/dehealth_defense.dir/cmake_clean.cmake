file(REMOVE_RECURSE
  "CMakeFiles/dehealth_defense.dir/defense.cc.o"
  "CMakeFiles/dehealth_defense.dir/defense.cc.o.d"
  "libdehealth_defense.a"
  "libdehealth_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dehealth_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
