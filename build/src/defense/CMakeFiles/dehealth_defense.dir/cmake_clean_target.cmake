file(REMOVE_RECURSE
  "libdehealth_defense.a"
)
