file(REMOVE_RECURSE
  "CMakeFiles/dehealth_ml.dir/cross_validation.cc.o"
  "CMakeFiles/dehealth_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/dehealth_ml.dir/dataset.cc.o"
  "CMakeFiles/dehealth_ml.dir/dataset.cc.o.d"
  "CMakeFiles/dehealth_ml.dir/knn.cc.o"
  "CMakeFiles/dehealth_ml.dir/knn.cc.o.d"
  "CMakeFiles/dehealth_ml.dir/linalg.cc.o"
  "CMakeFiles/dehealth_ml.dir/linalg.cc.o.d"
  "CMakeFiles/dehealth_ml.dir/metrics.cc.o"
  "CMakeFiles/dehealth_ml.dir/metrics.cc.o.d"
  "CMakeFiles/dehealth_ml.dir/nearest_centroid.cc.o"
  "CMakeFiles/dehealth_ml.dir/nearest_centroid.cc.o.d"
  "CMakeFiles/dehealth_ml.dir/rlsc.cc.o"
  "CMakeFiles/dehealth_ml.dir/rlsc.cc.o.d"
  "CMakeFiles/dehealth_ml.dir/svm_smo.cc.o"
  "CMakeFiles/dehealth_ml.dir/svm_smo.cc.o.d"
  "libdehealth_ml.a"
  "libdehealth_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dehealth_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
