# Empty compiler generated dependencies file for dehealth_ml.
# This may be replaced when dependencies are built.
