file(REMOVE_RECURSE
  "libdehealth_ml.a"
)
