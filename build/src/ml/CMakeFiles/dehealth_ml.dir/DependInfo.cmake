
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cross_validation.cc" "src/ml/CMakeFiles/dehealth_ml.dir/cross_validation.cc.o" "gcc" "src/ml/CMakeFiles/dehealth_ml.dir/cross_validation.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/dehealth_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/dehealth_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/dehealth_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/dehealth_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/linalg.cc" "src/ml/CMakeFiles/dehealth_ml.dir/linalg.cc.o" "gcc" "src/ml/CMakeFiles/dehealth_ml.dir/linalg.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/dehealth_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/dehealth_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/nearest_centroid.cc" "src/ml/CMakeFiles/dehealth_ml.dir/nearest_centroid.cc.o" "gcc" "src/ml/CMakeFiles/dehealth_ml.dir/nearest_centroid.cc.o.d"
  "/root/repo/src/ml/rlsc.cc" "src/ml/CMakeFiles/dehealth_ml.dir/rlsc.cc.o" "gcc" "src/ml/CMakeFiles/dehealth_ml.dir/rlsc.cc.o.d"
  "/root/repo/src/ml/svm_smo.cc" "src/ml/CMakeFiles/dehealth_ml.dir/svm_smo.cc.o" "gcc" "src/ml/CMakeFiles/dehealth_ml.dir/svm_smo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dehealth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
