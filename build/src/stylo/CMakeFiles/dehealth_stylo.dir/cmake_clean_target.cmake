file(REMOVE_RECURSE
  "libdehealth_stylo.a"
)
