# Empty dependencies file for dehealth_stylo.
# This may be replaced when dependencies are built.
