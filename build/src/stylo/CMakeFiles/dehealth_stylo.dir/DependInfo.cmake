
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stylo/extractor.cc" "src/stylo/CMakeFiles/dehealth_stylo.dir/extractor.cc.o" "gcc" "src/stylo/CMakeFiles/dehealth_stylo.dir/extractor.cc.o.d"
  "/root/repo/src/stylo/feature_layout.cc" "src/stylo/CMakeFiles/dehealth_stylo.dir/feature_layout.cc.o" "gcc" "src/stylo/CMakeFiles/dehealth_stylo.dir/feature_layout.cc.o.d"
  "/root/repo/src/stylo/feature_mask.cc" "src/stylo/CMakeFiles/dehealth_stylo.dir/feature_mask.cc.o" "gcc" "src/stylo/CMakeFiles/dehealth_stylo.dir/feature_mask.cc.o.d"
  "/root/repo/src/stylo/feature_vector.cc" "src/stylo/CMakeFiles/dehealth_stylo.dir/feature_vector.cc.o" "gcc" "src/stylo/CMakeFiles/dehealth_stylo.dir/feature_vector.cc.o.d"
  "/root/repo/src/stylo/user_profile.cc" "src/stylo/CMakeFiles/dehealth_stylo.dir/user_profile.cc.o" "gcc" "src/stylo/CMakeFiles/dehealth_stylo.dir/user_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/dehealth_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dehealth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
