file(REMOVE_RECURSE
  "CMakeFiles/dehealth_stylo.dir/extractor.cc.o"
  "CMakeFiles/dehealth_stylo.dir/extractor.cc.o.d"
  "CMakeFiles/dehealth_stylo.dir/feature_layout.cc.o"
  "CMakeFiles/dehealth_stylo.dir/feature_layout.cc.o.d"
  "CMakeFiles/dehealth_stylo.dir/feature_mask.cc.o"
  "CMakeFiles/dehealth_stylo.dir/feature_mask.cc.o.d"
  "CMakeFiles/dehealth_stylo.dir/feature_vector.cc.o"
  "CMakeFiles/dehealth_stylo.dir/feature_vector.cc.o.d"
  "CMakeFiles/dehealth_stylo.dir/user_profile.cc.o"
  "CMakeFiles/dehealth_stylo.dir/user_profile.cc.o.d"
  "libdehealth_stylo.a"
  "libdehealth_stylo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dehealth_stylo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
