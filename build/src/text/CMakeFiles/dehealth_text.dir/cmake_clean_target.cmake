file(REMOVE_RECURSE
  "libdehealth_text.a"
)
