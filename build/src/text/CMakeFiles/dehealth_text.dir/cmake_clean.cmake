file(REMOVE_RECURSE
  "CMakeFiles/dehealth_text.dir/lexicon.cc.o"
  "CMakeFiles/dehealth_text.dir/lexicon.cc.o.d"
  "CMakeFiles/dehealth_text.dir/pos_tagger.cc.o"
  "CMakeFiles/dehealth_text.dir/pos_tagger.cc.o.d"
  "CMakeFiles/dehealth_text.dir/tokenizer.cc.o"
  "CMakeFiles/dehealth_text.dir/tokenizer.cc.o.d"
  "libdehealth_text.a"
  "libdehealth_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dehealth_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
