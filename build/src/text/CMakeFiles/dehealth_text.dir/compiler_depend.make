# Empty compiler generated dependencies file for dehealth_text.
# This may be replaced when dependencies are built.
