
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/lexicon.cc" "src/text/CMakeFiles/dehealth_text.dir/lexicon.cc.o" "gcc" "src/text/CMakeFiles/dehealth_text.dir/lexicon.cc.o.d"
  "/root/repo/src/text/pos_tagger.cc" "src/text/CMakeFiles/dehealth_text.dir/pos_tagger.cc.o" "gcc" "src/text/CMakeFiles/dehealth_text.dir/pos_tagger.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/dehealth_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/dehealth_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dehealth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
