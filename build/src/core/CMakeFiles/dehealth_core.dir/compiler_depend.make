# Empty compiler generated dependencies file for dehealth_core.
# This may be replaced when dependencies are built.
