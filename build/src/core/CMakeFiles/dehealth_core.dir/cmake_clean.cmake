file(REMOVE_RECURSE
  "CMakeFiles/dehealth_core.dir/de_health.cc.o"
  "CMakeFiles/dehealth_core.dir/de_health.cc.o.d"
  "CMakeFiles/dehealth_core.dir/evaluation.cc.o"
  "CMakeFiles/dehealth_core.dir/evaluation.cc.o.d"
  "CMakeFiles/dehealth_core.dir/filtering.cc.o"
  "CMakeFiles/dehealth_core.dir/filtering.cc.o.d"
  "CMakeFiles/dehealth_core.dir/refined_da.cc.o"
  "CMakeFiles/dehealth_core.dir/refined_da.cc.o.d"
  "CMakeFiles/dehealth_core.dir/similarity.cc.o"
  "CMakeFiles/dehealth_core.dir/similarity.cc.o.d"
  "CMakeFiles/dehealth_core.dir/top_k.cc.o"
  "CMakeFiles/dehealth_core.dir/top_k.cc.o.d"
  "CMakeFiles/dehealth_core.dir/uda_graph.cc.o"
  "CMakeFiles/dehealth_core.dir/uda_graph.cc.o.d"
  "libdehealth_core.a"
  "libdehealth_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dehealth_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
