file(REMOVE_RECURSE
  "libdehealth_core.a"
)
