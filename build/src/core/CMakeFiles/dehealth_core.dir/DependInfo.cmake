
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/de_health.cc" "src/core/CMakeFiles/dehealth_core.dir/de_health.cc.o" "gcc" "src/core/CMakeFiles/dehealth_core.dir/de_health.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/dehealth_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/dehealth_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/filtering.cc" "src/core/CMakeFiles/dehealth_core.dir/filtering.cc.o" "gcc" "src/core/CMakeFiles/dehealth_core.dir/filtering.cc.o.d"
  "/root/repo/src/core/refined_da.cc" "src/core/CMakeFiles/dehealth_core.dir/refined_da.cc.o" "gcc" "src/core/CMakeFiles/dehealth_core.dir/refined_da.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/core/CMakeFiles/dehealth_core.dir/similarity.cc.o" "gcc" "src/core/CMakeFiles/dehealth_core.dir/similarity.cc.o.d"
  "/root/repo/src/core/top_k.cc" "src/core/CMakeFiles/dehealth_core.dir/top_k.cc.o" "gcc" "src/core/CMakeFiles/dehealth_core.dir/top_k.cc.o.d"
  "/root/repo/src/core/uda_graph.cc" "src/core/CMakeFiles/dehealth_core.dir/uda_graph.cc.o" "gcc" "src/core/CMakeFiles/dehealth_core.dir/uda_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dehealth_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dehealth_text.dir/DependInfo.cmake"
  "/root/repo/build/src/stylo/CMakeFiles/dehealth_stylo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dehealth_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/dehealth_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/dehealth_datagen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
