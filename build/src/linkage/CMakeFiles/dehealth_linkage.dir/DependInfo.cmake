
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linkage/attack.cc" "src/linkage/CMakeFiles/dehealth_linkage.dir/attack.cc.o" "gcc" "src/linkage/CMakeFiles/dehealth_linkage.dir/attack.cc.o.d"
  "/root/repo/src/linkage/avatar_link.cc" "src/linkage/CMakeFiles/dehealth_linkage.dir/avatar_link.cc.o" "gcc" "src/linkage/CMakeFiles/dehealth_linkage.dir/avatar_link.cc.o.d"
  "/root/repo/src/linkage/dossier.cc" "src/linkage/CMakeFiles/dehealth_linkage.dir/dossier.cc.o" "gcc" "src/linkage/CMakeFiles/dehealth_linkage.dir/dossier.cc.o.d"
  "/root/repo/src/linkage/identity_universe.cc" "src/linkage/CMakeFiles/dehealth_linkage.dir/identity_universe.cc.o" "gcc" "src/linkage/CMakeFiles/dehealth_linkage.dir/identity_universe.cc.o.d"
  "/root/repo/src/linkage/name_link.cc" "src/linkage/CMakeFiles/dehealth_linkage.dir/name_link.cc.o" "gcc" "src/linkage/CMakeFiles/dehealth_linkage.dir/name_link.cc.o.d"
  "/root/repo/src/linkage/username.cc" "src/linkage/CMakeFiles/dehealth_linkage.dir/username.cc.o" "gcc" "src/linkage/CMakeFiles/dehealth_linkage.dir/username.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dehealth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
