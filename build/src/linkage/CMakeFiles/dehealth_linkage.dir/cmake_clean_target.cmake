file(REMOVE_RECURSE
  "libdehealth_linkage.a"
)
