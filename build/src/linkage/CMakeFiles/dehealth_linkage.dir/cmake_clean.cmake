file(REMOVE_RECURSE
  "CMakeFiles/dehealth_linkage.dir/attack.cc.o"
  "CMakeFiles/dehealth_linkage.dir/attack.cc.o.d"
  "CMakeFiles/dehealth_linkage.dir/avatar_link.cc.o"
  "CMakeFiles/dehealth_linkage.dir/avatar_link.cc.o.d"
  "CMakeFiles/dehealth_linkage.dir/dossier.cc.o"
  "CMakeFiles/dehealth_linkage.dir/dossier.cc.o.d"
  "CMakeFiles/dehealth_linkage.dir/identity_universe.cc.o"
  "CMakeFiles/dehealth_linkage.dir/identity_universe.cc.o.d"
  "CMakeFiles/dehealth_linkage.dir/name_link.cc.o"
  "CMakeFiles/dehealth_linkage.dir/name_link.cc.o.d"
  "CMakeFiles/dehealth_linkage.dir/username.cc.o"
  "CMakeFiles/dehealth_linkage.dir/username.cc.o.d"
  "libdehealth_linkage.a"
  "libdehealth_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dehealth_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
