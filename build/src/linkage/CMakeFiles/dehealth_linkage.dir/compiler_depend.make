# Empty compiler generated dependencies file for dehealth_linkage.
# This may be replaced when dependencies are built.
