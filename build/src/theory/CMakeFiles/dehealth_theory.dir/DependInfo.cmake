
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/theory/bounds.cc" "src/theory/CMakeFiles/dehealth_theory.dir/bounds.cc.o" "gcc" "src/theory/CMakeFiles/dehealth_theory.dir/bounds.cc.o.d"
  "/root/repo/src/theory/empirical.cc" "src/theory/CMakeFiles/dehealth_theory.dir/empirical.cc.o" "gcc" "src/theory/CMakeFiles/dehealth_theory.dir/empirical.cc.o.d"
  "/root/repo/src/theory/monte_carlo.cc" "src/theory/CMakeFiles/dehealth_theory.dir/monte_carlo.cc.o" "gcc" "src/theory/CMakeFiles/dehealth_theory.dir/monte_carlo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dehealth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
