file(REMOVE_RECURSE
  "libdehealth_theory.a"
)
