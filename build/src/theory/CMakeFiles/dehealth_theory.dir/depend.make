# Empty dependencies file for dehealth_theory.
# This may be replaced when dependencies are built.
