file(REMOVE_RECURSE
  "CMakeFiles/dehealth_theory.dir/bounds.cc.o"
  "CMakeFiles/dehealth_theory.dir/bounds.cc.o.d"
  "CMakeFiles/dehealth_theory.dir/empirical.cc.o"
  "CMakeFiles/dehealth_theory.dir/empirical.cc.o.d"
  "CMakeFiles/dehealth_theory.dir/monte_carlo.cc.o"
  "CMakeFiles/dehealth_theory.dir/monte_carlo.cc.o.d"
  "libdehealth_theory.a"
  "libdehealth_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dehealth_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
