file(REMOVE_RECURSE
  "libdehealth_common.a"
)
