# Empty dependencies file for dehealth_common.
# This may be replaced when dependencies are built.
