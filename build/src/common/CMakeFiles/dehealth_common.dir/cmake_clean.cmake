file(REMOVE_RECURSE
  "CMakeFiles/dehealth_common.dir/math_utils.cc.o"
  "CMakeFiles/dehealth_common.dir/math_utils.cc.o.d"
  "CMakeFiles/dehealth_common.dir/rng.cc.o"
  "CMakeFiles/dehealth_common.dir/rng.cc.o.d"
  "CMakeFiles/dehealth_common.dir/status.cc.o"
  "CMakeFiles/dehealth_common.dir/status.cc.o.d"
  "CMakeFiles/dehealth_common.dir/string_utils.cc.o"
  "CMakeFiles/dehealth_common.dir/string_utils.cc.o.d"
  "libdehealth_common.a"
  "libdehealth_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dehealth_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
