file(REMOVE_RECURSE
  "libdehealth_io.a"
)
