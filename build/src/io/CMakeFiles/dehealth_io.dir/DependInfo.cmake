
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/forum_io.cc" "src/io/CMakeFiles/dehealth_io.dir/forum_io.cc.o" "gcc" "src/io/CMakeFiles/dehealth_io.dir/forum_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dehealth_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/dehealth_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dehealth_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dehealth_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
