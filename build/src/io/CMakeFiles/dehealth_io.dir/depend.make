# Empty dependencies file for dehealth_io.
# This may be replaced when dependencies are built.
