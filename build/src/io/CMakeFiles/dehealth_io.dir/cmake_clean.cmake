file(REMOVE_RECURSE
  "CMakeFiles/dehealth_io.dir/forum_io.cc.o"
  "CMakeFiles/dehealth_io.dir/forum_io.cc.o.d"
  "libdehealth_io.a"
  "libdehealth_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dehealth_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
