# Empty compiler generated dependencies file for bench_fig2_post_length.
# This may be replaced when dependencies are built.
