# Empty dependencies file for bench_fig7_degree_dist.
# This may be replaced when dependencies are built.
