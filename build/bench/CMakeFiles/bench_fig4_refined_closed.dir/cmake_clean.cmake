file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_refined_closed.dir/bench_fig4_refined_closed.cc.o"
  "CMakeFiles/bench_fig4_refined_closed.dir/bench_fig4_refined_closed.cc.o.d"
  "bench_fig4_refined_closed"
  "bench_fig4_refined_closed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_refined_closed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
