# Empty dependencies file for bench_fig4_refined_closed.
# This may be replaced when dependencies are built.
