file(REMOVE_RECURSE
  "CMakeFiles/bench_linkage_attack.dir/bench_linkage_attack.cc.o"
  "CMakeFiles/bench_linkage_attack.dir/bench_linkage_attack.cc.o.d"
  "bench_linkage_attack"
  "bench_linkage_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linkage_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
