# Empty compiler generated dependencies file for bench_linkage_attack.
# This may be replaced when dependencies are built.
