file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_communities.dir/bench_fig8_communities.cc.o"
  "CMakeFiles/bench_fig8_communities.dir/bench_fig8_communities.cc.o.d"
  "bench_fig8_communities"
  "bench_fig8_communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
