# Empty dependencies file for bench_fig8_communities.
# This may be replaced when dependencies are built.
