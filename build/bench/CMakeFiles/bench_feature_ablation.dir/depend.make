# Empty dependencies file for bench_feature_ablation.
# This may be replaced when dependencies are built.
