# Empty compiler generated dependencies file for bench_fig6_refined_open.
# This may be replaced when dependencies are built.
