file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_refined_open.dir/bench_fig6_refined_open.cc.o"
  "CMakeFiles/bench_fig6_refined_open.dir/bench_fig6_refined_open.cc.o.d"
  "bench_fig6_refined_open"
  "bench_fig6_refined_open.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_refined_open.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
