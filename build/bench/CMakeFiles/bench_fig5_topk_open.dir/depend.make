# Empty dependencies file for bench_fig5_topk_open.
# This may be replaced when dependencies are built.
