file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_topk_open.dir/bench_fig5_topk_open.cc.o"
  "CMakeFiles/bench_fig5_topk_open.dir/bench_fig5_topk_open.cc.o.d"
  "bench_fig5_topk_open"
  "bench_fig5_topk_open.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_topk_open.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
