file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_topk_closed.dir/bench_fig3_topk_closed.cc.o"
  "CMakeFiles/bench_fig3_topk_closed.dir/bench_fig3_topk_closed.cc.o.d"
  "bench_fig3_topk_closed"
  "bench_fig3_topk_closed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_topk_closed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
