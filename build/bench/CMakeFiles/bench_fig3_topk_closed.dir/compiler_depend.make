# Empty compiler generated dependencies file for bench_fig3_topk_closed.
# This may be replaced when dependencies are built.
