# Empty compiler generated dependencies file for dehealth_cli.
# This may be replaced when dependencies are built.
