file(REMOVE_RECURSE
  "CMakeFiles/dehealth_cli.dir/dehealth_cli.cpp.o"
  "CMakeFiles/dehealth_cli.dir/dehealth_cli.cpp.o.d"
  "dehealth_cli"
  "dehealth_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dehealth_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
