# Empty compiler generated dependencies file for theory_explorer.
# This may be replaced when dependencies are built.
