file(REMOVE_RECURSE
  "CMakeFiles/open_world_attack.dir/open_world_attack.cpp.o"
  "CMakeFiles/open_world_attack.dir/open_world_attack.cpp.o.d"
  "open_world_attack"
  "open_world_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_world_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
