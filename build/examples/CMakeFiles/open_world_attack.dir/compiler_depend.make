# Empty compiler generated dependencies file for open_world_attack.
# This may be replaced when dependencies are built.
