file(REMOVE_RECURSE
  "CMakeFiles/defense_evaluation.dir/defense_evaluation.cpp.o"
  "CMakeFiles/defense_evaluation.dir/defense_evaluation.cpp.o.d"
  "defense_evaluation"
  "defense_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
