# Empty compiler generated dependencies file for linkage_attack.
# This may be replaced when dependencies are built.
