file(REMOVE_RECURSE
  "CMakeFiles/linkage_attack.dir/linkage_attack.cpp.o"
  "CMakeFiles/linkage_attack.dir/linkage_attack.cpp.o.d"
  "linkage_attack"
  "linkage_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkage_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
