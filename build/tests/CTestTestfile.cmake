# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/stylo_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/defense_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/theory_test[1]_include.cmake")
include("/root/repo/build/tests/linkage_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
