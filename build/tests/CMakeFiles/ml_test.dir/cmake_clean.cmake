file(REMOVE_RECURSE
  "CMakeFiles/ml_test.dir/ml/cross_validation_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/cross_validation_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/dataset_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/dataset_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/knn_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/knn_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/linalg_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/linalg_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/metrics_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/metrics_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/nearest_centroid_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/nearest_centroid_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/rlsc_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/rlsc_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/svm_smo_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/svm_smo_test.cc.o.d"
  "ml_test"
  "ml_test.pdb"
  "ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
