
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/io/forum_io_test.cc" "tests/CMakeFiles/io_test.dir/io/forum_io_test.cc.o" "gcc" "tests/CMakeFiles/io_test.dir/io/forum_io_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dehealth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stylo/CMakeFiles/dehealth_stylo.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/dehealth_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/dehealth_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/dehealth_io.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/dehealth_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dehealth_text.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dehealth_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/theory/CMakeFiles/dehealth_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/linkage/CMakeFiles/dehealth_linkage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dehealth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
