# Empty dependencies file for stylo_test.
# This may be replaced when dependencies are built.
