file(REMOVE_RECURSE
  "CMakeFiles/stylo_test.dir/stylo/extractor_test.cc.o"
  "CMakeFiles/stylo_test.dir/stylo/extractor_test.cc.o.d"
  "CMakeFiles/stylo_test.dir/stylo/feature_layout_test.cc.o"
  "CMakeFiles/stylo_test.dir/stylo/feature_layout_test.cc.o.d"
  "CMakeFiles/stylo_test.dir/stylo/feature_mask_test.cc.o"
  "CMakeFiles/stylo_test.dir/stylo/feature_mask_test.cc.o.d"
  "CMakeFiles/stylo_test.dir/stylo/feature_vector_test.cc.o"
  "CMakeFiles/stylo_test.dir/stylo/feature_vector_test.cc.o.d"
  "CMakeFiles/stylo_test.dir/stylo/user_profile_test.cc.o"
  "CMakeFiles/stylo_test.dir/stylo/user_profile_test.cc.o.d"
  "stylo_test"
  "stylo_test.pdb"
  "stylo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stylo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
