#include "serve/engine.h"

#include <string>
#include <utility>

#include "core/filtering.h"
#include "job/runner.h"

namespace dehealth {

QueryEngine::QueryEngine(UdaGraph anonymized, UdaGraph auxiliary,
                         DeHealthConfig config)
    : anonymized_(std::move(anonymized)),
      auxiliary_(std::move(auxiliary)),
      attack_(std::move(config)) {}

StatusOr<std::unique_ptr<QueryEngine>> QueryEngine::Create(
    UdaGraph anonymized, UdaGraph auxiliary, DeHealthConfig config) {
  std::unique_ptr<QueryEngine> engine(new QueryEngine(
      std::move(anonymized), std::move(auxiliary), std::move(config)));
  DEHEALTH_RETURN_IF_ERROR(engine->Init());
  return engine;
}

Status QueryEngine::Init() {
  const DeHealthConfig& config = attack_.config();

  // Score source — the same construction RunDeHealthAttack and the job
  // runner perform (including graceful dense fallback when the index is
  // unusable), so served answers match the one-shot pipeline bit for bit.
  StatusOr<std::unique_ptr<AttackScoreSource>> bundle =
      BuildAttackScoreSource(anonymized_, auxiliary_, config);
  if (!bundle.ok()) return bundle.status();
  bundle_ = std::move(bundle).value();

  // Durable warm start: with a job directory, phase 1 runs through the
  // crash-safe shard store — a restart loads the shards a previous
  // process (server or CLI) committed instead of recomputing them, and a
  // warm start interrupted by SIGTERM/SIGKILL resumes next launch.
  if (!config.job_dir.empty()) {
    StatusOr<AttackJob> job =
        AttackJob::Open(anonymized_, auxiliary_, config);
    if (!job.ok()) return job.status();
    StatusOr<DeHealthCandidates> state =
        job->SelectCandidates(scores(), &raw_);
    if (!state.ok()) return state.status();
    state_ = std::move(state).value();
    return Status();
  }

  // Phase 1b once, unfiltered: these sets answer kTopK at the default K
  // (and are the filtering input).
  DeHealthConfig unfiltered = config;
  unfiltered.enable_filtering = false;
  StatusOr<DeHealthCandidates> raw =
      DeHealth(unfiltered).SelectCandidates(scores());
  if (!raw.ok()) return raw.status();
  raw_ = std::move(raw).value();

  // Phase 1c once: filtering thresholds are global (max/min over all
  // candidate scores), so they must be fixed at startup — a per-query
  // filter would see different thresholds per batch.
  if (config.enable_filtering) {
    StatusOr<FilterResult> filtered =
        FilterCandidates(scores(), raw_.candidates, config.filter);
    if (!filtered.ok()) return filtered.status();
    state_.candidates = std::move(filtered->candidates);
    state_.rejected = std::move(filtered->rejected);
  } else {
    state_ = raw_;
  }
  return Status();
}

int QueryEngine::num_anonymized() const { return scores().num_anonymized(); }

int QueryEngine::num_auxiliary() const { return scores().num_auxiliary(); }

Status QueryEngine::ValidateUsers(const std::vector<int>& users) const {
  const int n1 = num_anonymized();
  for (int u : users)
    if (u < 0 || u >= n1)
      return Status::InvalidArgument(
          "QueryEngine: user id " + std::to_string(u) +
          " out of range [0, " + std::to_string(n1) + ")");
  return Status();
}

StatusOr<TopKAnswer> QueryEngine::TopKLocal(const std::vector<int>& users,
                                            int k) const {
  const DeHealthConfig& config = attack_.config();
  if (k == 0) k = config.top_k;
  if (k < 1)
    return Status::InvalidArgument("QueryEngine::TopK: k must be >= 1");
  TopKAnswer answer;
  if (k == config.top_k) {
    DEHEALTH_RETURN_IF_ERROR(ValidateUsers(users));
    answer.candidates.reserve(users.size());
    for (int u : users)
      answer.candidates.push_back(raw_.candidates[static_cast<size_t>(u)]);
    return answer;
  }
  if (config.selection == CandidateSelection::kGraphMatching)
    return Status::FailedPrecondition(
        "QueryEngine::TopK: graph-matching selection precomputes exactly "
        "K=" + std::to_string(config.top_k) +
        "; request k=0 (default) or k=" + std::to_string(config.top_k));
  StatusOr<CandidateSets> sets =
      scores().TopKForUsers(users, k, config.num_threads);
  if (!sets.ok()) return sets.status();
  answer.candidates = std::move(sets).value();
  return answer;
}

StatusOr<TopKAnswer> QueryEngine::TopK(const std::vector<int>& users,
                                       int k) const {
  StatusOr<TopKAnswer> answer = TopKLocal(users, k);
  if (!answer.ok()) return answer.status();
  // Slice mode: the score source holds the range [shard_begin,
  // shard_begin + num_auxiliary) of the universe under LOCAL ids; answers
  // leave the engine under GLOBAL auxiliary ids so a router (or a client
  // comparing against a full run) never sees shard-relative ids.
  if (bundle_->shard_begin != 0)
    for (auto& list : answer->candidates)
      for (int& v : list) v += bundle_->shard_begin;
  return answer;
}

StatusOr<ScoredTopKAnswer> QueryEngine::TopKScored(
    const std::vector<int>& users, int k) const {
  // Resolve candidate LOCAL ids exactly like TopK (so the scored answer is
  // the same sets, same order), then attach the exact per-pair score and
  // translate to global ids last.
  StatusOr<TopKAnswer> plain = TopKLocal(users, k);
  if (!plain.ok()) return plain.status();
  ScoredTopKAnswer answer;
  answer.candidates.reserve(plain->candidates.size());
  for (size_t i = 0; i < plain->candidates.size(); ++i) {
    const int u = users[i];
    std::vector<ScoredUser> scored;
    scored.reserve(plain->candidates[i].size());
    for (int v : plain->candidates[i])
      scored.push_back(ScoredUser{scores().Score(u, v),
                                  v + bundle_->shard_begin});
    answer.candidates.push_back(std::move(scored));
  }
  return answer;
}

ShardInfoAnswer QueryEngine::ShardInfo() const {
  ShardInfoAnswer info;
  info.shard_index = static_cast<uint32_t>(bundle_->shard_index);
  info.shard_count = static_cast<uint32_t>(bundle_->shard_count);
  info.shard_begin = static_cast<uint64_t>(bundle_->shard_begin);
  info.shard_total = static_cast<uint64_t>(bundle_->universe_size);
  info.universe_fingerprint = bundle_->universe_fingerprint;
  info.num_anonymized = static_cast<uint64_t>(num_anonymized());
  info.default_top_k = static_cast<uint64_t>(attack_.config().top_k);
  info.engine = static_cast<uint32_t>(attack_.config().engine);
  return info;
}

StatusOr<RefinedAnswer> QueryEngine::Refine(
    const std::vector<int>& users) const {
  if (bundle_->shard_count > 1)
    return Status::FailedPrecondition(
        "QueryEngine::Refine: refined DA is universe-global and cannot run "
        "on a shard slice (--shard-count > 1); query an unsharded server");
  StatusOr<RefinedDaResult> result =
      attack_.RefineUsers(anonymized_, auxiliary_, scores(), state_, users);
  if (!result.ok()) return result.status();
  RefinedAnswer answer;
  answer.predictions = std::move(result->predictions);
  answer.rejected = std::move(result->rejected);
  return answer;
}

StatusOr<FilteredAnswer> QueryEngine::Filtered(
    const std::vector<int>& users) const {
  if (bundle_->shard_count > 1)
    return Status::FailedPrecondition(
        "QueryEngine::Filtered: filtering thresholds are universe-global "
        "and cannot run on a shard slice (--shard-count > 1)");
  if (!attack_.config().enable_filtering)
    return Status::FailedPrecondition(
        "QueryEngine::Filtered: the server was started without filtering "
        "(pass --filter to dehealth_serve)");
  DEHEALTH_RETURN_IF_ERROR(ValidateUsers(users));
  FilteredAnswer answer;
  answer.candidates.reserve(users.size());
  answer.rejected.reserve(users.size());
  for (int u : users) {
    answer.candidates.push_back(state_.candidates[static_cast<size_t>(u)]);
    answer.rejected.push_back(state_.rejected[static_cast<size_t>(u)]);
  }
  return answer;
}

}  // namespace dehealth
