#include "serve/metrics.h"

#include <cstdio>

namespace dehealth {

ServeMetrics::ServeMetrics(obs::Registry* registry)
    : registry_(registry),
      requests_(registry->GetCounter(obs::kServeRequests)),
      queries_(registry->GetCounter(obs::kServeQueries)),
      batches_(registry->GetCounter(obs::kServeBatches)),
      max_batch_(registry->GetGauge(obs::kServeBatchSizeMax)),
      overloads_(registry->GetCounter(obs::kServeOverloaded)),
      deadline_expirations_(registry->GetCounter(obs::kServeDeadlineExpired)),
      queue_depth_(registry->GetGauge(obs::kServeQueueDepth)),
      latency_(registry->GetHistogram(obs::kServeLatency)),
      queue_wait_(registry->GetHistogram(obs::kServeQueueWait)),
      engine_time_(registry->GetHistogram(obs::kServeEngineTime)),
      batch_size_(registry->GetHistogram(obs::kServeBatchSize)) {}

void ServeMetrics::RecordBatch(uint64_t size) {
  batches_->Increment();
  max_batch_->MaxWith(static_cast<int64_t>(size));
  batch_size_->Record(static_cast<double>(size));
}

ServerStatsSnapshot ServeMetrics::Snapshot() const {
  ServerStatsSnapshot stats;
  stats.requests_total = requests_->Value();
  stats.queries_total = queries_->Value();
  stats.batches_total = batches_->Value();
  stats.max_batch = static_cast<uint64_t>(max_batch_->Value());
  stats.overload_rejections = overloads_->Value();
  stats.deadline_expirations = deadline_expirations_->Value();
  stats.queue_depth = static_cast<uint64_t>(queue_depth_->Value());
  stats.p50_micros = latency_->Quantile(0.5);
  stats.p99_micros = latency_->Quantile(0.99);
  stats.max_micros = latency_->Max();
  return stats;
}

namespace {

/// "850us", "3.2ms", "1.5s" — compact duration for the one-line report.
std::string FormatMicros(double micros) {
  char buffer[32];
  if (micros < 1000.0)
    std::snprintf(buffer, sizeof(buffer), "%.0fus", micros);
  else if (micros < 1e6)
    std::snprintf(buffer, sizeof(buffer), "%.1fms", micros / 1000.0);
  else
    std::snprintf(buffer, sizeof(buffer), "%.1fs", micros / 1e6);
  return buffer;
}

}  // namespace

std::string FormatStatsLine(const ServerStatsSnapshot& stats) {
  char buffer[256];
  std::snprintf(
      buffer, sizeof(buffer),
      "serve: %llu req, %llu queries, %llu batches (max %llu), p50=%s "
      "p99=%s, queue=%llu, overloaded=%llu, timed_out=%llu",
      static_cast<unsigned long long>(stats.requests_total),
      static_cast<unsigned long long>(stats.queries_total),
      static_cast<unsigned long long>(stats.batches_total),
      static_cast<unsigned long long>(stats.max_batch),
      FormatMicros(stats.p50_micros).c_str(),
      FormatMicros(stats.p99_micros).c_str(),
      static_cast<unsigned long long>(stats.queue_depth),
      static_cast<unsigned long long>(stats.overload_rejections),
      static_cast<unsigned long long>(stats.deadline_expirations));
  return buffer;
}

}  // namespace dehealth
