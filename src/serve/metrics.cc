#include "serve/metrics.h"

#include <cstdio>

namespace dehealth {

void ServeMetrics::RecordBatch(uint64_t size) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  uint64_t seen = max_batch_.load(std::memory_order_relaxed);
  while (size > seen &&
         !max_batch_.compare_exchange_weak(seen, size,
                                           std::memory_order_relaxed)) {
  }
}

ServerStatsSnapshot ServeMetrics::Snapshot() const {
  ServerStatsSnapshot stats;
  stats.requests_total = requests_.load(std::memory_order_relaxed);
  stats.queries_total = queries_.load(std::memory_order_relaxed);
  stats.batches_total = batches_.load(std::memory_order_relaxed);
  stats.max_batch = max_batch_.load(std::memory_order_relaxed);
  stats.overload_rejections = overloads_.load(std::memory_order_relaxed);
  stats.deadline_expirations =
      deadline_expirations_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  stats.p50_micros = latency_.QuantileMicros(0.5);
  stats.p99_micros = latency_.QuantileMicros(0.99);
  stats.max_micros = latency_.MaxMicros();
  return stats;
}

namespace {

/// "850us", "3.2ms", "1.5s" — compact duration for the one-line report.
std::string FormatMicros(double micros) {
  char buffer[32];
  if (micros < 1000.0)
    std::snprintf(buffer, sizeof(buffer), "%.0fus", micros);
  else if (micros < 1e6)
    std::snprintf(buffer, sizeof(buffer), "%.1fms", micros / 1000.0);
  else
    std::snprintf(buffer, sizeof(buffer), "%.1fs", micros / 1e6);
  return buffer;
}

}  // namespace

std::string FormatStatsLine(const ServerStatsSnapshot& stats) {
  char buffer[256];
  std::snprintf(
      buffer, sizeof(buffer),
      "serve: %llu req, %llu queries, %llu batches (max %llu), p50=%s "
      "p99=%s, queue=%llu, overloaded=%llu, timed_out=%llu",
      static_cast<unsigned long long>(stats.requests_total),
      static_cast<unsigned long long>(stats.queries_total),
      static_cast<unsigned long long>(stats.batches_total),
      static_cast<unsigned long long>(stats.max_batch),
      FormatMicros(stats.p50_micros).c_str(),
      FormatMicros(stats.p99_micros).c_str(),
      static_cast<unsigned long long>(stats.queue_depth),
      static_cast<unsigned long long>(stats.overload_rejections),
      static_cast<unsigned long long>(stats.deadline_expirations));
  return buffer;
}

}  // namespace dehealth
