#include "serve/client.h"

#include <utility>

namespace dehealth {

StatusOr<QueryClient> QueryClient::Connect(const std::string& host,
                                           int port) {
  StatusOr<UniqueFd> fd = ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  return QueryClient(std::move(fd).value());
}

StatusOr<std::string> QueryClient::RoundTrip(RequestType type,
                                             const std::string& payload) {
  DEHEALTH_RETURN_IF_ERROR(
      WriteFrame(fd_.get(), static_cast<uint8_t>(type), payload));
  uint8_t response_type = 0;
  std::string response_payload;
  DEHEALTH_RETURN_IF_ERROR(
      ReadFrame(fd_.get(), &response_type, &response_payload));
  switch (static_cast<ResponseType>(response_type)) {
    case ResponseType::kOk:
      return response_payload;
    case ResponseType::kError:
    case ResponseType::kOverloaded:
    case ResponseType::kTimeout: {
      Status error;
      DEHEALTH_RETURN_IF_ERROR(
          DecodeErrorPayload(response_payload, &error));
      return error;
    }
    default:
      return Status::Internal("DHQP: unknown response type " +
                              std::to_string(response_type));
  }
}

StatusOr<std::string> QueryClient::Query(RequestType type,
                                         const std::vector<int>& users,
                                         int top_k, double timeout_ms) {
  QueryRequest request;
  request.type = type;
  request.users = users;
  request.top_k = top_k;
  request.timeout_ms = timeout_ms;
  return RoundTrip(type, EncodeQueryPayload(request));
}

StatusOr<TopKAnswer> QueryClient::TopK(const std::vector<int>& users, int k,
                                       double timeout_ms) {
  StatusOr<std::string> payload =
      Query(RequestType::kTopK, users, k, timeout_ms);
  if (!payload.ok()) return payload.status();
  return DecodeTopKPayload(*payload);
}

StatusOr<RefinedAnswer> QueryClient::Refine(const std::vector<int>& users,
                                            double timeout_ms) {
  StatusOr<std::string> payload =
      Query(RequestType::kRefined, users, 0, timeout_ms);
  if (!payload.ok()) return payload.status();
  return DecodeRefinedPayload(*payload);
}

StatusOr<FilteredAnswer> QueryClient::Filtered(const std::vector<int>& users,
                                               double timeout_ms) {
  StatusOr<std::string> payload =
      Query(RequestType::kFiltered, users, 0, timeout_ms);
  if (!payload.ok()) return payload.status();
  return DecodeFilteredPayload(*payload);
}

StatusOr<ServerStatsSnapshot> QueryClient::Stats() {
  StatusOr<std::string> payload =
      RoundTrip(RequestType::kStats, std::string());
  if (!payload.ok()) return payload.status();
  return DecodeStatsPayload(*payload);
}

Status QueryClient::RequestShutdown() {
  StatusOr<std::string> payload =
      RoundTrip(RequestType::kShutdown, std::string());
  return payload.ok() ? Status() : payload.status();
}

}  // namespace dehealth
