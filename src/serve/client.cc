#include "serve/client.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/rng.h"

namespace dehealth {

namespace {

bool Transient(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

}  // namespace

RetryPolicy ClampRetryPolicy(RetryPolicy retry) {
  retry.max_attempts = std::max(retry.max_attempts, 1);
  retry.initial_backoff_ms = std::max(retry.initial_backoff_ms, 0);
  retry.max_backoff_ms =
      std::max(retry.max_backoff_ms, retry.initial_backoff_ms);
  // `!(x >= 1)` also catches NaN, which `std::max` would propagate.
  if (!(retry.multiplier >= 1.0)) retry.multiplier = 1.0;
  return retry;
}

int RetryBackoffMs(const RetryPolicy& retry, int attempt) {
  const RetryPolicy clamped = ClampRetryPolicy(retry);
  double backoff = clamped.initial_backoff_ms;
  for (int i = 2; i < attempt; ++i) {
    backoff *= clamped.multiplier;
    if (backoff >= clamped.max_backoff_ms) break;  // no overflow spiral
  }
  backoff = std::min(backoff, static_cast<double>(clamped.max_backoff_ms));
  // Deterministic jitter in [0.5, 1.0]: a pure function of (seed,
  // attempt), so tests can predict total retry time while distinct seeds
  // decorrelate a thundering herd.
  Rng rng(MixSeed(clamped.seed, static_cast<uint64_t>(attempt)));
  return static_cast<int>(backoff * (0.5 + 0.5 * rng.NextDouble()));
}

StatusOr<QueryClient> QueryClient::Connect(const std::string& host, int port,
                                           RetryPolicy retry) {
  retry = ClampRetryPolicy(retry);
  Status last;
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    if (attempt > 1)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(RetryBackoffMs(retry, attempt)));
    StatusOr<UniqueFd> fd = ConnectTcp(host, port);
    if (fd.ok())
      return QueryClient(host, port, retry, std::move(fd).value());
    last = fd.status();
    if (!Transient(last)) break;
  }
  return last;
}

void QueryClient::CancelInFlight() {
  cancel_->requested.store(true, std::memory_order_release);
  // Shut down (not close — the owning thread still holds the fd) the
  // published socket so a blocked read/write returns immediately.
  const int fd = cancel_->fd.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void QueryClient::ResetConnection() {
  cancel_->fd.store(-1, std::memory_order_release);
  fd_.reset();
}

StatusOr<std::string> QueryClient::RoundTripOnce(
    RequestType type, const std::string& payload, bool* partial) {
  if (!fd_.valid()) {
    StatusOr<UniqueFd> fd = ConnectTcp(host_, port_);
    if (!fd.ok()) return fd.status();
    fd_ = std::move(fd).value();
    cancel_->fd.store(fd_.get(), std::memory_order_release);
  }
  DEHEALTH_RETURN_IF_ERROR(
      WriteFrame(fd_.get(), static_cast<uint8_t>(type), payload));
  uint8_t response_type = 0;
  std::string response_payload;
  Status read = ReadFrame(fd_.get(), &response_type, &response_payload);
  if (!read.ok()) {
    // A clean EOF here is not an end-of-stream condition: we sent a
    // request and the peer vanished before answering. That is a transport
    // death — report it Unavailable so RoundTrip's retry loop reconnects
    // and a router can degrade instead of failing hard.
    if (read.code() == StatusCode::kOutOfRange)
      return Status::Unavailable("connection closed mid-round-trip: " +
                                 std::string(read.message()));
    return read;
  }
  switch (static_cast<ResponseType>(response_type)) {
    case ResponseType::kOk:
      return response_payload;
    case ResponseType::kPartial:
      if (partial != nullptr) *partial = true;
      return response_payload;
    case ResponseType::kError:
    case ResponseType::kOverloaded:
    case ResponseType::kTimeout: {
      Status error;
      DEHEALTH_RETURN_IF_ERROR(
          DecodeErrorPayload(response_payload, &error));
      return error;
    }
    default:
      return Status::Internal("DHQP: unknown response type " +
                              std::to_string(response_type));
  }
}

StatusOr<std::string> QueryClient::RoundTrip(RequestType type,
                                             const std::string& payload,
                                             bool retryable, bool* partial) {
  const int max_attempts = retryable ? std::max(retry_.max_attempts, 1) : 1;
  cancel_->requested.store(false, std::memory_order_release);
  StatusOr<std::string> result = Status::Internal("unreachable");
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(RetryBackoffMs(retry_, attempt)));
    result = RoundTripOnce(type, payload, partial);
    if (cancel_->requested.load(std::memory_order_acquire)) {
      // The socket was shut down under us mid-round-trip: whatever came
      // back (usually a transport error, possibly a complete answer that
      // raced the shutdown) is abandoned, and we must NOT retry — the
      // caller already took the answer from the hedged sibling.
      ResetConnection();
      return Status::Cancelled("request cancelled");
    }
    if (result.ok() || !Transient(result.status())) return result;
    // Transient failure. A mid-round-trip transport death leaves the
    // stream unsynchronized — drop the connection so the next attempt
    // reconnects. A transported overload rejection leaves it healthy.
    // Queries are idempotent reads, so a resend is always safe.
    if (!result.status().message().starts_with("server overloaded"))
      ResetConnection();
  }
  return result;
}

StatusOr<std::string> QueryClient::Query(RequestType type,
                                         const std::vector<int>& users,
                                         int top_k, double timeout_ms,
                                         bool* partial) {
  QueryRequest request;
  request.type = type;
  request.users = users;
  request.top_k = top_k;
  request.timeout_ms = timeout_ms;
  return RoundTrip(type, EncodeQueryPayload(request), /*retryable=*/true,
                   partial);
}

StatusOr<TopKAnswer> QueryClient::TopK(const std::vector<int>& users, int k,
                                       double timeout_ms) {
  bool partial = false;
  StatusOr<std::string> payload =
      Query(RequestType::kTopK, users, k, timeout_ms, &partial);
  if (!payload.ok()) return payload.status();
  StatusOr<TopKAnswer> answer = DecodeTopKPayload(*payload);
  if (answer.ok()) answer->partial = partial;
  return answer;
}

StatusOr<ScoredTopKAnswer> QueryClient::TopKScored(
    const std::vector<int>& users, int k, double timeout_ms) {
  bool partial = false;
  StatusOr<std::string> payload =
      Query(RequestType::kTopKScored, users, k, timeout_ms, &partial);
  if (!payload.ok()) return payload.status();
  StatusOr<ScoredTopKAnswer> answer = DecodeScoredTopKPayload(*payload);
  if (answer.ok()) answer->partial = partial;
  return answer;
}

StatusOr<ShardInfoAnswer> QueryClient::ShardInfo() {
  StatusOr<std::string> payload =
      RoundTrip(RequestType::kShardInfo, std::string(), /*retryable=*/true);
  if (!payload.ok()) return payload.status();
  return DecodeShardInfoPayload(*payload);
}

StatusOr<RefinedAnswer> QueryClient::Refine(const std::vector<int>& users,
                                            double timeout_ms) {
  StatusOr<std::string> payload =
      Query(RequestType::kRefined, users, 0, timeout_ms);
  if (!payload.ok()) return payload.status();
  return DecodeRefinedPayload(*payload);
}

StatusOr<FilteredAnswer> QueryClient::Filtered(const std::vector<int>& users,
                                               double timeout_ms) {
  StatusOr<std::string> payload =
      Query(RequestType::kFiltered, users, 0, timeout_ms);
  if (!payload.ok()) return payload.status();
  return DecodeFilteredPayload(*payload);
}

StatusOr<ServerStatsSnapshot> QueryClient::Stats() {
  StatusOr<std::string> payload =
      RoundTrip(RequestType::kStats, std::string(), /*retryable=*/true);
  if (!payload.ok()) return payload.status();
  return DecodeStatsPayload(*payload);
}

StatusOr<std::string> QueryClient::Metrics() {
  return RoundTrip(RequestType::kMetrics, std::string(), /*retryable=*/true);
}

StatusOr<ShardInfoAnswer> QueryClient::LoadSegment(
    const std::string& segment_path) {
  StatusOr<std::string> payload =
      RoundTrip(RequestType::kLoadSegment,
                EncodeLoadSegmentPayload(segment_path), /*retryable=*/false);
  if (!payload.ok()) return payload.status();
  return DecodeShardInfoPayload(*payload);
}

StatusOr<ShardInfoAnswer> QueryClient::SealEpoch() {
  StatusOr<std::string> payload =
      RoundTrip(RequestType::kSealEpoch, std::string(), /*retryable=*/false);
  if (!payload.ok()) return payload.status();
  return DecodeShardInfoPayload(*payload);
}

Status QueryClient::RequestShutdown() {
  StatusOr<std::string> payload =
      RoundTrip(RequestType::kShutdown, std::string(), /*retryable=*/false);
  return payload.ok() ? Status() : payload.status();
}

}  // namespace dehealth
