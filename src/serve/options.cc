#include "serve/options.h"

namespace dehealth {

namespace {

/// Unwraps a flag lookup or propagates its parse error.
#define OPTIONS_ASSIGN_OR_RETURN(name, expr)        \
  auto name##_or = (expr);                          \
  if (!(name##_or).ok()) return (name##_or).status(); \
  const auto name = *(name##_or)

}  // namespace

StatusOr<DeHealthConfig> ParseAttackFlags(const FlagParser& flags) {
  DeHealthConfig config;
  OPTIONS_ASSIGN_OR_RETURN(k, flags.GetInt("k", 10));
  OPTIONS_ASSIGN_OR_RETURN(threads, flags.GetInt("threads", 0));
  OPTIONS_ASSIGN_OR_RETURN(max_candidates,
                           flags.GetInt("max-candidates", 0));
  if (k < 1) return Status::InvalidArgument("--k must be >= 1");
  if (threads < 0)
    return Status::InvalidArgument(
        "--threads must be >= 0 (0 = all hardware threads)");
  if (max_candidates < 0)
    return Status::InvalidArgument("--max-candidates must be >= 0");
  config.top_k = k;
  config.num_threads = threads;
  OPTIONS_ASSIGN_OR_RETURN(
      engine, ParseEngineKind(flags.Get("engine", "structural")));
  config.engine = engine;
  config.similarity.idf_weight_attributes = flags.Has("idf");
  OPTIONS_ASSIGN_OR_RETURN(
      simd, ParseSimdMode(flags.Get("simd", "auto")));
  config.similarity.simd = simd;
  config.enable_filtering = flags.Has("filter");
  config.index_snapshot_path = flags.Get("index-path");
  // --index-path implies the indexed path; --index alone keeps the index
  // in memory for this run.
  config.use_index =
      flags.Has("index") || !config.index_snapshot_path.empty();
  config.index_max_candidates = max_candidates;
  // The candidate index is a structural-kernel artifact; the matrix-backed
  // engines have nothing to load from it, so combining them is a config
  // error, not a degradation.
  if (config.engine != EngineKind::kStructural &&
      (config.use_index || config.index_max_candidates > 0))
    return Status::InvalidArgument(
        std::string("--index/--index-path/--max-candidates only apply to "
                    "--engine=structural, not --engine=") +
        EngineKindName(config.engine));
  // Crash-safe checkpoint/resume (src/job/): both binaries accept the same
  // job flags so a serve warm start can reuse shards a CLI run committed.
  config.job_dir = flags.Get("job-dir");
  OPTIONS_ASSIGN_OR_RETURN(shard_size, flags.GetInt("shard-size", 64));
  if (shard_size < 1)
    return Status::InvalidArgument("--shard-size must be >= 1");
  config.job_shard_size = shard_size;
  // Sharding (src/shard/): --shards partitions in-process; --shard-index /
  // --shard-count make this process ONE slice of a router-fronted fleet.
  OPTIONS_ASSIGN_OR_RETURN(shards, flags.GetInt("shards", 1));
  OPTIONS_ASSIGN_OR_RETURN(shard_index, flags.GetInt("shard-index", 0));
  OPTIONS_ASSIGN_OR_RETURN(shard_count, flags.GetInt("shard-count", 1));
  if (shards < 1) return Status::InvalidArgument("--shards must be >= 1");
  if (shard_count < 1)
    return Status::InvalidArgument("--shard-count must be >= 1");
  if (shard_index < 0 || shard_index >= shard_count)
    return Status::InvalidArgument(
        "--shard-index must be in [0, --shard-count)");
  if (shards > 1 && shard_count > 1)
    return Status::InvalidArgument(
        "--shards (in-process) and --shard-count (one slice of a fleet) "
        "are mutually exclusive");
  if (shard_count > 1 && config.enable_filtering)
    return Status::InvalidArgument(
        "--filter needs universe-global thresholds and cannot run on a "
        "shard slice (--shard-count > 1); filter behind the router instead");
  config.num_shards = shards;
  config.shard_index = shard_index;
  config.shard_count = shard_count;
  const std::string learner = flags.Get("learner", "smo");
  if (learner == "knn") {
    config.refined.learner = LearnerKind::kKnn;
  } else if (learner == "rlsc") {
    config.refined.learner = LearnerKind::kRlsc;
  } else if (learner == "centroid") {
    config.refined.learner = LearnerKind::kNearestCentroid;
  } else {
    config.refined.learner = LearnerKind::kSmoSvm;
  }
  return config;
}

StatusOr<ServerConfig> ParseServerFlags(const FlagParser& flags) {
  ServerConfig config;
  config.host = flags.Get("host", "127.0.0.1");
  OPTIONS_ASSIGN_OR_RETURN(port, flags.GetInt("port", 0));
  OPTIONS_ASSIGN_OR_RETURN(queue, flags.GetInt("queue", 64));
  OPTIONS_ASSIGN_OR_RETURN(batch, flags.GetInt("batch", 16));
  OPTIONS_ASSIGN_OR_RETURN(timeout_ms,
                           flags.GetDouble("timeout-ms", 0.0));
  OPTIONS_ASSIGN_OR_RETURN(stats_period,
                           flags.GetDouble("stats-period", 0.0));
  if (port < 0 || port > 65535)
    return Status::InvalidArgument("--port must be in [0, 65535]");
  if (queue < 0) return Status::InvalidArgument("--queue must be >= 0");
  if (batch < 1) return Status::InvalidArgument("--batch must be >= 1");
  if (timeout_ms < 0.0)
    return Status::InvalidArgument("--timeout-ms must be >= 0");
  if (stats_period < 0.0)
    return Status::InvalidArgument("--stats-period must be >= 0");
  config.port = port;
  config.max_queue = queue;
  config.max_batch = batch;
  config.default_timeout_ms = timeout_ms;
  config.stats_log_period_s = stats_period;
  return config;
}

}  // namespace dehealth
