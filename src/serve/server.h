#ifndef DEHEALTH_SERVE_SERVER_H_
#define DEHEALTH_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/socket.h"
#include "serve/engine.h"
#include "serve/handler.h"
#include "serve/metrics.h"
#include "serve/protocol.h"

namespace dehealth {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with QueryServer::port().
  int port = 0;
  /// Admission bound: a query arriving while this many are already queued
  /// is answered kOverloaded immediately instead of waiting (backpressure
  /// the client can see). 0 rejects every query — useful in tests.
  int max_queue = 64;
  /// Largest number of queued requests the executor coalesces into one
  /// batch (answers are batch-composition-independent, so this is purely a
  /// throughput/latency knob).
  int max_batch = 16;
  /// Deadline applied to requests that do not carry their own timeout_ms;
  /// 0 = none. Covers queue wait only — execution is never preempted.
  double default_timeout_ms = 0.0;
  /// When > 0, a reporter thread logs FormatStatsLine to stderr this often.
  double stats_log_period_s = 0.0;
  /// Registry serve metrics record into. The binary passes
  /// &obs::Registry::Global() so the `metrics` query exports serve counters
  /// alongside core/index/job instrumentation; nullptr (the default) gives
  /// the server a private registry — what tests want for exact counts.
  obs::Registry* registry = nullptr;
};

/// The long-lived De-Health query service: one listening socket, one
/// reader thread per connection, and ONE executor thread that pops queued
/// requests in arrival order, coalesces up to max_batch of them, and
/// answers them through the engine (parallelism lives inside the batch,
/// via the library's ParallelFor — keeping the executor single makes
/// batching deterministic and the engine strictly single-consumer).
///
/// Request flow per connection: read frame → admission (kStats/kShutdown
/// bypass the queue; queries are rejected kOverloaded when the queue is
/// full) → executor fulfills a response future → reader writes the
/// response frame. Graceful drain (Shutdown(), a kShutdown request, or
/// SIGTERM via the binary): stop admitting, close the listener, SHUT_RD
/// every connection so readers unblock, and answer everything already
/// queued before the executor exits.
class QueryServer {
 public:
  /// Borrows the handler (a QueryEngine, or a router's scatter-gather
  /// handler), which must outlive Wait().
  QueryServer(const QueryHandler& handler, ServerConfig config);
  ~QueryServer();

  /// Binds and starts the accept/executor/reporter threads.
  Status Start();

  /// The bound port (resolves port 0).
  int port() const { return port_; }

  /// Initiates graceful drain; safe from any thread, idempotent,
  /// non-blocking (join happens in Wait()).
  void Shutdown();

  /// True once a drain was initiated (by Shutdown or a kShutdown request).
  bool ShuttingDown() const;

  /// Joins every thread. In-flight requests are answered first; returns
  /// once the last connection closed.
  void Wait();

  /// Live metrics, dataset fields included (what a kStats frame returns).
  ServerStatsSnapshot Stats() const;

 private:
  struct Pending {
    QueryRequest request;
    std::chrono::steady_clock::time_point received;
    std::chrono::steady_clock::time_point deadline;  // ::max() = none
    std::promise<std::pair<uint8_t, std::string>> response;
  };

  void AcceptLoop();
  void ConnectionLoop(UniqueFd fd);
  void ExecutorLoop();
  void ReporterLoop();

  /// Admission control: enqueues or answers kOverloaded / drain-refusal on
  /// the spot. Returns the response to write now, or nothing when queued
  /// (the caller then waits on the future).
  void HandleQuery(int fd, QueryRequest request);

  void ExecuteBatch(std::vector<std::unique_ptr<Pending>>& batch);
  void Fulfill(Pending& pending, uint8_t type, std::string payload);

  const QueryHandler* engine_;
  ServerConfig config_;
  int port_ = 0;

  UniqueFd listen_fd_;
  std::thread accept_thread_;
  std::thread executor_thread_;
  std::thread reporter_thread_;

  mutable std::mutex mutex_;  // guards queue_ + draining_
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Pending>> queue_;
  bool draining_ = false;

  std::mutex connections_mutex_;  // guards connection_fds_ + threads_
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;

  // Declared before metrics_, which borrows whichever registry wins.
  std::unique_ptr<obs::Registry> owned_registry_;
  ServeMetrics metrics_;
};

}  // namespace dehealth

#endif  // DEHEALTH_SERVE_SERVER_H_
