#include "serve/server.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <map>

#include "obs/trace.h"

namespace dehealth {

namespace {

constexpr uint8_t kOkByte = static_cast<uint8_t>(ResponseType::kOk);
constexpr uint8_t kErrorByte = static_cast<uint8_t>(ResponseType::kError);
constexpr uint8_t kOverloadedByte =
    static_cast<uint8_t>(ResponseType::kOverloaded);
constexpr uint8_t kTimeoutByte = static_cast<uint8_t>(ResponseType::kTimeout);
constexpr uint8_t kPartialByte = static_cast<uint8_t>(ResponseType::kPartial);

}  // namespace

QueryServer::QueryServer(const QueryHandler& handler, ServerConfig config)
    : engine_(&handler),
      config_(std::move(config)),
      owned_registry_(config_.registry ? nullptr : new obs::Registry()),
      metrics_(config_.registry ? config_.registry : owned_registry_.get()) {}

QueryServer::~QueryServer() {
  Shutdown();
  Wait();
}

Status QueryServer::Start() {
  if (config_.max_queue < 0)
    return Status::InvalidArgument("QueryServer: max_queue must be >= 0");
  if (config_.max_batch < 1)
    return Status::InvalidArgument("QueryServer: max_batch must be >= 1");
  StatusOr<UniqueFd> listen = ListenTcp(config_.host, config_.port);
  if (!listen.ok()) return listen.status();
  listen_fd_ = std::move(listen).value();
  StatusOr<int> port = BoundPort(listen_fd_.get());
  if (!port.ok()) return port.status();
  port_ = *port;
  executor_thread_ = std::thread(&QueryServer::ExecutorLoop, this);
  accept_thread_ = std::thread(&QueryServer::AcceptLoop, this);
  if (config_.stats_log_period_s > 0.0)
    reporter_thread_ = std::thread(&QueryServer::ReporterLoop, this);
  return Status();
}

void QueryServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) return;
    draining_ = true;
  }
  cv_.notify_all();
  // SHUT_RDWR (not close) wakes a blocked accept(); the fd itself stays
  // owned until destruction so no other thread can race on a stale number.
  if (listen_fd_.valid()) ::shutdown(listen_fd_.get(), SHUT_RDWR);
  // Half-close every connection: readers unblock at the next frame
  // boundary while responses to already-admitted requests still go out.
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (int fd : connection_fds_) ::shutdown(fd, SHUT_RD);
}

bool QueryServer::ShuttingDown() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

void QueryServer::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  if (executor_thread_.joinable()) executor_thread_.join();
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    readers.swap(connection_threads_);
  }
  for (std::thread& reader : readers) reader.join();
  if (reporter_thread_.joinable()) reporter_thread_.join();
}

ServerStatsSnapshot QueryServer::Stats() const {
  ServerStatsSnapshot stats = metrics_.Snapshot();
  stats.num_anonymized = static_cast<uint64_t>(engine_->num_anonymized());
  stats.default_top_k = static_cast<uint64_t>(engine_->default_top_k());
  return stats;
}

void QueryServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (drain) or fatal
    }
    UniqueFd connection(fd);
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (ShuttingDown()) break;  // raced with the drain sweep: drop it
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back(&QueryServer::ConnectionLoop, this,
                                     std::move(connection));
  }
}

void QueryServer::ConnectionLoop(UniqueFd fd) {
  const int raw_fd = fd.get();
  for (;;) {
    uint8_t type = 0;
    std::string payload;
    if (!ReadFrame(raw_fd, &type, &payload).ok()) break;
    metrics_.RecordRequest();

    if (type == static_cast<uint8_t>(RequestType::kStats)) {
      WriteFrame(raw_fd, kOkByte, EncodeStatsPayload(Stats()));
      continue;
    }
    if (type == static_cast<uint8_t>(RequestType::kMetrics)) {
      // Prometheus text exposition of every metric in the server's
      // registry; like kStats it bypasses the queue, so scrapes keep
      // working while the executor is saturated. Handlers with remote
      // state (the router) append re-exported backend lines.
      WriteFrame(raw_fd, kOkByte, metrics_.registry().RenderPrometheus() +
                                      engine_->ForwardedMetrics());
      continue;
    }
    if (type == static_cast<uint8_t>(RequestType::kShardInfo)) {
      // Topology metadata is precomputed state, not engine work — answer
      // from the reader thread like kStats, so a router can validate its
      // backends even while their executors are busy.
      WriteFrame(raw_fd, kOkByte,
                 EncodeShardInfoPayload(engine_->ShardInfo()));
      continue;
    }
    if (type == static_cast<uint8_t>(RequestType::kLoadSegment) ||
        type == static_cast<uint8_t>(RequestType::kSealEpoch)) {
      // Epoch administration runs on the reader thread, never the
      // executor: queries keep draining on the current epoch while a
      // segment is staged or a rebuild runs (see ingest::EpochHandler).
      // The answer is the post-op ShardInfo so the admin client sees the
      // new epoch_seq / staged-segment count without a second round trip.
      Status admin;
      if (type == static_cast<uint8_t>(RequestType::kLoadSegment)) {
        StatusOr<std::string> path = DecodeLoadSegmentPayload(payload);
        admin = path.ok() ? engine_->LoadSegment(*path) : path.status();
      } else {
        admin = engine_->SealEpoch();
      }
      if (!admin.ok()) {
        WriteFrame(raw_fd, kErrorByte, EncodeErrorPayload(admin));
        continue;
      }
      WriteFrame(raw_fd, kOkByte,
                 EncodeShardInfoPayload(engine_->ShardInfo()));
      continue;
    }
    if (type == static_cast<uint8_t>(RequestType::kShutdown)) {
      // Ack first, then drain: the requester gets its response before the
      // half-close sweep reaches this connection.
      WriteFrame(raw_fd, kOkByte, std::string());
      Shutdown();
      break;
    }
    StatusOr<QueryRequest> request =
        DecodeQueryPayload(static_cast<RequestType>(type), payload);
    if (!request.ok()) {
      WriteFrame(raw_fd, kErrorByte, EncodeErrorPayload(request.status()));
      continue;
    }
    metrics_.RecordQueries(request->users.size());
    HandleQuery(raw_fd, std::move(request).value());
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  connection_fds_.erase(
      std::remove(connection_fds_.begin(), connection_fds_.end(), raw_fd),
      connection_fds_.end());
}

void QueryServer::HandleQuery(int fd, QueryRequest request) {
  // Validate ids at admission so one bad request can never poison the
  // coalesced batch it would have ridden in.
  const int n1 = engine_->num_anonymized();
  for (int u : request.users) {
    if (u >= 0 && u < n1) continue;
    WriteFrame(fd, kErrorByte,
               EncodeErrorPayload(Status::InvalidArgument(
                   "user id " + std::to_string(u) + " out of range [0, " +
                   std::to_string(n1) + ")")));
    return;
  }

  auto pending = std::make_unique<Pending>();
  pending->request = std::move(request);
  pending->received = std::chrono::steady_clock::now();
  const double timeout_ms = pending->request.timeout_ms > 0.0
                                ? pending->request.timeout_ms
                                : config_.default_timeout_ms;
  pending->deadline =
      timeout_ms > 0.0
          ? pending->received +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(timeout_ms))
          : std::chrono::steady_clock::time_point::max();
  std::future<std::pair<uint8_t, std::string>> future =
      pending->response.get_future();

  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (draining_) {
      lock.unlock();
      WriteFrame(fd, kErrorByte,
                 EncodeErrorPayload(Status::Unavailable(
                     "server is shutting down")));
      return;
    }
    if (queue_.size() >= static_cast<size_t>(config_.max_queue)) {
      lock.unlock();
      metrics_.RecordOverload();
      // Typed as Unavailable: overload is transient by construction (the
      // queue drains), so clients with a RetryPolicy back off and resend.
      WriteFrame(fd, kOverloadedByte,
                 EncodeErrorPayload(Status::Unavailable(
                     "server overloaded: request queue is full (" +
                     std::to_string(config_.max_queue) + " pending)")));
      return;
    }
    queue_.push_back(std::move(pending));
    metrics_.SetQueueDepth(queue_.size());
  }
  cv_.notify_all();

  std::pair<uint8_t, std::string> response = future.get();
  WriteFrame(fd, response.first, response.second);
}

void QueryServer::ExecutorLoop() {
  for (;;) {
    std::vector<std::unique_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) break;  // draining and fully drained
      const size_t take =
          std::min(queue_.size(), static_cast<size_t>(config_.max_batch));
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      metrics_.SetQueueDepth(queue_.size());
    }
    metrics_.RecordBatch(batch.size());
    ExecuteBatch(batch);
  }
}

void QueryServer::Fulfill(Pending& pending, uint8_t type,
                          std::string payload) {
  metrics_.RecordLatency(std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() -
                             pending.received)
                             .count());
  pending.response.set_value({type, std::move(payload)});
}

void QueryServer::ExecuteBatch(
    std::vector<std::unique_ptr<Pending>>& batch) {
  obs::Span span("serve", "execute_batch");
  span.SetArg("batch_size", static_cast<int64_t>(batch.size()));
  const auto now = std::chrono::steady_clock::now();

  // Group survivors by (type, k): every group member wants the exact same
  // computation shape, so one engine call answers the whole group. Answers
  // are per-user pure (see QueryEngine), so coalescing never changes them.
  std::map<std::pair<uint8_t, int>, std::vector<Pending*>> groups;
  for (std::unique_ptr<Pending>& pending : batch) {
    metrics_.RecordQueueWait(
        std::chrono::duration<double, std::micro>(now - pending->received)
            .count());
    if (now >= pending->deadline) {
      metrics_.RecordDeadlineExpired();
      Fulfill(*pending, kTimeoutByte,
              EncodeErrorPayload(Status::DeadlineExceeded(
                  "deadline exceeded while queued")));
      continue;
    }
    const int k = (pending->request.type == RequestType::kTopK ||
                   pending->request.type == RequestType::kTopKScored)
                      ? pending->request.top_k
                      : 0;
    groups[{static_cast<uint8_t>(pending->request.type), k}].push_back(
        pending.get());
  }

  const auto engine_start = std::chrono::steady_clock::now();
  for (auto& [key, members] : groups) {
    obs::Span group_span("serve", "engine_group");
    std::vector<int> users;
    std::vector<size_t> offsets;
    offsets.reserve(members.size() + 1);
    for (Pending* member : members) {
      offsets.push_back(users.size());
      users.insert(users.end(), member->request.users.begin(),
                   member->request.users.end());
    }
    offsets.push_back(users.size());

    const auto fail_group = [&](const Status& status) {
      const std::string payload = EncodeErrorPayload(status);
      for (Pending* member : members)
        Fulfill(*member, kErrorByte, payload);
    };

    switch (static_cast<RequestType>(key.first)) {
      case RequestType::kTopK: {
        StatusOr<TopKAnswer> answer = engine_->TopK(users, key.second);
        if (!answer.ok()) {
          fail_group(answer.status());
          break;
        }
        // A degraded (partial) merge applies to the whole engine call, so
        // every member of the group gets the kPartial frame type.
        const uint8_t ok_byte = answer->partial ? kPartialByte : kOkByte;
        for (size_t i = 0; i < members.size(); ++i) {
          TopKAnswer slice;
          slice.candidates.assign(
              answer->candidates.begin() + static_cast<long>(offsets[i]),
              answer->candidates.begin() +
                  static_cast<long>(offsets[i + 1]));
          Fulfill(*members[i], ok_byte, EncodeTopKPayload(slice));
        }
        break;
      }
      case RequestType::kTopKScored: {
        StatusOr<ScoredTopKAnswer> answer =
            engine_->TopKScored(users, key.second);
        if (!answer.ok()) {
          fail_group(answer.status());
          break;
        }
        const uint8_t ok_byte = answer->partial ? kPartialByte : kOkByte;
        for (size_t i = 0; i < members.size(); ++i) {
          ScoredTopKAnswer slice;
          slice.candidates.assign(
              answer->candidates.begin() + static_cast<long>(offsets[i]),
              answer->candidates.begin() +
                  static_cast<long>(offsets[i + 1]));
          Fulfill(*members[i], ok_byte, EncodeScoredTopKPayload(slice));
        }
        break;
      }
      case RequestType::kRefined: {
        StatusOr<RefinedAnswer> answer = engine_->Refine(users);
        if (!answer.ok()) {
          fail_group(answer.status());
          break;
        }
        for (size_t i = 0; i < members.size(); ++i) {
          RefinedAnswer slice;
          slice.predictions.assign(
              answer->predictions.begin() + static_cast<long>(offsets[i]),
              answer->predictions.begin() +
                  static_cast<long>(offsets[i + 1]));
          slice.rejected.assign(
              answer->rejected.begin() + static_cast<long>(offsets[i]),
              answer->rejected.begin() + static_cast<long>(offsets[i + 1]));
          Fulfill(*members[i], kOkByte, EncodeRefinedPayload(slice));
        }
        break;
      }
      case RequestType::kFiltered: {
        StatusOr<FilteredAnswer> answer = engine_->Filtered(users);
        if (!answer.ok()) {
          fail_group(answer.status());
          break;
        }
        for (size_t i = 0; i < members.size(); ++i) {
          FilteredAnswer slice;
          slice.candidates.assign(
              answer->candidates.begin() + static_cast<long>(offsets[i]),
              answer->candidates.begin() +
                  static_cast<long>(offsets[i + 1]));
          slice.rejected.assign(
              answer->rejected.begin() + static_cast<long>(offsets[i]),
              answer->rejected.begin() + static_cast<long>(offsets[i + 1]));
          Fulfill(*members[i], kOkByte, EncodeFilteredPayload(slice));
        }
        break;
      }
      default:
        fail_group(Status::Internal("unreachable: non-query type queued"));
        break;
    }
  }
  metrics_.RecordEngineTime(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() -
                                engine_start)
                                .count());
}

void QueryServer::ReporterLoop() {
  const auto period =
      std::chrono::duration<double>(config_.stats_log_period_s);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!draining_) {
    if (cv_.wait_for(lock, period, [&] { return draining_; })) break;
    lock.unlock();
    std::fprintf(stderr, "%s\n", FormatStatsLine(Stats()).c_str());
    lock.lock();
  }
}

}  // namespace dehealth
