#ifndef DEHEALTH_SERVE_HANDLER_H_
#define DEHEALTH_SERVE_HANDLER_H_

#include <vector>

#include "common/status.h"
#include "serve/protocol.h"

namespace dehealth {

/// What QueryServer needs from whatever answers its queries: the local
/// QueryEngine (one process owns the whole universe, or one slice of it)
/// or the scatter-gather RouterHandler (src/shard/router.h, fanning out to
/// N backends). All methods are const and called from the server's single
/// executor thread (plus kStats/kShardInfo reads from reader threads), so
/// implementations must be thread-compatible for const calls.
class QueryHandler {
 public:
  virtual ~QueryHandler() = default;

  /// Anonymized-universe size — the bound admission validates ids against.
  virtual int num_anonymized() const = 0;
  /// The configured K that a top_k of 0 resolves to (reported in Stats).
  virtual int default_top_k() const = 0;

  /// Phase-1b Top-K candidate sets; candidates[i] belongs to users[i].
  virtual StatusOr<TopKAnswer> TopK(const std::vector<int>& users,
                                    int k) const = 0;
  /// TopK keeping exact scores (kTopKScored) — what routers merge.
  virtual StatusOr<ScoredTopKAnswer> TopKScored(const std::vector<int>& users,
                                                int k) const = 0;
  /// Phase-2 refined-DA predictions.
  virtual StatusOr<RefinedAnswer> Refine(
      const std::vector<int>& users) const = 0;
  /// Post-filtering candidate sets + ⊥ verdicts.
  virtual StatusOr<FilteredAnswer> Filtered(
      const std::vector<int>& users) const = 0;
  /// Shard identity (trivially shard 0 of 1 for an unsharded engine).
  virtual ShardInfoAnswer ShardInfo() const = 0;

  /// Streaming-ingestion admin surface (kLoadSegment / kSealEpoch). Called
  /// from connection reader threads, NOT the executor — implementations
  /// that support epochs (ingest::EpochHandler) serialize admin ops behind
  /// their own mutex while queries proceed on the current epoch. The
  /// default refuses: a plain engine or router has no mutable epoch.
  virtual Status LoadSegment(const std::string& segment_path) const {
    (void)segment_path;
    return Status::Unimplemented(
        "this server was not started with --ingest (no epoch state)");
  }
  virtual Status SealEpoch() const {
    return Status::Unimplemented(
        "this server was not started with --ingest (no epoch state)");
  }

  /// Extra Prometheus exposition lines appended to the server's own
  /// registry render on kMetrics — how the router re-exports its backends'
  /// ingest gauges. Empty for handlers with nothing to forward.
  virtual std::string ForwardedMetrics() const { return std::string(); }
};

}  // namespace dehealth

#endif  // DEHEALTH_SERVE_HANDLER_H_
