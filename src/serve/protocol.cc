#include "serve/protocol.h"

#include <bit>
#include <cstring>

#include "io/socket.h"

namespace dehealth {

namespace {

// ---- little-endian primitives over a growing string ----

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void PutI32(std::string& out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutDouble(std::string& out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

/// Strict cursor over a received payload; every read is bounds-checked and
/// failures carry the byte offset, like the DHIX snapshot reader.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& bytes) : bytes_(bytes) {}

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("DHQP payload (byte " +
                                   std::to_string(pos_) + "): " + what);
  }

  Status ReadU8(uint8_t* v) {
    if (bytes_.size() - pos_ < 1) return Fail("truncated u8");
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return Status();
  }

  Status ReadU32(uint32_t* v) {
    if (bytes_.size() - pos_ < 4) return Fail("truncated u32");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
      value |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
               << (8 * i);
    pos_ += 4;
    *v = value;
    return Status();
  }

  Status ReadU64(uint64_t* v) {
    if (bytes_.size() - pos_ < 8) return Fail("truncated u64");
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
      value |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_ + i]))
               << (8 * i);
    pos_ += 8;
    *v = value;
    return Status();
  }

  Status ReadI32(int32_t* v) {
    uint32_t raw = 0;
    DEHEALTH_RETURN_IF_ERROR(ReadU32(&raw));
    *v = static_cast<int32_t>(raw);
    return Status();
  }

  Status ReadDouble(double* v) {
    uint64_t raw = 0;
    DEHEALTH_RETURN_IF_ERROR(ReadU64(&raw));
    *v = std::bit_cast<double>(raw);
    return Status();
  }

  /// Reads a u32 element count that must be plausible for `element_size`
  /// bytes per element in the remaining payload — rejects absurd counts
  /// before any allocation.
  Status ReadCount(size_t element_size, uint32_t* count) {
    DEHEALTH_RETURN_IF_ERROR(ReadU32(count));
    if (static_cast<uint64_t>(*count) * element_size >
        bytes_.size() - pos_)
      return Fail("element count " + std::to_string(*count) +
                  " exceeds remaining payload");
    return Status();
  }

  Status ReadIntVector(std::vector<int>* out) {
    uint32_t n = 0;
    DEHEALTH_RETURN_IF_ERROR(ReadCount(4, &n));
    out->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      int32_t v = 0;
      DEHEALTH_RETURN_IF_ERROR(ReadI32(&v));
      (*out)[i] = v;
    }
    return Status();
  }

  Status ExpectEnd() const {
    if (pos_ != bytes_.size())
      return Status::InvalidArgument(
          "DHQP payload (byte " + std::to_string(pos_) + "): " +
          std::to_string(bytes_.size() - pos_) + " trailing bytes");
    return Status();
  }

  /// True when the cursor has consumed the whole payload — how decoders
  /// detect that an optional trailing extension is absent (older peer).
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

void PutIntVector(std::string& out, const std::vector<int>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (int x : v) PutI32(out, x);
}

bool IsQueryType(RequestType type) {
  return type == RequestType::kTopK || type == RequestType::kRefined ||
         type == RequestType::kFiltered ||
         type == RequestType::kTopKScored;
}

/// Encodes `candidates[i]` + optional per-user rejected flags — the shared
/// shape of the kTopK and kFiltered answers.
std::string EncodeCandidateSets(const std::vector<std::vector<int>>& sets,
                                const std::vector<bool>* rejected) {
  std::string out;
  PutU32(out, static_cast<uint32_t>(sets.size()));
  for (size_t i = 0; i < sets.size(); ++i) {
    if (rejected != nullptr)
      PutU8(out, (*rejected)[i] ? 1 : 0);
    PutIntVector(out, sets[i]);
  }
  return out;
}

Status DecodeCandidateSets(const std::string& payload,
                           std::vector<std::vector<int>>* sets,
                           std::vector<bool>* rejected) {
  PayloadReader reader(payload);
  uint32_t n = 0;
  DEHEALTH_RETURN_IF_ERROR(reader.ReadCount(rejected ? 5 : 4, &n));
  sets->resize(n);
  if (rejected != nullptr) rejected->assign(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    if (rejected != nullptr) {
      uint8_t flag = 0;
      DEHEALTH_RETURN_IF_ERROR(reader.ReadU8(&flag));
      (*rejected)[i] = flag != 0;
    }
    DEHEALTH_RETURN_IF_ERROR(reader.ReadIntVector(&(*sets)[i]));
  }
  return reader.ExpectEnd();
}

}  // namespace

Status WriteFrame(int fd, uint8_t type, const std::string& payload) {
  if (payload.size() > kDhqpMaxPayloadBytes)
    return Status::InvalidArgument(
        "DHQP frame: payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(kDhqpMaxPayloadBytes) +
        "-byte limit");
  std::string frame;
  frame.reserve(13 + payload.size());
  frame.append(kDhqpMagic, sizeof(kDhqpMagic));
  PutU32(frame, kDhqpVersion);
  PutU8(frame, type);
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  frame += payload;
  return WriteAll(fd, frame.data(), frame.size());
}

Status ReadFrame(int fd, uint8_t* type, std::string* payload) {
  char header[13];
  DEHEALTH_RETURN_IF_ERROR(ReadExact(fd, header, sizeof(header)));
  if (std::memcmp(header, kDhqpMagic, sizeof(kDhqpMagic)) != 0)
    return Status::InvalidArgument(
        "DHQP frame: bad magic (not a De-Health query stream)");
  uint32_t version = 0;
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<uint32_t>(static_cast<uint8_t>(header[4 + i]))
               << (8 * i);
    length |= static_cast<uint32_t>(static_cast<uint8_t>(header[9 + i]))
              << (8 * i);
  }
  if (version > kDhqpVersion)
    return Status::Unimplemented(
        "DHQP frame: version " + std::to_string(version) +
        " is newer than this build supports (" +
        std::to_string(kDhqpVersion) + ")");
  if (length > kDhqpMaxPayloadBytes)
    return Status::InvalidArgument(
        "DHQP frame: announced payload of " + std::to_string(length) +
        " bytes exceeds the " + std::to_string(kDhqpMaxPayloadBytes) +
        "-byte limit");
  *type = static_cast<uint8_t>(header[8]);
  payload->resize(length);
  if (length > 0)
    DEHEALTH_RETURN_IF_ERROR(ReadExact(fd, payload->data(), length));
  return Status();
}

std::string EncodeQueryPayload(const QueryRequest& request) {
  std::string out;
  PutI32(out, request.top_k);
  PutDouble(out, request.timeout_ms);
  PutIntVector(out, request.users);
  return out;
}

StatusOr<QueryRequest> DecodeQueryPayload(RequestType type,
                                          const std::string& payload) {
  if (!IsQueryType(type))
    return Status::InvalidArgument(
        "DHQP: request type " +
        std::to_string(static_cast<int>(type)) +
        " does not carry a query payload");
  QueryRequest request;
  request.type = type;
  PayloadReader reader(payload);
  int32_t top_k = 0;
  DEHEALTH_RETURN_IF_ERROR(reader.ReadI32(&top_k));
  request.top_k = top_k;
  DEHEALTH_RETURN_IF_ERROR(reader.ReadDouble(&request.timeout_ms));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadIntVector(&request.users));
  DEHEALTH_RETURN_IF_ERROR(reader.ExpectEnd());
  if (request.top_k < 0)
    return Status::InvalidArgument("DHQP: top_k must be >= 0 (0 = default)");
  if (request.timeout_ms < 0.0 ||
      request.timeout_ms != request.timeout_ms)  // NaN
    return Status::InvalidArgument(
        "DHQP: timeout_ms must be >= 0 (0 = no deadline)");
  return request;
}

std::string EncodeTopKPayload(const TopKAnswer& answer) {
  return EncodeCandidateSets(answer.candidates, nullptr);
}

StatusOr<TopKAnswer> DecodeTopKPayload(const std::string& payload) {
  TopKAnswer answer;
  DEHEALTH_RETURN_IF_ERROR(
      DecodeCandidateSets(payload, &answer.candidates, nullptr));
  return answer;
}

std::string EncodeScoredTopKPayload(const ScoredTopKAnswer& answer) {
  std::string out;
  PutU32(out, static_cast<uint32_t>(answer.candidates.size()));
  for (const std::vector<ScoredUser>& list : answer.candidates) {
    PutU32(out, static_cast<uint32_t>(list.size()));
    for (const ScoredUser& c : list) {
      PutI32(out, c.user);
      PutDouble(out, c.score);
    }
  }
  return out;
}

StatusOr<ScoredTopKAnswer> DecodeScoredTopKPayload(
    const std::string& payload) {
  ScoredTopKAnswer answer;
  PayloadReader reader(payload);
  uint32_t n = 0;
  DEHEALTH_RETURN_IF_ERROR(reader.ReadCount(4, &n));
  answer.candidates.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t m = 0;
    DEHEALTH_RETURN_IF_ERROR(reader.ReadCount(12, &m));
    std::vector<ScoredUser>& list = answer.candidates[i];
    list.resize(m);
    for (uint32_t j = 0; j < m; ++j) {
      int32_t user = 0;
      DEHEALTH_RETURN_IF_ERROR(reader.ReadI32(&user));
      DEHEALTH_RETURN_IF_ERROR(reader.ReadDouble(&list[j].score));
      list[j].user = user;
    }
  }
  DEHEALTH_RETURN_IF_ERROR(reader.ExpectEnd());
  return answer;
}

std::string EncodeShardInfoPayload(const ShardInfoAnswer& answer) {
  std::string out;
  PutU32(out, answer.shard_index);
  PutU32(out, answer.shard_count);
  PutU64(out, answer.shard_begin);
  PutU64(out, answer.shard_total);
  PutU64(out, answer.universe_fingerprint);
  PutU64(out, answer.num_anonymized);
  PutU64(out, answer.default_top_k);
  // The ingest extension travels only when it says something: all-zero
  // means "boot epoch, nothing staged", which is what a decoder assumes
  // when the payload ends here — so a non-ingest (or not-yet-sealed)
  // server stays byte-compatible with pre-ingest peers.
  if (answer.epoch_seq != 0 || answer.staged_segments != 0 ||
      answer.engine != 0) {
    PutU64(out, answer.epoch_seq);
    PutU64(out, answer.staged_segments);
  }
  // Second trailing extension (pluggable engines, PR 10): non-structural
  // servers announce their engine; a structural server ends the payload
  // early, which is exactly what a pre-engine decoder assumes.
  if (answer.engine != 0) PutU32(out, answer.engine);
  return out;
}

StatusOr<ShardInfoAnswer> DecodeShardInfoPayload(const std::string& payload) {
  ShardInfoAnswer answer;
  PayloadReader reader(payload);
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU32(&answer.shard_index));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU32(&answer.shard_count));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&answer.shard_begin));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&answer.shard_total));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&answer.universe_fingerprint));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&answer.num_anonymized));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&answer.default_top_k));
  // Optional trailing extension (streaming ingestion, PR 8): a pre-ingest
  // peer's 48-byte payload simply ends here and means "boot epoch,
  // nothing staged" — exactly the defaults — so mixed-version fleets
  // keep interoperating through a rolling upgrade without a version bump.
  if (!reader.AtEnd()) {
    DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&answer.epoch_seq));
    DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&answer.staged_segments));
  }
  // Second optional extension (pluggable engines, PR 10): absent means
  // structural, which is all a pre-engine peer can be.
  if (!reader.AtEnd())
    DEHEALTH_RETURN_IF_ERROR(reader.ReadU32(&answer.engine));
  DEHEALTH_RETURN_IF_ERROR(reader.ExpectEnd());
  if (answer.shard_count == 0)
    return Status::InvalidArgument("DHQP: shard_count must be >= 1");
  if (answer.shard_index >= answer.shard_count)
    return Status::InvalidArgument("DHQP: shard_index out of range");
  return answer;
}

std::string EncodeLoadSegmentPayload(const std::string& segment_path) {
  std::string out;
  PutU32(out, static_cast<uint32_t>(segment_path.size()));
  out += segment_path;
  return out;
}

StatusOr<std::string> DecodeLoadSegmentPayload(const std::string& payload) {
  PayloadReader reader(payload);
  uint32_t length = 0;
  DEHEALTH_RETURN_IF_ERROR(reader.ReadCount(1, &length));
  if (payload.size() != 4 + static_cast<size_t>(length))
    return reader.Fail("segment path length mismatch");
  std::string path = payload.substr(4, length);
  if (path.empty())
    return Status::InvalidArgument("DHQP: kLoadSegment path is empty");
  if (path.find('\0') != std::string::npos)
    return Status::InvalidArgument("DHQP: kLoadSegment path has NUL byte");
  return path;
}

std::string EncodeRefinedPayload(const RefinedAnswer& answer) {
  std::string out;
  PutU32(out, static_cast<uint32_t>(answer.predictions.size()));
  for (size_t i = 0; i < answer.predictions.size(); ++i) {
    PutI32(out, answer.predictions[i]);
    PutU8(out, answer.rejected[i] ? 1 : 0);
  }
  return out;
}

StatusOr<RefinedAnswer> DecodeRefinedPayload(const std::string& payload) {
  RefinedAnswer answer;
  PayloadReader reader(payload);
  uint32_t n = 0;
  DEHEALTH_RETURN_IF_ERROR(reader.ReadCount(5, &n));
  answer.predictions.resize(n);
  answer.rejected.assign(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    int32_t prediction = 0;
    uint8_t rejected = 0;
    DEHEALTH_RETURN_IF_ERROR(reader.ReadI32(&prediction));
    DEHEALTH_RETURN_IF_ERROR(reader.ReadU8(&rejected));
    answer.predictions[i] = prediction;
    answer.rejected[i] = rejected != 0;
  }
  DEHEALTH_RETURN_IF_ERROR(reader.ExpectEnd());
  return answer;
}

std::string EncodeFilteredPayload(const FilteredAnswer& answer) {
  return EncodeCandidateSets(answer.candidates, &answer.rejected);
}

StatusOr<FilteredAnswer> DecodeFilteredPayload(const std::string& payload) {
  FilteredAnswer answer;
  DEHEALTH_RETURN_IF_ERROR(
      DecodeCandidateSets(payload, &answer.candidates, &answer.rejected));
  return answer;
}

std::string EncodeStatsPayload(const ServerStatsSnapshot& stats) {
  std::string out;
  PutU64(out, stats.requests_total);
  PutU64(out, stats.queries_total);
  PutU64(out, stats.batches_total);
  PutU64(out, stats.max_batch);
  PutU64(out, stats.overload_rejections);
  PutU64(out, stats.deadline_expirations);
  PutU64(out, stats.queue_depth);
  PutU64(out, stats.num_anonymized);
  PutU64(out, stats.default_top_k);
  PutDouble(out, stats.p50_micros);
  PutDouble(out, stats.p99_micros);
  PutDouble(out, stats.max_micros);
  return out;
}

StatusOr<ServerStatsSnapshot> DecodeStatsPayload(const std::string& payload) {
  ServerStatsSnapshot stats;
  PayloadReader reader(payload);
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&stats.requests_total));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&stats.queries_total));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&stats.batches_total));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&stats.max_batch));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&stats.overload_rejections));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&stats.deadline_expirations));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&stats.queue_depth));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&stats.num_anonymized));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU64(&stats.default_top_k));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadDouble(&stats.p50_micros));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadDouble(&stats.p99_micros));
  DEHEALTH_RETURN_IF_ERROR(reader.ReadDouble(&stats.max_micros));
  DEHEALTH_RETURN_IF_ERROR(reader.ExpectEnd());
  return stats;
}

std::string EncodeErrorPayload(const Status& status) {
  std::string out;
  PutU32(out, static_cast<uint32_t>(status.code()));
  PutU32(out, static_cast<uint32_t>(status.message().size()));
  out += status.message();
  return out;
}

Status DecodeErrorPayload(const std::string& payload, Status* error) {
  PayloadReader reader(payload);
  uint32_t code = 0;
  DEHEALTH_RETURN_IF_ERROR(reader.ReadU32(&code));
  uint32_t length = 0;
  DEHEALTH_RETURN_IF_ERROR(reader.ReadCount(1, &length));
  if (payload.size() < 8 + static_cast<size_t>(length))
    return reader.Fail("truncated error message");
  std::string message = payload.substr(8, length);
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kCancelled)) {
    *error = Status::Internal("peer error (unknown code " +
                              std::to_string(code) + "): " + message);
    return Status();
  }
  *error = Status(static_cast<StatusCode>(code), std::move(message));
  return Status();
}

}  // namespace dehealth
