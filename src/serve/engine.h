#ifndef DEHEALTH_SERVE_ENGINE_H_
#define DEHEALTH_SERVE_ENGINE_H_

#include <memory>
#include <vector>

#include "core/de_health.h"
#include "index/candidate_index.h"
#include "serve/protocol.h"

namespace dehealth {

/// The load-once heart of dehealth_serve: owns the UDA-graph pair, the
/// score source (dense matrix or candidate index, honoring the same
/// DeHealthConfig knobs as RunDeHealthAttack), and the precomputed phase-1
/// state — then answers per-user queries without redoing any global work.
///
/// Determinism contract: every answer is bitwise-identical to the
/// corresponding slice of a one-shot RunDeHealthAttack with the same
/// config, for any batch composition, query order, or thread count (see
/// DESIGN.md "Serving"). That is what makes request coalescing safe.
///
/// All query methods are const and thread-compatible; the server calls
/// them from a single executor thread and parallelizes inside a batch via
/// the library's ParallelFor.
class QueryEngine {
 public:
  /// Builds the engine: score source (phase 1a or index load/build),
  /// phase-1b candidate sets, and — when config.enable_filtering — the
  /// phase-1c filtering verdicts. Everything a query needs is resident
  /// after this returns.
  static StatusOr<std::unique_ptr<QueryEngine>> Create(UdaGraph anonymized,
                                                       UdaGraph auxiliary,
                                                       DeHealthConfig config);

  /// Phase-1b Top-K candidate sets for the listed users. k == 0 means the
  /// configured K (answered from the precomputed sets); other k values
  /// re-query the score source (direct selection only — graph matching is
  /// global and precomputes exactly one K).
  StatusOr<TopKAnswer> TopK(const std::vector<int>& users, int k) const;

  /// Phase-2 refined-DA predictions for the listed users, against the
  /// precomputed (post-filtering) candidate state.
  StatusOr<RefinedAnswer> Refine(const std::vector<int>& users) const;

  /// Post-filtering candidate sets + ⊥ verdicts. FailedPrecondition when
  /// the engine was built without enable_filtering.
  StatusOr<FilteredAnswer> Filtered(const std::vector<int>& users) const;

  int num_anonymized() const;
  int num_auxiliary() const;
  const DeHealthConfig& config() const { return attack_.config(); }

 private:
  QueryEngine(UdaGraph anonymized, UdaGraph auxiliary, DeHealthConfig config);

  /// Fills scores_ / raw_ / state_; factored out of Create so members live
  /// at their final addresses before anything borrows them.
  Status Init();

  Status ValidateUsers(const std::vector<int>& users) const;

  UdaGraph anonymized_;
  UdaGraph auxiliary_;
  DeHealth attack_;
  /// Dense path: the materialized matrix DenseCandidateSource borrows.
  std::vector<std::vector<double>> similarity_;
  /// Indexed path: the index IndexedCandidateSource borrows.
  std::unique_ptr<CandidateIndex> index_;
  std::unique_ptr<CandidateSource> scores_;
  DeHealthCandidates raw_;    // phase 1b only (serves kTopK at default K)
  DeHealthCandidates state_;  // post-filtering state phase 2 runs against
};

}  // namespace dehealth

#endif  // DEHEALTH_SERVE_ENGINE_H_
