#ifndef DEHEALTH_SERVE_ENGINE_H_
#define DEHEALTH_SERVE_ENGINE_H_

#include <memory>
#include <vector>

#include "core/de_health.h"
#include "index/pipeline.h"
#include "serve/protocol.h"

namespace dehealth {

/// The load-once heart of dehealth_serve: owns the UDA-graph pair, the
/// score source (dense matrix or candidate index, honoring the same
/// DeHealthConfig knobs as RunDeHealthAttack), and the precomputed phase-1
/// state — then answers per-user queries without redoing any global work.
///
/// Determinism contract: every answer is bitwise-identical to the
/// corresponding slice of a one-shot RunDeHealthAttack with the same
/// config, for any batch composition, query order, or thread count (see
/// DESIGN.md "Serving"). That is what makes request coalescing safe.
///
/// All query methods are const and thread-compatible; the server calls
/// them from a single executor thread and parallelizes inside a batch via
/// the library's ParallelFor.
class QueryEngine {
 public:
  /// Builds the engine: score source (phase 1a or index load/build, with
  /// graceful dense fallback when the index is unusable), phase-1b
  /// candidate sets, and — when config.enable_filtering — the phase-1c
  /// filtering verdicts. Everything a query needs is resident after this
  /// returns. When config.job_dir is set, phase 1 runs through the
  /// crash-safe job runner (src/job/): warm starts load durable shards
  /// instead of recomputing, an interrupted warm start resumes on the next
  /// launch, and a SIGTERM during it returns Cancelled.
  static StatusOr<std::unique_ptr<QueryEngine>> Create(UdaGraph anonymized,
                                                       UdaGraph auxiliary,
                                                       DeHealthConfig config);

  /// Phase-1b Top-K candidate sets for the listed users. k == 0 means the
  /// configured K (answered from the precomputed sets); other k values
  /// re-query the score source (direct selection only — graph matching is
  /// global and precomputes exactly one K).
  StatusOr<TopKAnswer> TopK(const std::vector<int>& users, int k) const;

  /// Phase-2 refined-DA predictions for the listed users, against the
  /// precomputed (post-filtering) candidate state.
  StatusOr<RefinedAnswer> Refine(const std::vector<int>& users) const;

  /// Post-filtering candidate sets + ⊥ verdicts. FailedPrecondition when
  /// the engine was built without enable_filtering.
  StatusOr<FilteredAnswer> Filtered(const std::vector<int>& users) const;

  int num_anonymized() const;
  int num_auxiliary() const;
  const DeHealthConfig& config() const { return attack_.config(); }

 private:
  QueryEngine(UdaGraph anonymized, UdaGraph auxiliary, DeHealthConfig config);

  /// Fills scores_ / raw_ / state_; factored out of Create so members live
  /// at their final addresses before anything borrows them.
  Status Init();

  Status ValidateUsers(const std::vector<int>& users) const;

  UdaGraph anonymized_;
  UdaGraph auxiliary_;
  DeHealth attack_;
  /// The score source plus whatever storage it borrows (dense matrix or
  /// candidate index) — built by BuildAttackScoreSource, the same
  /// construction the one-shot pipeline and the job runner use.
  std::unique_ptr<AttackScoreSource> bundle_;
  DeHealthCandidates raw_;    // phase 1b only (serves kTopK at default K)
  DeHealthCandidates state_;  // post-filtering state phase 2 runs against

  const CandidateSource& scores() const { return *bundle_->source; }
};

}  // namespace dehealth

#endif  // DEHEALTH_SERVE_ENGINE_H_
