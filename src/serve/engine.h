#ifndef DEHEALTH_SERVE_ENGINE_H_
#define DEHEALTH_SERVE_ENGINE_H_

#include <memory>
#include <vector>

#include "core/de_health.h"
#include "index/pipeline.h"
#include "serve/handler.h"
#include "serve/protocol.h"

namespace dehealth {

/// The load-once heart of dehealth_serve: owns the UDA-graph pair, the
/// score source (dense matrix or candidate index, honoring the same
/// DeHealthConfig knobs as RunDeHealthAttack), and the precomputed phase-1
/// state — then answers per-user queries without redoing any global work.
///
/// Determinism contract: every answer is bitwise-identical to the
/// corresponding slice of a one-shot RunDeHealthAttack with the same
/// config, for any batch composition, query order, or thread count (see
/// DESIGN.md "Serving"). That is what makes request coalescing safe.
///
/// All query methods are const and thread-compatible; the server calls
/// them from a single executor thread and parallelizes inside a batch via
/// the library's ParallelFor.
/// In slice mode (config.shard_count > 1) the engine owns one contiguous
/// range of the auxiliary universe: scores are bitwise-equal to the full
/// run restricted to that range (global features/IDF travel in the shard
/// snapshot), and every answered candidate id is translated back to the
/// GLOBAL auxiliary id (+ shard_begin) so a router can merge answers
/// without knowing shard layouts. Refine/Filtered are refused in slice
/// mode — their thresholds and matching are universe-global.
class QueryEngine : public QueryHandler {
 public:
  /// Builds the engine: score source (phase 1a or index load/build, with
  /// graceful dense fallback when the index is unusable), phase-1b
  /// candidate sets, and — when config.enable_filtering — the phase-1c
  /// filtering verdicts. Everything a query needs is resident after this
  /// returns. When config.job_dir is set, phase 1 runs through the
  /// crash-safe job runner (src/job/): warm starts load durable shards
  /// instead of recomputing, an interrupted warm start resumes on the next
  /// launch, and a SIGTERM during it returns Cancelled.
  static StatusOr<std::unique_ptr<QueryEngine>> Create(UdaGraph anonymized,
                                                       UdaGraph auxiliary,
                                                       DeHealthConfig config);

  /// Phase-1b Top-K candidate sets for the listed users. k == 0 means the
  /// configured K (answered from the precomputed sets); other k values
  /// re-query the score source (direct selection only — graph matching is
  /// global and precomputes exactly one K).
  StatusOr<TopKAnswer> TopK(const std::vector<int>& users,
                            int k) const override;

  /// TopK carrying exact scores (answers kTopKScored). Same k semantics as
  /// TopK; candidate ids are global in slice mode.
  StatusOr<ScoredTopKAnswer> TopKScored(const std::vector<int>& users,
                                        int k) const override;

  /// Phase-2 refined-DA predictions for the listed users, against the
  /// precomputed (post-filtering) candidate state.
  StatusOr<RefinedAnswer> Refine(const std::vector<int>& users) const override;

  /// Post-filtering candidate sets + ⊥ verdicts. FailedPrecondition when
  /// the engine was built without enable_filtering.
  StatusOr<FilteredAnswer> Filtered(
      const std::vector<int>& users) const override;

  /// Shard identity (shard 0 of 1 unless built with --shard-count).
  ShardInfoAnswer ShardInfo() const override;

  int num_anonymized() const override;
  int num_auxiliary() const;
  int default_top_k() const override { return attack_.config().top_k; }
  const DeHealthConfig& config() const { return attack_.config(); }

 private:
  QueryEngine(UdaGraph anonymized, UdaGraph auxiliary, DeHealthConfig config);

  /// Fills scores_ / raw_ / state_; factored out of Create so members live
  /// at their final addresses before anything borrows them.
  Status Init();

  Status ValidateUsers(const std::vector<int>& users) const;

  /// TopK resolution under LOCAL candidate ids (shared by TopK and
  /// TopKScored; the public methods translate to global ids afterwards).
  StatusOr<TopKAnswer> TopKLocal(const std::vector<int>& users, int k) const;

  UdaGraph anonymized_;
  UdaGraph auxiliary_;
  DeHealth attack_;
  /// The score source plus whatever storage it borrows (dense matrix or
  /// candidate index) — built by BuildAttackScoreSource, the same
  /// construction the one-shot pipeline and the job runner use.
  std::unique_ptr<AttackScoreSource> bundle_;
  DeHealthCandidates raw_;    // phase 1b only (serves kTopK at default K)
  DeHealthCandidates state_;  // post-filtering state phase 2 runs against

  const CandidateSource& scores() const { return *bundle_->source; }
};

}  // namespace dehealth

#endif  // DEHEALTH_SERVE_ENGINE_H_
