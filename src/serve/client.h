#ifndef DEHEALTH_SERVE_CLIENT_H_
#define DEHEALTH_SERVE_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/socket.h"
#include "serve/protocol.h"

namespace dehealth {

/// Bounded exponential-backoff retry for transient failures (Unavailable:
/// connection refused/reset mid-handshake, server overload). Backoff
/// before attempt i (1-based, i >= 2) is
///   min(initial_backoff_ms * multiplier^(i-2), max_backoff_ms)
/// scaled by a deterministic jitter factor in [0.5, 1.0] drawn from
/// Rng(MixSeed(seed, i)) — seeded jitter keeps tests reproducible while
/// still decorrelating real fleets that pass distinct seeds.
struct RetryPolicy {
  /// Total attempts (first try included). 1 = fail fast, no retry.
  int max_attempts = 1;
  int initial_backoff_ms = 10;
  int max_backoff_ms = 1000;
  double multiplier = 2.0;
  uint64_t seed = 1;
};

/// Sanitized copy of `retry`: max_attempts >= 1, non-negative backoffs
/// with max >= initial, multiplier >= 1 (NaN treated as 1). QueryClient
/// applies this at Connect so a mis-set flag (zero or negative backoff, a
/// shrinking multiplier) degrades to a sane bounded schedule instead of a
/// zero-delay retry spin or a negative sleep cast.
RetryPolicy ClampRetryPolicy(RetryPolicy retry);

/// The jittered backoff before 1-based attempt `attempt` (>= 2) of
/// `retry`, in ms — a pure function of (policy, attempt), clamped to
/// [0, max_backoff_ms]. Exposed so tests can assert the schedule.
int RetryBackoffMs(const RetryPolicy& retry, int attempt);

/// Client side of the DHQP protocol: one blocking connection to a
/// dehealth_serve instance, one request in flight at a time (run several
/// clients for concurrency — connections are cheap, the server multiplexes
/// them into batches). Move-only; NOT thread-safe — a connection is a
/// sequential request/response stream.
///
/// Server-side rejections come back as the transported Status with a typed
/// code: an overloaded server yields Unavailable("server overloaded: ...")
/// — transient, retried under the RetryPolicy — and an expired deadline
/// DeadlineExceeded("deadline exceeded ..."), which is never retried (the
/// caller's time budget is spent). Queries are idempotent (pure reads of
/// immutable state), so resending after a connection dies mid-round-trip
/// is always safe.
class QueryClient {
 public:
  static StatusOr<QueryClient> Connect(const std::string& host, int port,
                                       RetryPolicy retry = {});

  QueryClient(QueryClient&&) = default;
  QueryClient& operator=(QueryClient&&) = default;

  /// Phase-1b Top-K candidate sets for `users`; k == 0 asks for the
  /// server's configured K. `timeout_ms` > 0 bounds the server-side queue
  /// wait.
  StatusOr<TopKAnswer> TopK(const std::vector<int>& users, int k = 0,
                            double timeout_ms = 0.0);

  /// TopK carrying exact scores (kTopKScored) — what the router scatters
  /// to its backends. The returned answer's `partial` flag is true when
  /// the peer answered kPartial (a degraded router); a partial answer is
  /// a success, never retried.
  StatusOr<ScoredTopKAnswer> TopKScored(const std::vector<int>& users,
                                        int k = 0, double timeout_ms = 0.0);

  /// Shard identity + universe fingerprint of the peer (kShardInfo, never
  /// queued). Unimplemented/kError from a pre-sharding server.
  StatusOr<ShardInfoAnswer> ShardInfo();

  /// Phase-2 refined-DA predictions for `users`.
  StatusOr<RefinedAnswer> Refine(const std::vector<int>& users,
                                 double timeout_ms = 0.0);

  /// Post-filtering candidate sets + ⊥ verdicts for `users`.
  StatusOr<FilteredAnswer> Filtered(const std::vector<int>& users,
                                    double timeout_ms = 0.0);

  /// Live server metrics (never queued — answered even under overload).
  StatusOr<ServerStatsSnapshot> Stats();

  /// The server's full metric registry in Prometheus text exposition
  /// format (see docs/METRICS.md). Never queued, like Stats().
  StatusOr<std::string> Metrics();

  /// Streaming-ingestion admin (kLoadSegment / kSealEpoch; never queued).
  /// Both answer the server's post-op ShardInfo — epoch_seq and
  /// staged_segments show the effect immediately. NOT retried: segment
  /// application mutates server state, and resending after an ambiguous
  /// failure could double-apply (the server's parent-fingerprint check
  /// would refuse, but the caller should see that refusal, not a retry
  /// loop). `segment_path` is a path on the SERVER's filesystem.
  StatusOr<ShardInfoAnswer> LoadSegment(const std::string& segment_path);
  StatusOr<ShardInfoAnswer> SealEpoch();

  /// Asks the server to drain and exit; returns once the server acked.
  /// Never retried: a dead connection after sending probably means the
  /// shutdown took, and resending to a restarted server would kill it too.
  Status RequestShutdown();

  /// Cancels the request currently in flight on this client, if any — the
  /// ONE member safe to call from another thread. The blocked round trip
  /// wakes promptly (the socket is shut down under it) and returns
  /// Cancelled without retrying; the connection is dropped, so the next
  /// request reconnects cleanly. This is how a hedged read cancels the
  /// losing leg: the loser's answer is abandoned, never half-read.
  void CancelInFlight();

 private:
  /// Cross-thread cancellation rendezvous. The owning thread publishes the
  /// live fd before blocking in a round trip; CancelInFlight (any thread)
  /// flips `requested` and shuts the published socket down, which makes
  /// the blocked read fail immediately.
  struct CancelState {
    std::atomic<bool> requested{false};
    std::atomic<int> fd{-1};
  };

  QueryClient(std::string host, int port, RetryPolicy retry, UniqueFd fd)
      : host_(std::move(host)), port_(port), retry_(retry),
        fd_(std::move(fd)),
        cancel_(std::make_shared<CancelState>()) {
    cancel_->fd.store(fd_.get(), std::memory_order_release);
  }

  /// Writes one request frame, reads one response frame, maps kError /
  /// kOverloaded / kTimeout to the transported Status and returns the kOk
  /// payload otherwise. When `retryable`, transient failures (transport
  /// Unavailable — after which the connection is re-established — or a
  /// transported Unavailable such as overload) are retried under the
  /// policy with jittered exponential backoff. A kPartial response is a
  /// success: the payload is returned and *partial (when non-null) set —
  /// partial answers are never retried (the degradation is server-side
  /// state, not a transient of this connection).
  StatusOr<std::string> RoundTrip(RequestType type, const std::string& payload,
                                  bool retryable, bool* partial = nullptr);

  /// One write/read exchange on the current connection, reconnecting
  /// first if a previous failure closed it.
  StatusOr<std::string> RoundTripOnce(RequestType type,
                                      const std::string& payload,
                                      bool* partial);

  StatusOr<std::string> Query(RequestType type, const std::vector<int>& users,
                              int top_k, double timeout_ms,
                              bool* partial = nullptr);

  /// Drops the connection and clears the published cancel fd (in that
  /// order's inverse: unpublish first so a racing cancel never shuts down
  /// a recycled descriptor).
  void ResetConnection();

  std::string host_;
  int port_ = 0;
  RetryPolicy retry_;
  UniqueFd fd_;
  std::shared_ptr<CancelState> cancel_;
};

}  // namespace dehealth

#endif  // DEHEALTH_SERVE_CLIENT_H_
