#ifndef DEHEALTH_SERVE_CLIENT_H_
#define DEHEALTH_SERVE_CLIENT_H_

#include <string>
#include <vector>

#include "io/socket.h"
#include "serve/protocol.h"

namespace dehealth {

/// Client side of the DHQP protocol: one blocking connection to a
/// dehealth_serve instance, one request in flight at a time (run several
/// clients for concurrency — connections are cheap, the server multiplexes
/// them into batches). Move-only; NOT thread-safe — a connection is a
/// sequential request/response stream.
///
/// Server-side rejections come back as the transported Status: an
/// overloaded server yields FailedPrecondition("server overloaded: ..."),
/// an expired deadline FailedPrecondition("deadline exceeded ...").
class QueryClient {
 public:
  static StatusOr<QueryClient> Connect(const std::string& host, int port);

  QueryClient(QueryClient&&) = default;
  QueryClient& operator=(QueryClient&&) = default;

  /// Phase-1b Top-K candidate sets for `users`; k == 0 asks for the
  /// server's configured K. `timeout_ms` > 0 bounds the server-side queue
  /// wait.
  StatusOr<TopKAnswer> TopK(const std::vector<int>& users, int k = 0,
                            double timeout_ms = 0.0);

  /// Phase-2 refined-DA predictions for `users`.
  StatusOr<RefinedAnswer> Refine(const std::vector<int>& users,
                                 double timeout_ms = 0.0);

  /// Post-filtering candidate sets + ⊥ verdicts for `users`.
  StatusOr<FilteredAnswer> Filtered(const std::vector<int>& users,
                                    double timeout_ms = 0.0);

  /// Live server metrics (never queued — answered even under overload).
  StatusOr<ServerStatsSnapshot> Stats();

  /// Asks the server to drain and exit; returns once the server acked.
  Status RequestShutdown();

 private:
  explicit QueryClient(UniqueFd fd) : fd_(std::move(fd)) {}

  /// Writes one request frame, reads one response frame, maps kError /
  /// kOverloaded / kTimeout to the transported Status and returns the kOk
  /// payload otherwise.
  StatusOr<std::string> RoundTrip(RequestType type,
                                  const std::string& payload);

  StatusOr<std::string> Query(RequestType type, const std::vector<int>& users,
                              int top_k, double timeout_ms);

  UniqueFd fd_;
};

}  // namespace dehealth

#endif  // DEHEALTH_SERVE_CLIENT_H_
