#ifndef DEHEALTH_SERVE_OPTIONS_H_
#define DEHEALTH_SERVE_OPTIONS_H_

#include "common/flag_catalog.h"
#include "common/flags.h"
#include "core/de_health.h"
#include "serve/server.h"

namespace dehealth {

/// Single source of truth for the attack-shaping command-line flags shared
/// by dehealth_cli and dehealth_serve (--k, --engine, --learner,
/// --threads, --idf, --index, --index-path, --max-candidates, --filter,
/// --job-dir, --shard-size, --shards, --shard-index, --shard-count).
/// Keeping one mapping is what lets the smoke test compare
/// the two binaries bit for bit: a flag both accept must configure both
/// identically — including the checkpoint store, so a serve warm start can
/// resume shards a CLI run committed.
StatusOr<DeHealthConfig> ParseAttackFlags(const FlagParser& flags);

/// The serving knobs of dehealth_serve (--host, --port, --queue, --batch,
/// --timeout-ms, --stats-period).
StatusOr<ServerConfig> ParseServerFlags(const FlagParser& flags);

// AttackBooleanFlags() — the valueless flags ParseAttackFlags understands,
// derived from FlagCatalog() — comes from common/flag_catalog.h.

}  // namespace dehealth

#endif  // DEHEALTH_SERVE_OPTIONS_H_
