#ifndef DEHEALTH_SERVE_PROTOCOL_H_
#define DEHEALTH_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/top_k.h"

namespace dehealth {

/// DHQP — the De-Health query protocol spoken between dehealth_serve and
/// its clients. Every message is one length-prefixed binary frame,
/// mirroring the DHIX snapshot framing (magic + version up front so stale
/// peers fail fast and loudly):
///
///   "DHQP" | u32 version | u8 type | u32 payload_len | payload
///
/// All integers are little-endian; doubles travel as their IEEE-754 bit
/// pattern in a u64. A connection is a sequential request/response stream:
/// the client writes one request frame and reads exactly one response
/// frame before the next request.

inline constexpr char kDhqpMagic[4] = {'D', 'H', 'Q', 'P'};
inline constexpr uint32_t kDhqpVersion = 1;
/// Upper bound on a single frame's payload; a frame announcing more is
/// rejected before any allocation (garbage/hostile peer protection).
inline constexpr uint32_t kDhqpMaxPayloadBytes = 64u << 20;

/// Client-to-server frame types.
enum class RequestType : uint8_t {
  kTopK = 1,      // phase-1b candidate sets for the listed users
  kRefined = 2,   // phase-2 refined-DA predictions for the listed users
  kFiltered = 3,  // post-filtering candidate sets + ⊥ verdicts
  kStats = 4,     // live server metrics (bypasses the request queue)
  kShutdown = 5,  // graceful drain: stop accepting, answer what's queued
  kMetrics = 6,   // Prometheus text exposition (bypasses the queue)
  /// Sharding extensions. Still protocol version 1: a v1 server that
  /// predates them answers kError (unknown/undecodable request), which the
  /// router surfaces — no version bump needed for an additive type.
  kTopKScored = 7,  // kTopK keeping exact scores (what a router merges)
  kShardInfo = 8,   // shard identity + universe fingerprint (bypasses queue)
  /// Streaming-ingestion admin messages (additive, still version 1).
  /// Both bypass the request queue like kShardInfo: they are handled on
  /// the connection's reader thread, so a rebuild never blocks queries —
  /// in-flight queries keep the old epoch alive through its shared_ptr.
  /// Both answer kOk with a ShardInfo payload (the post-op epoch state).
  kLoadSegment = 9,  // stage + apply one DHSG delta segment (payload: path)
  kSealEpoch = 10,   // rebuild the engine from staged state, swap epochs
};

/// Server-to-client frame types.
enum class ResponseType : uint8_t {
  kOk = 64,          // payload is the answer for the request type
  kError = 65,       // payload is an encoded Status
  kOverloaded = 66,  // rejected at admission: queue full (payload: Status)
  kTimeout = 67,     // deadline expired before execution (payload: Status)
  /// A successful answer computed from a SUBSET of shards (some backends
  /// were down and the router allows degraded answers). Payload is the
  /// normal kOk payload for the request type; only the frame type differs.
  kPartial = 68,
};

/// One query over the wire (kTopK / kTopKScored / kRefined / kFiltered).
struct QueryRequest {
  RequestType type = RequestType::kTopK;
  /// Anonymized user ids to answer; answers come back in the same order.
  std::vector<int> users;
  /// kTopK only: candidate-set size; 0 means the server's configured K.
  int top_k = 0;
  /// Deadline covering queue wait: if the request is still queued this
  /// many milliseconds after the server received it, it is answered with
  /// kTimeout instead of being executed. 0 = no deadline.
  double timeout_ms = 0.0;
};

/// Answer to kTopK: candidates[i] belongs to users[i]. `partial` mirrors
/// the frame type (kPartial vs kOk — set by a degraded router, never
/// serialized in the payload).
struct TopKAnswer {
  std::vector<std::vector<int>> candidates;
  bool partial = false;
};

/// Answer to kTopKScored: candidates[i] belongs to users[i], each entry
/// carrying the exact score's full IEEE-754 bits — what a scatter-gather
/// router needs to re-rank per-shard heaps bitwise-identically to a
/// single-process run. A backend answers with LOCAL candidate ids
/// translated to GLOBAL ids (+ shard_begin). `partial` mirrors the frame
/// type (kPartial vs kOk) and is never serialized in the payload.
struct ScoredTopKAnswer {
  std::vector<std::vector<ScoredUser>> candidates;
  bool partial = false;
};

/// Answer to kShardInfo: which slice of which universe this server holds.
/// The router fails closed unless its backends form exactly one partition
/// of one universe (same fingerprint, ranges covering [0, shard_total)).
struct ShardInfoAnswer {
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
  uint64_t shard_begin = 0;
  uint64_t shard_total = 0;       // universe size (all shards agree)
  uint64_t universe_fingerprint = 0;
  uint64_t num_anonymized = 0;
  uint64_t default_top_k = 0;
  /// Streaming-ingestion epoch state: how many seals this server has
  /// performed (0 = the boot epoch, or a server without --ingest) and how
  /// many delta segments are staged but not yet sealed. The router refuses
  /// a fleet whose backends disagree on epoch_seq unless
  /// --allow-epoch-skew: mixed epochs serve from different logical forums.
  /// On the wire this pair is an OPTIONAL trailing extension: encoded only
  /// when non-zero, defaulting to (0, 0) when the payload ends without it,
  /// so pre-ingest peers interoperate with this build in both directions
  /// during a rolling upgrade (no version bump).
  uint64_t epoch_seq = 0;
  uint64_t staged_segments = 0;
  /// Which phase-1 attack engine built this server's score source
  /// (EngineKind as a small integer: 0 = structural, 1 = blind,
  /// 2 = community). A second optional trailing extension after the epoch
  /// pair: encoded only when non-zero (forcing the epoch pair onto the
  /// wire first so field positions stay fixed), defaulting to structural
  /// when the payload ends early — pre-engine peers are all structural,
  /// so rolling upgrades keep interoperating. The router refuses a fleet
  /// whose backends report different engines: their scores live on
  /// different scales and a merged ranking would be meaningless.
  uint32_t engine = 0;
};

/// Answer to kRefined: entry i belongs to users[i]; predictions use the
/// library convention (auxiliary id, or kNotPresent for ⊥).
struct RefinedAnswer {
  std::vector<int> predictions;
  std::vector<bool> rejected;
};

/// Answer to kFiltered: post-filtering candidate sets and ⊥ verdicts.
struct FilteredAnswer {
  std::vector<std::vector<int>> candidates;
  std::vector<bool> rejected;
};

/// Answer to kStats: a point-in-time snapshot of the server's counters.
struct ServerStatsSnapshot {
  uint64_t requests_total = 0;    // frames received (all types)
  uint64_t queries_total = 0;     // user ids summed over query requests
  uint64_t batches_total = 0;     // executor wake-ups that ran work
  uint64_t max_batch = 0;         // largest coalesced batch so far
  uint64_t overload_rejections = 0;
  uint64_t deadline_expirations = 0;
  uint64_t queue_depth = 0;       // gauge at snapshot time
  uint64_t num_anonymized = 0;    // dataset size (lets clients say "all")
  uint64_t default_top_k = 0;     // the server's configured K
  double p50_micros = 0.0;        // receive→response-ready latency
  double p99_micros = 0.0;
  double max_micros = 0.0;
};

/// Writes one DHQP frame (header + payload) to a connected socket.
Status WriteFrame(int fd, uint8_t type, const std::string& payload);

/// Reads one DHQP frame. OutOfRange when the peer closed cleanly before a
/// frame started (end of stream); InvalidArgument/Unimplemented on a
/// malformed or future-version header.
Status ReadFrame(int fd, uint8_t* type, std::string* payload);

// Payload codecs, shared by client and server. Decoders never trust the
// wire: every truncation or length overrun fails with the byte offset.
std::string EncodeQueryPayload(const QueryRequest& request);
StatusOr<QueryRequest> DecodeQueryPayload(RequestType type,
                                          const std::string& payload);

std::string EncodeTopKPayload(const TopKAnswer& answer);
StatusOr<TopKAnswer> DecodeTopKPayload(const std::string& payload);

std::string EncodeScoredTopKPayload(const ScoredTopKAnswer& answer);
StatusOr<ScoredTopKAnswer> DecodeScoredTopKPayload(
    const std::string& payload);

std::string EncodeShardInfoPayload(const ShardInfoAnswer& answer);
StatusOr<ShardInfoAnswer> DecodeShardInfoPayload(const std::string& payload);

/// kLoadSegment carries the server-local path of the DHSG segment to
/// stage: u32 length | bytes. (The segment file itself is read by the
/// server — payloads stay small and the checksummed DHSG codec, not DHQP,
/// validates the content.)
std::string EncodeLoadSegmentPayload(const std::string& segment_path);
StatusOr<std::string> DecodeLoadSegmentPayload(const std::string& payload);

std::string EncodeRefinedPayload(const RefinedAnswer& answer);
StatusOr<RefinedAnswer> DecodeRefinedPayload(const std::string& payload);

std::string EncodeFilteredPayload(const FilteredAnswer& answer);
StatusOr<FilteredAnswer> DecodeFilteredPayload(const std::string& payload);

std::string EncodeStatsPayload(const ServerStatsSnapshot& stats);
StatusOr<ServerStatsSnapshot> DecodeStatsPayload(const std::string& payload);

/// A Status on the wire: u32 code | u32 length | message bytes.
std::string EncodeErrorPayload(const Status& status);
/// Decodes the transported error into *error. The return value reports
/// *decode* failures only; the peer's error lands in *error.
Status DecodeErrorPayload(const std::string& payload, Status* error);

}  // namespace dehealth

#endif  // DEHEALTH_SERVE_PROTOCOL_H_
