#ifndef DEHEALTH_SERVE_METRICS_H_
#define DEHEALTH_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "serve/protocol.h"

namespace dehealth {

/// Live counters of a running query server. Every mutator is a relaxed
/// atomic op — safe to call from connection threads, the executor, and the
/// stats reporter concurrently; Snapshot() reads without locking (counts
/// only grow, so a mid-traffic snapshot is bracketed by the states just
/// before and just after it). Latencies cover receive → response-ready for
/// executed and deadline-expired requests; admission rejections are counted
/// separately and not timed.
class ServeMetrics {
 public:
  void RecordRequest() { requests_.fetch_add(1, std::memory_order_relaxed); }
  void RecordQueries(uint64_t users) {
    queries_.fetch_add(users, std::memory_order_relaxed);
  }
  void RecordBatch(uint64_t size);
  void RecordOverload() {
    overloads_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordDeadlineExpired() {
    deadline_expirations_.fetch_add(1, std::memory_order_relaxed);
  }
  void SetQueueDepth(uint64_t depth) {
    queue_depth_.store(depth, std::memory_order_relaxed);
  }
  void RecordLatency(double micros) { latency_.Record(micros); }

  /// Point-in-time snapshot; dataset fields (num_anonymized,
  /// default_top_k) are filled by the server, not here.
  ServerStatsSnapshot Snapshot() const;

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> max_batch_{0};
  std::atomic<uint64_t> overloads_{0};
  std::atomic<uint64_t> deadline_expirations_{0};
  std::atomic<uint64_t> queue_depth_{0};
  LatencyHistogram latency_;
};

/// One human-readable line for the periodic log / final report:
/// "serve: 120 req, 115 queries, 40 batches (max 8), p50=850us p99=3.2ms,
///  queue=2, overloaded=0, timed_out=0".
std::string FormatStatsLine(const ServerStatsSnapshot& stats);

}  // namespace dehealth

#endif  // DEHEALTH_SERVE_METRICS_H_
