#ifndef DEHEALTH_SERVE_METRICS_H_
#define DEHEALTH_SERVE_METRICS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/standard_metrics.h"
#include "serve/protocol.h"

namespace dehealth {

/// Live counters of a running query server, backed by an obs::Registry so
/// the `stats` snapshot, the periodic stderr line, and the Prometheus
/// `metrics` query all report from the same storage. Every mutator is a
/// relaxed atomic op — safe to call from connection threads, the executor,
/// and the stats reporter concurrently; Snapshot() reads without locking
/// (counts only grow, so a mid-traffic snapshot is bracketed by the states
/// just before and just after it). Latencies cover receive →
/// response-ready for executed and deadline-expired requests; admission
/// rejections are counted separately and not timed.
///
/// The registry is supplied by the server (ServerConfig::registry): the
/// production binary passes obs::Registry::Global() so serve metrics
/// export alongside core/index/job metrics; tests pass private registries
/// for isolated exact counts.
class ServeMetrics {
 public:
  explicit ServeMetrics(obs::Registry* registry);

  void RecordRequest() { requests_->Increment(); }
  void RecordQueries(uint64_t users) { queries_->Increment(users); }
  void RecordBatch(uint64_t size);
  void RecordOverload() { overloads_->Increment(); }
  void RecordDeadlineExpired() { deadline_expirations_->Increment(); }
  void SetQueueDepth(uint64_t depth) {
    queue_depth_->Set(static_cast<int64_t>(depth));
  }
  void RecordLatency(double micros) { latency_->Record(micros); }
  void RecordQueueWait(double micros) { queue_wait_->Record(micros); }
  void RecordEngineTime(double micros) { engine_time_->Record(micros); }

  /// Point-in-time snapshot; dataset fields (num_anonymized,
  /// default_top_k) are filled by the server, not here.
  ServerStatsSnapshot Snapshot() const;

  /// The registry this instance records into (for Prometheus rendering).
  obs::Registry& registry() { return *registry_; }

 private:
  obs::Registry* registry_;
  obs::Counter* requests_;
  obs::Counter* queries_;
  obs::Counter* batches_;
  obs::Gauge* max_batch_;
  obs::Counter* overloads_;
  obs::Counter* deadline_expirations_;
  obs::Gauge* queue_depth_;
  obs::Histogram* latency_;
  obs::Histogram* queue_wait_;
  obs::Histogram* engine_time_;
  obs::Histogram* batch_size_;
};

/// One human-readable line for the periodic log / final report:
/// "serve: 120 req, 115 queries, 40 batches (max 8), p50=850us p99=3.2ms,
///  queue=2, overloaded=0, timed_out=0". The single renderer behind the
/// periodic stderr line AND the `dehealth_query stats` output.
std::string FormatStatsLine(const ServerStatsSnapshot& stats);

}  // namespace dehealth

#endif  // DEHEALTH_SERVE_METRICS_H_
