#ifndef DEHEALTH_INGEST_SEGMENT_H_
#define DEHEALTH_INGEST_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/corpus.h"

namespace dehealth {
namespace ingest {

/// DHSG — a delta DHIX segment: the append-only unit of streaming
/// ingestion. A segment carries the posts appended to a logical forum
/// since a known parent state, pinned at both ends by FNV fingerprints of
/// the auxiliary UDA graph (FingerprintForIndex): `parent_fingerprint` is
/// the state the segment applies to, `result_fingerprint` the state it
/// produces. Segments form chains (s[i+1].parent == s[i].result) that an
/// LSM-style compaction merges K-at-a-time; a compacted chain applies
/// bitwise-identically to the uncompacted one, and either is
/// bitwise-identical to a from-scratch build on the same logical forum
/// (the golden test in tests/ingest/delta_test.cc).
///
/// On-disk layout mirrors DHIX/DHJB (little-endian):
///   magic "DHSG" | u32 version | payload | u64 FNV-1a checksum of payload
/// payload:
///   u64 parent_fingerprint | u64 result_fingerprint |
///   u32 shard_index | u32 shard_count | u64 base_posts |
///   i32 num_users_after | i32 num_threads_after |
///   u32 num_posts | per post: i32 user_id | i32 thread_id |
///                             u32 text_len | text bytes
struct DeltaSegment {
  /// FingerprintForIndex of the auxiliary UDA graph this applies to.
  uint64_t parent_fingerprint = 0;
  /// FingerprintForIndex after applying — validated post-apply, so a
  /// segment cut from a *different* logical forum that happens to share a
  /// parent fingerprint still fails closed.
  uint64_t result_fingerprint = 0;
  /// Which backend slice this segment was cut for. (0, 1) is the
  /// universal segment every backend accepts (epoch rebuilds consume the
  /// full auxiliary universe even in slice mode — see ingest::EpochHandler);
  /// a segment stamped for shard (i, n) is refused by any other slice.
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
  /// Posts in the parent state — context for operators (`info`) and a
  /// cheap pre-fingerprint sanity check when applying.
  uint64_t base_posts = 0;
  /// The universe after applying (never smaller than the parent's).
  int32_t num_users_after = 0;
  int32_t num_threads_after = 0;
  /// The appended posts, in ingestion order — the order AddPost folds
  /// them, which is what makes incremental == from-scratch bitwise.
  std::vector<Post> posts;
};

/// Serializes a segment to the DHSG byte format.
std::string EncodeSegment(const DeltaSegment& segment);

/// Parses DHSG bytes. `path` is error-message context only. NotFound never
/// happens here (that is LoadSegmentFile's job); InvalidArgument for bad
/// magic/truncation/checksum/bounds, Unimplemented for a future version.
StatusOr<DeltaSegment> DecodeSegment(const std::string& bytes,
                                     const std::string& path = "");

/// Writes `segment` to `path` atomically (tmp + fsync + rename). Fault
/// sites: `segment.save` (the write itself) and `segment.write.data`
/// (bit-flips the encoded bytes before they hit disk — what
/// WriteSegmentVerified's read-back is for).
Status SaveSegmentFile(const DeltaSegment& segment, const std::string& path);

/// Reads and decodes the segment at `path`. Fault sites: `segment.load`
/// (the read) and `segment.load.data` (corruption of the bytes read).
StatusOr<DeltaSegment> LoadSegmentFile(const std::string& path);

/// True iff the file at `path` exists and begins with the DHSG magic.
/// Gate quarantines on this: a failed decode of a magic-bearing file is
/// corrupt segment evidence worth renaming aside, while a file that was
/// never a segment (a typo'd path naming a dataset, snapshot, or log)
/// must be left untouched.
bool FileHasSegmentMagic(const std::string& path);

/// Crash-and-corruption-safe producer write: saves, reads the file back,
/// and decodes it. If the read-back fails (a `segment.write.data` bit flip,
/// a lying disk), the corrupt file is quarantined to `<path>.quarantined`,
/// `dehealth_ingest_quarantines_total` is bumped, and the segment is
/// re-encoded and rewritten — up to `max_attempts` times before giving up
/// with the last error (DataLoss-grade: the storage is eating writes).
Status WriteSegmentVerified(const DeltaSegment& segment,
                            const std::string& path, int max_attempts = 3);

/// LSM-style compaction: merges an ordered chain of K segments into one
/// whose application is bitwise-equivalent (first parent, last result,
/// concatenated posts in order). Fails closed (FailedPrecondition) when
/// the chain is broken — a fingerprint mismatch between adjacent segments,
/// mixed shard identities, or a shrinking universe. Fault site:
/// `segment.compact`.
StatusOr<DeltaSegment> CompactSegments(
    const std::vector<DeltaSegment>& chain);

}  // namespace ingest
}  // namespace dehealth

#endif  // DEHEALTH_INGEST_SEGMENT_H_
