#include "ingest/epoch.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/standard_metrics.h"
#include "obs/trace.h"

namespace dehealth {
namespace ingest {

namespace {

/// Renames a corrupt DHSG file to `<path>.quarantined` (PR 4 contract:
/// keep the evidence, never serve it, never spin a retry loop on it).
void QuarantineSegmentFile(const std::string& path, const Status& why) {
  const std::string quarantine = path + ".quarantined";
  std::remove(quarantine.c_str());
  if (std::rename(path.c_str(), quarantine.c_str()) == 0) {
    obs::GetIngestMetrics().quarantines->Increment();
    std::fprintf(stderr, "warning: corrupt segment quarantined to %s (%s)\n",
                 quarantine.c_str(), why.ToString().c_str());
  } else {
    std::fprintf(stderr,
                 "warning: corrupt segment %s could not be quarantined; "
                 "left in place (%s)\n",
                 path.c_str(), why.ToString().c_str());
  }
}

}  // namespace

EpochHandler::EpochHandler(UdaGraph anonymized, DeHealthConfig config)
    : anonymized_(std::move(anonymized)), config_(std::move(config)) {}

void EpochHandler::ConfigureAutoSeal(AutoSealPolicy policy) {
  auto_seal_ = std::move(policy);
  auto_seal_.posts_threshold = std::max(auto_seal_.posts_threshold, 0);
  auto_seal_.secs_threshold = std::max(auto_seal_.secs_threshold, 0);
}

int64_t EpochHandler::NowMs() const {
  if (auto_seal_.now_ms) return auto_seal_.now_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

StatusOr<std::unique_ptr<EpochHandler>> EpochHandler::Create(
    UdaGraph anonymized, ForumDataset auxiliary_dataset,
    DeHealthConfig config) {
  auto handler = std::unique_ptr<EpochHandler>(
      new EpochHandler(std::move(anonymized), std::move(config)));
  handler->staging_ = IngestState::FromDataset(std::move(auxiliary_dataset));
  // The boot epoch honors the full config — warm starts from --job-dir and
  // DHIX snapshot reuse work exactly as on a non-ingest server.
  UdaGraph anon_copy = handler->anonymized_;
  UdaGraph aux_copy = handler->staging_.uda();
  StatusOr<std::unique_ptr<QueryEngine>> engine = QueryEngine::Create(
      std::move(anon_copy), std::move(aux_copy), handler->config_);
  if (!engine.ok()) return engine.status();
  handler->current_ = std::shared_ptr<const QueryEngine>(
      std::move(engine).value().release());
  obs::IngestMetrics& metrics = obs::GetIngestMetrics();
  metrics.epoch_seq->Set(0);
  metrics.staged_segments->Set(0);
  return handler;
}

std::shared_ptr<const QueryEngine> EpochHandler::Engine() const {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  return current_;
}

Status EpochHandler::LoadSegment(const std::string& segment_path) const {
  std::lock_guard<std::mutex> lock(admin_mutex_);
  obs::Span span("ingest", "epoch_load_segment");
  StatusOr<DeltaSegment> segment = LoadSegmentFile(segment_path);
  if (!segment.ok()) {
    // A DHSG file that does not decode is corrupt evidence — quarantine
    // it (PR 4 contract) so a retry loop cannot spin on it and operators
    // can post-mortem the bytes. The magic gate matters: this path is
    // named by an unauthenticated DHQP client, and a file that was never
    // a segment (a typo'd path naming the server's own dataset, snapshot,
    // or log) must be refused WITHOUT being renamed aside.
    if (segment.status().code() != StatusCode::kNotFound &&
        FileHasSegmentMagic(segment_path))
      QuarantineSegmentFile(segment_path, segment.status());
    return segment.status();
  }
  // Shard gate: universal segments (0 of 1) apply everywhere — epoch
  // rebuilds consume the full auxiliary universe even in slice mode — but
  // a segment stamped for a specific slice must land on that slice.
  const bool universal =
      segment->shard_index == 0 && segment->shard_count == 1;
  if (!universal &&
      (segment->shard_index != static_cast<uint32_t>(config_.shard_index) ||
       segment->shard_count != static_cast<uint32_t>(config_.shard_count)))
    return Status::FailedPrecondition(
        "segment is stamped for shard " +
        std::to_string(segment->shard_index) + " of " +
        std::to_string(segment->shard_count) + " but this server is shard " +
        std::to_string(config_.shard_index) + " of " +
        std::to_string(config_.shard_count));
  Status applied = staging_.Apply(*segment);
  if (!applied.ok()) {
    // Apply is transactional: on failure the staging state was rolled
    // back (or, if rollback verification failed, marked poisoned — seals
    // refuse until a clean state exists). A segment whose decoded content
    // does not match its own result manifest (kInvalidArgument) is
    // corrupt evidence just like an undecodable file; a stale/foreign
    // segment (kFailedPrecondition) is a healthy file applied to the
    // wrong state and stays where it is.
    if (applied.code() == StatusCode::kInvalidArgument)
      QuarantineSegmentFile(segment_path, applied);
    return applied;
  }
  obs::IngestMetrics& metrics = obs::GetIngestMetrics();
  metrics.segments_loaded->Increment();
  if (staged_segments_.load() == 0) first_staged_ms_ = NowMs();
  staged_posts_ += segment->posts.size();
  metrics.staged_segments->Set(
      static_cast<int64_t>(staged_segments_.fetch_add(1) + 1));
  // Post-count auto-seal: the segment that crosses the threshold seals
  // the epoch before its own response goes out, so the caller's post-op
  // ShardInfo already shows the swap. A failed auto-seal is NOT this
  // load's failure — the segment staged fine and the previous epoch keeps
  // serving — so it only warns.
  if (auto_seal_.posts_threshold > 0 &&
      staged_posts_ >= static_cast<uint64_t>(auto_seal_.posts_threshold)) {
    Status sealed = SealEpochLocked();
    if (!sealed.ok())
      std::fprintf(stderr, "warning: auto-seal (%llu staged posts) failed: "
                           "%s\n",
                   static_cast<unsigned long long>(staged_posts_),
                   sealed.ToString().c_str());
  }
  return Status::OK();
}

Status EpochHandler::SealEpoch() const {
  std::lock_guard<std::mutex> lock(admin_mutex_);
  return SealEpochLocked();
}

StatusOr<bool> EpochHandler::MaybeAutoSeal() const {
  if (auto_seal_.secs_threshold <= 0) return false;
  std::lock_guard<std::mutex> lock(admin_mutex_);
  if (staged_segments_.load() == 0) return false;
  const int64_t age_ms = NowMs() - first_staged_ms_;
  if (age_ms < static_cast<int64_t>(auto_seal_.secs_threshold) * 1000)
    return false;
  DEHEALTH_RETURN_IF_ERROR(SealEpochLocked());
  return true;
}

Status EpochHandler::SealEpochLocked() const {
  obs::Span span("ingest", "epoch_seal");
  // A poisoned staging state (a failed apply whose rollback could not be
  // verified) must never be built into a serving epoch: an integrity
  // failure fails CLOSED — the previous epoch keeps serving.
  if (staging_.poisoned())
    return Status::FailedPrecondition(
        "epoch seal refused: the staging state is poisoned by an earlier "
        "failed segment apply; restart the server to rebuild it (still "
        "serving the previous epoch)");
  const auto start = std::chrono::steady_clock::now();
  // Rebuild config: never resume from or overwrite the base run's durable
  // artifacts — the staged universe has a different fingerprint, and a
  // half-written snapshot named like the base one would poison the next
  // boot.
  DeHealthConfig rebuild = config_;
  rebuild.job_dir.clear();
  rebuild.index_snapshot_path.clear();
  UdaGraph anon_copy = anonymized_;
  UdaGraph aux_copy = staging_.uda();
  StatusOr<std::unique_ptr<QueryEngine>> engine = QueryEngine::Create(
      std::move(anon_copy), std::move(aux_copy), std::move(rebuild));
  if (!engine.ok())
    return Status(engine.status().code(),
                  "epoch seal failed (still serving the previous epoch): " +
                      std::string(engine.status().message()));
  std::shared_ptr<const QueryEngine> fresh(
      std::move(engine).value().release());
  {
    // The swap itself: queries that already copied the old pointer finish
    // on the old epoch; everyone after this block sees the new one.
    std::lock_guard<std::mutex> swap(epoch_mutex_);
    current_ = std::move(fresh);
  }
  const uint64_t seq = epoch_seq_.fetch_add(1) + 1;
  staged_segments_.store(0);
  staged_posts_ = 0;
  obs::IngestMetrics& metrics = obs::GetIngestMetrics();
  metrics.epoch_seals->Increment();
  metrics.epoch_seq->Set(static_cast<int64_t>(seq));
  metrics.staged_segments->Set(0);
  metrics.epoch_build_micros->Record(
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count());
  return Status::OK();
}

int EpochHandler::num_anonymized() const { return Engine()->num_anonymized(); }

int EpochHandler::default_top_k() const { return Engine()->default_top_k(); }

StatusOr<TopKAnswer> EpochHandler::TopK(const std::vector<int>& users,
                                        int k) const {
  return Engine()->TopK(users, k);
}

StatusOr<ScoredTopKAnswer> EpochHandler::TopKScored(
    const std::vector<int>& users, int k) const {
  return Engine()->TopKScored(users, k);
}

StatusOr<RefinedAnswer> EpochHandler::Refine(
    const std::vector<int>& users) const {
  return Engine()->Refine(users);
}

StatusOr<FilteredAnswer> EpochHandler::Filtered(
    const std::vector<int>& users) const {
  return Engine()->Filtered(users);
}

ShardInfoAnswer EpochHandler::ShardInfo() const {
  ShardInfoAnswer info = Engine()->ShardInfo();
  info.epoch_seq = epoch_seq_.load();
  info.staged_segments = staged_segments_.load();
  return info;
}

}  // namespace ingest
}  // namespace dehealth
