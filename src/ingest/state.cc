#include "ingest/state.h"

#include <algorithm>

#include "index/candidate_index.h"
#include "obs/standard_metrics.h"

namespace dehealth {
namespace ingest {

IngestState IngestState::FromDataset(ForumDataset dataset) {
  IngestState state;
  state.uda_ = BuildUdaGraph(dataset);
  state.dataset_ = std::move(dataset);
  return state;
}

uint64_t IngestState::fingerprint() const {
  return FingerprintForIndex(uda_);
}

Status IngestState::Advance(const std::vector<Post>& new_posts,
                            int num_users_after, int num_threads_after) {
  if (poisoned_)
    return Status::FailedPrecondition(
        "IngestState::Advance: state is poisoned by an earlier failed "
        "apply whose rollback could not be verified; rebuild it");
  DEHEALTH_RETURN_IF_ERROR(ApplyPostsToUdaGraph(
      &uda_, &dataset_, new_posts, num_users_after, num_threads_after));
  obs::GetIngestMetrics().posts_applied->Increment(new_posts.size());
  return Status::OK();
}

Status IngestState::Apply(const DeltaSegment& segment) {
  if (poisoned_)
    return Status::FailedPrecondition(
        "IngestState::Apply: state is poisoned by an earlier failed "
        "apply whose rollback could not be verified; rebuild it");
  if (segment.base_posts != dataset_.posts.size())
    return Status::FailedPrecondition(
        "IngestState::Apply: segment expects a parent with " +
        std::to_string(segment.base_posts) + " posts, state has " +
        std::to_string(dataset_.posts.size()));
  const uint64_t current = fingerprint();
  if (segment.parent_fingerprint != current)
    return Status::FailedPrecondition(
        "IngestState::Apply: segment parent fingerprint " +
        std::to_string(segment.parent_fingerprint) +
        " does not match the current state (" + std::to_string(current) +
        ") — the segment was cut for a different logical forum or out of "
        "chain order");
  const size_t base_posts = dataset_.posts.size();
  const int base_users = dataset_.num_users;
  const int base_threads = dataset_.num_threads;
  Status failure = Advance(segment.posts, segment.num_users_after,
                           segment.num_threads_after);
  if (failure.ok()) {
    const uint64_t result = fingerprint();
    if (segment.result_fingerprint == result) return Status::OK();
    failure = Status::InvalidArgument(
        "IngestState::Apply: applied segment produced fingerprint " +
        std::to_string(result) + " but claims " +
        std::to_string(segment.result_fingerprint) +
        " — the segment content does not match its manifest; it was "
        "rolled back");
  }
  // Roll back: Advance only appends posts, grows the universe bounds, and
  // appends per-user features (the graph is rebuilt from the dataset), so
  // truncating the dataset and rebuilding restores the pre-apply state
  // bitwise — verified against the parent fingerprint we already matched.
  dataset_.posts.resize(base_posts);
  dataset_.num_users = base_users;
  dataset_.num_threads = base_threads;
  uda_ = BuildUdaGraph(dataset_);
  if (fingerprint() != current) {
    poisoned_ = true;
    return Status::Internal(
        "IngestState::Apply: rollback after a failed apply did not "
        "restore the parent state (" + std::string(failure.message()) +
        "); the state is poisoned and must be rebuilt");
  }
  return failure;
}

StatusOr<DeltaSegment> CutSegment(IngestState* state,
                                  const std::vector<Post>& new_posts,
                                  int num_users_after, int num_threads_after,
                                  uint32_t shard_index,
                                  uint32_t shard_count) {
  if (shard_count == 0 || shard_index >= shard_count)
    return Status::InvalidArgument(
        "CutSegment: shard identity (" + std::to_string(shard_index) +
        " of " + std::to_string(shard_count) + ") is invalid");
  DeltaSegment segment;
  segment.shard_index = shard_index;
  segment.shard_count = shard_count;
  segment.base_posts = state->posts();
  segment.parent_fingerprint = state->fingerprint();
  int users_after = std::max(num_users_after, state->dataset().num_users);
  int threads_after =
      std::max(num_threads_after, state->dataset().num_threads);
  for (const Post& post : new_posts) {
    users_after = std::max(users_after, post.user_id + 1);
    threads_after = std::max(threads_after, post.thread_id + 1);
  }
  segment.num_users_after = users_after;
  segment.num_threads_after = threads_after;
  segment.posts = new_posts;
  // Advance the producer's state through the same entry point the server
  // uses, so producer and consumer fingerprints cannot diverge.
  DEHEALTH_RETURN_IF_ERROR(
      state->Advance(new_posts, users_after, threads_after));
  segment.result_fingerprint = state->fingerprint();
  return segment;
}

}  // namespace ingest
}  // namespace dehealth
