#include "ingest/segment.h"

#include <cstdio>
#include <cstring>
#include <type_traits>

#include "common/fault_injection.h"
#include "io/file_util.h"
#include "obs/standard_metrics.h"
#include "obs/trace.h"

namespace dehealth {
namespace ingest {

namespace {

constexpr char kMagic[4] = {'D', 'H', 'S', 'G'};
constexpr uint32_t kVersion = 1;
/// A post longer than this is binary garbage, not forum prose — same
/// ceiling as the JSONL reader's line cap.
constexpr uint32_t kMaxTextBytes = 16u << 20;

uint64_t Fnv1a(const char* bytes, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
void Append(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.append(buf, sizeof(T));
}

/// "delta segment 'path' (byte N): what" — like the DHIX decoder, every
/// failure names the file (when known) and the offset where parsing
/// stopped.
Status DecodeError(const std::string& path, size_t offset,
                   const std::string& what,
                   StatusCode code = StatusCode::kInvalidArgument) {
  std::string message = "delta segment ";
  if (!path.empty()) message += "'" + path + "' ";
  message += "(byte " + std::to_string(offset) + "): " + what;
  return Status(code, std::move(message));
}

class Reader {
 public:
  Reader(const std::string& bytes, size_t begin, size_t end,
         const std::string& path)
      : bytes_(bytes), pos_(begin), end_(end), path_(path) {}

  template <typename T>
  Status Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > end_) return Fail("truncated payload");
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status Fail(const std::string& what) const {
    return DecodeError(path_, pos_, what);
  }

  size_t pos() const { return pos_; }

  bool CanHold(uint64_t count, size_t element_size) const {
    return count <= (end_ - pos_) / element_size;
  }

  bool AtEnd() const { return pos_ == end_; }

  Status ReadString(std::string* out, uint32_t length) {
    if (pos_ + length > end_) return Fail("truncated text");
    out->assign(bytes_.data() + pos_, length);
    pos_ += length;
    return Status::OK();
  }

 private:
  const std::string& bytes_;
  size_t pos_;
  size_t end_;
  const std::string& path_;
};

}  // namespace

std::string EncodeSegment(const DeltaSegment& segment) {
  std::string out(kMagic, sizeof(kMagic));
  Append(out, kVersion);
  const size_t payload_begin = out.size();

  Append(out, segment.parent_fingerprint);
  Append(out, segment.result_fingerprint);
  Append(out, segment.shard_index);
  Append(out, segment.shard_count);
  Append(out, segment.base_posts);
  Append(out, segment.num_users_after);
  Append(out, segment.num_threads_after);
  Append(out, static_cast<uint32_t>(segment.posts.size()));
  for (const Post& post : segment.posts) {
    Append(out, static_cast<int32_t>(post.user_id));
    Append(out, static_cast<int32_t>(post.thread_id));
    Append(out, static_cast<uint32_t>(post.text.size()));
    out += post.text;
  }

  Append(out, Fnv1a(out.data() + payload_begin, out.size() - payload_begin));
  return out;
}

StatusOr<DeltaSegment> DecodeSegment(const std::string& bytes,
                                     const std::string& path) {
  constexpr size_t kHeaderSize = sizeof(kMagic) + sizeof(uint32_t);
  if (bytes.size() < kHeaderSize + sizeof(uint64_t))
    return DecodeError(path, bytes.size(),
                       "file shorter than header + checksum");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return DecodeError(path, 0, "bad magic (not a DHSG delta segment)");
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version != kVersion)
    // Strict equality: a future version is kUnimplemented (upgrade the
    // build), anything else — including a zeroed byte where the version
    // lives — is an invalid file, never silently parsed with this layout.
    return DecodeError(path, sizeof(kMagic),
                       "segment version " + std::to_string(version) +
                           " is not the version this build supports (" +
                           std::to_string(kVersion) + ")",
                       version > kVersion ? StatusCode::kUnimplemented
                                          : StatusCode::kInvalidArgument);
  const size_t payload_end = bytes.size() - sizeof(uint64_t);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes.data() + payload_end,
              sizeof(stored_checksum));
  const uint64_t actual_checksum =
      Fnv1a(bytes.data() + kHeaderSize, payload_end - kHeaderSize);
  if (stored_checksum != actual_checksum)
    return DecodeError(path, payload_end,
                       "checksum mismatch (file corrupted)");

  Reader reader(bytes, kHeaderSize, payload_end, path);
  DeltaSegment segment;
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&segment.parent_fingerprint));
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&segment.result_fingerprint));
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&segment.shard_index));
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&segment.shard_count));
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&segment.base_posts));
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&segment.num_users_after));
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&segment.num_threads_after));
  if (segment.shard_count == 0)
    return reader.Fail("shard_count must be >= 1");
  if (segment.shard_index >= segment.shard_count)
    return reader.Fail("shard_index out of range");
  if (segment.num_users_after < 0 || segment.num_threads_after < 0)
    return reader.Fail("negative universe bounds");
  uint32_t num_posts = 0;
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&num_posts));
  if (!reader.CanHold(num_posts, 12))
    return reader.Fail("post count " + std::to_string(num_posts) +
                       " exceeds remaining payload");
  segment.posts.reserve(num_posts);
  for (uint32_t i = 0; i < num_posts; ++i) {
    int32_t user = 0;
    int32_t thread = 0;
    uint32_t text_len = 0;
    DEHEALTH_RETURN_IF_ERROR(reader.Read(&user));
    DEHEALTH_RETURN_IF_ERROR(reader.Read(&thread));
    DEHEALTH_RETURN_IF_ERROR(reader.Read(&text_len));
    if (user < 0 || user >= segment.num_users_after)
      return reader.Fail("post user_id " + std::to_string(user) +
                         " outside [0, " +
                         std::to_string(segment.num_users_after) + ")");
    if (thread < 0 || thread >= segment.num_threads_after)
      return reader.Fail("post thread_id " + std::to_string(thread) +
                         " outside [0, " +
                         std::to_string(segment.num_threads_after) + ")");
    if (text_len > kMaxTextBytes)
      return reader.Fail("post text of " + std::to_string(text_len) +
                         " bytes exceeds the " +
                         std::to_string(kMaxTextBytes) + "-byte limit");
    Post post;
    post.user_id = user;
    post.thread_id = thread;
    DEHEALTH_RETURN_IF_ERROR(reader.ReadString(&post.text, text_len));
    segment.posts.push_back(std::move(post));
  }
  if (!reader.AtEnd()) return reader.Fail("trailing bytes after posts");
  return segment;
}

Status SaveSegmentFile(const DeltaSegment& segment,
                       const std::string& path) {
  obs::Span span("ingest", "save_segment");
  span.SetArg("posts", static_cast<int64_t>(segment.posts.size()));
  DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("segment.save"));
  std::string bytes = EncodeSegment(segment);
  // Simulated silent write corruption: the bytes that reach the disk are
  // not the bytes we encoded. Only WriteSegmentVerified's read-back can
  // catch this class of fault.
  InjectDataFault("segment.write.data", &bytes);
  return WriteStringToFileAtomic(bytes, path);
}

bool FileHasSegmentMagic(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  char head[sizeof(kMagic)];
  const size_t read = std::fread(head, 1, sizeof(head), file);
  std::fclose(file);
  return read == sizeof(head) &&
         std::memcmp(head, kMagic, sizeof(kMagic)) == 0;
}

StatusOr<DeltaSegment> LoadSegmentFile(const std::string& path) {
  obs::Span span("ingest", "load_segment");
  DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("segment.load"));
  StatusOr<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  // Simulated on-disk corruption of the segment; the checksum (or, for a
  // very unlucky flip, the bounds checks) must turn it into a Status.
  InjectDataFault("segment.load.data", &*bytes);
  return DecodeSegment(*bytes, path);
}

Status WriteSegmentVerified(const DeltaSegment& segment,
                            const std::string& path, int max_attempts) {
  if (max_attempts < 1)
    return Status::InvalidArgument(
        "WriteSegmentVerified: max_attempts must be >= 1");
  Status last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    DEHEALTH_RETURN_IF_ERROR(SaveSegmentFile(segment, path));
    StatusOr<DeltaSegment> back = LoadSegmentFile(path);
    if (back.ok() && back->result_fingerprint == segment.result_fingerprint)
      return Status::OK();
    last = back.ok() ? Status::Internal(
                           "segment read back with a different result "
                           "fingerprint (storage corrupted a valid frame)")
                     : back.status();
    // Quarantine the corrupt artifact for post-mortems (PR 4 contract:
    // never delete evidence, never serve it) and recompute the write. If
    // the rename fails the corrupt file is still sitting at `path`;
    // retrying would overwrite the evidence, so give up instead.
    const std::string quarantine = path + ".quarantined";
    std::remove(quarantine.c_str());
    if (std::rename(path.c_str(), quarantine.c_str()) != 0)
      return Status(StatusCode::kInternal,
                    "WriteSegmentVerified: " + path +
                        " failed read-back (" + std::string(last.message()) +
                        ") and could not be quarantined to " + quarantine +
                        "; the corrupt file is left in place as evidence");
    obs::GetIngestMetrics().quarantines->Increment();
    std::fprintf(stderr,
                 "warning: segment %s failed read-back verification (%s); "
                 "quarantined to %s, rewriting\n",
                 path.c_str(), last.message().c_str(), quarantine.c_str());
  }
  return Status(StatusCode::kInternal,
                "WriteSegmentVerified: " + std::to_string(max_attempts) +
                    " write attempts all failed read-back: " +
                    std::string(last.message()));
}

StatusOr<DeltaSegment> CompactSegments(
    const std::vector<DeltaSegment>& chain) {
  obs::Span span("ingest", "compact_segments");
  span.SetArg("segments", static_cast<int64_t>(chain.size()));
  DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("segment.compact"));
  if (chain.empty())
    return Status::InvalidArgument("CompactSegments: empty chain");
  DeltaSegment merged;
  merged.parent_fingerprint = chain.front().parent_fingerprint;
  merged.result_fingerprint = chain.back().result_fingerprint;
  merged.shard_index = chain.front().shard_index;
  merged.shard_count = chain.front().shard_count;
  merged.base_posts = chain.front().base_posts;
  merged.num_users_after = chain.back().num_users_after;
  merged.num_threads_after = chain.back().num_threads_after;
  size_t total_posts = 0;
  for (size_t i = 0; i < chain.size(); ++i) {
    const DeltaSegment& segment = chain[i];
    if (segment.shard_index != merged.shard_index ||
        segment.shard_count != merged.shard_count)
      return Status::FailedPrecondition(
          "CompactSegments: mixed shard identities at position " +
          std::to_string(i) + " (segments from different slices do not "
          "form one chain)");
    if (i > 0) {
      if (segment.parent_fingerprint != chain[i - 1].result_fingerprint)
        return Status::FailedPrecondition(
            "CompactSegments: broken chain at position " +
            std::to_string(i) + ": parent fingerprint does not match the "
            "previous segment's result");
      if (segment.num_users_after < chain[i - 1].num_users_after ||
          segment.num_threads_after < chain[i - 1].num_threads_after)
        return Status::FailedPrecondition(
            "CompactSegments: universe shrinks at position " +
            std::to_string(i));
    }
    total_posts += segment.posts.size();
  }
  merged.posts.reserve(total_posts);
  for (const DeltaSegment& segment : chain)
    merged.posts.insert(merged.posts.end(), segment.posts.begin(),
                        segment.posts.end());
  obs::GetIngestMetrics().compactions->Increment();
  return merged;
}

}  // namespace ingest
}  // namespace dehealth
