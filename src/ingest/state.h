#ifndef DEHEALTH_INGEST_STATE_H_
#define DEHEALTH_INGEST_STATE_H_

#include <cstdint>

#include "common/status.h"
#include "core/uda_graph.h"
#include "datagen/corpus.h"
#include "ingest/segment.h"

namespace dehealth {
namespace ingest {

/// The accumulated auxiliary-side state a chain of delta segments grows:
/// the forum dataset (posts in ingestion order) plus its UDA graph, kept
/// bitwise-equal to BuildUdaGraph(dataset) after every Apply (see
/// ApplyPostsToUdaGraph). The fingerprint pinning segments to states is
/// FingerprintForIndex over the UDA graph — the same fingerprint DHIX
/// snapshots and the router's universe validation use, so "the segment
/// applies here" and "these backends serve the same universe" are one
/// notion.
class IngestState {
 public:
  /// Builds the state of a base forum (one full feature-extraction pass).
  static IngestState FromDataset(ForumDataset dataset);

  /// Applies one delta segment: validates the parent fingerprint against
  /// the current state (FailedPrecondition on mismatch — the segment was
  /// cut for a different state), folds the posts in incrementally, then
  /// validates the result fingerprint (InvalidArgument on mismatch — the
  /// segment lied about what it produces). Apply is transactional: on ANY
  /// failure the state is rolled back to its pre-apply value (a rejected
  /// segment never poisons the chain), verified by fingerprint. If that
  /// verification itself fails the state is marked poisoned (kInternal)
  /// and every later Apply/Advance refuses until it is rebuilt. Only the
  /// new posts' text is processed.
  Status Apply(const DeltaSegment& segment);

  /// Producer-side advance: folds posts in WITHOUT segment fingerprint
  /// checks (CutSegment stamps the fingerprints around this). Consumers
  /// applying untrusted segments must use Apply.
  Status Advance(const std::vector<Post>& new_posts, int num_users_after,
                 int num_threads_after);

  /// FingerprintForIndex of the current UDA graph.
  uint64_t fingerprint() const;

  /// True after a failed Apply whose rollback could not be verified: the
  /// state no longer matches any known fingerprint and must not be
  /// advanced, sealed, or served from. Rebuild via FromDataset.
  bool poisoned() const { return poisoned_; }

  const ForumDataset& dataset() const { return dataset_; }
  const UdaGraph& uda() const { return uda_; }
  uint64_t posts() const { return dataset_.posts.size(); }

 private:
  ForumDataset dataset_;
  UdaGraph uda_;
  bool poisoned_ = false;
};

/// Cuts a delta segment that advances `state` by `new_posts`: stamps the
/// parent fingerprint from the pre-apply state, applies the posts (the
/// state IS advanced), and stamps the result fingerprint from the
/// post-apply state. `num_users_after`/`num_threads_after` of 0 mean
/// "grow to fit the new posts" (max id + 1, floored at the current
/// bounds). The shard identity is stamped verbatim ((0, 1) = universal).
StatusOr<DeltaSegment> CutSegment(IngestState* state,
                                  const std::vector<Post>& new_posts,
                                  int num_users_after = 0,
                                  int num_threads_after = 0,
                                  uint32_t shard_index = 0,
                                  uint32_t shard_count = 1);

}  // namespace ingest
}  // namespace dehealth

#endif  // DEHEALTH_INGEST_STATE_H_
