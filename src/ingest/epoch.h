#ifndef DEHEALTH_INGEST_EPOCH_H_
#define DEHEALTH_INGEST_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/de_health.h"
#include "core/uda_graph.h"
#include "datagen/corpus.h"
#include "ingest/state.h"
#include "serve/engine.h"
#include "serve/handler.h"

namespace dehealth {
namespace ingest {

/// When dehealth_serve --ingest seals a new epoch on its own, without an
/// operator's kSealEpoch. Either trigger set to 0 is off (the default:
/// fully manual). The clock is injectable so tests drive the age trigger
/// by hand; the default reads std::chrono::steady_clock.
struct AutoSealPolicy {
  /// Seal once this many staged POSTS accumulate (across segments),
  /// checked inside LoadSegment — the segment that crosses the threshold
  /// is sealed into the new epoch before its response goes out.
  int posts_threshold = 0;
  /// Seal once the OLDEST staged segment is this many seconds old,
  /// checked by MaybeAutoSeal() (the serving loop ticks it).
  int secs_threshold = 0;
  std::function<int64_t()> now_ms;
};

/// The zero-downtime epoch layer of dehealth_serve --ingest: a
/// QueryHandler that delegates every query to the CURRENT epoch's
/// QueryEngine, held behind a shared_ptr that admin operations swap
/// RCU-style. Queries copy the pointer (one mutex-guarded load) and run to
/// completion on whatever epoch they started on — a kSealEpoch rebuild
/// happening concurrently never blocks them and never changes their
/// answer; the old engine dies when its last in-flight query drops the
/// reference.
///
/// Admin surface (called from connection reader threads, serialized by an
/// admin mutex so segment chains apply in order):
///   LoadSegment: read + validate a DHSG file, apply it to the STAGING
///     state (the serving epoch is untouched — answers stay bitwise-stable
///     until seal). A segment that fails the checksum/decode is
///     quarantined to `<path>.quarantined`, matching the PR 4 contract.
///   SealEpoch: rebuild a QueryEngine from the staging state (same
///     DeHealthConfig as boot, minus job_dir/index_snapshot_path — an
///     epoch rebuild must neither resume from nor clobber the base run's
///     artifacts) and swap it in; epoch_seq increments and
///     staged-since-seal drops to 0.
///
/// Shard-aware: in slice mode the engine still consumes the FULL auxiliary
/// universe (BuildAttackScoreSource slices internally), so every backend
/// applies the same universal segments; a segment stamped for a specific
/// shard is accepted only by that slice. The universe fingerprint answered
/// in ShardInfo changes at each seal, which is how the router detects (and
/// refuses) mixed-epoch fleets.
class EpochHandler : public QueryHandler {
 public:
  /// Builds the boot epoch: UDA graph of `auxiliary_dataset`, then a
  /// QueryEngine with `config` verbatim (job_dir warm start and index
  /// snapshots behave exactly as a non-ingest server). The anonymized
  /// graph and the config are retained for seal-time rebuilds.
  static StatusOr<std::unique_ptr<EpochHandler>> Create(
      UdaGraph anonymized, ForumDataset auxiliary_dataset,
      DeHealthConfig config);

  /// Installs the auto-seal policy (call before serving starts; not
  /// thread-safe against in-flight admin ops).
  void ConfigureAutoSeal(AutoSealPolicy policy);

  /// Age-triggered auto-seal tick: seals iff policy.secs_threshold > 0,
  /// something is staged, and the oldest staged segment's age crossed the
  /// threshold. Returns true exactly when this call sealed. Safe to call
  /// from the serving loop at any cadence — it takes the admin mutex, so
  /// it serializes with (and never double-seals against) operator admin
  /// ops. A failed seal is returned AND leaves the previous epoch
  /// serving, exactly like a failed kSealEpoch.
  StatusOr<bool> MaybeAutoSeal() const;

  // ---- admin (reader threads, serialized) ----
  Status LoadSegment(const std::string& segment_path) const override;
  Status SealEpoch() const override;

  // ---- queries (delegate to the current epoch) ----
  int num_anonymized() const override;
  int default_top_k() const override;
  StatusOr<TopKAnswer> TopK(const std::vector<int>& users,
                            int k) const override;
  StatusOr<ScoredTopKAnswer> TopKScored(const std::vector<int>& users,
                                        int k) const override;
  StatusOr<RefinedAnswer> Refine(const std::vector<int>& users) const override;
  StatusOr<FilteredAnswer> Filtered(
      const std::vector<int>& users) const override;
  ShardInfoAnswer ShardInfo() const override;

  uint64_t epoch_seq() const { return epoch_seq_.load(); }
  uint64_t staged_segments() const { return staged_segments_.load(); }

 private:
  EpochHandler(UdaGraph anonymized, DeHealthConfig config);

  /// The current epoch's engine (shared_ptr copy under a short lock).
  std::shared_ptr<const QueryEngine> Engine() const;

  /// SealEpoch's body; caller holds admin_mutex_.
  Status SealEpochLocked() const;
  int64_t NowMs() const;

  UdaGraph anonymized_;      // pristine copy for every rebuild
  DeHealthConfig config_;    // boot config; rebuilds drop job/index paths

  /// Serializes LoadSegment/SealEpoch; never held while answering queries.
  mutable std::mutex admin_mutex_;
  /// The staging state segments accumulate into (guarded by admin_mutex_).
  mutable IngestState staging_;

  /// Guards the epoch pointer swap; queries hold it only long enough to
  /// copy the shared_ptr.
  mutable std::mutex epoch_mutex_;
  mutable std::shared_ptr<const QueryEngine> current_;

  mutable std::atomic<uint64_t> epoch_seq_{0};
  mutable std::atomic<uint64_t> staged_segments_{0};

  AutoSealPolicy auto_seal_;
  /// Posts applied since the last seal and the clock reading when the
  /// first of them landed (guarded by admin_mutex_).
  mutable uint64_t staged_posts_ = 0;
  mutable int64_t first_staged_ms_ = 0;
};

}  // namespace ingest
}  // namespace dehealth

#endif  // DEHEALTH_INGEST_EPOCH_H_
