#ifndef DEHEALTH_OBS_STANDARD_METRICS_H_
#define DEHEALTH_OBS_STANDARD_METRICS_H_

#include <vector>

#include "obs/metrics.h"

namespace dehealth::obs {

// Every metric the library can register, declared once. Instrumentation
// sites reach them through the typed accessor structs below (bound to
// Registry::Global()); ServeMetrics registers the serve defs into its own
// (possibly per-server) registry. docs/METRICS.md documents exactly this
// set, and the docs-consistency test (tests/obs/docs_test.cc) fails the
// build the moment the two drift. Add a metric => add it here AND to the
// table in docs/METRICS.md.

// ---- core: UDA graph build, phase 1a/1b/1c, phase 2 ----
extern const MetricDef kCoreUdaBuilds;
extern const MetricDef kCoreUdaPosts;
extern const MetricDef kCoreSimilarityMatrices;
extern const MetricDef kCoreSimilarityRows;
extern const MetricDef kCoreTopKDenseRows;
extern const MetricDef kCoreFilterRuns;
extern const MetricDef kCoreFilterRejected;
extern const MetricDef kCoreRefinedUsers;
extern const MetricDef kCoreSimdKernel;
extern const MetricDef kCoreScoreBlockSize;

// ---- index: DHIX snapshot lifecycle + bound-pruned Top-K retrieval ----
extern const MetricDef kIndexTopKQueries;
extern const MetricDef kIndexExactEvals;
extern const MetricDef kIndexBoundPruned;
extern const MetricDef kIndexSnapshotLoads;
extern const MetricDef kIndexSnapshotRebuilds;
extern const MetricDef kIndexDenseFallbacks;
extern const MetricDef kIndexDenseScans;

// ---- shard: scatter-gather over the partitioned auxiliary universe ----
extern const MetricDef kShardScatterRpcs;
extern const MetricDef kShardScatterFailures;
extern const MetricDef kShardPartialAnswers;
extern const MetricDef kShardMergeMicros;
extern const MetricDef kShardBackendLatency;
extern const MetricDef kShardSnapshotQuarantines;

// ---- replica: health-checked failover inside replicated shard groups ----
extern const MetricDef kReplicaFailovers;
extern const MetricDef kReplicaEjections;
extern const MetricDef kReplicaReadmissions;
extern const MetricDef kReplicaProbes;
extern const MetricDef kReplicaProbeFailures;
extern const MetricDef kReplicaHedges;
extern const MetricDef kReplicaHedgeWins;
extern const MetricDef kReplicaHealthyBackends;
extern const MetricDef kReplicaRolloutSeals;

// ---- engines: pluggable phase-1 attack engines (blind, community) ----
extern const MetricDef kEngineMatrixBuilds;
extern const MetricDef kEngineActive;
extern const MetricDef kEngineBlindRounds;
extern const MetricDef kEngineCommunityMatched;

// ---- job: DHJB checkpoint/resume shard lifecycle ----
extern const MetricDef kJobShardsLoaded;
extern const MetricDef kJobShardsComputed;
extern const MetricDef kJobQuarantines;

// ---- ingest: DHSG delta segments + epoch swaps ----
extern const MetricDef kIngestSegmentsLoaded;
extern const MetricDef kIngestPostsApplied;
extern const MetricDef kIngestEpochSeals;
extern const MetricDef kIngestEpochSeq;
extern const MetricDef kIngestStagedSegments;
extern const MetricDef kIngestEpochBuildMicros;
extern const MetricDef kIngestQuarantines;
extern const MetricDef kIngestCompactions;

// ---- serve: request lifecycle of the query service ----
extern const MetricDef kServeRequests;
extern const MetricDef kServeQueries;
extern const MetricDef kServeBatches;
extern const MetricDef kServeBatchSizeMax;
extern const MetricDef kServeOverloaded;
extern const MetricDef kServeDeadlineExpired;
extern const MetricDef kServeQueueDepth;
extern const MetricDef kServeLatency;
extern const MetricDef kServeQueueWait;
extern const MetricDef kServeEngineTime;
extern const MetricDef kServeBatchSize;

/// All of the above, for exhaustive registration (docs test, exporters).
const std::vector<const MetricDef*>& AllMetricDefs();

/// Core-pipeline metrics bound to Registry::Global(); cheap to call (one
/// initialization, then a reference return).
struct CoreMetrics {
  Counter* uda_builds;
  Counter* uda_posts;
  Counter* similarity_matrices;
  Counter* similarity_rows;
  Counter* topk_dense_rows;
  Counter* filter_runs;
  Counter* filter_rejected;
  Counter* refined_users;
  Gauge* simd_kernel;
  Histogram* score_block_size;
};
CoreMetrics& GetCoreMetrics();

struct IndexMetrics {
  Counter* topk_queries;
  Counter* exact_evals;
  Counter* bound_pruned;
  Counter* snapshot_loads;
  Counter* snapshot_rebuilds;
  Counter* dense_fallbacks;
  Counter* dense_scans;
};
IndexMetrics& GetIndexMetrics();

/// Shard scatter-gather metrics. Router processes usually bind these to
/// their server registry via GetShardMetrics(&registry); the in-process
/// sharded source uses the Registry::Global() binding.
struct ShardMetrics {
  Counter* scatter_rpcs;
  Counter* scatter_failures;
  Counter* partial_answers;
  Histogram* merge_micros;
  Histogram* backend_latency;
  Counter* snapshot_quarantines;
};
ShardMetrics& GetShardMetrics();
/// A ShardMetrics bound to an explicit registry (no caching — call once
/// and keep the struct).
ShardMetrics BindShardMetrics(Registry& registry);

/// Replicated-shard-group metrics: failover, health ejection/readmission,
/// probing, hedged reads, and the rolling fleet seal. Routers bind these
/// to their server registry like ShardMetrics; the rollout driver uses
/// the Registry::Global() binding.
struct ReplicaMetrics {
  Counter* failovers;
  Counter* ejections;
  Counter* readmissions;
  Counter* probes;
  Counter* probe_failures;
  Counter* hedges;
  Counter* hedge_wins;
  Gauge* healthy_backends;
  Counter* rollout_seals;
};
ReplicaMetrics& GetReplicaMetrics();
ReplicaMetrics BindReplicaMetrics(Registry& registry);

/// Pluggable-engine metrics (src/engines/): matrix builds, which engine
/// last ran, and per-engine progress counters.
struct EngineMetrics {
  Counter* matrix_builds;
  Gauge* active_engine;
  Counter* blind_rounds;
  Counter* community_matched;
};
EngineMetrics& GetEngineMetrics();

struct JobMetrics {
  Counter* shards_loaded;
  Counter* shards_computed;
  Counter* quarantines;
};
JobMetrics& GetJobMetrics();

/// Streaming-ingestion metrics. The epoch gauges (epoch_seq,
/// staged_segments) are what the router re-exports per backend on its
/// kMetrics scrape.
struct IngestMetrics {
  Counter* segments_loaded;
  Counter* posts_applied;
  Counter* epoch_seals;
  Gauge* epoch_seq;
  Gauge* staged_segments;
  Histogram* epoch_build_micros;
  Counter* quarantines;
  Counter* compactions;
};
IngestMetrics& GetIngestMetrics();

/// Registers every standard metric into `registry` (idempotent). The docs
/// test uses this to enumerate the full exported surface; a process does
/// the same implicitly as subsystems run.
void RegisterAllMetrics(Registry& registry);

}  // namespace dehealth::obs

#endif  // DEHEALTH_OBS_STANDARD_METRICS_H_
