#include "obs/standard_metrics.h"

namespace dehealth::obs {

// ---- core ----
const MetricDef kCoreUdaBuilds = {
    "dehealth_core_uda_builds_total", MetricType::kCounter, "1", "core",
    "UDA graphs built from a forum dataset"};
const MetricDef kCoreUdaPosts = {
    "dehealth_core_uda_posts_total", MetricType::kCounter, "posts", "core",
    "Posts ingested across all UDA graph builds"};
const MetricDef kCoreSimilarityMatrices = {
    "dehealth_core_similarity_matrices_total", MetricType::kCounter, "1",
    "core", "Phase-1a structural similarity matrices computed"};
const MetricDef kCoreSimilarityRows = {
    "dehealth_core_similarity_rows_total", MetricType::kCounter, "rows",
    "core", "Anonymized-user rows scored during similarity computation"};
const MetricDef kCoreTopKDenseRows = {
    "dehealth_core_topk_dense_rows_total", MetricType::kCounter, "rows",
    "core", "Rows ranked by the dense (full-scan) Top-K selector"};
const MetricDef kCoreFilterRuns = {
    "dehealth_core_filter_runs_total", MetricType::kCounter, "1", "core",
    "Phase-1c candidate filtering passes executed"};
const MetricDef kCoreFilterRejected = {
    "dehealth_core_filter_rejected_total", MetricType::kCounter, "candidates",
    "core", "Candidates removed by phase-1c filtering"};
const MetricDef kCoreRefinedUsers = {
    "dehealth_core_refined_users_total", MetricType::kCounter, "users",
    "core", "Anonymized users processed by phase-2 refined DA"};
const MetricDef kCoreSimdKernel = {
    "dehealth_core_simd_kernel", MetricType::kGauge, "1", "core",
    "Score-kernel SIMD tier last dispatched (1=scalar, 2=sse2, 3=avx2)"};
const MetricDef kCoreScoreBlockSize = {
    "dehealth_core_score_block_size", MetricType::kHistogram, "candidates",
    "core", "Candidates per block handed to the batched score kernel"};

// ---- index ----
const MetricDef kIndexTopKQueries = {
    "dehealth_index_topk_queries_total", MetricType::kCounter, "1", "index",
    "Top-K queries answered by the candidate index"};
const MetricDef kIndexExactEvals = {
    "dehealth_index_exact_evals_total", MetricType::kCounter, "candidates",
    "index", "Candidates exactly scored by indexed Top-K search"};
const MetricDef kIndexBoundPruned = {
    "dehealth_index_bound_pruned_total", MetricType::kCounter, "candidates",
    "index", "Candidates skipped by the index upper-bound prune"};
const MetricDef kIndexSnapshotLoads = {
    "dehealth_index_snapshot_loads_total", MetricType::kCounter, "1", "index",
    "DHIX snapshots loaded from disk instead of rebuilt"};
const MetricDef kIndexSnapshotRebuilds = {
    "dehealth_index_snapshot_rebuilds_total", MetricType::kCounter, "1",
    "index", "Candidate indexes rebuilt (missing or stale snapshot)"};
const MetricDef kIndexDenseFallbacks = {
    "dehealth_index_dense_fallbacks_total", MetricType::kCounter, "1",
    "index", "Indexed runs degraded to the dense Top-K path"};
const MetricDef kIndexDenseScans = {
    "dehealth_index_dense_scans_total", MetricType::kCounter, "1", "index",
    "Top-K queries answered by the dense-scan crossover (batched row "
    "kernel instead of best-first pruning)"};

// ---- shard ----
const MetricDef kShardScatterRpcs = {
    "dehealth_shard_scatter_rpcs_total", MetricType::kCounter, "1", "shard",
    "Per-shard sub-queries fanned out by scatter-gather"};
const MetricDef kShardScatterFailures = {
    "dehealth_shard_scatter_failures_total", MetricType::kCounter, "1",
    "shard", "Per-shard sub-queries that failed (backend down or errored)"};
const MetricDef kShardPartialAnswers = {
    "dehealth_shard_partial_answers_total", MetricType::kCounter, "1",
    "shard", "Merged answers served from a subset of shards (degraded)"};
const MetricDef kShardMergeMicros = {
    "dehealth_shard_merge_micros", MetricType::kHistogram, "us", "shard",
    "Time to merge per-shard Top-K heaps into the global answer"};
const MetricDef kShardBackendLatency = {
    "dehealth_shard_backend_latency_micros", MetricType::kHistogram, "us",
    "shard", "Per-backend round-trip latency across all shards"};
const MetricDef kShardSnapshotQuarantines = {
    "dehealth_shard_snapshot_quarantines_total", MetricType::kCounter,
    "files", "shard", "Corrupt per-shard DHIX snapshots quarantined"};

// ---- replica ----
const MetricDef kReplicaFailovers = {
    "dehealth_replica_failovers_total", MetricType::kCounter, "1", "replica",
    "Scatter legs answered by a sibling replica after the first choice "
    "failed (each one is a backend loss made invisible to the client)"};
const MetricDef kReplicaEjections = {
    "dehealth_replica_ejections_total", MetricType::kCounter, "1", "replica",
    "Backends ejected from routing after consecutive failed exchanges"};
const MetricDef kReplicaReadmissions = {
    "dehealth_replica_readmissions_total", MetricType::kCounter, "1",
    "replica", "Ejected backends readmitted after a validated probe"};
const MetricDef kReplicaProbes = {
    "dehealth_replica_probes_total", MetricType::kCounter, "1", "replica",
    "Health probes (queue-bypassing kShardInfo) sent to ejected backends"};
const MetricDef kReplicaProbeFailures = {
    "dehealth_replica_probe_failures_total", MetricType::kCounter, "1",
    "replica", "Health probes that failed or answered a mismatched "
    "identity (the probe backoff grows after each)"};
const MetricDef kReplicaHedges = {
    "dehealth_replica_hedges_total", MetricType::kCounter, "1", "replica",
    "Hedge RPCs fired at a sibling because the primary leg outlived "
    "--hedge-ms"};
const MetricDef kReplicaHedgeWins = {
    "dehealth_replica_hedge_wins_total", MetricType::kCounter, "1",
    "replica", "Hedge RPCs whose answer was used (the primary was "
    "cancelled or lost the race)"};
const MetricDef kReplicaHealthyBackends = {
    "dehealth_replica_healthy_backends", MetricType::kGauge, "backends",
    "replica", "Backends currently routable (fleet size minus ejected)"};
const MetricDef kReplicaRolloutSeals = {
    "dehealth_replica_rollout_seals_total", MetricType::kCounter, "1",
    "replica", "Per-backend epoch seals driven by the rolling fleet-wide "
    "ingestion driver"};

// ---- engines ----
const MetricDef kEngineMatrixBuilds = {
    "dehealth_engine_matrix_builds_total", MetricType::kCounter, "1",
    "engines", "Non-structural engine score matrices built "
    "(--engine=blind|community)"};
const MetricDef kEngineActive = {
    "dehealth_engine_active", MetricType::kGauge, "1", "engines",
    "Attack engine that last built a matrix (0=structural, 1=blind, "
    "2=community)"};
const MetricDef kEngineBlindRounds = {
    "dehealth_engine_blind_rounds_total", MetricType::kCounter, "rounds",
    "engines", "Blind-engine similarity-propagation rounds executed"};
const MetricDef kEngineCommunityMatched = {
    "dehealth_engine_community_matched_total", MetricType::kCounter,
    "communities", "engines",
    "Community pairs matched one-to-one by the community engine"};

// ---- job ----
const MetricDef kJobShardsLoaded = {
    "dehealth_job_shards_loaded_total", MetricType::kCounter, "shards", "job",
    "Job shards satisfied from checkpoint files on resume"};
const MetricDef kJobShardsComputed = {
    "dehealth_job_shards_computed_total", MetricType::kCounter, "shards",
    "job", "Job shards computed (not resumable from checkpoint)"};
const MetricDef kJobQuarantines = {
    "dehealth_job_quarantines_total", MetricType::kCounter, "files", "job",
    "Corrupt checkpoint files quarantined during resume"};

// ---- ingest ----
const MetricDef kIngestSegmentsLoaded = {
    "dehealth_ingest_segments_loaded_total", MetricType::kCounter, "1",
    "ingest", "DHSG delta segments staged into the pending epoch"};
const MetricDef kIngestPostsApplied = {
    "dehealth_ingest_posts_applied_total", MetricType::kCounter, "posts",
    "ingest", "Posts applied incrementally from delta segments"};
const MetricDef kIngestEpochSeals = {
    "dehealth_ingest_epoch_seals_total", MetricType::kCounter, "1", "ingest",
    "Epoch seals: staged state rebuilt into a serving engine and swapped"};
const MetricDef kIngestEpochSeq = {
    "dehealth_ingest_epoch_seq", MetricType::kGauge, "1", "ingest",
    "Current serving epoch sequence number (0 = boot epoch)"};
const MetricDef kIngestStagedSegments = {
    "dehealth_ingest_staged_segments", MetricType::kGauge, "segments",
    "ingest", "Delta segments staged but not yet sealed into an epoch"};
const MetricDef kIngestEpochBuildMicros = {
    "dehealth_ingest_epoch_build_micros", MetricType::kHistogram, "us",
    "ingest", "Time to rebuild the query engine at an epoch seal"};
const MetricDef kIngestQuarantines = {
    "dehealth_ingest_quarantines_total", MetricType::kCounter, "files",
    "ingest", "Corrupt DHSG segment files quarantined"};
const MetricDef kIngestCompactions = {
    "dehealth_ingest_compactions_total", MetricType::kCounter, "1", "ingest",
    "Segment chains merged by LSM-style compaction"};

// ---- serve ----
const MetricDef kServeRequests = {
    "dehealth_serve_requests_total", MetricType::kCounter, "1", "serve",
    "DHQP requests admitted to the queue"};
const MetricDef kServeQueries = {
    "dehealth_serve_queries_total", MetricType::kCounter, "users", "serve",
    "Per-user queries executed across all batches"};
const MetricDef kServeBatches = {
    "dehealth_serve_batches_total", MetricType::kCounter, "1", "serve",
    "Batches executed by the engine"};
const MetricDef kServeBatchSizeMax = {
    "dehealth_serve_batch_size_max", MetricType::kGauge, "requests", "serve",
    "Largest batch executed so far"};
const MetricDef kServeOverloaded = {
    "dehealth_serve_overloaded_total", MetricType::kCounter, "1", "serve",
    "Requests rejected OVERLOADED (queue full)"};
const MetricDef kServeDeadlineExpired = {
    "dehealth_serve_deadline_expired_total", MetricType::kCounter, "1",
    "serve", "Requests expired TIMEOUT before execution"};
const MetricDef kServeQueueDepth = {
    "dehealth_serve_queue_depth", MetricType::kGauge, "requests", "serve",
    "Requests currently waiting in the queue"};
const MetricDef kServeLatency = {
    "dehealth_serve_latency_micros", MetricType::kHistogram, "us", "serve",
    "End-to-end request latency (admission to fulfillment)"};
const MetricDef kServeQueueWait = {
    "dehealth_serve_queue_wait_micros", MetricType::kHistogram, "us", "serve",
    "Time a request waited in the queue before batching"};
const MetricDef kServeEngineTime = {
    "dehealth_serve_engine_micros", MetricType::kHistogram, "us", "serve",
    "Engine execution time per batch"};
const MetricDef kServeBatchSize = {
    "dehealth_serve_batch_size", MetricType::kHistogram, "requests", "serve",
    "Distribution of executed batch sizes"};

const std::vector<const MetricDef*>& AllMetricDefs() {
  static const std::vector<const MetricDef*>* all =
      new std::vector<const MetricDef*>{
          &kCoreUdaBuilds,       &kCoreUdaPosts,
          &kCoreSimilarityMatrices, &kCoreSimilarityRows,
          &kCoreTopKDenseRows,   &kCoreFilterRuns,
          &kCoreFilterRejected,  &kCoreRefinedUsers,
          &kCoreSimdKernel,      &kCoreScoreBlockSize,
          &kIndexTopKQueries,    &kIndexExactEvals,
          &kIndexBoundPruned,    &kIndexSnapshotLoads,
          &kIndexSnapshotRebuilds, &kIndexDenseFallbacks,
          &kIndexDenseScans,     &kShardScatterRpcs,
          &kShardScatterFailures, &kShardPartialAnswers,
          &kShardMergeMicros,    &kShardBackendLatency,
          &kShardSnapshotQuarantines,
          &kReplicaFailovers,    &kReplicaEjections,
          &kReplicaReadmissions, &kReplicaProbes,
          &kReplicaProbeFailures, &kReplicaHedges,
          &kReplicaHedgeWins,    &kReplicaHealthyBackends,
          &kReplicaRolloutSeals,
          &kEngineMatrixBuilds,  &kEngineActive,
          &kEngineBlindRounds,   &kEngineCommunityMatched,
          &kJobShardsLoaded,     &kJobShardsComputed,
          &kJobQuarantines,      &kIngestSegmentsLoaded,
          &kIngestPostsApplied,  &kIngestEpochSeals,
          &kIngestEpochSeq,      &kIngestStagedSegments,
          &kIngestEpochBuildMicros, &kIngestQuarantines,
          &kIngestCompactions,   &kServeRequests,
          &kServeQueries,        &kServeBatches,
          &kServeBatchSizeMax,   &kServeOverloaded,
          &kServeDeadlineExpired, &kServeQueueDepth,
          &kServeLatency,        &kServeQueueWait,
          &kServeEngineTime,     &kServeBatchSize,
      };
  return *all;
}

CoreMetrics& GetCoreMetrics() {
  static CoreMetrics* metrics = [] {
    Registry& r = Registry::Global();
    return new CoreMetrics{
        r.GetCounter(kCoreUdaBuilds),
        r.GetCounter(kCoreUdaPosts),
        r.GetCounter(kCoreSimilarityMatrices),
        r.GetCounter(kCoreSimilarityRows),
        r.GetCounter(kCoreTopKDenseRows),
        r.GetCounter(kCoreFilterRuns),
        r.GetCounter(kCoreFilterRejected),
        r.GetCounter(kCoreRefinedUsers),
        r.GetGauge(kCoreSimdKernel),
        r.GetHistogram(kCoreScoreBlockSize),
    };
  }();
  return *metrics;
}

IndexMetrics& GetIndexMetrics() {
  static IndexMetrics* metrics = [] {
    Registry& r = Registry::Global();
    return new IndexMetrics{
        r.GetCounter(kIndexTopKQueries),
        r.GetCounter(kIndexExactEvals),
        r.GetCounter(kIndexBoundPruned),
        r.GetCounter(kIndexSnapshotLoads),
        r.GetCounter(kIndexSnapshotRebuilds),
        r.GetCounter(kIndexDenseFallbacks),
        r.GetCounter(kIndexDenseScans),
    };
  }();
  return *metrics;
}

EngineMetrics& GetEngineMetrics() {
  static EngineMetrics* metrics = [] {
    Registry& r = Registry::Global();
    return new EngineMetrics{
        r.GetCounter(kEngineMatrixBuilds),
        r.GetGauge(kEngineActive),
        r.GetCounter(kEngineBlindRounds),
        r.GetCounter(kEngineCommunityMatched),
    };
  }();
  return *metrics;
}

ShardMetrics BindShardMetrics(Registry& registry) {
  return ShardMetrics{
      registry.GetCounter(kShardScatterRpcs),
      registry.GetCounter(kShardScatterFailures),
      registry.GetCounter(kShardPartialAnswers),
      registry.GetHistogram(kShardMergeMicros),
      registry.GetHistogram(kShardBackendLatency),
      registry.GetCounter(kShardSnapshotQuarantines),
  };
}

ShardMetrics& GetShardMetrics() {
  static ShardMetrics* metrics =
      new ShardMetrics(BindShardMetrics(Registry::Global()));
  return *metrics;
}

ReplicaMetrics BindReplicaMetrics(Registry& registry) {
  return ReplicaMetrics{
      registry.GetCounter(kReplicaFailovers),
      registry.GetCounter(kReplicaEjections),
      registry.GetCounter(kReplicaReadmissions),
      registry.GetCounter(kReplicaProbes),
      registry.GetCounter(kReplicaProbeFailures),
      registry.GetCounter(kReplicaHedges),
      registry.GetCounter(kReplicaHedgeWins),
      registry.GetGauge(kReplicaHealthyBackends),
      registry.GetCounter(kReplicaRolloutSeals),
  };
}

ReplicaMetrics& GetReplicaMetrics() {
  static ReplicaMetrics* metrics =
      new ReplicaMetrics(BindReplicaMetrics(Registry::Global()));
  return *metrics;
}

JobMetrics& GetJobMetrics() {
  static JobMetrics* metrics = [] {
    Registry& r = Registry::Global();
    return new JobMetrics{
        r.GetCounter(kJobShardsLoaded),
        r.GetCounter(kJobShardsComputed),
        r.GetCounter(kJobQuarantines),
    };
  }();
  return *metrics;
}

IngestMetrics& GetIngestMetrics() {
  static IngestMetrics* metrics = [] {
    Registry& r = Registry::Global();
    return new IngestMetrics{
        r.GetCounter(kIngestSegmentsLoaded),
        r.GetCounter(kIngestPostsApplied),
        r.GetCounter(kIngestEpochSeals),
        r.GetGauge(kIngestEpochSeq),
        r.GetGauge(kIngestStagedSegments),
        r.GetHistogram(kIngestEpochBuildMicros),
        r.GetCounter(kIngestQuarantines),
        r.GetCounter(kIngestCompactions),
    };
  }();
  return *metrics;
}

void RegisterAllMetrics(Registry& registry) {
  for (const MetricDef* def : AllMetricDefs()) {
    switch (def->type) {
      case MetricType::kCounter:
        registry.GetCounter(*def);
        break;
      case MetricType::kGauge:
        registry.GetGauge(*def);
        break;
      case MetricType::kHistogram:
        registry.GetHistogram(*def);
        break;
    }
  }
}

}  // namespace dehealth::obs
