#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace dehealth::obs {

namespace {

/// The one-branch fast path: Span construction loads this and bails. A
/// namespace-scope atomic (not a magic static) so the disabled cost is a
/// relaxed load with no initialization guard.
std::atomic<bool> g_tracing_enabled{false};

}  // namespace

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Per-thread event buffer. Each append takes the buffer's own mutex —
/// uncontended except during the final drain, so the enabled-span cost
/// stays in the tens of nanoseconds. The destructor hands any remaining
/// events to the tracer, so short-lived pool threads never lose spans.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  uint32_t tid = 0;
  uint32_t depth = 0;
  bool registered = false;

  void EnsureRegistered() {
    if (!registered) {
      tid = Tracer::Global().RegisterThread(this);
      registered = true;
    }
  }

  ~ThreadBuffer() {
    if (registered) Tracer::Global().UnregisterThread(this);
  }
};

namespace {

ThreadBuffer& LocalBuffer() {
  static thread_local ThreadBuffer buffer;
  buffer.EnsureRegistered();
  return buffer;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives static dtors
  return *tracer;
}

uint64_t Tracer::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

uint32_t Tracer::RegisterThread(ThreadBuffer* buffer) {
  std::lock_guard<std::mutex> lock(mutex_);
  threads_.push_back(buffer);
  return next_tid_++;
}

void Tracer::UnregisterThread(ThreadBuffer* buffer) {
  // Same lock order as StopAndCollect (tracer mutex, then the buffer's):
  // the dying thread's events move to the orphan list so they survive the
  // buffer, and the registry entry goes away before the pointer dangles.
  std::lock_guard<std::mutex> lock(mutex_);
  threads_.erase(std::remove(threads_.begin(), threads_.end(), buffer),
                 threads_.end());
  std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
  orphaned_.insert(orphaned_.end(), buffer->events.begin(),
                   buffer->events.end());
  buffer->events.clear();
}

Status Tracer::Start(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (enabled_.load(std::memory_order_relaxed))
    return Status::FailedPrecondition("Tracer: already recording");
  // Drop leftovers from a previous session (events recorded between a Stop
  // and this Start, or a DrainForTest race) so the new trace starts clean.
  for (ThreadBuffer* buffer : threads_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  orphaned_.clear();
  path_ = path;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
  g_tracing_enabled.store(true, std::memory_order_relaxed);
  return Status();
}

void Tracer::StartForTest() {
  Status ignored = Start(std::string());
  (void)ignored;
}

std::vector<TraceEvent> Tracer::StopAndCollect() {
  enabled_.store(false, std::memory_order_relaxed);
  g_tracing_enabled.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> events;
  events.swap(orphaned_);
  for (ThreadBuffer* buffer : threads_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
    buffer->events.clear();
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return events;
}

std::vector<TraceEvent> Tracer::DrainForTest() { return StopAndCollect(); }

Status Tracer::Stop() {
  if (!recording()) return Status();
  const std::vector<TraceEvent> events = StopAndCollect();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    path.swap(path_);
  }
  if (path.empty()) return Status();
  const bool chrome = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".json") == 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    return Status::Internal("Tracer: cannot open trace file '" + path + "'");
  out << FormatTrace(events, chrome);
  out.flush();
  if (!out)
    return Status::Internal("Tracer: failed writing trace file '" + path +
                            "'");
  return Status();
}

Span::Span(const char* category, const char* name) {
  if (!TracingEnabled()) return;  // the entire disabled-tracing cost
  active_ = true;
  category_ = category;
  name_ = name;
  ThreadBuffer& buffer = LocalBuffer();
  depth_ = buffer.depth++;
  start_ns_ = Tracer::Global().NowNs();
}

Span::~Span() {
  if (!active_) return;
  const uint64_t end_ns = Tracer::Global().NowNs();
  TraceEvent event;
  event.category = category_;
  event.name = name_;
  event.start_ns = start_ns_;
  event.duration_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  event.depth = depth_;
  event.arg_name = arg_name_;
  event.arg_value = arg_value_;
  ThreadBuffer& buffer = LocalBuffer();
  event.tid = buffer.tid;
  if (buffer.depth > 0) --buffer.depth;
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(event);
}

namespace {

void AppendEventJson(std::string& out, const TraceEvent& e, bool chrome) {
  char buffer[512];
  const double start_us = static_cast<double>(e.start_ns) / 1000.0;
  const double dur_us = static_cast<double>(e.duration_ns) / 1000.0;
  if (chrome) {
    std::snprintf(buffer, sizeof(buffer),
                  "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"cat\":\"%s\","
                  "\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f",
                  e.tid, e.category, e.name, start_us, dur_us);
  } else {
    std::snprintf(buffer, sizeof(buffer),
                  "{\"cat\":\"%s\",\"name\":\"%s\",\"start_us\":%.3f,"
                  "\"dur_us\":%.3f,\"tid\":%u,\"depth\":%u",
                  e.category, e.name, start_us, dur_us, e.tid, e.depth);
  }
  out += buffer;
  if (e.arg_name != nullptr) {
    std::snprintf(buffer, sizeof(buffer),
                  ",\"args\":{\"%s\":%" PRId64 "}", e.arg_name, e.arg_value);
    out += buffer;
  }
  out += '}';
}

}  // namespace

std::string FormatTrace(const std::vector<TraceEvent>& events, bool chrome) {
  std::string out;
  if (chrome) {
    out += "{\"traceEvents\":[\n";
    for (size_t i = 0; i < events.size(); ++i) {
      AppendEventJson(out, events[i], /*chrome=*/true);
      if (i + 1 < events.size()) out += ',';
      out += '\n';
    }
    out += "]}\n";
    return out;
  }
  for (const TraceEvent& event : events) {
    AppendEventJson(out, event, /*chrome=*/false);
    out += '\n';
  }
  return out;
}

}  // namespace dehealth::obs
