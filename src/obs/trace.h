#ifndef DEHEALTH_OBS_TRACE_H_
#define DEHEALTH_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace dehealth::obs {

/// One completed span. `category`/`name`/`arg_name` must be string
/// literals (the tracer stores the pointers, never copies).
struct TraceEvent {
  const char* category = nullptr;
  const char* name = nullptr;
  uint64_t start_ns = 0;     // monotonic, relative to Tracer::Start
  uint64_t duration_ns = 0;
  uint32_t tid = 0;          // tracer-assigned, dense from 0
  uint32_t depth = 0;        // nesting depth within the thread
  const char* arg_name = nullptr;  // optional single integer argument
  int64_t arg_value = 0;
};

/// True when the process tracer is recording. One relaxed atomic load —
/// this is the entire cost of a compiled-in Span while tracing is off.
bool TracingEnabled();

/// The process-wide span tracer behind `--trace-out`: spans record into
/// per-thread buffers (one uncontended mutex acquisition per completed
/// span, no allocation beyond vector growth), and Stop() collects every
/// buffer, orders events by start time, and writes them out:
///
///   - path ending in ".json": one Chrome trace_event document
///     ({"traceEvents": [...]}) loadable in chrome://tracing / Perfetto;
///   - any other path: JSONL, one object per line with cat/name/start_us/
///     dur_us/tid/depth (and args when set).
///
/// Determinism contract: tracing reads the monotonic clock and writes the
/// trace file — it never touches an RNG stream or any attack output, so a
/// traced run's results are bitwise-identical to an untraced run's.
class Tracer {
 public:
  /// The process tracer (never destroyed, like Registry::Global()).
  static Tracer& Global();

  /// Starts recording, clearing any events left from a previous session.
  /// FailedPrecondition when already recording.
  Status Start(const std::string& path);

  /// Stops recording, drains every thread buffer, and writes the trace to
  /// the path given to Start(). No-op OK when not recording.
  Status Stop();

  bool recording() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since Start() on the monotonic clock.
  uint64_t NowNs() const;

  /// Test hook: start recording without a file; DrainForTest stops and
  /// returns the events (sorted by start time) instead of writing them.
  void StartForTest();
  std::vector<TraceEvent> DrainForTest();

 private:
  friend class Span;
  friend struct ThreadBuffer;

  Tracer() = default;

  /// Registers the calling thread's buffer (assigns its tid); called once
  /// per thread on first span.
  uint32_t RegisterThread(struct ThreadBuffer* buffer);
  /// Forgets a dying thread's buffer, inheriting its remaining events;
  /// called from ThreadBuffer's destructor.
  void UnregisterThread(struct ThreadBuffer* buffer);

  /// Disables recording and moves every buffered event into the returned
  /// vector, sorted by (start_ns, tid).
  std::vector<TraceEvent> StopAndCollect();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;

  std::mutex mutex_;  // guards path_, threads_, orphaned_, next_tid_
  std::string path_;
  std::vector<struct ThreadBuffer*> threads_;
  std::vector<TraceEvent> orphaned_;
  uint32_t next_tid_ = 0;
};

/// RAII span: construction notes the start time, destruction records the
/// completed TraceEvent into the thread's buffer. When tracing is disabled
/// the constructor is a single branch and the destructor another — cheap
/// enough to leave compiled into every subsystem permanently.
///
///   obs::Span span("serve", "execute_batch");
///   span.SetArg("batch_size", batch.size());
class Span {
 public:
  Span(const char* category, const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches one integer argument (e.g. a batch size). `name` must be a
  /// string literal. No-op when tracing is off.
  void SetArg(const char* name, int64_t value) {
    if (!active_) return;
    arg_name_ = name;
    arg_value_ = value;
  }

 private:
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  int64_t arg_value_ = 0;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
  bool active_ = false;
};

/// Serializes events the way Stop() writes them; exposed for tests.
/// `chrome` selects the trace_event document format, otherwise JSONL.
std::string FormatTrace(const std::vector<TraceEvent>& events, bool chrome);

}  // namespace dehealth::obs

#endif  // DEHEALTH_OBS_TRACE_H_
