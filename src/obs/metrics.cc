#include "obs/metrics.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace dehealth::obs {

namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void AppendLine(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendLine(std::string& out, const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  out += buffer;
  out += '\n';
}

}  // namespace

Registry& Registry::Global() {
  // Leaked on purpose: instrumentation in static destructors and atexit
  // reporters must never observe a destroyed registry.
  static Registry* global = new Registry();
  return *global;
}

Registry::Entry& Registry::GetOrCreate(const MetricDef& def) {
  auto it = entries_.find(def.name);
  if (it != entries_.end()) {
    if (it->second.def.type != def.type) {
      std::fprintf(stderr,
                   "fatal: metric '%s' registered as %s and again as %s\n",
                   def.name, TypeName(it->second.def.type),
                   TypeName(def.type));
      std::abort();
    }
    return it->second;
  }
  Entry entry;
  entry.def = def;
  switch (def.type) {
    case MetricType::kCounter:
      counters_.emplace_back();
      entry.counter = &counters_.back();
      break;
    case MetricType::kGauge:
      gauges_.emplace_back();
      entry.gauge = &gauges_.back();
      break;
    case MetricType::kHistogram:
      histograms_.emplace_back();
      entry.histogram = &histograms_.back();
      break;
  }
  return entries_.emplace(def.name, entry).first->second;
}

Counter* Registry::GetCounter(const MetricDef& def) {
  std::lock_guard<std::mutex> lock(mutex_);
  return GetOrCreate(def).counter;
}

Gauge* Registry::GetGauge(const MetricDef& def) {
  std::lock_guard<std::mutex> lock(mutex_);
  return GetOrCreate(def).gauge;
}

Histogram* Registry::GetHistogram(const MetricDef& def) {
  std::lock_guard<std::mutex> lock(mutex_);
  return GetOrCreate(def).histogram;
}

std::vector<MetricDef> Registry::Defs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricDef> defs;
  defs.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) defs.push_back(entry.def);
  return defs;
}

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    AppendLine(out, "# HELP %s %s", entry.def.name, entry.def.help);
    AppendLine(out, "# TYPE %s %s", entry.def.name, TypeName(entry.def.type));
    switch (entry.def.type) {
      case MetricType::kCounter:
        AppendLine(out, "%s %" PRIu64, entry.def.name,
                   entry.counter->Value());
        break;
      case MetricType::kGauge:
        AppendLine(out, "%s %" PRId64, entry.def.name, entry.gauge->Value());
        break;
      case MetricType::kHistogram: {
        // Cumulative power-of-two buckets in the metric's own unit; only
        // buckets up to the last non-empty one are listed (the exposition
        // format allows any bucket subset as long as +Inf is present).
        const LatencyHistogram& h = entry.histogram->raw();
        uint64_t cumulative = 0;
        int last_nonzero = -1;
        for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i)
          if (h.BucketCount(i) > 0) last_nonzero = i;
        for (int i = 0; i <= last_nonzero; ++i) {
          cumulative += h.BucketCount(i);
          AppendLine(out, "%s_bucket{le=\"%.0f\"} %" PRIu64, entry.def.name,
                     LatencyHistogram::BucketUpperBound(i), cumulative);
        }
        AppendLine(out, "%s_bucket{le=\"+Inf\"} %" PRIu64, entry.def.name,
                   entry.histogram->Count());
        AppendLine(out, "%s_sum %" PRIu64, entry.def.name,
                   entry.histogram->Sum());
        AppendLine(out, "%s_count %" PRIu64, entry.def.name,
                   entry.histogram->Count());
        break;
      }
    }
  }
  return out;
}

std::string Registry::RenderNonZeroSummary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    switch (entry.def.type) {
      case MetricType::kCounter:
        if (entry.counter->Value() == 0) continue;
        AppendLine(out, "  %s %" PRIu64, entry.def.name,
                   entry.counter->Value());
        break;
      case MetricType::kGauge:
        if (entry.gauge->Value() == 0) continue;
        AppendLine(out, "  %s %" PRId64, entry.def.name,
                   entry.gauge->Value());
        break;
      case MetricType::kHistogram:
        if (entry.histogram->Count() == 0) continue;
        AppendLine(out, "  %s count=%" PRIu64 " p50=%.0f p99=%.0f max=%.0f",
                   entry.def.name, entry.histogram->Count(),
                   entry.histogram->Quantile(0.5),
                   entry.histogram->Quantile(0.99), entry.histogram->Max());
        break;
    }
  }
  return out;
}

}  // namespace dehealth::obs
