#ifndef DEHEALTH_OBS_METRICS_H_
#define DEHEALTH_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace dehealth::obs {

/// What a metric measures and how it is exposed. Counters only grow,
/// gauges are set to the latest value, histograms bucket power-of-two
/// magnitudes (see common/histogram.h).
enum class MetricType { kCounter, kGauge, kHistogram };

/// Compile-time description of one metric. Every registered metric comes
/// from a MetricDef (the standard set lives in obs/standard_metrics.h),
/// which is what lets the docs-consistency test enumerate every name the
/// process can export and hold docs/METRICS.md to it.
struct MetricDef {
  /// Full exposition name, e.g. "dehealth_serve_requests_total". Counters
  /// end in "_total", histograms carry their unit suffix ("_micros").
  const char* name;
  MetricType type;
  /// Unit of one sample/increment: "1" (dimensionless), "us", "posts"...
  const char* unit;
  /// Owning subsystem: "core", "index", "job", "serve".
  const char* subsystem;
  /// One-line meaning, exported as the "# HELP" comment.
  const char* help;
};

/// Monotonic counter. Increment is one relaxed atomic add — safe and cheap
/// from any thread, including ParallelFor workers on the attack hot path.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge with a monotone-max helper (for "largest batch seen"
/// style metrics). All operations are relaxed atomics.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if it is larger than the current value.
  void MaxWith(int64_t v) {
    int64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen &&
           !value_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Power-of-two-bucket histogram (common/histogram.h folded in behind the
/// registry facade). Quantiles are bucket upper bounds; see the
/// LatencyHistogram contract for fidelity.
class Histogram {
 public:
  void Record(double value) { histogram_.Record(value); }
  uint64_t Count() const { return histogram_.TotalCount(); }
  double Quantile(double q) const { return histogram_.QuantileMicros(q); }
  double Max() const { return histogram_.MaxMicros(); }
  uint64_t Sum() const { return histogram_.SumMicros(); }
  const LatencyHistogram& raw() const { return histogram_; }

 private:
  LatencyHistogram histogram_;
};

/// Process- or server-scoped metrics registry: the single facade behind
/// which every counter, gauge, and histogram in the pipeline lives.
/// Registration is get-or-create keyed on MetricDef::name and returns a
/// pointer that stays valid for the registry's lifetime (deque-backed);
/// re-registering the same name with a different type is a programming
/// error and aborts. All metric mutation is lock-free; registration and
/// rendering take a mutex.
///
/// Registry::Global() is the process-wide instance the library
/// instrumentation uses (leaked on purpose — metrics must outlive every
/// static destructor). Tests and embedded servers can construct private
/// registries for isolation.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry (never destroyed).
  static Registry& Global();

  Counter* GetCounter(const MetricDef& def);
  Gauge* GetGauge(const MetricDef& def);
  Histogram* GetHistogram(const MetricDef& def);

  /// Defs of every registered metric, sorted by name.
  std::vector<MetricDef> Defs() const;

  /// Prometheus text exposition format (version 0.0.4): "# HELP" / "# TYPE"
  /// comments followed by samples, metrics sorted by name. Histogram
  /// buckets use cumulative `_bucket{le="..."}` counts in the metric's own
  /// unit (microseconds for latency histograms), plus `_sum` and `_count`.
  std::string RenderPrometheus() const;

  /// Human-readable "name value" lines for every metric with at least one
  /// increment/sample, sorted by name; empty string when nothing was
  /// touched. Histograms render as "count=N p50=X p99=Y max=Z". This is
  /// what bench binaries print on exit.
  std::string RenderNonZeroSummary() const;

 private:
  struct Entry {
    MetricDef def;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  /// Looks up `def.name`, verifying the type on a hit; creates on a miss.
  /// Caller must hold mutex_.
  Entry& GetOrCreate(const MetricDef& def);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace dehealth::obs

#endif  // DEHEALTH_OBS_METRICS_H_
