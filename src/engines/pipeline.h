#ifndef DEHEALTH_ENGINES_PIPELINE_H_
#define DEHEALTH_ENGINES_PIPELINE_H_

#include <vector>

#include "core/de_health.h"
#include "core/uda_graph.h"

namespace dehealth {

/// Builds the |Δ1|×|Δ2| score matrix of a non-structural engine
/// (config.engine == kBlind or kCommunity), honoring config.num_threads,
/// config.engine_seed and — for the community engine's within-community
/// scorer — config.similarity (idf/simd/weights). InvalidArgument for
/// kStructural: that engine's dense/indexed/sharded modes belong to
/// BuildAttackScoreSource (src/index/pipeline.h), which calls here for
/// the others.
///
/// Deterministic and bitwise thread-invariant, like every matrix in the
/// pipeline (docs/ENGINES.md spells out the contract). Also updates the
/// per-engine metrics (dehealth_engine_*).
StatusOr<std::vector<std::vector<double>>> BuildEngineMatrix(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const DeHealthConfig& config);

}  // namespace dehealth

#endif  // DEHEALTH_ENGINES_PIPELINE_H_
