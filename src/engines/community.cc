#include "engines/community.h"

#include <algorithm>

#include "common/parallel.h"
#include "common/rng.h"
#include "graph/community.h"
#include "obs/standard_metrics.h"

namespace dehealth {

namespace {

/// One (mean affinity, anon label, aux label) matching candidate; ranked
/// by descending affinity with label tie-breaks — a total order, so the
/// greedy matching is deterministic.
struct CommunityPair {
  double affinity;
  int anon_label;
  int aux_label;
};

bool BetterCommunityPair(const CommunityPair& a, const CommunityPair& b) {
  if (a.affinity != b.affinity) return a.affinity > b.affinity;
  if (a.anon_label != b.anon_label) return a.anon_label < b.anon_label;
  return a.aux_label < b.aux_label;
}

}  // namespace

StatusOr<CommunityEngineResult> BuildCommunityMatrix(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const CommunityEngineConfig& config) {
  if (config.max_iterations < 1)
    return Status::InvalidArgument(
        "BuildCommunityMatrix: max_iterations must be >= 1");
  if (!(config.cross_community_factor >= 0.0 &&
        config.cross_community_factor <= 1.0))
    return Status::InvalidArgument(
        "BuildCommunityMatrix: cross_community_factor must be in [0, 1]");

  CommunityEngineResult result;

  // Stage 1: communities. Label propagation is serial and deterministic
  // given its Rng; each graph gets an independent MixSeed stream.
  Rng anon_rng(MixSeed(config.seed, 0));
  Rng aux_rng(MixSeed(config.seed, 1));
  const CommunityResult anon_lp =
      LabelPropagation(anonymized.graph, anon_rng, config.max_iterations);
  const CommunityResult aux_lp =
      LabelPropagation(auxiliary.graph, aux_rng, config.max_iterations);
  result.anon_communities = anon_lp.num_communities;
  result.aux_communities = aux_lp.num_communities;

  // Stage 3a (computed before the matching that consumes it): the PR-6
  // structural kernel matrix — bitwise thread-invariant (DESIGN.md "Score
  // kernel"), and the sole score source both remaining stages read.
  SimilarityConfig sim_config = config.similarity;
  sim_config.num_threads = config.num_threads;
  const StructuralSimilarity scorer(anonymized, auxiliary, sim_config);
  std::vector<std::vector<double>> base = scorer.ComputeMatrix();

  // Stage 2: community affinity = mean member-pair structural score.
  // Accumulated serially in (u, v) order so the floating-point sums are a
  // fixed-order reduction — never thread-dependent.
  const int n1 = anonymized.num_users();
  const int n2 = auxiliary.num_users();
  std::vector<std::vector<double>> affinity(
      static_cast<size_t>(anon_lp.num_communities),
      std::vector<double>(static_cast<size_t>(aux_lp.num_communities), 0.0));
  std::vector<int64_t> anon_sizes(static_cast<size_t>(anon_lp.num_communities),
                                  0);
  std::vector<int64_t> aux_sizes(static_cast<size_t>(aux_lp.num_communities),
                                 0);
  for (int u = 0; u < n1; ++u)
    ++anon_sizes[static_cast<size_t>(anon_lp.label[static_cast<size_t>(u)])];
  for (int v = 0; v < n2; ++v)
    ++aux_sizes[static_cast<size_t>(aux_lp.label[static_cast<size_t>(v)])];
  for (int u = 0; u < n1; ++u) {
    const int la = anon_lp.label[static_cast<size_t>(u)];
    const std::vector<double>& row = base[static_cast<size_t>(u)];
    std::vector<double>& arow = affinity[static_cast<size_t>(la)];
    for (int v = 0; v < n2; ++v)
      arow[static_cast<size_t>(aux_lp.label[static_cast<size_t>(v)])] +=
          row[static_cast<size_t>(v)];
  }
  std::vector<CommunityPair> pairs;
  for (int a = 0; a < anon_lp.num_communities; ++a)
    for (int b = 0; b < aux_lp.num_communities; ++b) {
      const double sum = affinity[static_cast<size_t>(a)][static_cast<size_t>(b)];
      if (sum <= 0.0) continue;  // no member pair looks alike — never match
      pairs.push_back(
          {sum / static_cast<double>(anon_sizes[static_cast<size_t>(a)] *
                                     aux_sizes[static_cast<size_t>(b)]),
           a, b});
    }
  std::sort(pairs.begin(), pairs.end(), BetterCommunityPair);
  result.matched_aux_community.assign(
      static_cast<size_t>(anon_lp.num_communities), -1);
  std::vector<char> aux_taken(static_cast<size_t>(aux_lp.num_communities), 0);
  for (const CommunityPair& p : pairs) {
    if (result.matched_aux_community[static_cast<size_t>(p.anon_label)] != -1 ||
        aux_taken[static_cast<size_t>(p.aux_label)])
      continue;
    result.matched_aux_community[static_cast<size_t>(p.anon_label)] =
        p.aux_label;
    aux_taken[static_cast<size_t>(p.aux_label)] = 1;
    ++result.matched_communities;
  }

  // Stage 3b: damp cross-community pairs. Row-parallel; each row's
  // arithmetic is a fixed per-element multiply.
  ParallelFor(
      0, n1,
      [&](int64_t u) {
        const int matched = result.matched_aux_community[static_cast<size_t>(
            anon_lp.label[static_cast<size_t>(u)])];
        std::vector<double>& row = base[static_cast<size_t>(u)];
        for (int v = 0; v < n2; ++v)
          if (aux_lp.label[static_cast<size_t>(v)] != matched)
            row[static_cast<size_t>(v)] *= config.cross_community_factor;
      },
      config.num_threads);
  result.similarity = std::move(base);

  obs::GetEngineMetrics().community_matched->Increment(
      static_cast<uint64_t>(result.matched_communities));
  return result;
}

}  // namespace dehealth
