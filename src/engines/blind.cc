#include "engines/blind.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "obs/standard_metrics.h"

namespace dehealth {

namespace {

/// Log2 buckets of the neighbor-degree distribution; degree d lands in
/// bucket floor(log2(d)) clamped to the last bucket, so the histogram
/// compares coarse neighborhood shape instead of exact degree sequences
/// (robust to the sparse, noisy health graphs).
constexpr int kDegreeBuckets = 16;

int DegreeBucket(int degree) {
  int bucket = 0;
  while (degree > 1 && bucket < kDegreeBuckets - 1) {
    degree >>= 1;
    ++bucket;
  }
  return bucket;
}

/// Per-node structural profile of one side, precomputed once.
struct SideProfile {
  std::vector<double> degree;
  std::vector<double> weighted_degree;
  /// Normalized neighbor-degree histogram (empty for isolated nodes).
  std::vector<std::vector<double>> histogram;
  /// Highest-degree neighbors (ties: smaller id), capped at max_neighbors.
  std::vector<std::vector<NodeId>> top_neighbors;
};

SideProfile ProfileSide(const UdaGraph& side, int max_neighbors) {
  const CorrelationGraph& graph = side.graph;
  const int n = graph.num_nodes();
  SideProfile profile;
  profile.degree.resize(static_cast<size_t>(n));
  profile.weighted_degree.resize(static_cast<size_t>(n));
  profile.histogram.resize(static_cast<size_t>(n));
  profile.top_neighbors.resize(static_cast<size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    profile.degree[static_cast<size_t>(u)] = graph.Degree(u);
    profile.weighted_degree[static_cast<size_t>(u)] = graph.WeightedDegree(u);
    const auto& neighbors = graph.Neighbors(u);
    if (neighbors.empty()) continue;
    std::vector<double>& hist = profile.histogram[static_cast<size_t>(u)];
    hist.assign(kDegreeBuckets, 0.0);
    for (const auto& nb : neighbors)
      hist[static_cast<size_t>(DegreeBucket(graph.Degree(nb.id)))] += 1.0;
    for (double& h : hist) h /= static_cast<double>(neighbors.size());

    std::vector<NodeId>& top = profile.top_neighbors[static_cast<size_t>(u)];
    top.reserve(neighbors.size());
    for (const auto& nb : neighbors) top.push_back(nb.id);
    std::sort(top.begin(), top.end(), [&](NodeId a, NodeId b) {
      if (graph.Degree(a) != graph.Degree(b))
        return graph.Degree(a) > graph.Degree(b);
      return a < b;
    });
    if (static_cast<int>(top.size()) > max_neighbors)
      top.resize(static_cast<size_t>(max_neighbors));
  }
  return profile;
}

/// min/max ratio in [0, 1]; two zeros agree perfectly.
double RatioSimilarity(double a, double b) {
  if (a == 0.0 && b == 0.0) return 1.0;
  if (a == 0.0 || b == 0.0) return 0.0;
  return a < b ? a / b : b / a;
}

double HistogramSimilarity(const std::vector<double>& a,
                           const std::vector<double>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  double l1 = 0.0;
  for (int i = 0; i < kDegreeBuckets; ++i)
    l1 += std::fabs(a[static_cast<size_t>(i)] - b[static_cast<size_t>(i)]);
  return 1.0 - 0.5 * l1;
}

/// One (score, anon neighbor slot, aux neighbor slot) propagation
/// candidate; ranked by descending score with slot-index tie-breaks so the
/// greedy matching is a total order independent of anything but the
/// previous round's scores.
struct NeighborPair {
  double score;
  int i;
  int j;
};

bool BetterNeighborPair(const NeighborPair& a, const NeighborPair& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.i != b.i) return a.i < b.i;
  return a.j < b.j;
}

}  // namespace

StatusOr<std::vector<std::vector<double>>> BuildBlindMatrix(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const BlindConfig& config) {
  if (config.propagation_rounds < 0)
    return Status::InvalidArgument(
        "BuildBlindMatrix: propagation_rounds must be >= 0");
  if (!(config.alpha >= 0.0 && config.alpha <= 1.0))
    return Status::InvalidArgument(
        "BuildBlindMatrix: alpha must be in [0, 1]");
  if (config.max_neighbors < 1)
    return Status::InvalidArgument(
        "BuildBlindMatrix: max_neighbors must be >= 1");

  const int n1 = anonymized.num_users();
  const int n2 = auxiliary.num_users();
  const SideProfile anon = ProfileSide(anonymized, config.max_neighbors);
  const SideProfile aux = ProfileSide(auxiliary, config.max_neighbors);

  // Seed scores: pure per-pair structure, row-parallel.
  std::vector<std::vector<double>> seed(static_cast<size_t>(n1));
  ParallelFor(
      0, n1,
      [&](int64_t u) {
        std::vector<double>& row = seed[static_cast<size_t>(u)];
        row.resize(static_cast<size_t>(n2));
        for (int v = 0; v < n2; ++v) {
          const double d = RatioSimilarity(anon.degree[static_cast<size_t>(u)],
                                           aux.degree[static_cast<size_t>(v)]);
          const double wd =
              RatioSimilarity(anon.weighted_degree[static_cast<size_t>(u)],
                              aux.weighted_degree[static_cast<size_t>(v)]);
          const double h =
              HistogramSimilarity(anon.histogram[static_cast<size_t>(u)],
                                  aux.histogram[static_cast<size_t>(v)]);
          row[static_cast<size_t>(v)] = (d + wd + h) / 3.0;
        }
      },
      config.num_threads);

  std::vector<std::vector<double>> current = seed;
  std::vector<std::vector<double>> next(static_cast<size_t>(n1));
  for (int round = 0; round < config.propagation_rounds; ++round) {
    // Double-buffered: every task reads only `current` (frozen this
    // round) and writes its own `next` row, so the result is a pure
    // function of the round inputs — bitwise thread-invariant.
    ParallelFor(
        0, n1,
        [&](int64_t u) {
          const std::vector<NodeId>& nu =
              anon.top_neighbors[static_cast<size_t>(u)];
          std::vector<double>& row = next[static_cast<size_t>(u)];
          row.resize(static_cast<size_t>(n2));
          std::vector<NeighborPair> pairs;
          std::vector<char> used_i, used_j;
          for (int v = 0; v < n2; ++v) {
            const std::vector<NodeId>& nv =
                aux.top_neighbors[static_cast<size_t>(v)];
            double prop;
            if (nu.empty() && nv.empty()) {
              // No neighborhood evidence either way: carry the seed score.
              prop = seed[static_cast<size_t>(u)][static_cast<size_t>(v)];
            } else if (nu.empty() || nv.empty()) {
              // One side isolated, the other not: structural contradiction.
              prop = 0.0;
            } else {
              pairs.clear();
              for (size_t i = 0; i < nu.size(); ++i)
                for (size_t j = 0; j < nv.size(); ++j)
                  pairs.push_back(
                      {current[static_cast<size_t>(nu[i])]
                              [static_cast<size_t>(nv[j])],
                       static_cast<int>(i), static_cast<int>(j)});
              std::sort(pairs.begin(), pairs.end(), BetterNeighborPair);
              used_i.assign(nu.size(), 0);
              used_j.assign(nv.size(), 0);
              double matched = 0.0;
              size_t matches = 0;
              const size_t want = std::min(nu.size(), nv.size());
              for (const NeighborPair& p : pairs) {
                if (used_i[static_cast<size_t>(p.i)] ||
                    used_j[static_cast<size_t>(p.j)])
                  continue;
                used_i[static_cast<size_t>(p.i)] = 1;
                used_j[static_cast<size_t>(p.j)] = 1;
                matched += p.score;
                if (++matches == want) break;
              }
              // Averaging over the LARGER neighborhood penalizes degree
              // mismatch the greedy matching itself cannot see.
              prop = matched /
                     static_cast<double>(std::max(nu.size(), nv.size()));
            }
            row[static_cast<size_t>(v)] =
                (1.0 - config.alpha) *
                    seed[static_cast<size_t>(u)][static_cast<size_t>(v)] +
                config.alpha * prop;
          }
        },
        config.num_threads);
    std::swap(current, next);
    obs::GetEngineMetrics().blind_rounds->Increment();
  }
  return current;
}

}  // namespace dehealth
