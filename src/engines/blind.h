#ifndef DEHEALTH_ENGINES_BLIND_H_
#define DEHEALTH_ENGINES_BLIND_H_

#include <vector>

#include "common/status.h"
#include "core/uda_graph.h"

namespace dehealth {

/// Knobs of the seed-free blind DA engine (Lee et al., Blind
/// De-anonymization Attacks using Social Networks — PAPERS.md). The attack
/// uses ONLY graph structure: no stylometric attributes, no seed mappings.
struct BlindConfig {
  /// Iterative-propagation rounds refining the structural seed scores
  /// (0 = seed scores only). Each round mixes a pair's score with the
  /// greedily matched scores of its neighborhoods, so agreeing neighbors
  /// reinforce a mapping the way Lee et al.'s propagation step does.
  int propagation_rounds = 2;
  /// Weight of the propagated neighborhood evidence against the seed
  /// structural score in each round (s ← (1-α)·s0 + α·prop). Must be in
  /// [0, 1].
  double alpha = 0.5;
  /// Per-node neighborhood cap: propagation considers only this many
  /// highest-degree neighbors (ties broken by smaller id), bounding the
  /// per-pair cost at max_neighbors² score lookups. Must be >= 1.
  int max_neighbors = 16;
  /// Worker threads (0 = hardware concurrency). The matrix is
  /// bitwise-identical for any value: rounds are double-buffered and each
  /// row's arithmetic runs in one task in a fixed order.
  int num_threads = 0;
};

/// Computes the |Δ1|×|Δ2| blind-DA score matrix:
///
///   seed score s0(u,v) — mean of three structural terms in [0, 1]:
///     min/max degree ratio, min/max weighted-degree ratio, and 1 − L1/2
///     distance between the nodes' log2-bucketed neighbor-degree
///     distributions (both isolated ⇒ 1, exactly one isolated ⇒ 0);
///   propagation     s_{t+1}(u,v) = (1−α)·s0(u,v) + α·prop_t(u,v)
///     where prop_t greedily matches u's capped neighborhood against v's
///     by descending s_t (ties: smaller anonymized id, then smaller
///     auxiliary id) and averages the matched scores over
///     max(|N(u)|, |N(v)|). Pairs where both sides are isolated propagate
///     their own seed score; pairs where exactly one side is isolated
///     propagate 0 (structural contradiction).
///
/// Deterministic — no RNG, fixed iteration order — and bitwise-identical
/// for any thread count. InvalidArgument on out-of-range config values.
StatusOr<std::vector<std::vector<double>>> BuildBlindMatrix(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const BlindConfig& config);

}  // namespace dehealth

#endif  // DEHEALTH_ENGINES_BLIND_H_
