#ifndef DEHEALTH_ENGINES_COMMUNITY_H_
#define DEHEALTH_ENGINES_COMMUNITY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/similarity.h"
#include "core/uda_graph.h"

namespace dehealth {

/// Knobs of the community-aware DA engine (Onaran et al., Optimal
/// De-Anonymization in Random Graphs with Community Structure —
/// PAPERS.md): detect communities on both graphs, match communities
/// first, then de-anonymize within matched communities.
struct CommunityEngineConfig {
  /// Seed of the two label-propagation passes (one per graph, on
  /// independent MixSeed streams). Result-shaping: same seed ⇒ same
  /// communities ⇒ same scores.
  uint64_t seed = 1;
  /// Label-propagation round cap (graph/community.h). Must be >= 1.
  int max_iterations = 50;
  /// Score multiplier for pairs whose communities were NOT matched, in
  /// [0, 1]: 0 annihilates cross-community candidates (pure Onaran-style
  /// two-stage matching), 1 disables the community prior entirely.
  /// Within-row order of same-community candidates is never changed.
  double cross_community_factor = 0.25;
  /// The within-community scorer: the PR-6 structural kernel
  /// (CombinedStructuralScore through the batched SIMD FeatureStore).
  /// num_threads/simd behave exactly as in the structural engine.
  SimilarityConfig similarity;
  /// Worker threads for the matrix passes (0 = hardware concurrency);
  /// bitwise-identical output for any value.
  int num_threads = 0;
};

/// What BuildCommunityMatrix computed, with the community bookkeeping the
/// tests and `dehealth_cli evaluate` report on.
struct CommunityEngineResult {
  /// result[u][v]: the PR-6 structural score, damped by
  /// cross_community_factor when u's community was not matched to v's.
  std::vector<std::vector<double>> similarity;
  int anon_communities = 0;
  int aux_communities = 0;
  /// One-to-one community matches made (<= min of the two counts).
  int matched_communities = 0;
  /// matched_aux_community[a] = aux community matched to anonymized
  /// community a, or -1 when a went unmatched.
  std::vector<int> matched_aux_community;
};

/// Runs the three deterministic stages:
///   1. label-propagation communities on both correlation graphs
///      (Rng(MixSeed(seed, 0)) / Rng(MixSeed(seed, 1)));
///   2. community matching: mean structural score between the members of
///      every (anonymized community, auxiliary community) pair, matched
///      greedily one-to-one by descending mean (ties: smaller anonymized
///      label, then smaller auxiliary label) — only pairs with positive
///      affinity match;
///   3. candidate scoring: the PR-6 kernel matrix, scaled by
///      cross_community_factor outside matched communities.
///
/// Bitwise-deterministic for any thread count: label propagation is
/// serial and seeded, the affinity accumulation runs in one fixed order,
/// and the matrix passes are row-parallel with fixed per-row arithmetic.
/// InvalidArgument on out-of-range config values.
StatusOr<CommunityEngineResult> BuildCommunityMatrix(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const CommunityEngineConfig& config);

}  // namespace dehealth

#endif  // DEHEALTH_ENGINES_COMMUNITY_H_
