#include "engines/pipeline.h"

#include <utility>

#include "engines/blind.h"
#include "engines/community.h"
#include "obs/standard_metrics.h"

namespace dehealth {

StatusOr<std::vector<std::vector<double>>> BuildEngineMatrix(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const DeHealthConfig& config) {
  obs::EngineMetrics& metrics = obs::GetEngineMetrics();
  switch (config.engine) {
    case EngineKind::kStructural:
      return Status::InvalidArgument(
          "BuildEngineMatrix: the structural engine is served by "
          "BuildAttackScoreSource's dense/indexed modes, not here");
    case EngineKind::kBlind: {
      BlindConfig blind;
      blind.num_threads = config.num_threads;
      StatusOr<std::vector<std::vector<double>>> matrix =
          BuildBlindMatrix(anonymized, auxiliary, blind);
      if (!matrix.ok()) return matrix.status();
      metrics.matrix_builds->Increment();
      metrics.active_engine->Set(static_cast<int64_t>(config.engine));
      return matrix;
    }
    case EngineKind::kCommunity: {
      CommunityEngineConfig community;
      community.seed = config.engine_seed;
      community.similarity = config.similarity;
      community.num_threads = config.num_threads;
      StatusOr<CommunityEngineResult> built =
          BuildCommunityMatrix(anonymized, auxiliary, community);
      if (!built.ok()) return built.status();
      metrics.matrix_builds->Increment();
      metrics.active_engine->Set(static_cast<int64_t>(config.engine));
      return std::move(built->similarity);
    }
  }
  return Status::InvalidArgument("BuildEngineMatrix: unknown engine kind");
}

}  // namespace dehealth
