#ifndef DEHEALTH_TEXT_TOKENIZER_H_
#define DEHEALTH_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace dehealth {

/// Kind of a surface token.
enum class TokenKind {
  kWord,         // alphabetic, possibly with internal apostrophe: don't
  kNumber,       // all digits
  kPunctuation,  // . , ; : ! ? ' " ( ) - and friends
  kSpecial,      // @ # $ % ^ & * _ + = / \ | < > ~ ` [ ] { }
};

/// A token plus its classification.
struct Token {
  std::string text;
  TokenKind kind;

  bool operator==(const Token& other) const = default;
};

/// Orthographic shape of a word token (used by the "word shape" feature
/// family of Table I).
enum class WordShape {
  kAllLower,        // "health"
  kAllUpper,        // "HIV"
  kFirstUpper,      // "Monday"
  kCamel,           // "WebMD", "iPhone" (mixed case, not the above)
  kOther,           // contains non-letters
};

/// Classifies the case shape of `word`.
WordShape ClassifyWordShape(std::string_view word);

/// Splits raw post text into classified tokens. Whitespace separates tokens;
/// punctuation and special characters are emitted as single-character tokens
/// even when glued to words ("pain," -> "pain" + ","). Apostrophes inside a
/// word are kept ("don't").
std::vector<Token> Tokenize(std::string_view text);

/// Convenience: only the word tokens, in order.
std::vector<std::string> TokenizeWords(std::string_view text);

/// Splits text into sentences on ./!/? boundaries (quote- and
/// whitespace-tolerant). A trailing fragment without a terminator counts as a
/// sentence.
std::vector<std::string> SplitSentences(std::string_view text);

/// Splits text into paragraphs on blank lines.
std::vector<std::string> SplitParagraphs(std::string_view text);

}  // namespace dehealth

#endif  // DEHEALTH_TEXT_TOKENIZER_H_
