#include "text/pos_tagger.h"

#include <cctype>
#include <unordered_map>

#include "common/string_utils.h"

namespace dehealth {

namespace {

const std::unordered_map<std::string, PosTag>& ClosedClassLexicon() {
  static const auto& lex = *new std::unordered_map<std::string, PosTag>{
      // Determiners.
      {"the", PosTag::kDT}, {"a", PosTag::kDT}, {"an", PosTag::kDT},
      {"this", PosTag::kDT}, {"that", PosTag::kDT}, {"these", PosTag::kDT},
      {"those", PosTag::kDT}, {"each", PosTag::kDT}, {"every", PosTag::kDT},
      {"some", PosTag::kDT}, {"any", PosTag::kDT}, {"no", PosTag::kDT},
      {"another", PosTag::kDT}, {"either", PosTag::kDT},
      {"neither", PosTag::kDT},
      // Predeterminers.
      {"all", PosTag::kPDT}, {"both", PosTag::kPDT}, {"half", PosTag::kPDT},
      // Personal pronouns.
      {"i", PosTag::kPRP}, {"you", PosTag::kPRP}, {"he", PosTag::kPRP},
      {"she", PosTag::kPRP}, {"it", PosTag::kPRP}, {"we", PosTag::kPRP},
      {"they", PosTag::kPRP}, {"me", PosTag::kPRP}, {"him", PosTag::kPRP},
      {"them", PosTag::kPRP}, {"us", PosTag::kPRP}, {"myself", PosTag::kPRP},
      {"yourself", PosTag::kPRP}, {"himself", PosTag::kPRP},
      {"herself", PosTag::kPRP}, {"itself", PosTag::kPRP},
      {"ourselves", PosTag::kPRP}, {"themselves", PosTag::kPRP},
      {"someone", PosTag::kPRP}, {"anyone", PosTag::kPRP},
      {"everyone", PosTag::kPRP}, {"nobody", PosTag::kPRP},
      {"somebody", PosTag::kPRP}, {"anybody", PosTag::kPRP},
      {"everybody", PosTag::kPRP}, {"something", PosTag::kPRP},
      {"anything", PosTag::kPRP}, {"everything", PosTag::kPRP},
      {"nothing", PosTag::kPRP},
      // Possessive pronouns.
      {"my", PosTag::kPRPS}, {"your", PosTag::kPRPS}, {"his", PosTag::kPRPS},
      {"her", PosTag::kPRPS}, {"its", PosTag::kPRPS}, {"our", PosTag::kPRPS},
      {"their", PosTag::kPRPS}, {"mine", PosTag::kPRPS},
      {"yours", PosTag::kPRPS}, {"hers", PosTag::kPRPS},
      {"ours", PosTag::kPRPS}, {"theirs", PosTag::kPRPS},
      // Prepositions / subordinating conjunctions.
      {"in", PosTag::kIN}, {"on", PosTag::kIN}, {"at", PosTag::kIN},
      {"by", PosTag::kIN}, {"for", PosTag::kIN}, {"with", PosTag::kIN},
      {"about", PosTag::kIN}, {"against", PosTag::kIN},
      {"between", PosTag::kIN}, {"into", PosTag::kIN},
      {"through", PosTag::kIN}, {"during", PosTag::kIN},
      {"before", PosTag::kIN}, {"after", PosTag::kIN},
      {"above", PosTag::kIN}, {"below", PosTag::kIN}, {"from", PosTag::kIN},
      {"of", PosTag::kIN}, {"since", PosTag::kIN}, {"under", PosTag::kIN},
      {"over", PosTag::kIN}, {"without", PosTag::kIN},
      {"within", PosTag::kIN}, {"along", PosTag::kIN},
      {"across", PosTag::kIN}, {"behind", PosTag::kIN},
      {"beyond", PosTag::kIN}, {"except", PosTag::kIN},
      {"toward", PosTag::kIN}, {"towards", PosTag::kIN},
      {"upon", PosTag::kIN}, {"despite", PosTag::kIN},
      {"unless", PosTag::kIN}, {"until", PosTag::kIN},
      {"while", PosTag::kIN}, {"because", PosTag::kIN},
      {"although", PosTag::kIN}, {"though", PosTag::kIN},
      {"whether", PosTag::kIN}, {"if", PosTag::kIN}, {"as", PosTag::kIN},
      {"per", PosTag::kIN}, {"like", PosTag::kIN},
      // Coordinating conjunctions.
      {"and", PosTag::kCC}, {"or", PosTag::kCC}, {"but", PosTag::kCC},
      {"nor", PosTag::kCC}, {"yet", PosTag::kCC}, {"so", PosTag::kCC},
      {"plus", PosTag::kCC},
      // Modals.
      {"can", PosTag::kMD}, {"could", PosTag::kMD}, {"may", PosTag::kMD},
      {"might", PosTag::kMD}, {"must", PosTag::kMD}, {"shall", PosTag::kMD},
      {"should", PosTag::kMD}, {"will", PosTag::kMD},
      {"would", PosTag::kMD}, {"ought", PosTag::kMD},
      {"cannot", PosTag::kMD},
      // Auxiliaries / common verbs (fixed readings).
      {"am", PosTag::kVBP}, {"are", PosTag::kVBP}, {"is", PosTag::kVBZ},
      {"was", PosTag::kVBD}, {"were", PosTag::kVBD}, {"be", PosTag::kVB},
      {"been", PosTag::kVBN}, {"being", PosTag::kVBG},
      {"do", PosTag::kVBP}, {"does", PosTag::kVBZ}, {"did", PosTag::kVBD},
      {"have", PosTag::kVBP}, {"has", PosTag::kVBZ}, {"had", PosTag::kVBD},
      {"get", PosTag::kVB}, {"got", PosTag::kVBD}, {"go", PosTag::kVB},
      {"went", PosTag::kVBD}, {"gone", PosTag::kVBN},
      {"take", PosTag::kVB}, {"took", PosTag::kVBD},
      {"taken", PosTag::kVBN}, {"make", PosTag::kVB},
      {"made", PosTag::kVBD}, {"know", PosTag::kVBP},
      {"knew", PosTag::kVBD}, {"known", PosTag::kVBN},
      {"think", PosTag::kVBP}, {"thought", PosTag::kVBD},
      {"feel", PosTag::kVBP}, {"felt", PosTag::kVBD},
      {"see", PosTag::kVBP}, {"saw", PosTag::kVBD}, {"seen", PosTag::kVBN},
      {"say", PosTag::kVBP}, {"said", PosTag::kVBD},
      {"tell", PosTag::kVB}, {"told", PosTag::kVBD},
      {"give", PosTag::kVB}, {"gave", PosTag::kVBD},
      {"given", PosTag::kVBN}, {"find", PosTag::kVB},
      {"found", PosTag::kVBD}, {"keep", PosTag::kVB},
      {"kept", PosTag::kVBD}, {"let", PosTag::kVB},
      {"began", PosTag::kVBD}, {"begun", PosTag::kVBN},
      // "to".
      {"to", PosTag::kTO},
      // Existential there.
      {"there", PosTag::kEX},
      // Wh-words.
      {"which", PosTag::kWDT}, {"whatever", PosTag::kWDT},
      {"who", PosTag::kWP}, {"whom", PosTag::kWP}, {"whose", PosTag::kWP},
      {"what", PosTag::kWP},
      {"when", PosTag::kWRB}, {"where", PosTag::kWRB},
      {"why", PosTag::kWRB}, {"how", PosTag::kWRB},
      // Adverbs (closed set of frequent ones).
      {"not", PosTag::kRB}, {"n't", PosTag::kRB}, {"very", PosTag::kRB},
      {"too", PosTag::kRB}, {"also", PosTag::kRB}, {"just", PosTag::kRB},
      {"now", PosTag::kRB}, {"then", PosTag::kRB}, {"here", PosTag::kRB},
      {"never", PosTag::kRB}, {"always", PosTag::kRB},
      {"often", PosTag::kRB}, {"again", PosTag::kRB},
      {"still", PosTag::kRB}, {"even", PosTag::kRB},
      {"already", PosTag::kRB}, {"maybe", PosTag::kRB},
      {"perhaps", PosTag::kRB}, {"soon", PosTag::kRB},
      {"really", PosTag::kRB}, {"quite", PosTag::kRB},
      // Comparative/superlative adverbs.
      {"more", PosTag::kRBR}, {"less", PosTag::kRBR},
      {"most", PosTag::kRBS}, {"least", PosTag::kRBS},
      // Particles.
      {"up", PosTag::kRP}, {"down", PosTag::kRP}, {"out", PosTag::kRP},
      {"off", PosTag::kRP}, {"away", PosTag::kRP}, {"back", PosTag::kRP},
      // Interjections.
      {"oh", PosTag::kUH}, {"hi", PosTag::kUH}, {"hello", PosTag::kUH},
      {"hey", PosTag::kUH}, {"wow", PosTag::kUH}, {"ouch", PosTag::kUH},
      {"yes", PosTag::kUH}, {"yeah", PosTag::kUH}, {"please", PosTag::kUH},
      {"thanks", PosTag::kUH}, {"ok", PosTag::kUH}, {"okay", PosTag::kUH},
      // Common adjectives with suffix-ambiguous forms.
      {"good", PosTag::kJJ}, {"bad", PosTag::kJJ}, {"new", PosTag::kJJ},
      {"old", PosTag::kJJ}, {"high", PosTag::kJJ}, {"low", PosTag::kJJ},
      {"big", PosTag::kJJ}, {"small", PosTag::kJJ}, {"same", PosTag::kJJ},
      {"other", PosTag::kJJ}, {"sick", PosTag::kJJ}, {"sore", PosTag::kJJ},
      {"better", PosTag::kJJR}, {"worse", PosTag::kJJR},
      {"best", PosTag::kJJS}, {"worst", PosTag::kJJS},
      {"many", PosTag::kJJ}, {"few", PosTag::kJJ}, {"much", PosTag::kJJ},
      {"several", PosTag::kJJ}, {"own", PosTag::kJJ},
  };
  return lex;
}

bool EndsWithLower(const std::string& s, std::string_view suffix) {
  return EndsWith(s, suffix);
}

}  // namespace

const char* PosTagName(PosTag tag) {
  switch (tag) {
    case PosTag::kCC: return "CC";
    case PosTag::kCD: return "CD";
    case PosTag::kDT: return "DT";
    case PosTag::kEX: return "EX";
    case PosTag::kIN: return "IN";
    case PosTag::kJJ: return "JJ";
    case PosTag::kJJR: return "JJR";
    case PosTag::kJJS: return "JJS";
    case PosTag::kMD: return "MD";
    case PosTag::kNN: return "NN";
    case PosTag::kNNS: return "NNS";
    case PosTag::kNNP: return "NNP";
    case PosTag::kPDT: return "PDT";
    case PosTag::kPRP: return "PRP";
    case PosTag::kPRPS: return "PRP$";
    case PosTag::kRB: return "RB";
    case PosTag::kRBR: return "RBR";
    case PosTag::kRBS: return "RBS";
    case PosTag::kRP: return "RP";
    case PosTag::kTO: return "TO";
    case PosTag::kUH: return "UH";
    case PosTag::kVB: return "VB";
    case PosTag::kVBD: return "VBD";
    case PosTag::kVBG: return "VBG";
    case PosTag::kVBN: return "VBN";
    case PosTag::kVBP: return "VBP";
    case PosTag::kVBZ: return "VBZ";
    case PosTag::kWDT: return "WDT";
    case PosTag::kWP: return "WP";
    case PosTag::kWRB: return "WRB";
    case PosTag::kPunct: return "PUNCT";
    case PosTag::kSym: return "SYM";
    case PosTag::kTagCount: break;
  }
  return "??";
}

PosTagger::PosTagger() = default;

PosTag PosTagger::TagWord(const std::string& lower,
                          const std::string& original, PosTag prev) const {
  const auto& lex = ClosedClassLexicon();
  auto it = lex.find(lower);
  if (it != lex.end()) {
    // Context fix: "that"/"this" after a preposition or verb reading stays
    // DT; "there" only EX before a be-verb — too costly to look ahead, so we
    // accept the lexicon reading. One cheap adjustment: possessive pronoun vs
    // personal pronoun for "her" handled by the lexicon (PRP$ reading).
    return it->second;
  }
  // Morphological heuristics, most specific first.
  if (EndsWithLower(lower, "ing") && lower.size() > 4) return PosTag::kVBG;
  if (EndsWithLower(lower, "ed") && lower.size() > 3) return PosTag::kVBD;
  if (EndsWithLower(lower, "ly") && lower.size() > 3) return PosTag::kRB;
  if (EndsWithLower(lower, "ous") || EndsWithLower(lower, "ful") ||
      EndsWithLower(lower, "ible") || EndsWithLower(lower, "able") ||
      EndsWithLower(lower, "ive") || EndsWithLower(lower, "ical") ||
      EndsWithLower(lower, "less"))
    return PosTag::kJJ;
  if (EndsWithLower(lower, "er") && lower.size() > 4 &&
      prev == PosTag::kRB)
    return PosTag::kJJR;
  if (EndsWithLower(lower, "est") && lower.size() > 4) return PosTag::kJJS;
  if (EndsWithLower(lower, "tion") || EndsWithLower(lower, "sion") ||
      EndsWithLower(lower, "ment") || EndsWithLower(lower, "ness") ||
      EndsWithLower(lower, "ity") || EndsWithLower(lower, "ance") ||
      EndsWithLower(lower, "ence"))
    return PosTag::kNN;
  // Proper noun: capitalized and not sentence-initial-only heuristic — we
  // treat any capitalized non-lexicon word as NNP.
  if (!original.empty() &&
      std::isupper(static_cast<unsigned char>(original[0])))
    return PosTag::kNNP;
  // Verb reading after "to" or a modal.
  if (prev == PosTag::kTO || prev == PosTag::kMD) return PosTag::kVB;
  // 3rd-person verb vs plural noun for trailing -s: after a pronoun, prefer
  // the verb reading; otherwise plural noun.
  if (EndsWithLower(lower, "s") && lower.size() > 3 &&
      !EndsWithLower(lower, "ss")) {
    if (prev == PosTag::kPRP || prev == PosTag::kNNP) return PosTag::kVBZ;
    return PosTag::kNNS;
  }
  return PosTag::kNN;
}

std::vector<PosTag> PosTagger::Tag(const std::vector<Token>& tokens) const {
  std::vector<PosTag> tags;
  tags.reserve(tokens.size());
  PosTag prev = PosTag::kPunct;  // Sentence-start sentinel.
  for (const Token& t : tokens) {
    PosTag tag;
    switch (t.kind) {
      case TokenKind::kNumber:
        tag = PosTag::kCD;
        break;
      case TokenKind::kPunctuation:
        tag = PosTag::kPunct;
        break;
      case TokenKind::kSpecial:
        tag = PosTag::kSym;
        break;
      case TokenKind::kWord:
      default:
        tag = TagWord(ToLowerAscii(t.text), t.text, prev);
        break;
    }
    tags.push_back(tag);
    prev = tag;
  }
  return tags;
}

std::vector<PosTag> PosTagger::TagText(std::string_view text) const {
  return Tag(Tokenize(text));
}

}  // namespace dehealth
