#ifndef DEHEALTH_TEXT_LEXICON_H_
#define DEHEALTH_TEXT_LEXICON_H_

#include <string>
#include <string_view>
#include <vector>

namespace dehealth {

/// The function-word lexicon used by Table I ("Function words: freq. of
/// function words, 337"). Lowercase, unique, sorted. Size is exactly 337.
const std::vector<std::string>& FunctionWordLexicon();

/// True if `word` (case-insensitive) is in the function-word lexicon.
bool IsFunctionWord(std::string_view word);

/// Index of `word` in the (sorted) function-word lexicon, or -1.
int FunctionWordIndex(std::string_view word);

/// The misspelling lexicon used by Table I ("Misspelled words: freq. of
/// misspellings, 248"). Lowercase, unique, sorted. Size is exactly 248.
const std::vector<std::string>& MisspellingLexicon();

/// True if `word` (case-insensitive) is a known misspelling.
bool IsMisspelling(std::string_view word);

/// Index of `word` in the (sorted) misspelling lexicon, or -1.
int MisspellingIndex(std::string_view word);

}  // namespace dehealth

#endif  // DEHEALTH_TEXT_LEXICON_H_
