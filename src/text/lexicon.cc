#include "text/lexicon.h"

#include <algorithm>
#include <cassert>

#include "common/string_utils.h"

namespace dehealth {

namespace {

// 337 English function words (articles, pronouns, prepositions, conjunctions,
// auxiliaries, quantifiers, and adverbial connectives), mirroring the size of
// the lexicon in Table I of the paper. Grouped 10 per line for countability.
constexpr const char* kFunctionWords[] = {
    "a", "about", "above", "across", "after", "afterwards", "again",
    "against", "all", "almost",
    "alone", "along", "already", "also", "although", "always", "am",
    "among", "amongst", "an",
    "and", "another", "any", "anybody", "anyhow", "anyone", "anything",
    "anyway", "anywhere", "are",
    "around", "as", "at", "back", "be", "became", "because", "become",
    "becomes", "becoming",
    "been", "before", "beforehand", "behind", "being", "below", "beside",
    "besides", "between", "beyond",
    "both", "but", "by", "can", "cannot", "could", "dare", "despite",
    "did", "do",
    "does", "doing", "done", "down", "during", "each", "either", "else",
    "elsewhere", "enough",
    "even", "ever", "every", "everybody", "everyone", "everything",
    "everywhere", "except", "few", "first",
    "for", "former", "formerly", "from", "further", "furthermore", "had",
    "has", "have", "having",
    "he", "hence", "her", "here", "hereabouts", "hereafter", "hereby",
    "herein", "hereinafter", "heretofore",
    "hereunder", "hereupon", "herewith", "hers", "herself", "him",
    "himself", "his", "how", "however",
    "i", "if", "in", "indeed", "inside", "instead", "into", "is", "it",
    "its",
    "itself", "last", "latter", "latterly", "least", "less", "lot",
    "lots", "many", "may",
    "me", "meanwhile", "might", "mine", "more", "moreover", "most",
    "mostly", "much", "must",
    "my", "myself", "namely", "near", "need", "neither", "never",
    "nevertheless", "next", "no",
    "nobody", "none", "noone", "nor", "not", "nothing", "now", "nowhere",
    "of", "off",
    "often", "oftentimes", "on", "once", "one", "only", "onto", "or",
    "other", "others",
    "otherwise", "ought", "our", "ours", "ourselves", "out", "outside",
    "over", "per", "perhaps",
    "rather", "re", "same", "second", "several", "shall", "she",
    "should", "since", "so",
    "some", "somebody", "somehow", "someone", "something", "sometime",
    "sometimes", "somewhat", "somewhere", "still",
    "such", "than", "that", "the", "their", "theirs", "them",
    "themselves", "then", "thence",
    "there", "thereabouts", "thereafter", "thereby", "therefore",
    "therein", "thereof", "thereon", "thereupon", "these",
    "they", "third", "this", "those", "though", "through", "throughout",
    "thru", "thus", "to",
    "together", "too", "top", "toward", "towards", "under", "underneath",
    "unless", "unlike", "until",
    "up", "upon", "upwards", "us", "used", "usually", "via", "was", "we",
    "well",
    "were", "what", "whatever", "when", "whence", "whenever", "where",
    "whereafter", "whereas", "whereby",
    "wherein", "whereupon", "wherever", "whether", "which", "whichever",
    "while", "whilst", "whither", "who",
    "whoever", "whole", "whom", "whose", "why", "will", "with", "within",
    "without", "would",
    "yet", "you", "your", "yours", "yourself", "yourselves", "aboard",
    "abreast", "abroad", "absent",
    "adjacent", "ago", "ahead", "albeit", "alongside", "amid", "amidst",
    "anti", "apart", "astride",
    "atop", "bar", "barring", "beneath", "betwixt", "circa",
    "concerning", "considering", "counting", "cum",
    "excepting", "excluding", "failing", "following", "given", "granted",
    "including", "like", "mid", "midst",
    "notwithstanding", "opposite", "past", "pending", "plus", "minus",
    "regarding", "respecting", "round", "save",
    "unto", "versus", "wanting", "worth", "aside", "whatsoever",
    "wherefore",
};

// 248 common English misspellings (idiosyncratic feature lexicon of Table I).
// Grouped 8 per line for countability.
constexpr const char* kMisspellings[] = {
    "abberation", "abcense", "abondon", "abreviation", "absense",
    "abudance", "acadamy", "accesible",
    "accidant", "accomodate", "accomodation", "accross", "acheive",
    "acheivement", "acknowlege", "acommodate",
    "acomplish", "acquaintence", "adequite", "adherance", "admissability",
    "adolecent", "adress", "adultary",
    "adviseable", "affilliate", "agression", "agressive", "alchohol",
    "alegance", "allegience", "allready",
    "allthough", "alltogether", "alomst", "alot", "alotted", "amatuer",
    "amendmant", "amoung",
    "analize", "anamoly", "ancestory", "anihilation", "aniversary",
    "anomolous", "anwser", "apparant",
    "appearence", "apperance", "aquaintance", "aquire", "aquit",
    "arguement", "assasination", "athiest",
    "attendence", "audiance", "auxillary", "basicly", "becuase",
    "begining", "beleive", "benifit",
    "beseige", "buisness", "calender", "camoflage", "carribean",
    "catagory", "cemetary", "changable",
    "charactor", "cheif", "collegue", "comming", "commitee",
    "comparsion", "competance", "completly",
    "concious", "condem", "congradulate", "concensus", "contraversy",
    "convienient", "cooly", "copywrite",
    "correspondance", "critisism", "curiousity", "decieve", "definately",
    "definitly", "delema", "dependance",
    "desciption", "desparate", "develope", "diffrence", "dilemna",
    "disapear", "disapoint", "disasterous",
    "dicipline", "dissapear", "dissapoint", "docter", "doesnt", "dont",
    "drunkeness", "ecstacy",
    "eigth", "embarass", "embarassment", "enviroment", "equiptment",
    "excede", "excellant", "exerpt",
    "existance", "experiance", "explaination", "extreem", "familar",
    "fasinating", "firey", "flourescent",
    "foriegn", "forseeable", "fourty", "freind", "fufill", "fullfil",
    "futher", "gaurd",
    "gaurantee", "goverment", "gramatically", "grammer", "gratefull",
    "guidence", "harrass", "harrassment",
    "hieght", "hierachy", "humerous", "hygene", "hypocracy",
    "idiosyncracy", "ignorence", "imediately",
    "incidently", "improvment", "inconvienient", "independance",
    "indispensible", "innoculate", "inteligence", "interchangable",
    "interupt", "irrelevent", "irresistable", "jewelery", "jist",
    "knowlege", "lenght", "liason",
    "libary", "lieing", "lightening", "liquify", "livley", "lonelyness",
    "looze", "maintainance",
    "managable", "manuever", "medeval", "memmorandum", "millenium",
    "miniture", "minuscle", "mischevious",
    "mispell", "misterious", "naturaly", "neccessary", "necesary",
    "negligable", "nieghbor", "ninty",
    "noticable", "occassion", "occassionally", "occurance", "occured",
    "ocurrence", "ommision", "oppurtunity",
    "outragous", "overwelm", "paralell", "parliment", "pasttime",
    "percieve", "perseverence", "personel",
    "persue", "phenomenom", "playright", "plesant", "pollitical",
    "posession", "potatoe", "practicle",
    "preceeding", "prefered", "presance", "privelege", "probaly",
    "proffesional", "promiss", "pronounciation",
    "prufe", "publically", "quarentine", "questionaire", "readible",
    "realy", "recieve", "recieved",
    "recomend", "refered", "relevent", "religous", "remeber",
    "repitition", "resistence", "responce",
    "restaraunt", "rythm", "sacrafice", "saftey", "sargent", "scedule",
    "seperate", "succesful",
};

std::vector<std::string> MakeSorted(const char* const* begin, size_t count) {
  std::vector<std::string> out(begin, begin + count);
  std::sort(out.begin(), out.end());
  assert(std::adjacent_find(out.begin(), out.end()) == out.end() &&
         "lexicon entries must be unique");
  return out;
}

int SortedIndex(const std::vector<std::string>& lex, std::string_view word) {
  const std::string lower = ToLowerAscii(word);
  auto it = std::lower_bound(lex.begin(), lex.end(), lower);
  if (it != lex.end() && *it == lower) return static_cast<int>(it - lex.begin());
  return -1;
}

}  // namespace

const std::vector<std::string>& FunctionWordLexicon() {
  static const auto& lex = *new std::vector<std::string>(MakeSorted(
      kFunctionWords, sizeof(kFunctionWords) / sizeof(kFunctionWords[0])));
  return lex;
}

bool IsFunctionWord(std::string_view word) {
  return FunctionWordIndex(word) >= 0;
}

int FunctionWordIndex(std::string_view word) {
  return SortedIndex(FunctionWordLexicon(), word);
}

const std::vector<std::string>& MisspellingLexicon() {
  static const auto& lex = *new std::vector<std::string>(MakeSorted(
      kMisspellings, sizeof(kMisspellings) / sizeof(kMisspellings[0])));
  return lex;
}

bool IsMisspelling(std::string_view word) { return MisspellingIndex(word) >= 0; }

int MisspellingIndex(std::string_view word) {
  return SortedIndex(MisspellingLexicon(), word);
}

}  // namespace dehealth
