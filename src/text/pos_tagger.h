#ifndef DEHEALTH_TEXT_POS_TAGGER_H_
#define DEHEALTH_TEXT_POS_TAGGER_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/tokenizer.h"

namespace dehealth {

/// Penn-Treebank-style part-of-speech tags (plus token-class tags for
/// numbers, punctuation, and symbols). The tagger is deterministic — the
/// stylometric pipeline needs stable, author-discriminative tag frequencies,
/// not linguistic perfection.
enum class PosTag : int {
  kCC = 0,  // coordinating conjunction
  kCD,      // cardinal number
  kDT,      // determiner
  kEX,      // existential "there"
  kIN,      // preposition / subordinating conjunction
  kJJ,      // adjective
  kJJR,     // adjective, comparative
  kJJS,     // adjective, superlative
  kMD,      // modal
  kNN,      // noun, singular
  kNNS,     // noun, plural
  kNNP,     // proper noun
  kPDT,     // predeterminer
  kPRP,     // personal pronoun
  kPRPS,    // possessive pronoun (PRP$)
  kRB,      // adverb
  kRBR,     // adverb, comparative
  kRBS,     // adverb, superlative
  kRP,      // particle
  kTO,      // "to"
  kUH,      // interjection
  kVB,      // verb, base
  kVBD,     // verb, past tense
  kVBG,     // verb, gerund
  kVBN,     // verb, past participle
  kVBP,     // verb, non-3rd-person present
  kVBZ,     // verb, 3rd-person singular present
  kWDT,     // wh-determiner
  kWP,      // wh-pronoun
  kWRB,     // wh-adverb
  kPunct,   // punctuation token
  kSym,     // other symbol
  kTagCount
};

/// Number of distinct tags emitted by the tagger.
constexpr int kNumPosTags = static_cast<int>(PosTag::kTagCount);

/// Stable string name of a tag ("NN", "VBD", ...).
const char* PosTagName(PosTag tag);

/// Deterministic lexicon + suffix-rule POS tagger.
///
/// Resolution order per token: token class (number/punct/symbol), then a
/// closed-class lexicon (determiners, pronouns, prepositions, modals,
/// auxiliaries, common verbs), then morphology (suffix heuristics), then a
/// one-token context adjustment (e.g. a noun reading after a determiner),
/// with NN as the default.
class PosTagger {
 public:
  PosTagger();

  /// Tags a pre-tokenized sequence. Output has the same length as `tokens`.
  std::vector<PosTag> Tag(const std::vector<Token>& tokens) const;

  /// Tokenizes then tags raw text.
  std::vector<PosTag> TagText(std::string_view text) const;

 private:
  PosTag TagWord(const std::string& lower, const std::string& original,
                 PosTag prev) const;
};

/// Packs two tags into a bigram id in [0, kNumPosTags^2).
constexpr int PosBigramId(PosTag a, PosTag b) {
  return static_cast<int>(a) * kNumPosTags + static_cast<int>(b);
}

/// Number of possible tag bigrams.
constexpr int kNumPosBigrams = kNumPosTags * kNumPosTags;

}  // namespace dehealth

#endif  // DEHEALTH_TEXT_POS_TAGGER_H_
