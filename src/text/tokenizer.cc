#include "text/tokenizer.h"

#include <cctype>

namespace dehealth {

namespace {

bool IsLetter(char c) { return std::isalpha(static_cast<unsigned char>(c)); }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }
bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

bool IsPunctuationChar(char c) {
  switch (c) {
    case '.':
    case ',':
    case ';':
    case ':':
    case '!':
    case '?':
    case '\'':
    case '"':
    case '(':
    case ')':
    case '-':
      return true;
    default:
      return false;
  }
}

}  // namespace

WordShape ClassifyWordShape(std::string_view word) {
  if (word.empty()) return WordShape::kOther;
  bool any_lower = false, any_upper = false, all_letters = true;
  for (char c : word) {
    if (!IsLetter(c)) {
      // Internal apostrophes do not change the shape class.
      if (c == '\'') continue;
      all_letters = false;
      break;
    }
    if (std::islower(static_cast<unsigned char>(c))) any_lower = true;
    if (std::isupper(static_cast<unsigned char>(c))) any_upper = true;
  }
  if (!all_letters) return WordShape::kOther;
  if (!any_upper) return WordShape::kAllLower;
  if (!any_lower) return WordShape::kAllUpper;
  const bool first_upper = std::isupper(static_cast<unsigned char>(word[0]));
  if (first_upper) {
    // "Monday" vs "WebMD": first-upper means the only uppercase letter is
    // the initial one.
    bool interior_upper = false;
    for (size_t i = 1; i < word.size(); ++i)
      if (std::isupper(static_cast<unsigned char>(word[i])))
        interior_upper = true;
    return interior_upper ? WordShape::kCamel : WordShape::kFirstUpper;
  }
  return WordShape::kCamel;
}

std::vector<Token> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (IsSpace(c)) {
      ++i;
      continue;
    }
    if (IsLetter(c)) {
      size_t j = i + 1;
      while (j < n &&
             (IsLetter(text[j]) ||
              // Keep internal apostrophes: don't, it's.
              (text[j] == '\'' && j + 1 < n && IsLetter(text[j + 1])))) {
        ++j;
      }
      tokens.push_back({std::string(text.substr(i, j - i)), TokenKind::kWord});
      i = j;
      continue;
    }
    if (IsDigit(c)) {
      size_t j = i + 1;
      while (j < n && IsDigit(text[j])) ++j;
      tokens.push_back(
          {std::string(text.substr(i, j - i)), TokenKind::kNumber});
      i = j;
      continue;
    }
    tokens.push_back({std::string(1, c), IsPunctuationChar(c)
                                             ? TokenKind::kPunctuation
                                             : TokenKind::kSpecial});
    ++i;
  }
  return tokens;
}

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> words;
  for (auto& t : Tokenize(text))
    if (t.kind == TokenKind::kWord) words.push_back(std::move(t.text));
  return words;
}

std::vector<std::string> SplitSentences(std::string_view text) {
  std::vector<std::string> sentences;
  std::string current;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    current += c;
    if (c == '.' || c == '!' || c == '?') {
      // Absorb consecutive terminators and closing quotes: "What?!".
      size_t j = i + 1;
      while (j < text.size() && (text[j] == '.' || text[j] == '!' ||
                                 text[j] == '?' || text[j] == '"' ||
                                 text[j] == '\'')) {
        current += text[j];
        ++j;
      }
      i = j - 1;
      // Trim and keep non-empty sentences.
      size_t b = current.find_first_not_of(" \t\n\r");
      if (b != std::string::npos) sentences.push_back(current.substr(b));
      current.clear();
    }
  }
  size_t b = current.find_first_not_of(" \t\n\r");
  if (b != std::string::npos) sentences.push_back(current.substr(b));
  return sentences;
}

std::vector<std::string> SplitParagraphs(std::string_view text) {
  std::vector<std::string> paragraphs;
  std::string current;
  size_t i = 0;
  while (i <= text.size()) {
    const bool at_end = i == text.size();
    // A blank line (two consecutive newlines, possibly with spaces between)
    // ends a paragraph.
    bool para_break = false;
    if (!at_end && text[i] == '\n') {
      size_t j = i + 1;
      while (j < text.size() && (text[j] == ' ' || text[j] == '\t')) ++j;
      if (j < text.size() && text[j] == '\n') {
        para_break = true;
        i = j;  // Skip to the second newline; loop ++ advances past it.
      }
    }
    if (at_end || para_break) {
      size_t b = current.find_first_not_of(" \t\n\r");
      if (b != std::string::npos) paragraphs.push_back(current.substr(b));
      current.clear();
      if (at_end) break;
    } else {
      current += text[i];
    }
    ++i;
  }
  return paragraphs;
}

}  // namespace dehealth
