#include "ml/knn.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "ml/linalg.h"

namespace dehealth {

KnnClassifier::KnnClassifier(int k) : k_(k) { assert(k >= 1); }

Status KnnClassifier::Fit(const Dataset& data) {
  if (data.empty())
    return Status::InvalidArgument("KnnClassifier::Fit: empty dataset");
  train_ = data;
  classes_ = data.Labels();
  if (k_ > static_cast<int>(train_.size()))
    k_ = static_cast<int>(train_.size());
  return Status::OK();
}

std::vector<double> KnnClassifier::DecisionScores(
    const std::vector<double>& x) const {
  assert(!train_.empty() && x.size() == train_.dims());
  // Distances to all training points; take the k nearest.
  std::vector<std::pair<double, int>> dist_label;
  dist_label.reserve(train_.size());
  for (const Sample& s : train_.samples())
    dist_label.emplace_back(EuclideanDistance(x, s.features), s.label);
  const size_t k = static_cast<size_t>(k_);
  std::partial_sort(dist_label.begin(), dist_label.begin() + k,
                    dist_label.end());

  // Inverse-distance-weighted votes per class.
  std::map<int, double> votes;
  for (size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (1e-9 + dist_label[i].first);
    votes[dist_label[i].second] += w;
  }
  std::vector<double> scores(classes_.size(), 0.0);
  for (size_t c = 0; c < classes_.size(); ++c) {
    auto it = votes.find(classes_[c]);
    if (it != votes.end()) scores[c] = it->second;
  }
  return scores;
}

int KnnClassifier::Predict(const std::vector<double>& x) const {
  const std::vector<double> scores = DecisionScores(x);
  size_t best = 0;
  for (size_t c = 1; c < scores.size(); ++c)
    if (scores[c] > scores[best]) best = c;
  return classes_[best];
}

}  // namespace dehealth
