#include "ml/nearest_centroid.h"

#include <cassert>
#include <unordered_map>

#include "ml/linalg.h"

namespace dehealth {

Status NearestCentroidClassifier::Fit(const Dataset& data) {
  if (data.empty())
    return Status::InvalidArgument(
        "NearestCentroidClassifier::Fit: empty dataset");
  classes_ = data.Labels();
  centroids_.assign(classes_.size(),
                    std::vector<double>(data.dims(), 0.0));
  std::unordered_map<int, size_t> class_index;
  for (size_t c = 0; c < classes_.size(); ++c) class_index[classes_[c]] = c;
  std::vector<int> counts(classes_.size(), 0);
  for (const Sample& s : data.samples()) {
    const size_t c = class_index[s.label];
    ++counts[c];
    for (size_t j = 0; j < data.dims(); ++j)
      centroids_[c][j] += s.features[j];
  }
  for (size_t c = 0; c < classes_.size(); ++c)
    for (double& v : centroids_[c]) v /= counts[c];
  return Status::OK();
}

std::vector<double> NearestCentroidClassifier::DecisionScores(
    const std::vector<double>& x) const {
  assert(!centroids_.empty());
  std::vector<double> scores(classes_.size());
  for (size_t c = 0; c < classes_.size(); ++c)
    scores[c] = -EuclideanDistance(x, centroids_[c]);
  return scores;
}

int NearestCentroidClassifier::Predict(const std::vector<double>& x) const {
  const std::vector<double> scores = DecisionScores(x);
  size_t best = 0;
  for (size_t c = 1; c < scores.size(); ++c)
    if (scores[c] > scores[best]) best = c;
  return classes_[best];
}

}  // namespace dehealth
