#ifndef DEHEALTH_ML_RLSC_H_
#define DEHEALTH_ML_RLSC_H_

#include <vector>

#include "ml/classifier.h"

namespace dehealth {

/// Regularized Least Squares Classification (one of the benchmark learners
/// named by the paper): one-vs-rest ridge regression onto +/-1 targets in
/// the primal, solved with Cholesky on (X^T X + lambda I). Suited to the
/// refined-DA setting where the feature dimension dominates the sample
/// count is handled by regularization.
class RlscClassifier : public Classifier {
 public:
  explicit RlscClassifier(double lambda = 1.0);

  Status Fit(const Dataset& data) override;
  int Predict(const std::vector<double>& x) const override;
  std::vector<double> DecisionScores(
      const std::vector<double>& x) const override;
  const std::vector<int>& classes() const override { return classes_; }

  double lambda() const { return lambda_; }

 private:
  double lambda_;
  std::vector<int> classes_;
  // weights_[c] is the per-class weight vector; bias folded in as the last
  // coefficient against an appended constant-1 feature.
  std::vector<std::vector<double>> weights_;
};

}  // namespace dehealth

#endif  // DEHEALTH_ML_RLSC_H_
