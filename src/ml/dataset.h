#ifndef DEHEALTH_ML_DATASET_H_
#define DEHEALTH_ML_DATASET_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace dehealth {

/// One labeled training/testing instance.
struct Sample {
  std::vector<double> features;
  int label = 0;
};

/// A labeled dataset with a fixed feature dimensionality.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(size_t dims) : dims_(dims) {}

  /// Appends a sample; its feature size must match dims() (the first Add on
  /// a default-constructed dataset fixes the dimensionality).
  Status Add(Sample sample);

  size_t size() const { return samples_.size(); }
  size_t dims() const { return dims_; }
  bool empty() const { return samples_.empty(); }

  const Sample& operator[](size_t i) const { return samples_[i]; }
  const std::vector<Sample>& samples() const { return samples_; }

  /// Distinct labels, sorted ascending.
  std::vector<int> Labels() const;

 private:
  size_t dims_ = 0;
  std::vector<Sample> samples_;
};

/// Fits mean/stddev on a dataset and standardizes features to zero mean and
/// unit variance (constant features pass through unchanged). The same
/// transform must be applied to test points.
class StandardScaler {
 public:
  StandardScaler() = default;

  /// Learns per-dimension mean and stddev. Fails on an empty dataset.
  Status Fit(const Dataset& data);

  /// (x - mean) / stddev per dimension. `x` must match the fitted dims.
  std::vector<double> Transform(const std::vector<double>& x) const;

  /// Transforms a whole dataset (labels preserved).
  Dataset TransformDataset(const Dataset& data) const;

  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace dehealth

#endif  // DEHEALTH_ML_DATASET_H_
