#include "ml/linalg.h"

#include <cassert>
#include <cmath>

namespace dehealth {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

std::vector<double> Matrix::MatVec(const std::vector<double>& v) const {
  assert(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[r * cols_];
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

std::vector<double> Matrix::TransposeMatVec(
    const std::vector<double>& v) const {
  assert(v.size() == rows_);
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    const double vr = v[r];
    if (vr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) out[c] += row[c] * vr;
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (size_t i = 0; i < cols_; ++i) {
      if (row[i] == 0.0) continue;
      for (size_t j = i; j < cols_; ++j) g.At(i, j) += row[i] * row[j];
    }
  }
  for (size_t i = 0; i < cols_; ++i)
    for (size_t j = 0; j < i; ++j) g.At(i, j) = g.At(j, i);
  return g;
}

void Matrix::AddDiagonal(double value) {
  assert(rows_ == cols_);
  for (size_t i = 0; i < rows_; ++i) At(i, i) += value;
}

StatusOr<std::vector<double>> CholeskySolve(const Matrix& a,
                                            const std::vector<double>& b) {
  const size_t n = a.rows();
  if (a.cols() != n)
    return Status::InvalidArgument("CholeskySolve: matrix not square");
  if (b.size() != n)
    return Status::InvalidArgument("CholeskySolve: rhs size mismatch");

  // Lower-triangular factor L with A = L L^T.
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a.At(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l.At(i, k) * l.At(j, k);
      if (i == j) {
        if (sum <= 0.0)
          return Status::FailedPrecondition(
              "CholeskySolve: matrix not positive definite");
        l.At(i, i) = std::sqrt(sum);
      } else {
        l.At(i, j) = sum / l.At(j, j);
      }
    }
  }

  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l.At(i, k) * y[k];
    y[i] = sum / l.At(i, i);
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l.At(k, i) * x[k];
    x[i] = sum / l.At(i, i);
  }
  return x;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double DotProduct(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace dehealth
