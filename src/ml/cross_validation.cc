#include "ml/cross_validation.h"

#include <cmath>
#include <numeric>

#include "ml/metrics.h"

namespace dehealth {

StatusOr<std::vector<std::vector<size_t>>> KFoldIndices(size_t n, int folds,
                                                        Rng& rng) {
  if (folds < 2)
    return Status::InvalidArgument("KFoldIndices: folds must be >= 2");
  if (static_cast<size_t>(folds) > n)
    return Status::InvalidArgument("KFoldIndices: folds exceed samples");
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  rng.Shuffle(order);
  std::vector<std::vector<size_t>> out(static_cast<size_t>(folds));
  for (size_t i = 0; i < n; ++i)
    out[i % static_cast<size_t>(folds)].push_back(order[i]);
  return out;
}

StatusOr<CrossValidationResult> CrossValidate(
    const std::function<std::unique_ptr<Classifier>()>& make_classifier,
    const Dataset& data, int folds, uint64_t seed) {
  if (data.empty())
    return Status::InvalidArgument("CrossValidate: empty dataset");
  Rng rng(seed);
  StatusOr<std::vector<std::vector<size_t>>> fold_indices =
      KFoldIndices(data.size(), folds, rng);
  if (!fold_indices.ok()) return fold_indices.status();

  CrossValidationResult result;
  for (const std::vector<size_t>& holdout : *fold_indices) {
    std::vector<bool> held(data.size(), false);
    for (size_t i : holdout) held[i] = true;

    Dataset train(data.dims());
    for (size_t i = 0; i < data.size(); ++i)
      if (!held[i]) DEHEALTH_RETURN_IF_ERROR(train.Add(data[i]));
    if (train.empty())
      return Status::FailedPrecondition("CrossValidate: empty train fold");

    StandardScaler scaler;
    DEHEALTH_RETURN_IF_ERROR(scaler.Fit(train));
    const Dataset scaled = scaler.TransformDataset(train);

    std::unique_ptr<Classifier> model = make_classifier();
    if (model == nullptr)
      return Status::InvalidArgument("CrossValidate: null classifier");
    DEHEALTH_RETURN_IF_ERROR(model->Fit(scaled));

    std::vector<int> predicted, expected;
    for (size_t i : holdout) {
      predicted.push_back(model->Predict(scaler.Transform(data[i].features)));
      expected.push_back(data[i].label);
    }
    result.fold_accuracies.push_back(Accuracy(predicted, expected));
  }

  double sum = 0.0;
  for (double a : result.fold_accuracies) sum += a;
  result.mean_accuracy =
      sum / static_cast<double>(result.fold_accuracies.size());
  double var = 0.0;
  for (double a : result.fold_accuracies) {
    const double d = a - result.mean_accuracy;
    var += d * d;
  }
  result.stddev_accuracy = std::sqrt(
      var / static_cast<double>(result.fold_accuracies.size()));
  return result;
}

}  // namespace dehealth
