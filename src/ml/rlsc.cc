#include "ml/rlsc.h"

#include <cassert>

#include "ml/linalg.h"

namespace dehealth {

RlscClassifier::RlscClassifier(double lambda) : lambda_(lambda) {
  assert(lambda > 0.0);
}

Status RlscClassifier::Fit(const Dataset& data) {
  if (data.empty())
    return Status::InvalidArgument("RlscClassifier::Fit: empty dataset");
  classes_ = data.Labels();
  weights_.clear();

  const size_t n = data.size();
  const size_t d = data.dims() + 1;  // +1 bias column

  Matrix x(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j + 1 < d; ++j) x.At(i, j) = data[i].features[j];
    x.At(i, d - 1) = 1.0;  // bias
  }
  Matrix gram = x.Gram();
  gram.AddDiagonal(lambda_);

  for (int cls : classes_) {
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) y[i] = data[i].label == cls ? 1.0 : -1.0;
    const std::vector<double> xty = x.TransposeMatVec(y);
    StatusOr<std::vector<double>> w = CholeskySolve(gram, xty);
    if (!w.ok()) return w.status();
    weights_.push_back(std::move(w).value());
  }
  return Status::OK();
}

std::vector<double> RlscClassifier::DecisionScores(
    const std::vector<double>& x) const {
  assert(!weights_.empty());
  std::vector<double> scores(classes_.size());
  for (size_t c = 0; c < classes_.size(); ++c) {
    const std::vector<double>& w = weights_[c];
    assert(x.size() + 1 == w.size());
    double acc = w.back();  // bias
    for (size_t j = 0; j < x.size(); ++j) acc += w[j] * x[j];
    scores[c] = acc;
  }
  return scores;
}

int RlscClassifier::Predict(const std::vector<double>& x) const {
  const std::vector<double> scores = DecisionScores(x);
  size_t best = 0;
  for (size_t c = 1; c < scores.size(); ++c)
    if (scores[c] > scores[best]) best = c;
  return classes_[best];
}

}  // namespace dehealth
