#include "ml/svm_smo.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ml/linalg.h"

namespace dehealth {

BinarySvm::BinarySvm(SvmConfig config) : config_(config) {}

double BinarySvm::Kernel(const std::vector<double>& a,
                         const std::vector<double>& b) const {
  switch (config_.kernel) {
    case SvmKernel::kLinear:
      return DotProduct(a, b);
    case SvmKernel::kRbf: {
      const double d = EuclideanDistance(a, b);
      return std::exp(-config_.rbf_gamma * d * d);
    }
  }
  return 0.0;
}

Status BinarySvm::Fit(const std::vector<std::vector<double>>& features,
                      const std::vector<int>& labels) {
  if (features.empty())
    return Status::InvalidArgument("BinarySvm::Fit: empty training set");
  // Precompute the Gram matrix (training sets in the refined-DA phase are
  // small: tens to a few hundred posts).
  const size_t n = features.size();
  std::vector<std::vector<double>> gram(n, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i)
    for (size_t j = i; j < n; ++j)
      gram[i][j] = gram[j][i] = Kernel(features[i], features[j]);
  return FitWithGram(features, labels, gram);
}

Status BinarySvm::FitWithGram(
    const std::vector<std::vector<double>>& features,
    const std::vector<int>& labels,
    const std::vector<std::vector<double>>& gram) {
  if (features.empty())
    return Status::InvalidArgument("BinarySvm::Fit: empty training set");
  if (features.size() != labels.size())
    return Status::InvalidArgument("BinarySvm::Fit: label count mismatch");
  if (gram.size() != features.size())
    return Status::InvalidArgument("BinarySvm::Fit: gram size mismatch");
  for (int y : labels)
    if (y != 1 && y != -1)
      return Status::InvalidArgument("BinarySvm::Fit: labels must be +/-1");

  const size_t n = features.size();
  support_ = features;
  labels_ = labels;
  alpha_.assign(n, 0.0);
  b_ = 0.0;
  linear_weights_.clear();

  auto decision_on_train = [&](size_t i) {
    double acc = b_;
    for (size_t j = 0; j < n; ++j)
      if (alpha_[j] > 0.0) acc += alpha_[j] * labels_[j] * gram[i][j];
    return acc;
  };

  Rng rng(config_.seed);
  int passes = 0, iterations = 0;
  const double c = config_.c;
  const double tol = config_.tolerance;
  while (passes < config_.max_passes &&
         iterations < config_.max_iterations) {
    int num_changed = 0;
    for (size_t i = 0; i < n; ++i) {
      const double ei = decision_on_train(i) - labels_[i];
      const bool violates =
          (labels_[i] * ei < -tol && alpha_[i] < c) ||
          (labels_[i] * ei > tol && alpha_[i] > 0.0);
      if (!violates) continue;

      // Second index: random j != i (simplified Platt heuristic).
      size_t j = static_cast<size_t>(rng.NextBounded(n - 1));
      if (j >= i) ++j;
      const double ej = decision_on_train(j) - labels_[j];

      const double ai_old = alpha_[i], aj_old = alpha_[j];
      double lo, hi;
      if (labels_[i] != labels_[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;

      const double eta = 2.0 * gram[i][j] - gram[i][i] - gram[j][j];
      if (eta >= 0.0) continue;

      double aj = aj_old - labels_[j] * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-7) continue;
      const double ai =
          ai_old + labels_[i] * labels_[j] * (aj_old - aj);

      alpha_[i] = ai;
      alpha_[j] = aj;

      const double b1 = b_ - ei - labels_[i] * (ai - ai_old) * gram[i][i] -
                        labels_[j] * (aj - aj_old) * gram[i][j];
      const double b2 = b_ - ej - labels_[i] * (ai - ai_old) * gram[i][j] -
                        labels_[j] * (aj - aj_old) * gram[j][j];
      if (ai > 0.0 && ai < c) {
        b_ = b1;
      } else if (aj > 0.0 && aj < c) {
        b_ = b2;
      } else {
        b_ = 0.5 * (b1 + b2);
      }
      ++num_changed;
    }
    passes = num_changed == 0 ? passes + 1 : 0;
    ++iterations;
  }

  // Linear kernel: collapse the support expansion into a weight vector so
  // decisions cost O(dims) instead of O(n_support * dims).
  if (config_.kernel == SvmKernel::kLinear) {
    linear_weights_.assign(support_[0].size(), 0.0);
    for (size_t j = 0; j < n; ++j) {
      if (alpha_[j] == 0.0) continue;
      const double coeff = alpha_[j] * labels_[j];
      for (size_t d = 0; d < linear_weights_.size(); ++d)
        linear_weights_[d] += coeff * support_[j][d];
    }
  }
  return Status::OK();
}

double BinarySvm::Decision(const std::vector<double>& x) const {
  if (!linear_weights_.empty()) return b_ + DotProduct(linear_weights_, x);
  double acc = b_;
  for (size_t j = 0; j < support_.size(); ++j)
    if (alpha_[j] > 0.0)
      acc += alpha_[j] * labels_[j] * Kernel(support_[j], x);
  return acc;
}

int BinarySvm::NumSupportVectors() const {
  int count = 0;
  for (double a : alpha_)
    if (a > 0.0) ++count;
  return count;
}

SmoSvmClassifier::SmoSvmClassifier(SvmConfig config) : config_(config) {}

Status SmoSvmClassifier::Fit(const Dataset& data) {
  if (data.empty())
    return Status::InvalidArgument("SmoSvmClassifier::Fit: empty dataset");
  classes_ = data.Labels();
  machines_.clear();
  machines_.reserve(classes_.size());

  std::vector<std::vector<double>> features;
  features.reserve(data.size());
  for (const Sample& s : data.samples()) features.push_back(s.features);

  if (classes_.size() == 1) return Status::OK();  // degenerate: constant

  // One shared Gram pass for all one-vs-rest machines.
  const size_t n = features.size();
  std::vector<std::vector<double>> gram(n, std::vector<double>(n));
  {
    for (size_t i = 0; i < n; ++i)
      for (size_t j = i; j < n; ++j)
        gram[i][j] = gram[j][i] =
            config_.kernel == SvmKernel::kLinear
                ? DotProduct(features[i], features[j])
                : [&] {
                    const double d =
                        EuclideanDistance(features[i], features[j]);
                    return std::exp(-config_.rbf_gamma * d * d);
                  }();
  }

  for (size_t c = 0; c < classes_.size(); ++c) {
    std::vector<int> binary_labels(data.size());
    for (size_t i = 0; i < data.size(); ++i)
      binary_labels[i] = data[i].label == classes_[c] ? 1 : -1;
    SvmConfig cfg = config_;
    cfg.seed = config_.seed + c;  // decorrelate the per-class SMO runs
    BinarySvm machine(cfg);
    DEHEALTH_RETURN_IF_ERROR(machine.FitWithGram(features, binary_labels, gram));
    machines_.push_back(std::move(machine));
  }
  return Status::OK();
}

std::vector<double> SmoSvmClassifier::DecisionScores(
    const std::vector<double>& x) const {
  if (machines_.empty()) {
    // Single-class fallback.
    return std::vector<double>(classes_.size(), 0.0);
  }
  std::vector<double> scores(classes_.size());
  for (size_t c = 0; c < classes_.size(); ++c)
    scores[c] = machines_[c].Decision(x);
  return scores;
}

int SmoSvmClassifier::Predict(const std::vector<double>& x) const {
  assert(!classes_.empty());
  if (classes_.size() == 1) return classes_[0];
  const std::vector<double> scores = DecisionScores(x);
  size_t best = 0;
  for (size_t c = 1; c < scores.size(); ++c)
    if (scores[c] > scores[best]) best = c;
  return classes_[best];
}

}  // namespace dehealth
