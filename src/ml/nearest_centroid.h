#ifndef DEHEALTH_ML_NEAREST_CENTROID_H_
#define DEHEALTH_ML_NEAREST_CENTROID_H_

#include <vector>

#include "ml/classifier.h"

namespace dehealth {

/// Nearest-centroid ("NN" in the paper's list of benchmark learners in its
/// user-level form): each class is summarized by its mean feature vector and
/// a query is assigned to the closest centroid. Scores are negated Euclidean
/// distances so "higher is better" holds.
class NearestCentroidClassifier : public Classifier {
 public:
  NearestCentroidClassifier() = default;

  Status Fit(const Dataset& data) override;
  int Predict(const std::vector<double>& x) const override;
  std::vector<double> DecisionScores(
      const std::vector<double>& x) const override;
  const std::vector<int>& classes() const override { return classes_; }

  /// The learned centroid of classes()[i].
  const std::vector<double>& Centroid(size_t i) const { return centroids_[i]; }

 private:
  std::vector<int> classes_;
  std::vector<std::vector<double>> centroids_;
};

}  // namespace dehealth

#endif  // DEHEALTH_ML_NEAREST_CENTROID_H_
