#ifndef DEHEALTH_ML_LINALG_H_
#define DEHEALTH_ML_LINALG_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace dehealth {

/// Minimal dense row-major matrix for the ML substrate (RLSC normal
/// equations, Gram matrices). Not a general-purpose linear-algebra library —
/// just what the classifiers need.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// this * v ; v.size() must equal cols().
  std::vector<double> MatVec(const std::vector<double>& v) const;

  /// this^T * v ; v.size() must equal rows().
  std::vector<double> TransposeMatVec(const std::vector<double>& v) const;

  /// Returns this^T * this (cols x cols).
  Matrix Gram() const;

  /// Adds `value` to every diagonal entry (requires square).
  void AddDiagonal(double value);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive-definite A via Cholesky
/// decomposition. Fails with InvalidArgument on shape mismatch and
/// FailedPrecondition if A is not (numerically) positive definite.
StatusOr<std::vector<double>> CholeskySolve(const Matrix& a,
                                            const std::vector<double>& b);

/// Euclidean distance between equal-length vectors.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Dot product of equal-length vectors.
double DotProduct(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace dehealth

#endif  // DEHEALTH_ML_LINALG_H_
