#ifndef DEHEALTH_ML_METRICS_H_
#define DEHEALTH_ML_METRICS_H_

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

namespace dehealth {

/// Fraction of positions where `predicted[i] == expected[i]`.
/// Vectors must have equal length; 0 for empty input.
double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& expected);

/// Confusion counts keyed by (expected, predicted).
std::map<std::pair<int, int>, int> ConfusionMatrix(
    const std::vector<int>& predicted, const std::vector<int>& expected);

/// Open-world DA accounting, following Section V-B of the paper.
/// `kNotPresent` encodes the paper's ⊥ ("the user does not appear in the
/// auxiliary data").
inline constexpr int kNotPresent = -1;

struct OpenWorldCounts {
  int overlapping = 0;          // users whose true mapping exists (Y)
  int correct_overlapping = 0;  // de-anonymized to the true mapping (Yc)
  int non_overlapping = 0;      // users without a true mapping
  int false_positives = 0;      // non-overlapping users mapped to some user

  /// Accuracy = Yc / Y (0 when Y == 0).
  double Accuracy() const;

  /// FP rate = false positives / non-overlapping users (0 when none).
  double FalsePositiveRate() const;
};

/// Tallies open-world outcomes. For each user i, `truth[i]` is the true
/// auxiliary label or kNotPresent; `predicted[i]` is the classifier output
/// or kNotPresent (rejected/filtered).
OpenWorldCounts TallyOpenWorld(const std::vector<int>& predicted,
                               const std::vector<int>& truth);

}  // namespace dehealth

#endif  // DEHEALTH_ML_METRICS_H_
