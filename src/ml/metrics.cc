#include "ml/metrics.h"

#include <cassert>
#include <cstddef>
#include <utility>

namespace dehealth {

double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& expected) {
  assert(predicted.size() == expected.size());
  if (predicted.empty()) return 0.0;
  int correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i)
    if (predicted[i] == expected[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

std::map<std::pair<int, int>, int> ConfusionMatrix(
    const std::vector<int>& predicted, const std::vector<int>& expected) {
  assert(predicted.size() == expected.size());
  std::map<std::pair<int, int>, int> confusion;
  for (size_t i = 0; i < predicted.size(); ++i)
    ++confusion[{expected[i], predicted[i]}];
  return confusion;
}

double OpenWorldCounts::Accuracy() const {
  if (overlapping == 0) return 0.0;
  return static_cast<double>(correct_overlapping) /
         static_cast<double>(overlapping);
}

double OpenWorldCounts::FalsePositiveRate() const {
  if (non_overlapping == 0) return 0.0;
  return static_cast<double>(false_positives) /
         static_cast<double>(non_overlapping);
}

OpenWorldCounts TallyOpenWorld(const std::vector<int>& predicted,
                               const std::vector<int>& truth) {
  assert(predicted.size() == truth.size());
  OpenWorldCounts counts;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (truth[i] == kNotPresent) {
      ++counts.non_overlapping;
      if (predicted[i] != kNotPresent) ++counts.false_positives;
    } else {
      ++counts.overlapping;
      if (predicted[i] == truth[i]) ++counts.correct_overlapping;
    }
  }
  return counts;
}

}  // namespace dehealth
