#ifndef DEHEALTH_ML_KNN_H_
#define DEHEALTH_ML_KNN_H_

#include <vector>

#include "ml/classifier.h"

namespace dehealth {

/// k-nearest-neighbors classifier with Euclidean distance and inverse-
/// distance-weighted voting (ties broken by the smaller label). One of the
/// two benchmark learners used in the paper's refined-DA evaluation.
class KnnClassifier : public Classifier {
 public:
  /// `k` must be >= 1; it is capped at the training-set size on Fit.
  explicit KnnClassifier(int k = 5);

  Status Fit(const Dataset& data) override;
  int Predict(const std::vector<double>& x) const override;
  std::vector<double> DecisionScores(
      const std::vector<double>& x) const override;
  const std::vector<int>& classes() const override { return classes_; }

  int k() const { return k_; }

 private:
  int k_;
  Dataset train_;
  std::vector<int> classes_;
};

}  // namespace dehealth

#endif  // DEHEALTH_ML_KNN_H_
