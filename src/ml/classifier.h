#ifndef DEHEALTH_ML_CLASSIFIER_H_
#define DEHEALTH_ML_CLASSIFIER_H_

#include <vector>

#include "common/status.h"
#include "ml/dataset.h"

namespace dehealth {

/// Common interface of the benchmark learners used in De-Health's refined-DA
/// phase (KNN, SMO SVM, RLSC, nearest centroid).
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on `data`. Fails on empty data or fewer than 2 classes
  /// (single-class data is accepted and predicts that class).
  virtual Status Fit(const Dataset& data) = 0;

  /// Predicted label for a feature vector (dims must match training data).
  virtual int Predict(const std::vector<double>& x) const = 0;

  /// Per-class decision scores aligned with `classes()`; higher is more
  /// confident. Used by the open-world verification schemes.
  virtual std::vector<double> DecisionScores(
      const std::vector<double>& x) const = 0;

  /// Class labels in score order.
  virtual const std::vector<int>& classes() const = 0;
};

}  // namespace dehealth

#endif  // DEHEALTH_ML_CLASSIFIER_H_
