#ifndef DEHEALTH_ML_CROSS_VALIDATION_H_
#define DEHEALTH_ML_CROSS_VALIDATION_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"

namespace dehealth {

/// Shuffled k-fold split: returns `folds` index lists that partition
/// [0, n). Sizes differ by at most one. Requires 2 <= folds <= n.
StatusOr<std::vector<std::vector<size_t>>> KFoldIndices(size_t n, int folds,
                                                        Rng& rng);

/// Result of a cross-validation run.
struct CrossValidationResult {
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  std::vector<double> fold_accuracies;
};

/// K-fold cross-validation of a classifier family: `make_classifier` is
/// invoked once per fold (fresh model), trained on the out-of-fold samples
/// (standard-scaled) and scored on the held-out fold. Deterministic in
/// `seed`. Fails on invalid folds, empty data, or classifier errors.
StatusOr<CrossValidationResult> CrossValidate(
    const std::function<std::unique_ptr<Classifier>()>& make_classifier,
    const Dataset& data, int folds, uint64_t seed);

}  // namespace dehealth

#endif  // DEHEALTH_ML_CROSS_VALIDATION_H_
