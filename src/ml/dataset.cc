#include "ml/dataset.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

namespace dehealth {

Status Dataset::Add(Sample sample) {
  if (samples_.empty() && dims_ == 0) dims_ = sample.features.size();
  if (sample.features.size() != dims_)
    return Status::InvalidArgument("Dataset::Add: feature size mismatch");
  samples_.push_back(std::move(sample));
  return Status::OK();
}

std::vector<int> Dataset::Labels() const {
  std::set<int> labels;
  for (const Sample& s : samples_) labels.insert(s.label);
  return {labels.begin(), labels.end()};
}

Status StandardScaler::Fit(const Dataset& data) {
  if (data.empty())
    return Status::InvalidArgument("StandardScaler::Fit: empty dataset");
  const size_t dims = data.dims();
  mean_.assign(dims, 0.0);
  stddev_.assign(dims, 0.0);
  for (const Sample& s : data.samples())
    for (size_t d = 0; d < dims; ++d) mean_[d] += s.features[d];
  const double n = static_cast<double>(data.size());
  for (double& m : mean_) m /= n;
  for (const Sample& s : data.samples())
    for (size_t d = 0; d < dims; ++d) {
      const double diff = s.features[d] - mean_[d];
      stddev_[d] += diff * diff;
    }
  for (double& sd : stddev_) sd = std::sqrt(sd / n);
  return Status::OK();
}

std::vector<double> StandardScaler::Transform(
    const std::vector<double>& x) const {
  assert(fitted() && x.size() == mean_.size());
  std::vector<double> out(x.size());
  for (size_t d = 0; d < x.size(); ++d) {
    const double sd = stddev_[d];
    out[d] = sd > 0.0 ? (x[d] - mean_[d]) / sd : 0.0;
  }
  return out;
}

Dataset StandardScaler::TransformDataset(const Dataset& data) const {
  Dataset out(data.dims());
  for (const Sample& s : data.samples()) {
    Status st = out.Add({Transform(s.features), s.label});
    assert(st.ok());
    (void)st;
  }
  return out;
}

}  // namespace dehealth
