#ifndef DEHEALTH_ML_SVM_SMO_H_
#define DEHEALTH_ML_SVM_SMO_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "ml/classifier.h"

namespace dehealth {

/// Kernel choice for the SMO SVM.
enum class SvmKernel {
  kLinear,
  kRbf,
};

/// Hyperparameters of the SMO-trained SVM.
struct SvmConfig {
  SvmKernel kernel = SvmKernel::kLinear;
  double c = 1.0;            // soft-margin penalty
  double rbf_gamma = 0.1;    // RBF kernel width (kRbf only)
  double tolerance = 1e-3;   // KKT violation tolerance
  int max_passes = 5;        // passes without alpha changes before stopping
  int max_iterations = 500;  // hard cap on outer loops
  uint64_t seed = 1;         // second-index heuristic randomization
};

/// Binary soft-margin SVM trained with Platt's Sequential Minimal
/// Optimization (the simplified variant with a randomized second-choice
/// heuristic). Labels are +1 / -1.
class BinarySvm {
 public:
  explicit BinarySvm(SvmConfig config = {});

  /// Trains on `features` (rows) with `labels[i]` in {+1, -1}.
  Status Fit(const std::vector<std::vector<double>>& features,
             const std::vector<int>& labels);

  /// Same, with a caller-precomputed Gram matrix (gram[i][j] =
  /// K(features[i], features[j])). Lets one-vs-rest multiclass training
  /// share a single kernel evaluation pass.
  Status FitWithGram(const std::vector<std::vector<double>>& features,
                     const std::vector<int>& labels,
                     const std::vector<std::vector<double>>& gram);

  /// Decision value w·x + b (positive => class +1).
  double Decision(const std::vector<double>& x) const;

  int PredictSign(const std::vector<double>& x) const {
    return Decision(x) >= 0.0 ? 1 : -1;
  }

  /// Number of support vectors (alphas > 0 after training).
  int NumSupportVectors() const;

  const SvmConfig& config() const { return config_; }

 private:
  double Kernel(const std::vector<double>& a,
                const std::vector<double>& b) const;

  SvmConfig config_;
  std::vector<std::vector<double>> support_;  // training rows (all kept)
  std::vector<int> labels_;
  std::vector<double> alpha_;
  double b_ = 0.0;
  // Linear kernel only: collapsed weight vector for O(dims) decisions.
  std::vector<double> linear_weights_;
};

/// Multiclass SVM via one-vs-rest binary SMO machines. This is the paper's
/// "SMO" benchmark learner.
class SmoSvmClassifier : public Classifier {
 public:
  explicit SmoSvmClassifier(SvmConfig config = {});

  Status Fit(const Dataset& data) override;
  int Predict(const std::vector<double>& x) const override;
  std::vector<double> DecisionScores(
      const std::vector<double>& x) const override;
  const std::vector<int>& classes() const override { return classes_; }

 private:
  SvmConfig config_;
  std::vector<int> classes_;
  std::vector<BinarySvm> machines_;  // one per class
};

}  // namespace dehealth

#endif  // DEHEALTH_ML_SVM_SMO_H_
