#include "theory/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/parallel.h"

namespace dehealth {

double SampleGamma(double shape, Rng& rng) {
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
    const double u = std::max(rng.NextDouble(), 1e-300);
    return SampleGamma(shape + 1.0, rng) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = rng.NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v;
  }
}

StatusOr<BoundedDistanceDistribution> BoundedDistanceDistribution::Create(
    double lo, double hi, double mean, double concentration) {
  if (lo >= hi)
    return Status::InvalidArgument(
        "BoundedDistanceDistribution: lo must be < hi");
  if (mean <= lo || mean >= hi)
    return Status::InvalidArgument(
        "BoundedDistanceDistribution: mean must lie strictly inside range");
  if (concentration <= 0.0)
    return Status::InvalidArgument(
        "BoundedDistanceDistribution: concentration must be > 0");
  const double mean_frac = (mean - lo) / (hi - lo);
  const double a = mean_frac * concentration;
  const double b = (1.0 - mean_frac) * concentration;
  return BoundedDistanceDistribution(lo, hi, mean, a, b);
}

double BoundedDistanceDistribution::Sample(Rng& rng) const {
  const double x = SampleGamma(alpha_, rng);
  const double y = SampleGamma(beta_, rng);
  const double frac = x / (x + y);
  return lo_ + frac * (hi_ - lo_);
}

namespace {

struct Distributions {
  BoundedDistanceDistribution correct;
  BoundedDistanceDistribution incorrect;
};

StatusOr<Distributions> MakeDistributions(const MonteCarloConfig& c) {
  DEHEALTH_RETURN_IF_ERROR(c.params.Validate());
  if (c.n2 < 2)
    return Status::InvalidArgument("MonteCarlo: n2 must be >= 2");
  if (c.trials < 1)
    return Status::InvalidArgument("MonteCarlo: trials must be >= 1");
  // Center each range on its mean so the width equals theta.
  const double half_c = c.params.theta_correct / 2.0;
  const double half_i = c.params.theta_incorrect / 2.0;
  auto correct = BoundedDistanceDistribution::Create(
      c.params.lambda_correct - half_c, c.params.lambda_correct + half_c,
      c.params.lambda_correct, c.concentration);
  if (!correct.ok()) return correct.status();
  auto incorrect = BoundedDistanceDistribution::Create(
      c.params.lambda_incorrect - half_i,
      c.params.lambda_incorrect + half_i, c.params.lambda_incorrect,
      c.concentration);
  if (!incorrect.ok()) return incorrect.status();
  return Distributions{std::move(correct).value(),
                       std::move(incorrect).value()};
}

}  // namespace

StatusOr<MonteCarloResult> RunExactDaMonteCarlo(const MonteCarloConfig& c) {
  StatusOr<Distributions> dists = MakeDistributions(c);
  if (!dists.ok()) return dists.status();
  // M picks the minimizer when λ < λ̄, the maximizer otherwise (Theorem 1).
  const bool pick_min = c.params.lambda_correct < c.params.lambda_incorrect;

  // Trials are independent: each draws from its own Rng(MixSeed(seed, t))
  // stream and writes its own flag slot, so the tallies are identical for
  // any thread count.
  std::vector<uint8_t> exact_flag(static_cast<size_t>(c.trials), 0);
  std::vector<uint8_t> pair_flag(static_cast<size_t>(c.trials), 0);
  ParallelFor(
      0, c.trials,
      [&](int64_t t) {
        Rng rng(MixSeed(c.seed, static_cast<uint64_t>(t)));
        const double f_true = dists->correct.Sample(rng);
        bool beaten = false;
        for (int v = 0; v < c.n2 - 1; ++v) {
          const double f_wrong = dists->incorrect.Sample(rng);
          if (v == 0) {
            const bool pair_ok =
                pick_min ? f_true < f_wrong : f_true > f_wrong;
            if (pair_ok) pair_flag[static_cast<size_t>(t)] = 1;
          }
          if (pick_min ? f_wrong <= f_true : f_wrong >= f_true)
            beaten = true;
        }
        if (!beaten) exact_flag[static_cast<size_t>(t)] = 1;
      },
      c.num_threads);
  int exact_hits = 0, pair_hits = 0;
  for (int t = 0; t < c.trials; ++t) {
    exact_hits += exact_flag[static_cast<size_t>(t)];
    pair_hits += pair_flag[static_cast<size_t>(t)];
  }
  MonteCarloResult result;
  result.exact_success_rate =
      static_cast<double>(exact_hits) / static_cast<double>(c.trials);
  result.pair_success_rate =
      static_cast<double>(pair_hits) / static_cast<double>(c.trials);
  return result;
}

StatusOr<double> RunTopKDaMonteCarlo(const MonteCarloConfig& c, int k) {
  if (k < 1)
    return Status::InvalidArgument("RunTopKDaMonteCarlo: k must be >= 1");
  StatusOr<Distributions> dists = MakeDistributions(c);
  if (!dists.ok()) return dists.status();
  const bool pick_min = c.params.lambda_correct < c.params.lambda_incorrect;

  std::vector<uint8_t> hit_flag(static_cast<size_t>(c.trials), 0);
  ParallelFor(
      0, c.trials,
      [&](int64_t t) {
        Rng rng(MixSeed(c.seed, static_cast<uint64_t>(t)));
        const double f_true = dists->correct.Sample(rng);
        int better = 0;  // wrong candidates beating the true pair
        for (int v = 0; v < c.n2 - 1; ++v) {
          const double f_wrong = dists->incorrect.Sample(rng);
          if (pick_min ? f_wrong < f_true : f_wrong > f_true) ++better;
        }
        if (better < k) hit_flag[static_cast<size_t>(t)] = 1;
      },
      c.num_threads);
  int hits = 0;
  for (uint8_t f : hit_flag) hits += f;
  return static_cast<double>(hits) / static_cast<double>(c.trials);
}

StatusOr<double> RunGroupDaMonteCarlo(const MonteCarloConfig& c,
                                      int group_size) {
  if (group_size < 1)
    return Status::InvalidArgument(
        "RunGroupDaMonteCarlo: group_size must be >= 1");
  StatusOr<Distributions> dists = MakeDistributions(c);
  if (!dists.ok()) return dists.status();
  const bool pick_min = c.params.lambda_correct < c.params.lambda_incorrect;

  std::vector<uint8_t> hit_flag(static_cast<size_t>(c.trials), 0);
  ParallelFor(
      0, c.trials,
      [&](int64_t t) {
        Rng rng(MixSeed(c.seed, static_cast<uint64_t>(t)));
        bool all_ok = true;
        for (int g = 0; g < group_size && all_ok; ++g) {
          const double f_true = dists->correct.Sample(rng);
          for (int v = 0; v < c.n2 - 1; ++v) {
            const double f_wrong = dists->incorrect.Sample(rng);
            if (pick_min ? f_wrong <= f_true : f_wrong >= f_true) {
              all_ok = false;
              break;
            }
          }
        }
        if (all_ok) hit_flag[static_cast<size_t>(t)] = 1;
      },
      c.num_threads);
  int group_hits = 0;
  for (uint8_t f : hit_flag) group_hits += f;
  return static_cast<double>(group_hits) / static_cast<double>(c.trials);
}

}  // namespace dehealth
