#include "theory/bounds.h"

#include <cassert>
#include <cmath>

#include "common/math_utils.h"

namespace dehealth {

namespace {

/// exp(−(λ−λ̄)²/(4δ²)) — the common Chernoff kernel of Theorems 1-4.
double ChernoffKernel(const DaParameters& p) {
  const double gap = p.gap();
  const double delta = p.delta();
  return std::exp(-(gap * gap) / (4.0 * delta * delta));
}

/// |λ−λ̄| / (2δ) — the left side of every asymptotic condition.
double NormalizedGap(const DaParameters& p) {
  return std::abs(p.gap()) / (2.0 * p.delta());
}

}  // namespace

Status DaParameters::Validate() const {
  if (theta_correct <= 0.0 || theta_incorrect <= 0.0)
    return Status::InvalidArgument("DaParameters: ranges must be positive");
  if (lambda_correct == lambda_incorrect)
    return Status::InvalidArgument(
        "DaParameters: lambda == lambda-bar (theorems require a gap)");
  return Status::OK();
}

double ExactDaPairLowerBound(const DaParameters& p) {
  return Clamp(1.0 - 2.0 * ChernoffKernel(p), 0.0, 1.0);
}

bool PairAsymptoticCondition(const DaParameters& p, int n) {
  assert(n >= 1);
  return NormalizedGap(p) >=
         std::sqrt(2.0 * std::log(static_cast<double>(n)) + std::log(2.0));
}

bool FullSetAsymptoticCondition(const DaParameters& p, int n) {
  assert(n >= 1);
  const double nd = static_cast<double>(n);
  return NormalizedGap(p) >=
         std::sqrt(2.0 * std::log(nd) + std::log(2.0 * nd * nd));
}

double ExactDaFullSetLowerBound(const DaParameters& p, int n2) {
  assert(n2 >= 1);
  return Clamp(1.0 - 2.0 * static_cast<double>(n2 - 1) * ChernoffKernel(p),
               0.0, 1.0);
}

double GroupDaLowerBound(const DaParameters& p, double alpha, int n1,
                         int n2) {
  assert(alpha > 0.0 && alpha <= 1.0 && n1 >= 1 && n2 >= 1);
  const double log_term =
      std::log(2.0 * alpha * static_cast<double>(n1) *
               static_cast<double>(n2));
  const double gap = p.gap();
  const double delta = p.delta();
  return Clamp(1.0 - std::exp(log_term -
                              (gap * gap) / (4.0 * delta * delta)),
               0.0, 1.0);
}

bool GroupAsymptoticCondition(const DaParameters& p, double alpha, int n1,
                              int n2, int n) {
  assert(alpha > 0.0 && alpha <= 1.0 && n >= 1);
  return NormalizedGap(p) >=
         std::sqrt(2.0 * std::log(static_cast<double>(n)) +
                   std::log(2.0 * alpha * static_cast<double>(n1) *
                            static_cast<double>(n2)));
}

double TopKDaLowerBound(const DaParameters& p, int n2, int k) {
  assert(n2 >= 1 && k >= 1);
  if (k >= n2) return 1.0;  // the candidate set is the whole auxiliary set
  const double log_term = std::log(2.0 * static_cast<double>(n2 - k));
  const double gap = p.gap();
  const double delta = p.delta();
  return Clamp(1.0 - std::exp(log_term -
                              (gap * gap) / (4.0 * delta * delta)),
               0.0, 1.0);
}

bool TopKAsymptoticCondition(const DaParameters& p, int n2, int k, int n) {
  assert(n2 >= 1 && k >= 1 && n >= 1);
  if (k >= n2) return true;
  return NormalizedGap(p) >=
         std::sqrt(std::log(2.0 * static_cast<double>(n2 - k)) +
                   2.0 * std::log(static_cast<double>(n)));
}

double GroupTopKDaLowerBound(const DaParameters& p, double alpha, int n1,
                             int n2, int k) {
  assert(alpha > 0.0 && alpha <= 1.0 && n1 >= 1 && n2 >= 1 && k >= 1);
  if (k >= n2) return 1.0;
  const double log_term =
      std::log(2.0 * alpha * static_cast<double>(n1) *
               static_cast<double>(n2 - k));
  const double gap = p.gap();
  const double delta = p.delta();
  return Clamp(1.0 - std::exp(log_term -
                              (gap * gap) / (4.0 * delta * delta)),
               0.0, 1.0);
}

bool GroupTopKAsymptoticCondition(const DaParameters& p, double alpha,
                                  int n1, int n2, int k, int n) {
  assert(alpha > 0.0 && alpha <= 1.0 && n >= 1);
  if (k >= n2) return true;
  return NormalizedGap(p) >=
         std::sqrt(std::log(2.0 * alpha * static_cast<double>(n1) *
                            static_cast<double>(n2 - k)) +
                   2.0 * std::log(static_cast<double>(n)));
}

double RequiredGapForPairBound(double delta, double target) {
  assert(delta > 0.0 && target >= 0.0 && target < 1.0);
  // 1 - 2 exp(-g² / 4δ²) = target  =>  g = 2δ sqrt(ln(2 / (1 - target))).
  return 2.0 * delta * std::sqrt(std::log(2.0 / (1.0 - target)));
}

}  // namespace dehealth
