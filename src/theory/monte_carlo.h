#ifndef DEHEALTH_THEORY_MONTE_CARLO_H_
#define DEHEALTH_THEORY_MONTE_CARLO_H_

#include "common/rng.h"
#include "common/status.h"
#include "theory/bounds.h"

namespace dehealth {

/// A bounded distance distribution on [lo, hi] with controllable mean:
/// a scaled Beta whose concentration sets how tightly draws cluster around
/// the mean. Models the theory section's f(u, u') / f(u, v) draws.
class BoundedDistanceDistribution {
 public:
  /// Requires lo < hi, mean strictly inside (lo, hi), concentration > 0.
  static StatusOr<BoundedDistanceDistribution> Create(double lo, double hi,
                                                      double mean,
                                                      double concentration);

  double Sample(Rng& rng) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double mean() const { return mean_; }

 private:
  BoundedDistanceDistribution(double lo, double hi, double mean, double a,
                              double b)
      : lo_(lo), hi_(hi), mean_(mean), alpha_(a), beta_(b) {}

  double lo_, hi_, mean_;
  double alpha_, beta_;  // Beta shape parameters
};

/// Gamma(shape, 1) sampler (Marsaglia-Tsang, with the alpha<1 boost);
/// building block for Beta draws. Exposed for testing.
double SampleGamma(double shape, Rng& rng);

/// Monte-Carlo experiment configuration: one anonymized user (or a group)
/// against n2 auxiliary users whose wrong-pair distances are i.i.d. from
/// the incorrect distribution and whose true pair draws from the correct
/// distribution. The DA model M picks the minimizer (λ < λ̄ case) as in the
/// Theorem-1 proof.
struct MonteCarloConfig {
  DaParameters params;
  double concentration = 8.0;  // Beta concentration of both distributions
  int n2 = 100;                // auxiliary users
  int trials = 2000;
  /// Base seed. Trial t draws from its own Rng(MixSeed(seed, t)) stream,
  /// so results are identical for any thread count.
  uint64_t seed = 99;
  /// Threads for the trial loop (0 = hardware concurrency).
  int num_threads = 0;
};

/// Empirical results, comparable against the theorem lower bounds.
struct MonteCarloResult {
  double exact_success_rate = 0.0;  // u de-anonymized from all of V2
  double pair_success_rate = 0.0;   // u vs a single wrong candidate
};

/// Runs the exact-DA experiment; also tallies the pairwise (Theorem-1)
/// success against the first wrong candidate of each trial.
StatusOr<MonteCarloResult> RunExactDaMonteCarlo(const MonteCarloConfig& c);

/// Empirical Top-K success rate: fraction of trials where the true pair's
/// distance ranks within the K smallest.
StatusOr<double> RunTopKDaMonteCarlo(const MonteCarloConfig& c, int k);

/// Empirical group success: probability that `group_size` independent users
/// are all exactly de-anonymized in one trial.
StatusOr<double> RunGroupDaMonteCarlo(const MonteCarloConfig& c,
                                      int group_size);

}  // namespace dehealth

#endif  // DEHEALTH_THEORY_MONTE_CARLO_H_
