#ifndef DEHEALTH_THEORY_BOUNDS_H_
#define DEHEALTH_THEORY_BOUNDS_H_

#include <algorithm>

#include "common/status.h"

namespace dehealth {

/// Parameters of the paper's Section-IV analysis framework. `f` is the
/// feature-distance function used by the DA model M:
///  - f(u, u') of a correct pair has mean λ ("lambda_correct") and range
///    width θ = θ_u − θ_l ("theta_correct");
///  - f(u, v) of an incorrect pair has mean λ̄ and range width θ̄;
///  - δ = max(θ, θ̄).
struct DaParameters {
  double lambda_correct = 0.0;    // λ
  double lambda_incorrect = 0.0;  // λ̄
  double theta_correct = 1.0;     // θ
  double theta_incorrect = 1.0;   // θ̄

  double delta() const { return std::max(theta_correct, theta_incorrect); }
  double gap() const { return lambda_incorrect - lambda_correct; }

  /// Validity: ranges positive and λ ≠ λ̄ (the theorems require it).
  Status Validate() const;
};

/// Theorem 1: Pr(u → u' from {u', v}) ≥ 1 − 2·exp(−(λ−λ̄)² / (4δ²)).
/// Clamped to [0, 1].
double ExactDaPairLowerBound(const DaParameters& p);

/// Corollary 1: the condition |λ−λ̄| / (2θ) ≥ sqrt(2 ln n + ln 2) under
/// which pairwise DA succeeds a.a.s. (θ here is δ, the larger range).
bool PairAsymptoticCondition(const DaParameters& p, int n);

/// Corollary 2: condition |λ−λ̄| / (2θ) ≥ sqrt(2 ln n + ln 2n²) for
/// de-anonymizing u from the whole auxiliary set a.a.s.
bool FullSetAsymptoticCondition(const DaParameters& p, int n);

/// Implied union-bound success probability of de-anonymizing u from n2
/// auxiliary users: 1 − 2(n2−1)·exp(−(λ−λ̄)²/(4δ²)), clamped to [0, 1].
double ExactDaFullSetLowerBound(const DaParameters& p, int n2);

/// Theorem 2: Pr(∆1 is α-re-identifiable) ≥
/// 1 − exp(ln(2αn1n2) − (λ−λ̄)²/(4δ²)). Clamped to [0, 1].
double GroupDaLowerBound(const DaParameters& p, double alpha, int n1, int n2);

/// Corollary 3 condition: |λ−λ̄| / (2θ) ≥ sqrt(2 ln n + ln 2αn1n2).
bool GroupAsymptoticCondition(const DaParameters& p, double alpha, int n1,
                              int n2, int n);

/// Theorem 3(i): Pr(u → C_u) ≥ 1 − exp(ln 2(n2−K) − (λ−λ̄)²/(4δ²)).
double TopKDaLowerBound(const DaParameters& p, int n2, int k);

/// Theorem 3(ii) condition: |λ−λ̄|/(2θ) ≥ sqrt(ln 2(n2−K) + 2 ln n).
bool TopKAsymptoticCondition(const DaParameters& p, int n2, int k, int n);

/// Theorem 4(i): Pr(Vα: u → C_u) ≥
/// 1 − exp(ln 2αn1(n2−K) − (λ−λ̄)²/(4δ²)).
double GroupTopKDaLowerBound(const DaParameters& p, double alpha, int n1,
                             int n2, int k);

/// Theorem 4(ii) condition:
/// |λ−λ̄|/(2θ) ≥ sqrt(ln 2αn1(n2−K) + 2 ln n).
bool GroupTopKAsymptoticCondition(const DaParameters& p, double alpha,
                                  int n1, int n2, int k, int n);

/// Smallest mean gap |λ−λ̄| that makes the Theorem-1 lower bound reach
/// `target` success probability (given δ); useful for "how separated must
/// the feature distance be" analyses. Requires target in [0, 1).
double RequiredGapForPairBound(double delta, double target);

}  // namespace dehealth

#endif  // DEHEALTH_THEORY_BOUNDS_H_
