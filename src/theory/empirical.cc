#include "theory/empirical.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dehealth {

StatusOr<EmpiricalDaEstimate> EstimateDaParameters(
    const std::vector<std::vector<double>>& similarity,
    const std::vector<int>& truth) {
  if (similarity.empty() || similarity[0].empty())
    return Status::InvalidArgument(
        "EstimateDaParameters: empty similarity matrix");
  if (similarity.size() != truth.size())
    return Status::InvalidArgument(
        "EstimateDaParameters: truth size mismatch");

  double correct_sum = 0.0, correct_sq = 0.0;
  double incorrect_sum = 0.0, incorrect_sq = 0.0;
  double correct_min = std::numeric_limits<double>::infinity();
  double correct_max = -correct_min;
  double incorrect_min = correct_min, incorrect_max = -correct_min;
  double global_max = -correct_min;
  int num_correct = 0;
  long long num_incorrect = 0;

  for (size_t u = 0; u < similarity.size(); ++u) {
    const auto& row = similarity[u];
    for (size_t v = 0; v < row.size(); ++v) {
      const double s = row[v];
      global_max = std::max(global_max, s);
      if (truth[u] >= 0 && static_cast<size_t>(truth[u]) == v) {
        correct_sum += s;
        correct_sq += s * s;
        correct_min = std::min(correct_min, s);
        correct_max = std::max(correct_max, s);
        ++num_correct;
      } else {
        incorrect_sum += s;
        incorrect_sq += s * s;
        incorrect_min = std::min(incorrect_min, s);
        incorrect_max = std::max(incorrect_max, s);
        ++num_incorrect;
      }
    }
  }
  if (num_correct == 0)
    return Status::FailedPrecondition(
        "EstimateDaParameters: no overlapping users (no correct pairs)");
  if (num_incorrect == 0)
    return Status::FailedPrecondition(
        "EstimateDaParameters: no incorrect pairs");

  EmpiricalDaEstimate e;
  e.num_correct_pairs = num_correct;
  e.num_incorrect_pairs = num_incorrect;
  e.mean_correct_similarity = correct_sum / num_correct;
  e.mean_incorrect_similarity =
      incorrect_sum / static_cast<double>(num_incorrect);
  e.stddev_correct = std::sqrt(std::max(
      0.0, correct_sq / num_correct -
               e.mean_correct_similarity * e.mean_correct_similarity));
  e.stddev_incorrect = std::sqrt(std::max(
      0.0, incorrect_sq / static_cast<double>(num_incorrect) -
               e.mean_incorrect_similarity * e.mean_incorrect_similarity));

  // Distances f = global_max - s: correct pairs (high similarity) get the
  // SMALLER mean, matching the λ < λ̄ branch of the theorems.
  e.params.lambda_correct = global_max - e.mean_correct_similarity;
  e.params.lambda_incorrect = global_max - e.mean_incorrect_similarity;
  e.params.theta_correct = std::max(1e-9, correct_max - correct_min);
  e.params.theta_incorrect = std::max(1e-9, incorrect_max - incorrect_min);
  return e;
}

StatusOr<EmpiricalBoundCheck> CheckBoundsAgainstData(
    const std::vector<std::vector<double>>& similarity,
    const std::vector<int>& truth) {
  StatusOr<EmpiricalDaEstimate> estimate =
      EstimateDaParameters(similarity, truth);
  if (!estimate.ok()) return estimate.status();

  EmpiricalBoundCheck check;
  check.theorem1_bound =
      estimate->params.lambda_correct == estimate->params.lambda_incorrect
          ? 0.0
          : ExactDaPairLowerBound(estimate->params);

  // Empirical pairwise success: for each overlapping u, fraction of wrong
  // candidates its true mapping beats. Exact success: argmax of the row.
  long long pair_wins = 0, pair_total = 0;
  int exact_wins = 0, overlapping = 0;
  for (size_t u = 0; u < similarity.size(); ++u) {
    if (truth[u] < 0) continue;
    ++overlapping;
    const auto& row = similarity[u];
    const double s_true = row[static_cast<size_t>(truth[u])];
    bool beaten = false;
    for (size_t v = 0; v < row.size(); ++v) {
      if (static_cast<int>(v) == truth[u]) continue;
      ++pair_total;
      if (s_true > row[v]) {
        ++pair_wins;
      } else {
        beaten = true;
      }
    }
    if (!beaten) ++exact_wins;
  }
  if (pair_total > 0)
    check.empirical_pair_success =
        static_cast<double>(pair_wins) / static_cast<double>(pair_total);
  if (overlapping > 0)
    check.empirical_exact_success =
        static_cast<double>(exact_wins) / overlapping;
  return check;
}

}  // namespace dehealth
