#ifndef DEHEALTH_THEORY_EMPIRICAL_H_
#define DEHEALTH_THEORY_EMPIRICAL_H_

#include <vector>

#include "common/status.h"
#include "theory/bounds.h"

namespace dehealth {

/// Bridges the Section-IV analysis to real attack runs: estimates the
/// framework's parameters (λ, λ̄, θ, θ̄) from an observed similarity matrix
/// and ground truth, so the theorem bounds can be instantiated for a
/// concrete dataset instead of assumed distributions — the "analysis under
/// some specific distribution" the paper defers to future work.
struct EmpiricalDaEstimate {
  DaParameters params;     // distances = (offset - similarity), see below
  double mean_correct_similarity = 0.0;    // raw s(u, u') mean
  double mean_incorrect_similarity = 0.0;  // raw s(u, v != u') mean
  double stddev_correct = 0.0;
  double stddev_incorrect = 0.0;
  int num_correct_pairs = 0;
  long long num_incorrect_pairs = 0;
};

/// Estimates from `similarity[u][v]` and `truth[u]` (auxiliary id or
/// negative for non-overlapping users, which contribute only incorrect
/// pairs). The theory works on distances, so similarities are mapped
/// through f = s_max - s; ranges θ are taken as observed min/max spans.
/// Fails when there are no correct pairs or the matrix is empty.
StatusOr<EmpiricalDaEstimate> EstimateDaParameters(
    const std::vector<std::vector<double>>& similarity,
    const std::vector<int>& truth);

/// Convenience: the Theorem-1 pairwise lower bound instantiated with the
/// estimate, and the empirical pairwise success rate of the "pick the most
/// similar of {u', v}" model measured on the same data. Both in [0, 1];
/// the bound must not exceed the empirical rate (up to sampling noise) if
/// the estimate is sane.
struct EmpiricalBoundCheck {
  double theorem1_bound = 0.0;
  double empirical_pair_success = 0.0;
  double empirical_exact_success = 0.0;  // argmax over the full row
};

StatusOr<EmpiricalBoundCheck> CheckBoundsAgainstData(
    const std::vector<std::vector<double>>& similarity,
    const std::vector<int>& truth);

}  // namespace dehealth

#endif  // DEHEALTH_THEORY_EMPIRICAL_H_
