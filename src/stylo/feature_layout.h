#ifndef DEHEALTH_STYLO_FEATURE_LAYOUT_H_
#define DEHEALTH_STYLO_FEATURE_LAYOUT_H_

#include <string>

#include "text/pos_tagger.h"

namespace dehealth {

/// Fixed, global id layout of the Table-I stylometric feature space F.
/// Every post's sparse feature vector and every user attribute A_i indexes
/// into this layout; ids are stable across runs, which makes generated data,
/// tests, and benches reproducible.
///
/// Category sizes follow Table I of the paper:
///   Length 3, Word length 20, Vocabulary richness 5, Letter freq 26,
///   Digit freq 10, Uppercase percentage 1, Special characters 21,
///   Word shape 21, Punctuation freq 10, Function words 337,
///   POS tags (our tagset: 32), POS tag bigrams (32^2 = 1024),
///   Misspelled words 248.
namespace feature_layout {

// --- Length (3) ---
inline constexpr int kNumChars = 0;          // total characters
inline constexpr int kNumParagraphs = 1;     // paragraph count
inline constexpr int kAvgCharsPerWord = 2;   // mean word length

// --- Word length frequencies (20): words of length 1..20 ---
inline constexpr int kWordLengthBase = 3;
inline constexpr int kNumWordLengths = 20;

// --- Vocabulary richness (5) ---
inline constexpr int kYulesK = 23;
inline constexpr int kHapaxLegomena = 24;     // fraction of words used once
inline constexpr int kDisLegomena = 25;       // ... twice
inline constexpr int kTrisLegomena = 26;      // ... three times
inline constexpr int kTetrakisLegomena = 27;  // ... four times

// --- Letter frequencies (26): 'a'..'z', case-folded ---
inline constexpr int kLetterBase = 28;

// --- Digit frequencies (10): '0'..'9' ---
inline constexpr int kDigitBase = 54;

// --- Uppercase letter percentage (1) ---
inline constexpr int kUppercasePct = 64;

// --- Special character frequencies (21) ---
inline constexpr int kSpecialCharBase = 65;
inline constexpr int kNumSpecialChars = 21;
/// The tracked special characters, in id order.
const char* SpecialCharSet();  // returns a 21-char string

// --- Word shape (21) ---
// 4 global shape fractions, 1 "other" fraction, 4 shape fractions within
// each of three length bands (short <=3, medium 4-6, long >=7), apostrophe
// rate, shape-transition rate, brand-shape rate, sentence-initial
// capitalization rate. Total = 4+1+12+1+1+1+1 = 21.
inline constexpr int kShapeBase = 86;
inline constexpr int kShapeAllUpper = 86;
inline constexpr int kShapeAllLower = 87;
inline constexpr int kShapeFirstUpper = 88;
inline constexpr int kShapeCamel = 89;
inline constexpr int kShapeOther = 90;
inline constexpr int kShapeShortBase = 91;   // 4: upper/lower/first/camel
inline constexpr int kShapeMediumBase = 95;  // 4
inline constexpr int kShapeLongBase = 99;    // 4
inline constexpr int kShapeApostropheRate = 103;
inline constexpr int kShapeTransitionRate = 104;
inline constexpr int kShapeBrandRate = 105;  // all-upper or camel
inline constexpr int kShapeSentenceInitialCap = 106;

// --- Punctuation frequencies (10) ---
inline constexpr int kPunctuationBase = 107;
inline constexpr int kNumPunctuation = 10;
/// The tracked punctuation characters, in id order: . , ; : ! ? ' " ( )
const char* PunctuationSet();  // returns a 10-char string

// --- Function words (337) ---
inline constexpr int kFunctionWordBase = 117;
inline constexpr int kNumFunctionWords = 337;

// --- POS tag frequencies ---
inline constexpr int kPosTagBase = 454;  // + kNumPosTags entries

// --- POS tag bigram frequencies ---
inline constexpr int kPosBigramBase = kPosTagBase + kNumPosTags;  // 486

// --- Misspellings (248) ---
inline constexpr int kMisspellingBase = kPosBigramBase + kNumPosBigrams;
inline constexpr int kNumMisspellings = 248;

/// Total dimensionality M of the feature space.
inline constexpr int kTotalFeatures = kMisspellingBase + kNumMisspellings;

static_assert(kPosBigramBase == 486, "layout drift");
static_assert(kMisspellingBase == 1510, "layout drift");
static_assert(kTotalFeatures == 1758, "layout drift");

/// Human-readable name for a feature id, e.g. "letter_freq[e]",
/// "function_word[because]", "pos_bigram[DT,NN]". Returns "invalid" for ids
/// outside [0, kTotalFeatures).
std::string FeatureName(int id);

/// Coarse Table-I category of a feature id ("length", "word_length",
/// "vocabulary_richness", "letter_freq", "digit_freq", "uppercase_pct",
/// "special_chars", "word_shape", "punctuation", "function_words",
/// "pos_tags", "pos_bigrams", "misspellings").
const char* FeatureCategory(int id);

}  // namespace feature_layout

}  // namespace dehealth

#endif  // DEHEALTH_STYLO_FEATURE_LAYOUT_H_
