#include "stylo/feature_layout.h"

#include "common/string_utils.h"
#include "text/lexicon.h"

namespace dehealth {
namespace feature_layout {

namespace {
// 21 tracked special characters. '-' lives here (not in punctuation).
constexpr char kSpecialChars[] = "@#$%^&*_+=/\\|<>~[]{}-";
static_assert(sizeof(kSpecialChars) - 1 == kNumSpecialChars,
              "special char set must have 21 entries");

constexpr char kPunctuationChars[] = ".,;:!?'\"()";
static_assert(sizeof(kPunctuationChars) - 1 == kNumPunctuation,
              "punctuation set must have 10 entries");

const char* ShapeBandName(int offset) {
  switch (offset) {
    case 0: return "all_upper";
    case 1: return "all_lower";
    case 2: return "first_upper";
    case 3: return "camel";
    default: return "?";
  }
}
}  // namespace

const char* SpecialCharSet() { return kSpecialChars; }
const char* PunctuationSet() { return kPunctuationChars; }

std::string FeatureName(int id) {
  if (id < 0 || id >= kTotalFeatures) return "invalid";
  switch (id) {
    case kNumChars: return "length[num_chars]";
    case kNumParagraphs: return "length[num_paragraphs]";
    case kAvgCharsPerWord: return "length[avg_chars_per_word]";
    case kYulesK: return "vocab[yules_k]";
    case kHapaxLegomena: return "vocab[hapax_legomena]";
    case kDisLegomena: return "vocab[dis_legomena]";
    case kTrisLegomena: return "vocab[tris_legomena]";
    case kTetrakisLegomena: return "vocab[tetrakis_legomena]";
    case kUppercasePct: return "uppercase_pct";
    case kShapeAllUpper: return "word_shape[all_upper]";
    case kShapeAllLower: return "word_shape[all_lower]";
    case kShapeFirstUpper: return "word_shape[first_upper]";
    case kShapeCamel: return "word_shape[camel]";
    case kShapeOther: return "word_shape[other]";
    case kShapeApostropheRate: return "word_shape[apostrophe_rate]";
    case kShapeTransitionRate: return "word_shape[transition_rate]";
    case kShapeBrandRate: return "word_shape[brand_rate]";
    case kShapeSentenceInitialCap:
      return "word_shape[sentence_initial_cap]";
    default: break;
  }
  if (id >= kWordLengthBase && id < kWordLengthBase + kNumWordLengths)
    return StrFormat("word_length[%d]", id - kWordLengthBase + 1);
  if (id >= kLetterBase && id < kLetterBase + 26)
    return StrFormat("letter_freq[%c]", 'a' + (id - kLetterBase));
  if (id >= kDigitBase && id < kDigitBase + 10)
    return StrFormat("digit_freq[%c]", '0' + (id - kDigitBase));
  if (id >= kSpecialCharBase && id < kSpecialCharBase + kNumSpecialChars)
    return StrFormat("special_char[%c]", kSpecialChars[id - kSpecialCharBase]);
  if (id >= kShapeShortBase && id < kShapeShortBase + 4)
    return StrFormat("word_shape[short:%s]", ShapeBandName(id - kShapeShortBase));
  if (id >= kShapeMediumBase && id < kShapeMediumBase + 4)
    return StrFormat("word_shape[medium:%s]",
                     ShapeBandName(id - kShapeMediumBase));
  if (id >= kShapeLongBase && id < kShapeLongBase + 4)
    return StrFormat("word_shape[long:%s]", ShapeBandName(id - kShapeLongBase));
  if (id >= kPunctuationBase && id < kPunctuationBase + kNumPunctuation)
    return StrFormat("punctuation[%c]",
                     kPunctuationChars[id - kPunctuationBase]);
  if (id >= kFunctionWordBase && id < kFunctionWordBase + kNumFunctionWords)
    return StrFormat(
        "function_word[%s]",
        FunctionWordLexicon()[static_cast<size_t>(id - kFunctionWordBase)]
            .c_str());
  if (id >= kPosTagBase && id < kPosTagBase + kNumPosTags)
    return StrFormat("pos_tag[%s]",
                     PosTagName(static_cast<PosTag>(id - kPosTagBase)));
  if (id >= kPosBigramBase && id < kPosBigramBase + kNumPosBigrams) {
    const int bigram = id - kPosBigramBase;
    return StrFormat("pos_bigram[%s,%s]",
                     PosTagName(static_cast<PosTag>(bigram / kNumPosTags)),
                     PosTagName(static_cast<PosTag>(bigram % kNumPosTags)));
  }
  if (id >= kMisspellingBase && id < kMisspellingBase + kNumMisspellings)
    return StrFormat(
        "misspelling[%s]",
        MisspellingLexicon()[static_cast<size_t>(id - kMisspellingBase)]
            .c_str());
  return "invalid";
}

const char* FeatureCategory(int id) {
  if (id < 0 || id >= kTotalFeatures) return "invalid";
  if (id <= kAvgCharsPerWord) return "length";
  if (id < kWordLengthBase + kNumWordLengths) return "word_length";
  if (id <= kTetrakisLegomena) return "vocabulary_richness";
  if (id < kLetterBase + 26) return "letter_freq";
  if (id < kDigitBase + 10) return "digit_freq";
  if (id == kUppercasePct) return "uppercase_pct";
  if (id < kSpecialCharBase + kNumSpecialChars) return "special_chars";
  if (id < kPunctuationBase) return "word_shape";
  if (id < kPunctuationBase + kNumPunctuation) return "punctuation";
  if (id < kFunctionWordBase + kNumFunctionWords) return "function_words";
  if (id < kPosTagBase + kNumPosTags) return "pos_tags";
  if (id < kPosBigramBase + kNumPosBigrams) return "pos_bigrams";
  return "misspellings";
}

}  // namespace feature_layout
}  // namespace dehealth
