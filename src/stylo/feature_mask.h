#ifndef DEHEALTH_STYLO_FEATURE_MASK_H_
#define DEHEALTH_STYLO_FEATURE_MASK_H_

#include <string>
#include <vector>

#include "stylo/feature_vector.h"

namespace dehealth {

/// Utilities for feature-category ablations ("which features are more
/// effective in de-anonymizing online health data" — the paper's stated
/// future work, exercised by bench_feature_ablation).

/// All Table-I category labels, in layout order.
const std::vector<std::string>& AllFeatureCategories();

/// Returns a copy of `v` containing only features whose category is in
/// `categories`. Unknown category names are ignored.
SparseVector KeepCategories(const SparseVector& v,
                            const std::vector<std::string>& categories);

/// Returns a copy of `v` with all features of the given categories removed.
SparseVector DropCategories(const SparseVector& v,
                            const std::vector<std::string>& categories);

}  // namespace dehealth

#endif  // DEHEALTH_STYLO_FEATURE_MASK_H_
