#include "stylo/feature_mask.h"

#include <algorithm>

#include "stylo/feature_layout.h"

namespace dehealth {

const std::vector<std::string>& AllFeatureCategories() {
  static const auto& categories = *new std::vector<std::string>{
      "length",        "word_length",    "vocabulary_richness",
      "letter_freq",   "digit_freq",     "uppercase_pct",
      "special_chars", "word_shape",     "punctuation",
      "function_words", "pos_tags",      "pos_bigrams",
      "misspellings",
  };
  return categories;
}

namespace {

bool Contains(const std::vector<std::string>& list, const char* value) {
  return std::find(list.begin(), list.end(), value) != list.end();
}

SparseVector Filter(const SparseVector& v,
                    const std::vector<std::string>& categories, bool keep) {
  SparseVector out;
  for (const auto& [id, value] : v.entries()) {
    const bool in_set = Contains(categories, feature_layout::FeatureCategory(id));
    if (in_set == keep) out.Set(id, value);
  }
  return out;
}

}  // namespace

SparseVector KeepCategories(const SparseVector& v,
                            const std::vector<std::string>& categories) {
  return Filter(v, categories, /*keep=*/true);
}

SparseVector DropCategories(const SparseVector& v,
                            const std::vector<std::string>& categories) {
  return Filter(v, categories, /*keep=*/false);
}

}  // namespace dehealth
