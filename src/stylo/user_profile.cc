#include "stylo/user_profile.h"

#include <algorithm>

namespace dehealth {

void UserProfile::AddPost(const SparseVector& post_features) {
  ++num_posts_;
  for (const auto& [id, value] : post_features.entries()) {
    if (value != 0.0) ++attribute_weights_[id];
  }
  sum_features_.AddVector(post_features);
}

bool UserProfile::HasAttribute(int id) const {
  return attribute_weights_.count(id) > 0;
}

int UserProfile::AttributeWeight(int id) const {
  auto it = attribute_weights_.find(id);
  return it == attribute_weights_.end() ? 0 : it->second;
}

SparseVector UserProfile::MeanFeatures() const {
  SparseVector mean = sum_features_;
  if (num_posts_ > 0) mean.Scale(1.0 / num_posts_);
  return mean;
}

double AttributeSimilarity(const UserProfile& u, const UserProfile& v) {
  const auto& a = u.attributes();
  const auto& b = v.attributes();
  if (a.empty() && b.empty()) return 0.0;

  size_t set_intersection = 0;
  long long weight_intersection = 0;  // sum of min weights over A(u) ∩ A(v)
  long long weight_union = 0;         // sum of max weights over A(u) ∪ A(v)

  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (ia->first < ib->first) {
      weight_union += ia->second;
      ++ia;
    } else if (ib->first < ia->first) {
      weight_union += ib->second;
      ++ib;
    } else {
      ++set_intersection;
      weight_intersection += std::min(ia->second, ib->second);
      weight_union += std::max(ia->second, ib->second);
      ++ia;
      ++ib;
    }
  }
  for (; ia != a.end(); ++ia) weight_union += ia->second;
  for (; ib != b.end(); ++ib) weight_union += ib->second;

  const size_t set_union = a.size() + b.size() - set_intersection;
  double sim = 0.0;
  if (set_union > 0)
    sim += static_cast<double>(set_intersection) /
           static_cast<double>(set_union);
  if (weight_union > 0)
    sim += static_cast<double>(weight_intersection) /
           static_cast<double>(weight_union);
  return sim;
}

}  // namespace dehealth
