#ifndef DEHEALTH_STYLO_FEATURE_VECTOR_H_
#define DEHEALTH_STYLO_FEATURE_VECTOR_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace dehealth {

/// A sparse, id-indexed feature vector. Ids are kept sorted; absent ids read
/// as 0. Used for per-post stylometric vectors (dimension ~1.7K, typically a
/// few hundred nonzeros).
class SparseVector {
 public:
  SparseVector() = default;

  /// Sets feature `id` to `value`. Setting 0 removes the entry.
  void Set(int id, double value);

  /// Adds `delta` to feature `id`.
  void Add(int id, double delta);

  /// Value at `id` (0 when absent).
  double Get(int id) const;

  /// Number of stored (nonzero) entries.
  size_t NumNonZero() const { return entries_.size(); }

  bool empty() const { return entries_.empty(); }

  /// Sorted (id, value) pairs.
  const std::vector<std::pair<int, double>>& entries() const {
    return entries_;
  }

  /// Dot product with another sparse vector.
  double Dot(const SparseVector& other) const;

  /// Euclidean norm.
  double Norm() const;

  /// Cosine similarity (0 if either is empty/zero).
  double Cosine(const SparseVector& other) const;

  /// In-place scaling by `factor`.
  void Scale(double factor);

  /// In-place accumulation: *this += other.
  void AddVector(const SparseVector& other);

  /// Densifies into a length-`dims` vector (ids >= dims are dropped).
  std::vector<double> ToDense(int dims) const;

  bool operator==(const SparseVector& other) const = default;

 private:
  // Sorted by id.
  std::vector<std::pair<int, double>> entries_;
};

}  // namespace dehealth

#endif  // DEHEALTH_STYLO_FEATURE_VECTOR_H_
