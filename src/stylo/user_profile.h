#ifndef DEHEALTH_STYLO_USER_PROFILE_H_
#define DEHEALTH_STYLO_USER_PROFILE_H_

#include <map>
#include <vector>

#include "stylo/feature_vector.h"

namespace dehealth {

/// User-level aggregation of per-post feature vectors:
///  - the paper's attribute set A(u) = { A_i : some post of u has F_i != 0 }
///    with weights l_u(A_i) = number of u's posts having feature F_i, and
///  - the mean per-post feature vector (used as the ML representation).
class UserProfile {
 public:
  UserProfile() = default;

  /// Folds one post's feature vector into the profile.
  void AddPost(const SparseVector& post_features);

  /// Number of posts aggregated.
  int num_posts() const { return num_posts_; }

  /// True if the user has attribute `id` (some post had the feature).
  bool HasAttribute(int id) const;

  /// l_u(A_i): number of posts having feature `id` (0 if none).
  int AttributeWeight(int id) const;

  /// All (attribute id, weight) pairs, ordered by id.
  const std::map<int, int>& attributes() const { return attribute_weights_; }

  /// Mean per-post feature vector (empty if no posts).
  SparseVector MeanFeatures() const;

  /// Sum of all posts' feature vectors.
  const SparseVector& SumFeatures() const { return sum_features_; }

 private:
  int num_posts_ = 0;
  std::map<int, int> attribute_weights_;
  SparseVector sum_features_;
};

/// The paper's attribute similarity
///   s^a_{uv} = |A(u) ∩ A(v)| / |A(u) ∪ A(v)|
///            + |WA(u) ∩ WA(v)| / |WA(u) ∪ WA(v)|,
/// i.e. plain Jaccard over attribute sets plus weighted Jaccard over
/// (attribute, weight) multisets with min/max semantics. Range [0, 2].
/// Two empty profiles score 0.
double AttributeSimilarity(const UserProfile& u, const UserProfile& v);

}  // namespace dehealth

#endif  // DEHEALTH_STYLO_USER_PROFILE_H_
