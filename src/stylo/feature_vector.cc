#include "stylo/feature_vector.h"

#include <algorithm>
#include <cmath>

namespace dehealth {

namespace {

// Finds the entry for `id` in a sorted pair vector.
auto FindEntry(std::vector<std::pair<int, double>>& v, int id) {
  return std::lower_bound(
      v.begin(), v.end(), id,
      [](const std::pair<int, double>& e, int key) { return e.first < key; });
}

auto FindEntryConst(const std::vector<std::pair<int, double>>& v, int id) {
  return std::lower_bound(
      v.begin(), v.end(), id,
      [](const std::pair<int, double>& e, int key) { return e.first < key; });
}

}  // namespace

void SparseVector::Set(int id, double value) {
  auto it = FindEntry(entries_, id);
  if (it != entries_.end() && it->first == id) {
    if (value == 0.0) {
      entries_.erase(it);
    } else {
      it->second = value;
    }
  } else if (value != 0.0) {
    entries_.insert(it, {id, value});
  }
}

void SparseVector::Add(int id, double delta) {
  if (delta == 0.0) return;
  auto it = FindEntry(entries_, id);
  if (it != entries_.end() && it->first == id) {
    it->second += delta;
    if (it->second == 0.0) entries_.erase(it);
  } else {
    entries_.insert(it, {id, delta});
  }
}

double SparseVector::Get(int id) const {
  auto it = FindEntryConst(entries_, id);
  if (it != entries_.end() && it->first == id) return it->second;
  return 0.0;
}

double SparseVector::Dot(const SparseVector& other) const {
  double acc = 0.0;
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() && b != other.entries_.end()) {
    if (a->first < b->first) {
      ++a;
    } else if (b->first < a->first) {
      ++b;
    } else {
      acc += a->second * b->second;
      ++a;
      ++b;
    }
  }
  return acc;
}

double SparseVector::Norm() const {
  double acc = 0.0;
  for (const auto& [id, v] : entries_) acc += v * v;
  return std::sqrt(acc);
}

double SparseVector::Cosine(const SparseVector& other) const {
  const double na = Norm();
  const double nb = other.Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(other) / (na * nb);
}

void SparseVector::Scale(double factor) {
  if (factor == 0.0) {
    entries_.clear();
    return;
  }
  for (auto& [id, v] : entries_) v *= factor;
}

void SparseVector::AddVector(const SparseVector& other) {
  for (const auto& [id, v] : other.entries_) Add(id, v);
}

std::vector<double> SparseVector::ToDense(int dims) const {
  std::vector<double> dense(static_cast<size_t>(dims), 0.0);
  for (const auto& [id, v] : entries_)
    if (id >= 0 && id < dims) dense[static_cast<size_t>(id)] = v;
  return dense;
}

}  // namespace dehealth
