#include "stylo/extractor.h"

#include <cctype>
#include <cstring>
#include <string>
#include <unordered_map>

#include "common/string_utils.h"
#include "stylo/feature_layout.h"
#include "text/lexicon.h"
#include "text/tokenizer.h"

namespace dehealth {

namespace fl = feature_layout;

double YulesK(const std::vector<int>& type_counts) {
  long long n = 0;
  std::unordered_map<int, int> v;  // occurrences -> number of types
  for (int c : type_counts) {
    if (c <= 0) continue;
    n += c;
    ++v[c];
  }
  if (n < 1) return 0.0;
  double sum_i2_vi = 0.0;
  for (const auto& [i, vi] : v)
    sum_i2_vi += static_cast<double>(i) * i * vi;
  const double nd = static_cast<double>(n);
  return 1e4 * (sum_i2_vi - nd) / (nd * nd);
}

namespace {

int ShapeBandOffset(WordShape shape) {
  switch (shape) {
    case WordShape::kAllUpper: return 0;
    case WordShape::kAllLower: return 1;
    case WordShape::kFirstUpper: return 2;
    case WordShape::kCamel: return 3;
    case WordShape::kOther: return -1;
  }
  return -1;
}

}  // namespace

SparseVector FeatureExtractor::ExtractPost(std::string_view text) const {
  SparseVector f;
  if (text.empty()) return f;

  const std::vector<Token> tokens = Tokenize(text);
  std::vector<const Token*> word_tokens;
  for (const Token& t : tokens)
    if (t.kind == TokenKind::kWord) word_tokens.push_back(&t);
  const double num_words = static_cast<double>(word_tokens.size());

  // ---- Length features ----
  const double num_chars = static_cast<double>(text.size());
  f.Set(fl::kNumChars, num_chars);
  f.Set(fl::kNumParagraphs,
        static_cast<double>(SplitParagraphs(text).size()));
  if (num_words > 0) {
    double total_word_chars = 0;
    for (const Token* w : word_tokens)
      total_word_chars += static_cast<double>(w->text.size());
    f.Set(fl::kAvgCharsPerWord, total_word_chars / num_words);
  }

  // ---- Word length frequencies (1..20) ----
  if (num_words > 0) {
    int length_counts[fl::kNumWordLengths] = {};
    for (const Token* w : word_tokens) {
      int len = static_cast<int>(w->text.size());
      if (len >= 1) {
        if (len > fl::kNumWordLengths) len = fl::kNumWordLengths;
        ++length_counts[len - 1];
      }
    }
    for (int i = 0; i < fl::kNumWordLengths; ++i)
      if (length_counts[i] > 0)
        f.Set(fl::kWordLengthBase + i, length_counts[i] / num_words);
  }

  // ---- Vocabulary richness ----
  if (num_words > 0) {
    std::unordered_map<std::string, int> type_count;
    for (const Token* w : word_tokens) ++type_count[ToLowerAscii(w->text)];
    std::vector<int> counts;
    counts.reserve(type_count.size());
    int legomena[4] = {};  // types occurring exactly 1..4 times
    for (const auto& [word, c] : type_count) {
      counts.push_back(c);
      if (c >= 1 && c <= 4) ++legomena[c - 1];
    }
    f.Set(fl::kYulesK, YulesK(counts));
    const double num_types = static_cast<double>(type_count.size());
    if (legomena[0] > 0) f.Set(fl::kHapaxLegomena, legomena[0] / num_types);
    if (legomena[1] > 0) f.Set(fl::kDisLegomena, legomena[1] / num_types);
    if (legomena[2] > 0) f.Set(fl::kTrisLegomena, legomena[2] / num_types);
    if (legomena[3] > 0)
      f.Set(fl::kTetrakisLegomena, legomena[3] / num_types);
  }

  // ---- Character-class frequencies ----
  int letter_counts[26] = {};
  int digit_counts[10] = {};
  int special_counts[fl::kNumSpecialChars] = {};
  int punct_counts[fl::kNumPunctuation] = {};
  int total_letters = 0, total_upper = 0;
  const char* specials = fl::SpecialCharSet();
  const char* puncts = fl::PunctuationSet();
  for (char c : text) {
    const auto uc = static_cast<unsigned char>(c);
    if (std::isalpha(uc)) {
      ++total_letters;
      if (std::isupper(uc)) ++total_upper;
      ++letter_counts[std::tolower(uc) - 'a'];
    } else if (std::isdigit(uc)) {
      ++digit_counts[c - '0'];
    } else {
      if (const char* p = std::strchr(specials, c); p && *p)
        ++special_counts[p - specials];
      if (const char* p = std::strchr(puncts, c); p && *p)
        ++punct_counts[p - puncts];
    }
  }
  if (total_letters > 0) {
    for (int i = 0; i < 26; ++i)
      if (letter_counts[i] > 0)
        f.Set(fl::kLetterBase + i, letter_counts[i] /
                                       static_cast<double>(total_letters));
    f.Set(fl::kUppercasePct,
          total_upper / static_cast<double>(total_letters));
  }
  for (int i = 0; i < 10; ++i)
    if (digit_counts[i] > 0)
      f.Set(fl::kDigitBase + i, digit_counts[i] / num_chars);
  for (int i = 0; i < fl::kNumSpecialChars; ++i)
    if (special_counts[i] > 0)
      f.Set(fl::kSpecialCharBase + i, special_counts[i] / num_chars);
  for (int i = 0; i < fl::kNumPunctuation; ++i)
    if (punct_counts[i] > 0)
      f.Set(fl::kPunctuationBase + i, punct_counts[i] / num_chars);

  // ---- Word shape ----
  if (num_words > 0) {
    int shape_counts[5] = {};  // upper, lower, first, camel, other
    int band_counts[3][4] = {};
    int apostrophe_words = 0, transitions = 0, brand_words = 0;
    WordShape prev_shape = WordShape::kOther;
    bool have_prev = false;
    for (const Token* w : word_tokens) {
      const WordShape shape = ClassifyWordShape(w->text);
      const int off = ShapeBandOffset(shape);
      if (off >= 0) {
        ++shape_counts[off];
        const size_t len = w->text.size();
        const int band = len <= 3 ? 0 : (len <= 6 ? 1 : 2);
        ++band_counts[band][off];
      } else {
        ++shape_counts[4];
      }
      if (w->text.find('\'') != std::string::npos) ++apostrophe_words;
      if (shape == WordShape::kAllUpper || shape == WordShape::kCamel)
        ++brand_words;
      if (have_prev && shape != prev_shape) ++transitions;
      prev_shape = shape;
      have_prev = true;
    }
    const int shape_ids[4] = {fl::kShapeAllUpper, fl::kShapeAllLower,
                              fl::kShapeFirstUpper, fl::kShapeCamel};
    for (int i = 0; i < 4; ++i)
      if (shape_counts[i] > 0)
        f.Set(shape_ids[i], shape_counts[i] / num_words);
    if (shape_counts[4] > 0) f.Set(fl::kShapeOther, shape_counts[4] / num_words);
    const int band_bases[3] = {fl::kShapeShortBase, fl::kShapeMediumBase,
                               fl::kShapeLongBase};
    for (int b = 0; b < 3; ++b)
      for (int i = 0; i < 4; ++i)
        if (band_counts[b][i] > 0)
          f.Set(band_bases[b] + i, band_counts[b][i] / num_words);
    if (apostrophe_words > 0)
      f.Set(fl::kShapeApostropheRate, apostrophe_words / num_words);
    if (transitions > 0 && word_tokens.size() > 1)
      f.Set(fl::kShapeTransitionRate,
            transitions / static_cast<double>(word_tokens.size() - 1));
    if (brand_words > 0) f.Set(fl::kShapeBrandRate, brand_words / num_words);
    // Sentence-initial capitalization rate.
    const auto sentences = SplitSentences(text);
    if (!sentences.empty()) {
      int capped = 0;
      for (const auto& s : sentences) {
        for (char c : s) {
          const auto uc = static_cast<unsigned char>(c);
          if (std::isalpha(uc)) {
            if (std::isupper(uc)) ++capped;
            break;
          }
        }
      }
      if (capped > 0)
        f.Set(fl::kShapeSentenceInitialCap,
              capped / static_cast<double>(sentences.size()));
    }
  }

  // ---- Function words & misspellings ----
  if (num_words > 0) {
    std::unordered_map<int, int> fw_counts, ms_counts;
    for (const Token* w : word_tokens) {
      const std::string lower = ToLowerAscii(w->text);
      if (int idx = FunctionWordIndex(lower); idx >= 0) ++fw_counts[idx];
      if (int idx = MisspellingIndex(lower); idx >= 0) ++ms_counts[idx];
    }
    for (const auto& [idx, c] : fw_counts)
      f.Set(fl::kFunctionWordBase + idx, c / num_words);
    for (const auto& [idx, c] : ms_counts)
      f.Set(fl::kMisspellingBase + idx, c / num_words);
  }

  // ---- POS tags & bigrams ----
  const std::vector<PosTag> tags = tagger_.Tag(tokens);
  if (!tags.empty()) {
    std::unordered_map<int, int> tag_counts, bigram_counts;
    for (PosTag t : tags) ++tag_counts[static_cast<int>(t)];
    for (size_t i = 1; i < tags.size(); ++i)
      ++bigram_counts[PosBigramId(tags[i - 1], tags[i])];
    const double num_tags = static_cast<double>(tags.size());
    for (const auto& [t, c] : tag_counts)
      f.Set(fl::kPosTagBase + t, c / num_tags);
    if (tags.size() > 1) {
      const double num_bigrams = static_cast<double>(tags.size() - 1);
      for (const auto& [b, c] : bigram_counts)
        f.Set(fl::kPosBigramBase + b, c / num_bigrams);
    }
  }

  return f;
}

}  // namespace dehealth
