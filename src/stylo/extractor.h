#ifndef DEHEALTH_STYLO_EXTRACTOR_H_
#define DEHEALTH_STYLO_EXTRACTOR_H_

#include <string_view>

#include "stylo/feature_vector.h"
#include "text/pos_tagger.h"

namespace dehealth {

/// Extracts the Table-I stylometric feature vector of a single post.
///
/// All frequency features are relative (normalized by the relevant token or
/// character count), so posts of different lengths are comparable; Yule's K
/// follows the classical 10^4-scaled definition. A feature that does not
/// occur in the post is simply absent from the sparse vector — this is
/// exactly the paper's attribute semantics ("0 implies that this post does
/// not have the corresponding feature").
class FeatureExtractor {
 public:
  FeatureExtractor() = default;

  /// Extracts the per-post feature vector, indexed by `feature_layout` ids.
  SparseVector ExtractPost(std::string_view text) const;

 private:
  PosTagger tagger_;
};

/// Yule's characteristic K for a token stream described by `type_counts`
/// (the number of occurrences of each distinct word). K = 1e4 *
/// (sum_i i^2*V_i - N) / N^2, where V_i is the number of types occurring i
/// times and N the token count. Returns 0 for N < 1.
double YulesK(const std::vector<int>& type_counts);

}  // namespace dehealth

#endif  // DEHEALTH_STYLO_EXTRACTOR_H_
