#include "datagen/corpus.h"

#include <algorithm>
#include <map>
#include <set>

#include "text/tokenizer.h"

namespace dehealth {

std::vector<std::vector<int>> ForumDataset::PostsByUser() const {
  std::vector<std::vector<int>> by_user(static_cast<size_t>(num_users));
  for (size_t i = 0; i < posts.size(); ++i)
    by_user[static_cast<size_t>(posts[i].user_id)].push_back(
        static_cast<int>(i));
  return by_user;
}

std::vector<int> ForumDataset::PostCounts() const {
  std::vector<int> counts(static_cast<size_t>(num_users), 0);
  for (const Post& p : posts) ++counts[static_cast<size_t>(p.user_id)];
  return counts;
}

std::vector<double> ForumDataset::PostWordLengths() const {
  std::vector<double> lengths;
  lengths.reserve(posts.size());
  for (const Post& p : posts)
    lengths.push_back(static_cast<double>(TokenizeWords(p.text).size()));
  return lengths;
}

CorrelationGraph BuildCorrelationGraph(const ForumDataset& dataset) {
  CorrelationGraph graph(dataset.num_users);
  // Distinct participants per thread.
  std::map<int, std::set<int>> participants;
  for (const Post& p : dataset.posts)
    participants[p.thread_id].insert(p.user_id);
  for (const auto& [thread, users] : participants) {
    for (auto it = users.begin(); it != users.end(); ++it) {
      auto jt = it;
      for (++jt; jt != users.end(); ++jt)
        graph.AddInteraction(*it, *jt, 1.0);
    }
  }
  return graph;
}

DatasetStats ComputeDatasetStats(const ForumDataset& dataset) {
  DatasetStats stats;
  stats.num_users = dataset.num_users;
  stats.num_posts = static_cast<int>(dataset.posts.size());
  if (dataset.num_users > 0)
    stats.mean_posts_per_user =
        static_cast<double>(stats.num_posts) / dataset.num_users;

  const std::vector<int> counts = dataset.PostCounts();
  int under5 = 0;
  for (int c : counts)
    if (c < 5) ++under5;
  if (!counts.empty())
    stats.fraction_users_under_5_posts =
        static_cast<double>(under5) / static_cast<double>(counts.size());

  const std::vector<double> lengths = dataset.PostWordLengths();
  double total = 0.0;
  int under300 = 0;
  for (double len : lengths) {
    total += len;
    if (len < 300.0) ++under300;
  }
  if (!lengths.empty()) {
    stats.mean_post_words = total / static_cast<double>(lengths.size());
    stats.fraction_posts_under_300_words =
        static_cast<double>(under300) / static_cast<double>(lengths.size());
  }
  return stats;
}

}  // namespace dehealth
