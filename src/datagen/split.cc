#include "datagen/split.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "common/string_utils.h"

namespace dehealth {

namespace {

/// Builds a ForumDataset from a subset of posts, remapping user ids with
/// `user_map` (original -> new id, or -1 to drop). Thread ids are preserved
/// (interaction structure is observable on both sides, as in the paper).
ForumDataset ProjectDataset(const ForumDataset& source,
                            const std::vector<int>& post_indices,
                            const std::vector<int>& user_map,
                            int num_new_users) {
  ForumDataset out;
  out.num_users = num_new_users;
  out.num_threads = source.num_threads;
  out.posts.reserve(post_indices.size());
  for (int idx : post_indices) {
    const Post& p = source.posts[static_cast<size_t>(idx)];
    const int new_id = user_map[static_cast<size_t>(p.user_id)];
    if (new_id < 0) continue;
    out.posts.push_back({new_id, p.thread_id, p.text});
  }
  return out;
}

}  // namespace

StatusOr<DaScenario> MakeClosedWorldScenario(const ForumDataset& dataset,
                                             double aux_fraction,
                                             uint64_t seed) {
  if (aux_fraction <= 0.0 || aux_fraction >= 1.0)
    return Status::InvalidArgument(
        "MakeClosedWorldScenario: aux_fraction must be in (0, 1)");
  if (dataset.num_users == 0)
    return Status::InvalidArgument(
        "MakeClosedWorldScenario: empty dataset");

  Rng rng(seed);
  const auto by_user = dataset.PostsByUser();

  std::vector<int> aux_posts, anon_posts;
  std::vector<bool> in_anonymized(static_cast<size_t>(dataset.num_users),
                                  false);
  for (int u = 0; u < dataset.num_users; ++u) {
    std::vector<int> posts = by_user[static_cast<size_t>(u)];
    if (posts.empty()) continue;
    if (posts.size() == 1) {
      // Unsplittable: auxiliary only, so V1 ⊆ V2 holds.
      aux_posts.push_back(posts[0]);
      continue;
    }
    rng.Shuffle(posts);
    // At least one post on each side.
    size_t num_aux = static_cast<size_t>(
        std::round(aux_fraction * static_cast<double>(posts.size())));
    num_aux = std::clamp(num_aux, size_t{1}, posts.size() - 1);
    for (size_t i = 0; i < posts.size(); ++i) {
      if (i < num_aux) {
        aux_posts.push_back(posts[i]);
      } else {
        anon_posts.push_back(posts[i]);
      }
    }
    in_anonymized[static_cast<size_t>(u)] = true;
  }

  // Auxiliary keeps original user ids (identities are known there).
  std::vector<int> aux_map(static_cast<size_t>(dataset.num_users));
  std::iota(aux_map.begin(), aux_map.end(), 0);

  // Anonymized users get shuffled pseudonym ids.
  std::vector<int> anon_users;
  for (int u = 0; u < dataset.num_users; ++u)
    if (in_anonymized[static_cast<size_t>(u)]) anon_users.push_back(u);
  rng.Shuffle(anon_users);
  std::vector<int> anon_map(static_cast<size_t>(dataset.num_users), -1);
  DaScenario scenario;
  scenario.truth.resize(anon_users.size());
  for (size_t new_id = 0; new_id < anon_users.size(); ++new_id) {
    anon_map[static_cast<size_t>(anon_users[new_id])] =
        static_cast<int>(new_id);
    scenario.truth[new_id] = anon_users[new_id];  // aux keeps original ids
  }

  scenario.auxiliary =
      ProjectDataset(dataset, aux_posts, aux_map, dataset.num_users);
  scenario.anonymized = ProjectDataset(dataset, anon_posts, anon_map,
                                       static_cast<int>(anon_users.size()));
  return scenario;
}

StatusOr<ForumDataset> SampleUserPanel(const ForumDataset& dataset,
                                       int num_users, int posts_per_user,
                                       uint64_t seed) {
  if (num_users <= 0 || posts_per_user <= 0)
    return Status::InvalidArgument(
        "SampleUserPanel: num_users and posts_per_user must be > 0");
  Rng rng(seed);
  const auto by_user = dataset.PostsByUser();
  std::vector<int> qualifying;
  for (int u = 0; u < dataset.num_users; ++u)
    if (static_cast<int>(by_user[static_cast<size_t>(u)].size()) >=
        posts_per_user)
      qualifying.push_back(u);
  if (static_cast<int>(qualifying.size()) < num_users)
    return Status::FailedPrecondition(
        StrFormat("SampleUserPanel: only %zu users have >= %d posts",
                  qualifying.size(), posts_per_user));
  rng.Shuffle(qualifying);
  qualifying.resize(static_cast<size_t>(num_users));

  ForumDataset panel;
  panel.num_users = num_users;
  panel.num_threads = dataset.num_threads;
  for (int new_id = 0; new_id < num_users; ++new_id) {
    std::vector<int> posts =
        by_user[static_cast<size_t>(qualifying[static_cast<size_t>(new_id)])];
    rng.Shuffle(posts);
    posts.resize(static_cast<size_t>(posts_per_user));
    for (int idx : posts) {
      const Post& p = dataset.posts[static_cast<size_t>(idx)];
      panel.posts.push_back({new_id, p.thread_id, p.text});
    }
  }
  return panel;
}

StatusOr<DaScenario> MakeOpenWorldScenario(const ForumDataset& dataset,
                                           double overlap_ratio,
                                           uint64_t seed) {
  if (overlap_ratio <= 0.0 || overlap_ratio > 1.0)
    return Status::InvalidArgument(
        "MakeOpenWorldScenario: overlap_ratio must be in (0, 1]");
  if (dataset.num_users < 4)
    return Status::InvalidArgument(
        "MakeOpenWorldScenario: need at least 4 users");

  // x overlapping + 2y exclusive users with x + 2y <= n and
  // x / (x + y) = overlap_ratio  =>  x = n*r / (2 - r).
  const int n = dataset.num_users;
  int x = static_cast<int>(static_cast<double>(n) * overlap_ratio /
                           (2.0 - overlap_ratio));
  x = std::max(1, std::min(x, n));

  Rng rng(seed);
  // Overlapping users must be splittable (>= 2 posts, so each side gets
  // data); single-post users can only serve as exclusive users.
  const auto by_user_counts = dataset.PostCounts();
  std::vector<int> splittable, unsplittable;
  for (int u = 0; u < n; ++u) {
    if (by_user_counts[static_cast<size_t>(u)] >= 2) {
      splittable.push_back(u);
    } else {
      unsplittable.push_back(u);
    }
  }
  rng.Shuffle(splittable);
  x = std::min(x, static_cast<int>(splittable.size()));
  const int y = (n - x) / 2;

  enum class Side { kOverlap, kAuxOnly, kAnonOnly, kUnused };
  std::vector<Side> side(static_cast<size_t>(n), Side::kUnused);
  for (int i = 0; i < x; ++i)
    side[static_cast<size_t>(splittable[static_cast<size_t>(i)])] =
        Side::kOverlap;
  // Remaining users (splittable leftovers + single-post users) fill the
  // exclusive pools.
  std::vector<int> rest(splittable.begin() + x, splittable.end());
  rest.insert(rest.end(), unsplittable.begin(), unsplittable.end());
  rng.Shuffle(rest);
  int pos = 0;
  for (int i = 0; i < y && pos < static_cast<int>(rest.size()); ++i)
    side[static_cast<size_t>(rest[static_cast<size_t>(pos++)])] =
        Side::kAuxOnly;
  for (int i = 0; i < y && pos < static_cast<int>(rest.size()); ++i)
    side[static_cast<size_t>(rest[static_cast<size_t>(pos++)])] =
        Side::kAnonOnly;

  const auto by_user = dataset.PostsByUser();
  std::vector<int> aux_posts, anon_posts;
  for (int u = 0; u < n; ++u) {
    std::vector<int> posts = by_user[static_cast<size_t>(u)];
    switch (side[static_cast<size_t>(u)]) {
      case Side::kAuxOnly:
        aux_posts.insert(aux_posts.end(), posts.begin(), posts.end());
        break;
      case Side::kAnonOnly:
        anon_posts.insert(anon_posts.end(), posts.begin(), posts.end());
        break;
      case Side::kOverlap: {
        rng.Shuffle(posts);
        const size_t half = posts.size() / 2;
        // Odd counts favor the auxiliary (training) side; a single-post
        // overlap user contributes the post to the auxiliary side and has
        // no anonymized data (it simply never appears in ∆1).
        for (size_t i = 0; i < posts.size(); ++i) {
          if (i < half || posts.size() == 1) {
            aux_posts.push_back(posts[i]);
          } else {
            anon_posts.push_back(posts[i]);
          }
        }
        break;
      }
      case Side::kUnused:
        break;
    }
  }

  // Auxiliary ids: compact, in original order (identities known).
  std::vector<int> aux_map(static_cast<size_t>(n), -1);
  int next_aux = 0;
  for (int u = 0; u < n; ++u)
    if (side[static_cast<size_t>(u)] == Side::kOverlap ||
        side[static_cast<size_t>(u)] == Side::kAuxOnly)
      aux_map[static_cast<size_t>(u)] = next_aux++;

  // Anonymized ids: shuffled pseudonyms over users with anonymized posts.
  std::vector<bool> has_anon_posts(static_cast<size_t>(n), false);
  for (int idx : anon_posts)
    has_anon_posts[static_cast<size_t>(
        dataset.posts[static_cast<size_t>(idx)].user_id)] = true;
  std::vector<int> anon_users;
  for (int u = 0; u < n; ++u)
    if (has_anon_posts[static_cast<size_t>(u)]) anon_users.push_back(u);
  rng.Shuffle(anon_users);
  std::vector<int> anon_map(static_cast<size_t>(n), -1);
  DaScenario scenario;
  scenario.truth.assign(anon_users.size(), DaScenario::kNoTrueMapping);
  for (size_t new_id = 0; new_id < anon_users.size(); ++new_id) {
    const int original = anon_users[new_id];
    anon_map[static_cast<size_t>(original)] = static_cast<int>(new_id);
    if (side[static_cast<size_t>(original)] == Side::kOverlap)
      scenario.truth[new_id] = aux_map[static_cast<size_t>(original)];
  }

  scenario.auxiliary = ProjectDataset(dataset, aux_posts, aux_map, next_aux);
  scenario.anonymized = ProjectDataset(dataset, anon_posts, anon_map,
                                       static_cast<int>(anon_users.size()));
  return scenario;
}

}  // namespace dehealth
