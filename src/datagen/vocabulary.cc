#include "datagen/vocabulary.h"

#include <unordered_set>

namespace dehealth {

namespace {

constexpr const char* kOnsets[] = {
    "b",  "c",  "d",  "f",  "g",  "h",  "j",  "k",  "l",  "m",
    "n",  "p",  "r",  "s",  "t",  "v",  "w",  "z",  "br", "ch",
    "cl", "cr", "dr", "fl", "fr", "gl", "gr", "pl", "pr", "sh",
    "sl", "sp", "st", "th", "tr", "",
};
constexpr const char* kNuclei[] = {
    "a", "e", "i", "o", "u", "ai", "ea", "ee", "ia", "io", "oa", "ou",
};
constexpr const char* kCodas[] = {
    "",  "",  "",  "n", "r", "s", "t", "l", "m", "d",
    "k", "p", "ng", "st", "nd", "rt", "ck", "ss",
};

template <size_t N>
const char* Pick(const char* const (&arr)[N], Rng& rng) {
  return arr[rng.NextBounded(N)];
}

std::string MakeWord(Rng& rng) {
  // 1-4 syllables, biased toward 2-3 like English content words.
  static constexpr int kSyllableChoices[] = {1, 2, 2, 2, 3, 3, 3, 4};
  const int syllables =
      kSyllableChoices[rng.NextBounded(sizeof(kSyllableChoices) /
                                       sizeof(kSyllableChoices[0]))];
  std::string word;
  for (int s = 0; s < syllables; ++s) {
    word += Pick(kOnsets, rng);
    word += Pick(kNuclei, rng);
    if (s + 1 == syllables || rng.NextBool(0.4)) word += Pick(kCodas, rng);
  }
  return word;
}

}  // namespace

Vocabulary::Vocabulary(int size, Rng& rng) {
  std::unordered_set<std::string> seen;
  words_.reserve(static_cast<size_t>(size));
  while (static_cast<int>(words_.size()) < size) {
    std::string w = MakeWord(rng);
    if (w.size() < 2) continue;
    if (seen.insert(w).second) words_.push_back(std::move(w));
  }
}

}  // namespace dehealth
