#ifndef DEHEALTH_DATAGEN_SPLIT_H_
#define DEHEALTH_DATAGEN_SPLIT_H_

#include <vector>

#include "common/status.h"
#include "datagen/corpus.h"

namespace dehealth {

/// A DA problem instance: the anonymized dataset ∆1 (user ids 0..n1-1,
/// pseudonymized by shuffling), the auxiliary dataset ∆2 (ids 0..n2-1), and
/// the hidden ground truth.
struct DaScenario {
  ForumDataset anonymized;
  ForumDataset auxiliary;
  /// truth[anon_id] = auxiliary id of the same real user, or
  /// kNoTrueMapping when the user does not appear in the auxiliary data
  /// (open world only).
  std::vector<int> truth;

  static constexpr int kNoTrueMapping = -1;
};

/// Closed-world split (Section V-A): each user's posts are divided —
/// roughly `aux_fraction` to the auxiliary side, the rest anonymized. Every
/// anonymized user is guaranteed a true mapping (V1 ⊆ V2): single-post
/// users land in the auxiliary data only. Deterministic in `seed`.
StatusOr<DaScenario> MakeClosedWorldScenario(const ForumDataset& dataset,
                                             double aux_fraction,
                                             uint64_t seed);

/// Panel sampling for the refined-DA evaluations (Section V-A.2 / V-B.2):
/// "randomly select `num_users` users each with `posts_per_user` posts" out
/// of a larger forum. Users with at least that many posts are sampled
/// uniformly and truncated to exactly `posts_per_user` random posts; user
/// ids are renumbered 0..num_users-1; thread ids are preserved, so the
/// panel's correlation graph is the (typically near-empty) subgraph the
/// paper's sampled panels have. Fails if too few users qualify.
StatusOr<ForumDataset> SampleUserPanel(const ForumDataset& dataset,
                                       int num_users, int posts_per_user,
                                       uint64_t seed);

/// Open-world split (Section V-B): both sides get the same number of users
/// with an overlapping-user ratio of `overlap_ratio` (x + 2y = n users,
/// x/(x+y) = ratio). Overlapping users' posts split 50/50; non-overlapping
/// users contribute all their posts to exactly one side. Deterministic in
/// `seed`.
StatusOr<DaScenario> MakeOpenWorldScenario(const ForumDataset& dataset,
                                           double overlap_ratio,
                                           uint64_t seed);

}  // namespace dehealth

#endif  // DEHEALTH_DATAGEN_SPLIT_H_
