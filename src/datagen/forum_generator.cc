#include "datagen/forum_generator.h"

#include <algorithm>
#include <deque>

namespace dehealth {

ForumConfig WebMdLikeConfig(int num_users, uint64_t seed) {
  ForumConfig config;
  config.num_users = num_users;
  config.seed = seed;
  config.post_count_exponent = 2.0;  // ~87% of users under 5 posts
  config.max_posts_per_user = 2000;  // long tail pushes the mean toward 5.7
  config.style.mean_post_words = 120.0;  // sentence-granularity raises ~7%
  return config;
}

ForumConfig HealthBoardsLikeConfig(int num_users, uint64_t seed) {
  ForumConfig config;
  config.num_users = num_users;
  config.seed = seed;
  config.post_count_exponent = 1.62;  // ~75% under 5, mean ~10-12 posts
  config.max_posts_per_user = 800;
  config.style.mean_post_words = 139.0;
  return config;
}

StatusOr<GeneratedForum> GenerateForum(const ForumConfig& config) {
  if (config.num_users <= 0)
    return Status::InvalidArgument("GenerateForum: num_users must be > 0");
  if (config.post_count_exponent <= 0.0)
    return Status::InvalidArgument(
        "GenerateForum: post_count_exponent must be > 0");
  if (config.max_posts_per_user < 1 || config.max_thread_posts < 1 ||
      config.open_thread_window < 1 || config.min_posts_per_user < 1 ||
      config.min_posts_per_user > config.max_posts_per_user)
    return Status::InvalidArgument("GenerateForum: invalid limits");
  if (config.style.vocabulary_size < 100)
    return Status::InvalidArgument(
        "GenerateForum: vocabulary_size must be >= 100");

  Rng rng(config.seed);
  GeneratedForum forum;
  forum.dataset.num_users = config.num_users;

  // Shared vocabulary and per-user style profiles.
  const Vocabulary vocabulary(config.style.vocabulary_size, rng);
  forum.profiles.reserve(static_cast<size_t>(config.num_users));
  for (int u = 0; u < config.num_users; ++u)
    forum.profiles.push_back(SampleStyleProfile(config.style, rng));

  // Per-user post counts: truncated power law.
  const ZipfSampler post_count_sampler(config.max_posts_per_user,
                                       config.post_count_exponent);
  std::vector<int> post_counts(static_cast<size_t>(config.num_users));
  long long total_posts = 0;
  for (int u = 0; u < config.num_users; ++u) {
    post_counts[static_cast<size_t>(u)] =
        std::max(config.min_posts_per_user, post_count_sampler.Sample(rng));
    total_posts += post_counts[static_cast<size_t>(u)];
  }

  // Interleave posts across users in shuffled order so thread membership
  // mixes users, then assign threads via the open-thread process.
  std::vector<int> authoring_sequence;
  authoring_sequence.reserve(static_cast<size_t>(total_posts));
  for (int u = 0; u < config.num_users; ++u)
    authoring_sequence.insert(authoring_sequence.end(),
                              static_cast<size_t>(post_counts[
                                  static_cast<size_t>(u)]),
                              u);
  rng.Shuffle(authoring_sequence);

  struct OpenThread {
    int id;
    int posts;
  };
  std::deque<OpenThread> open_threads;
  int next_thread_id = 0;

  forum.dataset.posts.reserve(static_cast<size_t>(total_posts));
  for (int author : authoring_sequence) {
    int thread_id;
    if (open_threads.empty() || rng.NextBool(config.new_thread_prob)) {
      thread_id = next_thread_id++;
      open_threads.push_back({thread_id, 1});
    } else {
      const size_t pick = rng.NextBounded(open_threads.size());
      OpenThread& t = open_threads[pick];
      thread_id = t.id;
      if (++t.posts >= config.max_thread_posts)
        open_threads.erase(open_threads.begin() + static_cast<long>(pick));
    }
    while (static_cast<int>(open_threads.size()) >
           config.open_thread_window)
      open_threads.pop_front();

    Post post;
    post.user_id = author;
    post.thread_id = thread_id;
    // Topic vocabulary is a deterministic function of (seed, thread), so
    // every participant in a thread shares it.
    const uint64_t topic_seed =
        config.style.topic_word_rate > 0.0
            ? config.seed * 0x9e3779b97f4a7c15ULL +
                  static_cast<uint64_t>(thread_id) + 1
            : 0;
    post.text =
        GeneratePost(forum.profiles[static_cast<size_t>(author)],
                     vocabulary, rng, /*target_words=*/0, topic_seed);
    forum.dataset.posts.push_back(std::move(post));
  }
  forum.dataset.num_threads = next_thread_id;
  return forum;
}

}  // namespace dehealth
