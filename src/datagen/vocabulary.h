#ifndef DEHEALTH_DATAGEN_VOCABULARY_H_
#define DEHEALTH_DATAGEN_VOCABULARY_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace dehealth {

/// A synthetic content-word vocabulary. Words are pronounceable
/// syllable-concatenations ("mestavol", "dorane"), lowercase, unique, and
/// length-distributed like English content words (2-14 characters). Used by
/// the forum generator in place of real medical text: the stylometric
/// pipeline only consumes distributional statistics of the words, not their
/// meaning.
class Vocabulary {
 public:
  /// Generates `size` unique words using `rng`. A seeded rng makes the
  /// vocabulary reproducible.
  Vocabulary(int size, Rng& rng);

  int size() const { return static_cast<int>(words_.size()); }
  const std::string& word(int i) const { return words_[static_cast<size_t>(i)]; }
  const std::vector<std::string>& words() const { return words_; }

 private:
  std::vector<std::string> words_;
};

}  // namespace dehealth

#endif  // DEHEALTH_DATAGEN_VOCABULARY_H_
