#include "datagen/style_profile.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>

#include "common/math_utils.h"
#include "text/lexicon.h"

namespace dehealth {

namespace {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Global pseudo-frequency rank of function word `i`: a fixed permutation of
/// the (alphabetical) lexicon so that base emission weights look Zipfian in
/// a word-independent order shared by all users.
double FunctionWordBaseWeight(size_t i, size_t lexicon_size) {
  const uint64_t rank = Mix64(0x5eedf00dULL + i) % lexicon_size;
  return 1.0 / (3.0 + static_cast<double>(rank));
}

double JitterPositive(double base, double rel_sd, double diversity,
                      Rng& rng, double lo, double hi) {
  const double jittered =
      base * std::exp(rng.NextGaussian(0.0, rel_sd * diversity));
  return Clamp(jittered, lo, hi);
}

const std::vector<std::string>& Contractions() {
  static const auto& c = *new std::vector<std::string>{
      "don't", "it's",  "i'm",    "can't",  "didn't",
      "that's", "i've", "isn't",  "won't",  "she's",
  };
  return c;
}

}  // namespace

StyleProfile SampleStyleProfile(const StylePopulationConfig& config,
                                Rng& rng) {
  const double div = config.profile_diversity;
  StyleProfile p;
  p.vocab_permutation_seed = rng.NextUint64();
  p.vocab_zipf_exponent = JitterPositive(1.1, 0.15, div, rng, 0.8, 1.6);
  p.vocab_active_size = static_cast<int>(
      JitterPositive(800.0, 0.3, div, rng, 100.0,
                     static_cast<double>(config.vocabulary_size)));
  p.vocab_personalization =
      Clamp(config.vocab_personalization, 0.0, 1.0);
  p.topic_word_rate = Clamp(config.topic_word_rate, 0.0, 1.0);

  p.function_word_rate = JitterPositive(0.45, 0.1, div, rng, 0.25, 0.6);
  const auto& lexicon = FunctionWordLexicon();
  p.function_word_weights.resize(lexicon.size());
  for (size_t i = 0; i < lexicon.size(); ++i) {
    const double base = FunctionWordBaseWeight(i, lexicon.size());
    p.function_word_weights[i] =
        base * std::exp(rng.NextGaussian(0.0, 0.5 * div));
  }

  p.misspelling_rate = JitterPositive(0.012, 0.8, div, rng, 0.0, 0.08);
  const int num_habitual = static_cast<int>(rng.NextInt(3, 10));
  const auto habitual = rng.SampleWithoutReplacement(
      MisspellingLexicon().size(), static_cast<size_t>(num_habitual));
  p.habitual_misspellings.assign(habitual.begin(), habitual.end());
  std::sort(p.habitual_misspellings.begin(), p.habitual_misspellings.end());

  p.mean_sentence_words = JitterPositive(15.0, 0.25, div, rng, 6.0, 30.0);
  p.sd_sentence_words = JitterPositive(5.0, 0.3, div, rng, 1.0, 12.0);
  p.mean_post_words =
      JitterPositive(config.mean_post_words, 0.35, div, rng, 20.0, 600.0);
  p.sd_post_log = JitterPositive(0.6, 0.2, div, rng, 0.2, 1.0);
  p.paragraph_break_prob = JitterPositive(0.12, 0.5, div, rng, 0.0, 0.5);

  p.comma_rate = JitterPositive(0.06, 0.5, div, rng, 0.0, 0.2);
  p.exclamation_prob = JitterPositive(0.1, 0.8, div, rng, 0.0, 0.5);
  p.question_prob = JitterPositive(0.12, 0.6, div, rng, 0.0, 0.5);
  p.ellipsis_prob = JitterPositive(0.02, 1.0, div, rng, 0.0, 0.3);
  p.sentence_cap_prob = JitterPositive(0.9, 0.15, div, rng, 0.1, 1.0);
  p.lowercase_i_prob = JitterPositive(0.2, 1.0, div, rng, 0.0, 1.0);
  p.allcaps_word_prob = JitterPositive(0.01, 1.0, div, rng, 0.0, 0.08);
  p.apostrophe_contraction_rate =
      JitterPositive(0.05, 0.6, div, rng, 0.0, 0.2);
  p.digit_rate = JitterPositive(0.015, 0.8, div, rng, 0.0, 0.08);
  p.parenthesis_prob = JitterPositive(0.04, 1.0, div, rng, 0.0, 0.25);
  p.special_char_rate = JitterPositive(0.004, 1.2, div, rng, 0.0, 0.03);
  p.brand_word_prob = JitterPositive(0.008, 1.0, div, rng, 0.0, 0.05);
  return p;
}

namespace {

/// Draws one content word for this user: Zipf rank through the user's
/// hash-permutation of the vocabulary.
const std::string& DrawContentWord(const StyleProfile& p,
                                   const Vocabulary& vocab,
                                   const ZipfSampler& zipf, Rng& rng) {
  const int rank = zipf.Sample(rng);
  if (!rng.NextBool(p.vocab_personalization)) {
    // Population-shared ranking: rank maps straight to the vocabulary.
    return vocab.word((rank - 1) % vocab.size());
  }
  const uint64_t idx =
      Mix64(p.vocab_permutation_seed ^ static_cast<uint64_t>(rank)) %
      static_cast<uint64_t>(vocab.size());
  return vocab.word(static_cast<int>(idx));
}

std::string Capitalize(std::string word) {
  if (!word.empty())
    word[0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(word[0])));
  return word;
}

std::string ToAllUpper(std::string word) {
  for (char& c : word)
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return word;
}

std::string MakeBrandWord(std::string word) {
  word = Capitalize(std::move(word));
  if (word.size() >= 4) {
    const size_t mid = word.size() / 2;
    word[mid] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(word[mid])));
  }
  return word;
}

}  // namespace

std::string GeneratePost(const StyleProfile& profile,
                         const Vocabulary& vocabulary, Rng& rng,
                         int target_words, uint64_t topic_seed) {
  assert(vocabulary.size() > 0);
  const int active =
      std::min(profile.vocab_active_size, vocabulary.size());
  const ZipfSampler zipf(std::max(1, active), profile.vocab_zipf_exponent);

  int total_words = target_words;
  if (total_words <= 0) {
    const double ln_mean = std::log(profile.mean_post_words);
    total_words = static_cast<int>(std::round(std::exp(
        rng.NextGaussian(ln_mean - 0.5 * profile.sd_post_log *
                                       profile.sd_post_log,
                         profile.sd_post_log))));
    total_words = std::max(3, std::min(total_words, 1200));
  }

  const auto& function_words = FunctionWordLexicon();
  const auto& misspellings = MisspellingLexicon();

  std::string post;
  int emitted = 0;
  while (emitted < total_words) {
    int sentence_len = static_cast<int>(std::round(rng.NextGaussian(
        profile.mean_sentence_words, profile.sd_sentence_words)));
    sentence_len = std::max(3, std::min(sentence_len, 60));
    sentence_len = std::min(sentence_len, total_words - emitted + 2);

    std::string sentence;
    for (int w = 0; w < sentence_len; ++w) {
      std::string word;
      if (rng.NextBool(profile.apostrophe_contraction_rate)) {
        const auto& c = Contractions();
        word = c[rng.NextBounded(c.size())];
      } else if (rng.NextBool(profile.misspelling_rate) &&
                 !profile.habitual_misspellings.empty()) {
        word = misspellings[static_cast<size_t>(
            profile.habitual_misspellings[rng.NextBounded(
                profile.habitual_misspellings.size())])];
      } else if (rng.NextBool(profile.function_word_rate)) {
        word = function_words[rng.NextCategorical(
            profile.function_word_weights)];
      } else if (rng.NextBool(profile.digit_rate /
                              std::max(1e-9, 1.0 -
                                                 profile.function_word_rate))) {
        const int digits = static_cast<int>(rng.NextInt(1, 4));
        for (int d = 0; d < digits; ++d)
          word += static_cast<char>('0' + rng.NextBounded(10));
      } else if (topic_seed != 0 && rng.NextBool(profile.topic_word_rate)) {
        // Topic word shared by every participant of the thread.
        const int rank = zipf.Sample(rng);
        const uint64_t idx =
            Mix64(topic_seed ^ static_cast<uint64_t>(rank)) %
            static_cast<uint64_t>(vocabulary.size());
        word = vocabulary.word(static_cast<int>(idx));
      } else if (rng.NextBool(profile.brand_word_prob)) {
        word = MakeBrandWord(
            DrawContentWord(profile, vocabulary, zipf, rng));
      } else {
        word = DrawContentWord(profile, vocabulary, zipf, rng);
      }

      // Case habits.
      if (word == "i") {
        if (!rng.NextBool(profile.lowercase_i_prob)) word = "I";
      } else if (rng.NextBool(profile.allcaps_word_prob)) {
        word = ToAllUpper(word);
      }
      if (w == 0 && rng.NextBool(profile.sentence_cap_prob))
        word = Capitalize(std::move(word));

      if (!sentence.empty()) {
        if (rng.NextBool(profile.comma_rate)) sentence += ',';
        sentence += ' ';
        if (rng.NextBool(profile.special_char_rate)) {
          static constexpr char kSpecials[] = "/-+*&%=";
          sentence += kSpecials[rng.NextBounded(sizeof(kSpecials) - 1)];
          sentence += ' ';
        }
      }
      sentence += word;
      ++emitted;
    }

    if (rng.NextBool(profile.parenthesis_prob)) {
      sentence += " (";
      sentence += DrawContentWord(profile, vocabulary, zipf, rng);
      sentence += ")";
      ++emitted;
    }

    // Terminator.
    if (rng.NextBool(profile.ellipsis_prob)) {
      sentence += "...";
    } else if (rng.NextBool(profile.exclamation_prob)) {
      sentence += '!';
    } else if (rng.NextBool(profile.question_prob)) {
      sentence += '?';
    } else {
      sentence += '.';
    }

    if (!post.empty()) {
      post += rng.NextBool(profile.paragraph_break_prob) ? "\n\n" : " ";
    }
    post += sentence;
  }
  return post;
}

}  // namespace dehealth
