#ifndef DEHEALTH_DATAGEN_FORUM_GENERATOR_H_
#define DEHEALTH_DATAGEN_FORUM_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "datagen/corpus.h"
#include "datagen/style_profile.h"

namespace dehealth {

/// Configuration of the synthetic health-forum generator.
struct ForumConfig {
  int num_users = 1000;
  uint64_t seed = 1;

  /// Per-user post counts follow a truncated power law
  /// P(k) ∝ k^-post_count_exponent, k in [1, max_posts_per_user] — matching
  /// the paper's heavy-tailed Fig. 1 (most users post fewer than 5 times).
  double post_count_exponent = 1.7;
  int max_posts_per_user = 400;
  /// Floor on per-user post counts (the paper's refined-DA and open-world
  /// evaluations draw users with fixed, larger post counts; raise this to
  /// make every user splittable).
  int min_posts_per_user = 1;

  /// Thread (topic) formation: a post starts a new thread with probability
  /// new_thread_prob, otherwise joins one of the most recent open threads;
  /// a thread closes after max_thread_posts posts. Small threads keep the
  /// correlation graph sparse and disconnected like the paper's (Appendix
  /// B: low degrees, tens of components).
  double new_thread_prob = 0.35;
  int open_thread_window = 40;
  int max_thread_posts = 8;

  /// Writing-style population (Figs. 1-2 calibration lives here).
  StylePopulationConfig style;
};

/// `WebMD`-shaped preset: ~5.7 posts/user, ~128-word posts.
ForumConfig WebMdLikeConfig(int num_users, uint64_t seed = 1);

/// `HealthBoards`-shaped preset: ~12 posts/user, ~147-word posts.
ForumConfig HealthBoardsLikeConfig(int num_users, uint64_t seed = 2);

/// Generated forum: the dataset plus the per-user generative profiles
/// (kept so splits can regenerate consistent ground truth / extensions).
struct GeneratedForum {
  ForumDataset dataset;
  std::vector<StyleProfile> profiles;
};

/// Generates a full synthetic forum. Deterministic in config.seed.
/// Fails on non-positive user counts or invalid distribution parameters.
StatusOr<GeneratedForum> GenerateForum(const ForumConfig& config);

}  // namespace dehealth

#endif  // DEHEALTH_DATAGEN_FORUM_GENERATOR_H_
