#ifndef DEHEALTH_DATAGEN_CORPUS_H_
#define DEHEALTH_DATAGEN_CORPUS_H_

#include <string>
#include <vector>

#include "graph/correlation_graph.h"

namespace dehealth {

/// One forum post: author, thread (topic) it was posted under, and text.
struct Post {
  int user_id = 0;
  int thread_id = 0;
  std::string text;
};

/// A forum dataset: `num_users` users (ids 0..num_users-1) and their posts.
/// This is the in-memory equivalent of the paper's crawled WebMD/HB corpora.
struct ForumDataset {
  int num_users = 0;
  int num_threads = 0;
  std::vector<Post> posts;

  /// Post indices per user (built on demand by PostsByUser).
  std::vector<std::vector<int>> PostsByUser() const;

  /// Number of posts per user.
  std::vector<int> PostCounts() const;

  /// Post lengths in words.
  std::vector<double> PostWordLengths() const;
};

/// Builds the paper's user correlation graph from thread co-participation:
/// users who posted in the same thread get an undirected edge whose weight
/// counts the number of shared threads.
CorrelationGraph BuildCorrelationGraph(const ForumDataset& dataset);

/// Dataset-level statistics reported by Figs. 1-2 of the paper.
struct DatasetStats {
  int num_users = 0;
  int num_posts = 0;
  double mean_posts_per_user = 0.0;
  double fraction_users_under_5_posts = 0.0;
  double mean_post_words = 0.0;
  double fraction_posts_under_300_words = 0.0;
};

DatasetStats ComputeDatasetStats(const ForumDataset& dataset);

}  // namespace dehealth

#endif  // DEHEALTH_DATAGEN_CORPUS_H_
