#ifndef DEHEALTH_DATAGEN_STYLE_PROFILE_H_
#define DEHEALTH_DATAGEN_STYLE_PROFILE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "datagen/vocabulary.h"

namespace dehealth {

/// Per-user generative writing-style parameters. Sampled once per synthetic
/// user; posts written with the same profile carry a stable, distinctive
/// stylometric signature — exactly the property the paper's real WebMD/HB
/// authors exhibit and the DA pipeline exploits.
struct StyleProfile {
  /// Permutation seed for the user's personal content-word ranking: the
  /// user draws content words Zipf(rank) over vocabulary order shuffled by
  /// this seed, so different users favor different words (letter-frequency,
  /// word-length, and vocabulary-richness signal).
  uint64_t vocab_permutation_seed = 0;
  double vocab_zipf_exponent = 1.1;
  int vocab_active_size = 800;  // personal active vocabulary
  /// Probability a content word is drawn through the personal permutation
  /// rather than the population-shared ranking. 1 = fully personal word
  /// choices (strong lexical fingerprint); 0 = everyone samples the same
  /// distribution (only habit features identify the author).
  double vocab_personalization = 1.0;
  /// Fraction of content words drawn from the *topic* vocabulary of the
  /// thread being posted in (when a topic seed is supplied): real forum
  /// posts are dominated by the disease/medicine under discussion, which
  /// adds within-author variance and across-author correlation.
  double topic_word_rate = 0.0;

  /// Function-word habits: emission rate and a personal multinomial over
  /// the 337-word lexicon (weights sampled around a global prior).
  double function_word_rate = 0.45;
  std::vector<double> function_word_weights;

  /// Misspelling habits: personal habitual misspellings (indices into the
  /// 248-entry lexicon) and how often the user slips.
  double misspelling_rate = 0.01;
  std::vector<int> habitual_misspellings;

  /// Sentence geometry.
  double mean_sentence_words = 15.0;
  double sd_sentence_words = 5.0;
  double mean_post_words = 128.0;  // lognormal-ish post length center
  double sd_post_log = 0.6;        // dispersion of log post length
  double paragraph_break_prob = 0.12;  // after each sentence

  /// Punctuation/case habits.
  double comma_rate = 0.06;            // per inter-word slot
  double exclamation_prob = 0.1;       // sentence ends with '!'
  double question_prob = 0.12;         // sentence ends with '?'
  double ellipsis_prob = 0.02;         // "..." instead of '.'
  double sentence_cap_prob = 0.9;      // capitalize sentence starts
  double lowercase_i_prob = 0.2;       // writes "i" instead of "I"
  double allcaps_word_prob = 0.01;     // emphasis LIKE THIS
  double apostrophe_contraction_rate = 0.05;  // don't, it's
  double digit_rate = 0.015;           // numeric tokens (doses, ages)
  double parenthesis_prob = 0.04;      // per sentence
  double special_char_rate = 0.004;    // per inter-word slot ( / - + ...)
  double brand_word_prob = 0.008;      // CamelCase brand mentions
};

/// Population-level knobs controlling how diverse user profiles are.
struct StylePopulationConfig {
  int vocabulary_size = 4000;
  double profile_diversity = 1.0;  // 0 = everyone writes identically
  double mean_post_words = 128.0;  // matches WebMD (127.59) / HB (147.24)
  /// Population value for StyleProfile::vocab_personalization. Lower it to
  /// weaken the per-post lexical fingerprint (the paper's real-corpus
  /// regime, where single posts are only weakly identifying).
  double vocab_personalization = 1.0;
  /// Population value for StyleProfile::topic_word_rate.
  double topic_word_rate = 0.0;
};

/// Samples a user profile from the population hyper-prior. Diversity scales
/// how far individual habits may wander from the population mean; at 0 the
/// stylometric channel carries no identity signal (an anonymization
/// ablation hook).
StyleProfile SampleStyleProfile(const StylePopulationConfig& config,
                                Rng& rng);

/// Writes one post (~`target_words` words if > 0, else the profile's own
/// length distribution) in the user's style. When `topic_seed` is nonzero,
/// a `topic_word_rate` fraction of content words come from the topic's
/// shared vocabulary (every author in the thread draws from the same one).
std::string GeneratePost(const StyleProfile& profile,
                         const Vocabulary& vocabulary, Rng& rng,
                         int target_words = 0, uint64_t topic_seed = 0);

}  // namespace dehealth

#endif  // DEHEALTH_DATAGEN_STYLE_PROFILE_H_
