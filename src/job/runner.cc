#include "job/runner.h"

#include <cstdio>
#include <filesystem>
#include <numeric>

#include "common/fault_injection.h"
#include "common/shutdown.h"
#include "index/candidate_index.h"
#include "index/pipeline.h"
#include "io/file_util.h"
#include "obs/standard_metrics.h"
#include "obs/trace.h"

namespace dehealth {

namespace {

constexpr char kManifestFilename[] = "MANIFEST.dhjb";

std::string ShardFilename(const char* prefix, uint32_t begin, uint32_t end) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s-%08u-%08u.dhsh", prefix, begin, end);
  return buf;
}

/// Moves a poisoned file out of the way (never deletes evidence): a later
/// post-mortem can inspect `<name>.quarantined` while the runner recomputes
/// a clean replacement. Rename-over is fine if an older quarantined copy
/// exists.
void QuarantineFile(const std::string& path, const Status& why) {
  obs::GetJobMetrics().quarantines->Increment();
  const std::string target = path + ".quarantined";
  std::fprintf(stderr,
               "warning: quarantining '%s' (-> '%s'): %s; recomputing\n",
               path.c_str(), target.c_str(), why.ToString().c_str());
  std::error_code ec;
  std::filesystem::rename(path, target, ec);
  if (ec) std::filesystem::remove(path, ec);
}

Status CancelledAtShard(const char* phase, uint32_t begin, uint32_t end) {
  return Status::Cancelled(
      "attack job interrupted before the " + std::string(phase) + " shard [" +
      std::to_string(begin) + ", " + std::to_string(end) +
      "); all completed shards are durable — re-run with the same --job-dir "
      "to resume");
}

/// The [begin, end) user ranges the job is sharded into.
std::vector<std::pair<uint32_t, uint32_t>> ShardRanges(uint32_t num_users,
                                                       uint32_t shard_size) {
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  for (uint32_t begin = 0; begin < num_users; begin += shard_size)
    ranges.emplace_back(begin, std::min(begin + shard_size, num_users));
  return ranges;
}

}  // namespace

StatusOr<AttackJob> AttackJob::Open(const UdaGraph& anonymized,
                                    const UdaGraph& auxiliary,
                                    const DeHealthConfig& config) {
  if (config.job_dir.empty())
    return Status::InvalidArgument("AttackJob: config.job_dir is empty");
  if (config.job_shard_size < 1)
    return Status::InvalidArgument(
        "AttackJob: job_shard_size must be >= 1, got " +
        std::to_string(config.job_shard_size));
  if (config.selection == CandidateSelection::kGraphMatching)
    return Status::FailedPrecondition(
        "AttackJob: graph-matching selection is a global computation and "
        "cannot checkpoint per user; run without --job-dir or use direct "
        "selection");

  std::error_code ec;
  std::filesystem::create_directories(config.job_dir, ec);
  if (ec)
    return Status::Internal("AttackJob: cannot create job directory '" +
                            config.job_dir + "': " + ec.message());

  AttackJob job;
  job.config_ = config;
  job.dir_ = config.job_dir;
  job.manifest_.anonymized_fingerprint = FingerprintForIndex(anonymized);
  job.manifest_.auxiliary_fingerprint = FingerprintForIndex(auxiliary);
  job.manifest_.config_fingerprint = JobConfigFingerprint(config);
  job.manifest_.num_users = static_cast<uint32_t>(anonymized.num_users());
  job.manifest_.shard_size = static_cast<uint32_t>(config.job_shard_size);
  job.fingerprint_ = job.manifest_.JobFingerprint();

  const std::string manifest_path =
      (std::filesystem::path(job.dir_) / kManifestFilename).string();
  StatusOr<std::string> bytes = ReadFileToString(manifest_path);
  if (bytes.ok()) {
    StatusOr<JobManifest> stored = DecodeJobManifest(*bytes, manifest_path);
    if (stored.ok()) {
      // Fail closed on a real mismatch: resuming someone else's shards
      // would splice two different attacks into one output file.
      if (stored->JobFingerprint() != job.fingerprint_)
        return Status::FailedPrecondition(
            "AttackJob: job directory '" + job.dir_ +
            "' was created for different forums, config, or shard size; "
            "point --job-dir at a fresh directory (or delete this one) to "
            "start over");
      return job;  // valid manifest, same job: resume.
    }
    QuarantineFile(manifest_path, stored.status());
  } else if (bytes.status().code() != StatusCode::kNotFound) {
    return bytes.status();
  }

  DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("job.manifest_write"));
  DEHEALTH_RETURN_IF_ERROR(
      WriteStringToFileAtomic(EncodeJobManifest(job.manifest_),
                              manifest_path));
  return job;
}

StatusOr<JobShard> AttackJob::LoadShard(const std::string& filename,
                                        JobShard::Phase phase, uint32_t begin,
                                        uint32_t end, bool* loaded) {
  *loaded = false;
  const std::string path =
      (std::filesystem::path(dir_) / filename).string();
  StatusOr<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) {
    // Missing is the normal "not computed yet" case; any other read error
    // (I/O fault) is quarantine-worthy — the file exists but cannot be
    // trusted.
    if (bytes.status().code() != StatusCode::kNotFound)
      QuarantineFile(path, bytes.status());
    return JobShard{};
  }
  StatusOr<JobShard> shard =
      DecodeJobShard(*bytes, fingerprint_, phase, begin, end, path);
  if (!shard.ok()) {
    QuarantineFile(path, shard.status());
    return JobShard{};
  }
  *loaded = true;
  obs::GetJobMetrics().shards_loaded->Increment();
  return shard;
}

Status AttackJob::StoreShard(const JobShard& shard,
                             const std::string& filename) {
  DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("job.shard_write"));
  StatusOr<std::string> bytes = EncodeJobShard(shard, fingerprint_);
  if (!bytes.ok()) return bytes.status();
  return WriteStringToFileAtomic(
      *bytes, (std::filesystem::path(dir_) / filename).string());
}

StatusOr<DeHealthCandidates> AttackJob::SelectCandidates(
    const CandidateSource& scores, DeHealthCandidates* raw) {
  if (scores.num_anonymized() != static_cast<int>(manifest_.num_users))
    return Status::Internal(
        "AttackJob: score source disagrees with the manifest user count");

  DeHealthCandidates state;
  state.candidates.resize(manifest_.num_users);
  state.rejected.assign(manifest_.num_users, false);

  // Phase 1b, sharded: per-user Top-K is embarrassingly parallel AND
  // batch-deterministic (TopKForUsers answers absolute ids identically in
  // any batch), so any prefix of durable shards composes bitwise with
  // freshly computed ones.
  for (const auto& [begin, end] :
       ShardRanges(manifest_.num_users, manifest_.shard_size)) {
    const std::string filename = ShardFilename("topk", begin, end);
    bool loaded = false;
    StatusOr<JobShard> shard =
        LoadShard(filename, JobShard::Phase::kTopK, begin, end, &loaded);
    if (!shard.ok()) return shard.status();
    if (!loaded) {
      if (ProcessShutdownRequested())
        return CancelledAtShard("topk", begin, end);
      DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("job.phase1"));
      obs::GetJobMetrics().shards_computed->Increment();
      obs::Span shard_span("job", "topk_shard");
      shard_span.SetArg("users", static_cast<int64_t>(end - begin));
      std::vector<int> users(end - begin);
      std::iota(users.begin(), users.end(), static_cast<int>(begin));
      StatusOr<CandidateSets> sets =
          scores.TopKForUsers(users, config_.top_k, config_.num_threads);
      if (!sets.ok()) return sets.status();
      shard->phase = JobShard::Phase::kTopK;
      shard->begin = begin;
      shard->end = end;
      shard->candidates = std::move(sets).value();
      DEHEALTH_RETURN_IF_ERROR(StoreShard(*shard, filename));
    }
    for (uint32_t u = begin; u < end; ++u)
      state.candidates[u] = std::move(shard->candidates[u - begin]);
  }

  if (raw != nullptr) *raw = state;

  // Phase 1c: filtering thresholds are global (max/min over every
  // candidate score), so the verdict is one artifact over all users,
  // durable only once it is complete.
  if (config_.enable_filtering) {
    const std::string filename = "filter.dhsh";
    bool loaded = false;
    StatusOr<JobShard> shard = LoadShard(filename, JobShard::Phase::kFilter,
                                         0, manifest_.num_users, &loaded);
    if (!shard.ok()) return shard.status();
    if (!loaded) {
      if (ProcessShutdownRequested())
        return CancelledAtShard("filter", 0, manifest_.num_users);
      DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("job.filter"));
      obs::GetJobMetrics().shards_computed->Increment();
      obs::Span shard_span("job", "filter_shard");
      shard_span.SetArg("users",
                        static_cast<int64_t>(manifest_.num_users));
      StatusOr<FilterResult> filtered =
          FilterCandidates(scores, state.candidates, config_.filter);
      if (!filtered.ok()) return filtered.status();
      shard->phase = JobShard::Phase::kFilter;
      shard->begin = 0;
      shard->end = manifest_.num_users;
      shard->candidates = std::move(filtered->candidates);
      shard->rejected = std::move(filtered->rejected);
      DEHEALTH_RETURN_IF_ERROR(StoreShard(*shard, filename));
    }
    state.candidates = std::move(shard->candidates);
    state.rejected = std::move(shard->rejected);
  }
  return state;
}

StatusOr<RefinedDaResult> AttackJob::Refine(const UdaGraph& anonymized,
                                            const UdaGraph& auxiliary,
                                            const CandidateSource& scores,
                                            const DeHealthCandidates& state) {
  const DeHealth attack(config_);
  RefinedDaResult result;
  result.predictions.resize(manifest_.num_users);
  result.rejected.assign(manifest_.num_users, false);
  result.num_rejected = 0;

  for (const auto& [begin, end] :
       ShardRanges(manifest_.num_users, manifest_.shard_size)) {
    const std::string filename = ShardFilename("refined", begin, end);
    bool loaded = false;
    StatusOr<JobShard> shard =
        LoadShard(filename, JobShard::Phase::kRefined, begin, end, &loaded);
    if (!shard.ok()) return shard.status();
    if (!loaded) {
      if (ProcessShutdownRequested())
        return CancelledAtShard("refined", begin, end);
      DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("job.phase2"));
      obs::GetJobMetrics().shards_computed->Increment();
      obs::Span shard_span("job", "refined_shard");
      shard_span.SetArg("users", static_cast<int64_t>(end - begin));
      std::vector<int> users(end - begin);
      std::iota(users.begin(), users.end(), static_cast<int>(begin));
      // Each user's refined-DA problem is a pure function of (config, u)
      // with the ABSOLUTE id seeding its RNG stream, so batch answers are
      // bitwise-identical to the full run's entries.
      StatusOr<RefinedDaResult> batch =
          attack.RefineUsers(anonymized, auxiliary, scores, state, users);
      if (!batch.ok()) return batch.status();
      shard->phase = JobShard::Phase::kRefined;
      shard->begin = begin;
      shard->end = end;
      shard->predictions = std::move(batch->predictions);
      shard->rejected = std::move(batch->rejected);
      DEHEALTH_RETURN_IF_ERROR(StoreShard(*shard, filename));
    }
    for (uint32_t u = begin; u < end; ++u) {
      result.predictions[u] = shard->predictions[u - begin];
      result.rejected[u] = shard->rejected[u - begin];
      if (result.rejected[u]) ++result.num_rejected;
    }
  }
  return result;
}

StatusOr<DeHealthResult> RunDeHealthAttackJob(const UdaGraph& anonymized,
                                              const UdaGraph& auxiliary,
                                              const DeHealthConfig& config) {
  StatusOr<AttackJob> job = AttackJob::Open(anonymized, auxiliary, config);
  if (!job.ok()) return job.status();
  StatusOr<std::unique_ptr<AttackScoreSource>> scores =
      BuildAttackScoreSource(anonymized, auxiliary, config);
  if (!scores.ok()) return scores.status();

  StatusOr<DeHealthCandidates> state =
      job->SelectCandidates(*(*scores)->source);
  if (!state.ok()) return state.status();
  StatusOr<RefinedDaResult> refined =
      job->Refine(anonymized, auxiliary, *(*scores)->source, *state);
  if (!refined.ok()) return refined.status();

  DeHealthResult result;
  result.candidates = std::move(state->candidates);
  result.rejected = std::move(state->rejected);
  result.refined = std::move(refined).value();
  return result;
}

}  // namespace dehealth
