#ifndef DEHEALTH_JOB_MANIFEST_H_
#define DEHEALTH_JOB_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/de_health.h"
#include "core/top_k.h"

namespace dehealth {

/// On-disk formats of the crash-safe attack job (src/job/runner.h).
///
/// A job directory holds one DHJB manifest binding the job to its inputs,
/// plus DHSH result shards, all written with WriteStringToFileAtomic and
/// framed exactly like the DHIX index snapshot and the DHQP wire protocol:
///
///   magic (4 bytes) | u32 version | payload | u64 FNV-1a(payload)
///
/// The manifest payload fingerprints the forum pair and the semantic
/// attack config; every shard payload embeds the manifest's job
/// fingerprint, so a shard can never be replayed into a job it does not
/// belong to (a stale directory fails closed with FailedPrecondition, a
/// corrupt shard is detected by checksum and recomputed).

/// Identity of an attack job: what the results are a pure function of.
/// `config_fingerprint` covers only the semantic fields of DeHealthConfig —
/// num_threads, index_snapshot_path, job_dir and job_shard_size are
/// excluded because results are bitwise-independent of them (the whole
/// point of resume: a job interrupted at 8 threads may finish at 1).
struct JobManifest {
  uint64_t anonymized_fingerprint = 0;
  uint64_t auxiliary_fingerprint = 0;
  uint64_t config_fingerprint = 0;
  uint32_t num_users = 0;   // |Δ1|: anonymized users the job answers
  uint32_t shard_size = 1;  // users per durable shard

  /// FNV-1a mix of all five fields — the binding value every shard embeds.
  uint64_t JobFingerprint() const;
};

/// Fingerprint of the semantic (result-shaping) DeHealthConfig fields.
/// Deliberately identical for {dense, exact index} runs — their results
/// are bitwise-identical, so their checkpoints are interchangeable; a
/// recall-capped index run (index_max_candidates > 0) fingerprints
/// differently because its results differ.
uint64_t JobConfigFingerprint(const DeHealthConfig& config);

std::string EncodeJobManifest(const JobManifest& manifest);

/// InvalidArgument on malformed/corrupt bytes ("job manifest 'path'
/// (byte N): what"), Unimplemented on a future format version.
StatusOr<JobManifest> DecodeJobManifest(const std::string& bytes,
                                        const std::string& path = "");

/// One durable unit of attack work. Which fields are meaningful depends on
/// the phase:
///   kTopK    candidates[i] for user begin+i       (phase 1b, sharded)
///   kFilter  candidates + rejected for ALL users  (phase 1c, one global
///            artifact: thresholds are global, so it cannot shard)
///   kRefined predictions[i] + rejected[i] for user begin+i (phase 2,
///            sharded)
struct JobShard {
  enum class Phase : uint8_t { kTopK = 1, kRefined = 2, kFilter = 3 };

  Phase phase = Phase::kTopK;
  uint32_t begin = 0;  // first user covered (inclusive)
  uint32_t end = 0;    // one past the last user covered
  CandidateSets candidates;
  std::vector<int> predictions;
  std::vector<bool> rejected;
};

/// `shard.begin/end` must satisfy begin <= end; list sizes must match the
/// phase contract above (checked, Internal on violation — encoding an
/// inconsistent shard is a programming error, not an input error).
StatusOr<std::string> EncodeJobShard(const JobShard& shard,
                                     uint64_t job_fingerprint);

/// Decodes and validates a shard: framing + checksum, the embedded job
/// fingerprint against `job_fingerprint`, and phase/range against
/// `expected_phase`/`expected_begin`/`expected_end`. Any mismatch is
/// InvalidArgument ("job shard 'path' (byte N): what") — the runner
/// quarantines such a shard and recomputes it.
StatusOr<JobShard> DecodeJobShard(const std::string& bytes,
                                  uint64_t job_fingerprint,
                                  JobShard::Phase expected_phase,
                                  uint32_t expected_begin,
                                  uint32_t expected_end,
                                  const std::string& path = "");

}  // namespace dehealth

#endif  // DEHEALTH_JOB_MANIFEST_H_
