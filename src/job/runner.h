#ifndef DEHEALTH_JOB_RUNNER_H_
#define DEHEALTH_JOB_RUNNER_H_

#include <string>
#include <vector>

#include "core/de_health.h"
#include "core/uda_graph.h"
#include "job/manifest.h"

namespace dehealth {

/// Crash-safe checkpoint/resume for the De-Health attack.
///
/// The per-user attack loop is sharded into groups of
/// config.job_shard_size users; each completed shard is committed to
/// config.job_dir as an atomically written, checksummed DHSH file before
/// the next one starts, so the job can die at ANY point — SIGKILL, power
/// loss, injected crash — and lose at most one shard of work. A re-run
/// with the same forums + config validates the DHJB manifest, loads every
/// durable shard and computes only what is missing; because every batch
/// entry point is bitwise-deterministic (TopKForUsers /
/// RunRefinedDaForUsers answer absolute user ids identically in any batch
/// on any thread count), the resumed final output is bitwise-identical to
/// an uninterrupted run.
///
/// Failure handling:
///   - manifest mismatch (different forums or semantic config) →
///     FailedPrecondition, nothing touched: a job directory never silently
///     mixes results from two jobs;
///   - corrupt/truncated manifest or shard → quarantined (renamed to
///     `<name>.quarantined`) with a warning and recomputed;
///   - SIGTERM/SIGINT (via common/shutdown.h) → the current shard
///     finishes, the job returns Status::Cancelled, and a re-run resumes
///     from the durable prefix.
class AttackJob {
 public:
  /// Opens (creating if needed) the job directory named by config.job_dir,
  /// writing or validating the manifest. InvalidArgument when job_dir is
  /// empty or job_shard_size < 1; FailedPrecondition on a manifest
  /// mismatch or graph-matching selection (inherently global — it cannot
  /// checkpoint per user, so the job runner refuses rather than silently
  /// degrading).
  static StatusOr<AttackJob> Open(const UdaGraph& anonymized,
                                  const UdaGraph& auxiliary,
                                  const DeHealthConfig& config);

  /// Phase 1 (Top-K selection + optional filtering), load-or-compute.
  /// Top-K is sharded; the filter verdict is one global artifact
  /// (thresholds are global max/min, so it cannot shard) computed after
  /// all Top-K shards are durable. Returns the same DeHealthCandidates a
  /// DeHealth::SelectCandidates call would. When `raw` is non-null it
  /// receives the UNFILTERED phase-1b state (what SelectCandidates returns
  /// with filtering disabled) — the serving engine keeps both resident.
  StatusOr<DeHealthCandidates> SelectCandidates(const CandidateSource& scores,
                                                DeHealthCandidates* raw =
                                                    nullptr);

  /// Phase 2 (refined DA), load-or-compute, sharded. `state` must be the
  /// result of SelectCandidates. Returns the same RefinedDaResult a full
  /// run would.
  StatusOr<RefinedDaResult> Refine(const UdaGraph& anonymized,
                                   const UdaGraph& auxiliary,
                                   const CandidateSource& scores,
                                   const DeHealthCandidates& state);

  const JobManifest& manifest() const { return manifest_; }
  const std::string& dir() const { return dir_; }

 private:
  AttackJob() = default;

  /// Loads a shard from `filename` if present and valid; quarantines a
  /// poisoned one. *loaded is false when the shard must be (re)computed.
  StatusOr<JobShard> LoadShard(const std::string& filename,
                               JobShard::Phase phase, uint32_t begin,
                               uint32_t end, bool* loaded);

  /// Atomically commits a shard under `filename`.
  Status StoreShard(const JobShard& shard, const std::string& filename);

  DeHealthConfig config_;
  std::string dir_;
  JobManifest manifest_;
  uint64_t fingerprint_ = 0;  // manifest_.JobFingerprint(), cached
};

/// The checkpointed equivalent of RunDeHealthAttack: opens the job at
/// config.job_dir, builds the score source (dense or indexed, with the
/// same graceful index degradation), and runs both phases through the
/// durable shard store. DeHealthResult::similarity is always left empty
/// (checkpointing the O(n1·n2) matrix would dwarf the results; nothing
/// downstream of the CLI needs it). Cancelled when a shutdown signal
/// interrupted the job after a durable checkpoint — re-run to resume.
StatusOr<DeHealthResult> RunDeHealthAttackJob(const UdaGraph& anonymized,
                                              const UdaGraph& auxiliary,
                                              const DeHealthConfig& config);

}  // namespace dehealth

#endif  // DEHEALTH_JOB_RUNNER_H_
