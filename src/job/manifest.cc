#include "job/manifest.h"

#include <cstring>
#include <type_traits>

namespace dehealth {

namespace {

constexpr char kManifestMagic[4] = {'D', 'H', 'J', 'B'};
constexpr char kShardMagic[4] = {'D', 'H', 'S', 'H'};
constexpr uint32_t kVersion = 1;

uint64_t Fnv1a(const char* bytes, size_t n,
               uint64_t h = 1469598103934665603ull) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
uint64_t FnvMixValue(uint64_t h, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  return Fnv1a(buf, sizeof(T), h);
}

template <typename T>
void Append(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.append(buf, sizeof(T));
}

Status DecodeError(const char* what_file, const std::string& path,
                   size_t offset, const std::string& what,
                   StatusCode code = StatusCode::kInvalidArgument) {
  std::string message = what_file;
  if (!path.empty()) message += " '" + path + "'";
  message += " (byte " + std::to_string(offset) + "): " + what;
  return Status(code, std::move(message));
}

/// Bounds-checked sequential reader over a payload span (same discipline
/// as the DHIX snapshot decoder: lengths are validated against the
/// remaining span BEFORE any allocation).
class Reader {
 public:
  Reader(const char* what_file, const std::string& bytes, size_t begin,
         size_t end, const std::string& path)
      : what_file_(what_file),
        bytes_(bytes),
        pos_(begin),
        end_(end),
        path_(path) {}

  template <typename T>
  Status Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > end_) return Fail("truncated payload");
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status Fail(const std::string& what) const {
    return DecodeError(what_file_, path_, pos_, what);
  }

  bool CanHold(uint64_t count, size_t element_size) const {
    return count <= (end_ - pos_) / element_size;
  }

  bool AtEnd() const { return pos_ == end_; }

 private:
  const char* what_file_;
  const std::string& bytes_;
  size_t pos_;
  size_t end_;
  const std::string& path_;
};

/// magic | u32 version | payload | u64 FNV-1a(payload). Validates the
/// frame and returns the payload span [*begin, *end).
Status CheckFrame(const char* what_file, const char magic[4],
                  const std::string& bytes, const std::string& path,
                  size_t* begin, size_t* end) {
  constexpr size_t kHeaderSize = 4 + sizeof(uint32_t);
  constexpr size_t kFooterSize = sizeof(uint64_t);
  if (bytes.size() < kHeaderSize + kFooterSize)
    return DecodeError(what_file, path, bytes.size(),
                       "file smaller than header + footer");
  if (std::memcmp(bytes.data(), magic, 4) != 0)
    return DecodeError(what_file, path, 0, "bad magic");
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  if (version != kVersion)
    return DecodeError(
        what_file, path, 4,
        "unsupported format version " + std::to_string(version),
        StatusCode::kUnimplemented);
  const size_t payload_end = bytes.size() - kFooterSize;
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes.data() + payload_end, kFooterSize);
  if (stored_checksum !=
      Fnv1a(bytes.data() + kHeaderSize, payload_end - kHeaderSize))
    return DecodeError(what_file, path, payload_end,
                       "checksum mismatch (corrupt file)");
  *begin = kHeaderSize;
  *end = payload_end;
  return Status::OK();
}

}  // namespace

uint64_t JobManifest::JobFingerprint() const {
  uint64_t h = 1469598103934665603ull;
  h = FnvMixValue(h, anonymized_fingerprint);
  h = FnvMixValue(h, auxiliary_fingerprint);
  h = FnvMixValue(h, config_fingerprint);
  h = FnvMixValue(h, num_users);
  h = FnvMixValue(h, shard_size);
  return h;
}

uint64_t JobConfigFingerprint(const DeHealthConfig& config) {
  // Serialize every result-shaping field into a buffer and hash it.
  // Excluded on purpose: num_threads (results are thread-independent),
  // index_snapshot_path (a cache location), job_dir / job_shard_size (the
  // shard layout changes where bytes land, not what they are — the
  // manifest records shard_size separately), and use_index when the index
  // is exact (bitwise-identical to dense, so checkpoints interchange).
  std::string buf;
  const SimilarityConfig& sim = config.similarity;
  Append(buf, sim.c1);
  Append(buf, sim.c2);
  Append(buf, sim.c3);
  Append(buf, static_cast<int32_t>(sim.num_landmarks));
  Append(buf, static_cast<uint8_t>(sim.idf_weight_attributes ? 1 : 0));

  Append(buf, static_cast<int32_t>(config.top_k));
  Append(buf, static_cast<int32_t>(config.selection));
  Append(buf, static_cast<uint8_t>(config.enable_filtering ? 1 : 0));
  Append(buf, config.filter.epsilon);
  Append(buf, static_cast<int32_t>(config.filter.num_thresholds));

  const RefinedDaConfig& r = config.refined;
  Append(buf, static_cast<int32_t>(r.learner));
  Append(buf, static_cast<int32_t>(r.knn_k));
  Append(buf, r.rlsc_lambda);
  Append(buf, static_cast<int32_t>(r.svm.kernel));
  Append(buf, r.svm.c);
  Append(buf, r.svm.rbf_gamma);
  Append(buf, r.svm.tolerance);
  Append(buf, static_cast<int32_t>(r.svm.max_passes));
  Append(buf, static_cast<int32_t>(r.svm.max_iterations));
  Append(buf, r.svm.seed);
  Append(buf, static_cast<uint8_t>(r.include_structural_features ? 1 : 0));
  Append(buf, static_cast<int32_t>(r.aggregation));
  Append(buf, static_cast<uint8_t>(r.user_level_instances ? 1 : 0));
  Append(buf, static_cast<int32_t>(r.verification));
  Append(buf, r.mean_verification_r);
  Append(buf, static_cast<int32_t>(r.false_addition_count));
  Append(buf, r.seed);

  // The only index knob that changes results: a recall cap.
  const int32_t effective_cap =
      config.use_index ? static_cast<int32_t>(config.index_max_candidates)
                       : 0;
  Append(buf, effective_cap);

  // Slice identity: a job computed over shard i of N holds candidates for
  // a DIFFERENT id space than shard j (or the whole universe), so slices
  // never interchange checkpoints. num_shards (in-process sharding) is
  // deliberately excluded — merged results are bitwise-identical to an
  // unsharded run, so those checkpoints DO interchange.
  Append(buf, static_cast<int32_t>(config.shard_index));
  Append(buf, static_cast<int32_t>(config.shard_count));

  // Engine identity: blind/community scores differ from structural, so
  // their checkpoints must never interchange — with structural OR each
  // other. The structural engine appends nothing, keeping every job
  // directory written before --engine existed valid. engine_seed shapes
  // the community engine's label-propagation result, so it travels too.
  if (config.engine != EngineKind::kStructural) {
    Append(buf, static_cast<int32_t>(config.engine));
    Append(buf, config.engine_seed);
  }
  return Fnv1a(buf.data(), buf.size());
}

std::string EncodeJobManifest(const JobManifest& manifest) {
  std::string out(kManifestMagic, sizeof(kManifestMagic));
  Append(out, kVersion);
  const size_t payload_begin = out.size();
  Append(out, manifest.anonymized_fingerprint);
  Append(out, manifest.auxiliary_fingerprint);
  Append(out, manifest.config_fingerprint);
  Append(out, manifest.num_users);
  Append(out, manifest.shard_size);
  Append(out, Fnv1a(out.data() + payload_begin, out.size() - payload_begin));
  return out;
}

StatusOr<JobManifest> DecodeJobManifest(const std::string& bytes,
                                        const std::string& path) {
  size_t begin = 0, end = 0;
  DEHEALTH_RETURN_IF_ERROR(
      CheckFrame("job manifest", kManifestMagic, bytes, path, &begin, &end));
  Reader reader("job manifest", bytes, begin, end, path);
  JobManifest manifest;
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&manifest.anonymized_fingerprint));
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&manifest.auxiliary_fingerprint));
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&manifest.config_fingerprint));
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&manifest.num_users));
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&manifest.shard_size));
  if (!reader.AtEnd()) return reader.Fail("trailing bytes after payload");
  if (manifest.shard_size == 0) return reader.Fail("shard_size is zero");
  return manifest;
}

StatusOr<std::string> EncodeJobShard(const JobShard& shard,
                                     uint64_t job_fingerprint) {
  if (shard.begin > shard.end)
    return Status::Internal("EncodeJobShard: begin > end");
  const size_t span = shard.end - shard.begin;
  switch (shard.phase) {
    case JobShard::Phase::kTopK:
      if (shard.candidates.size() != span)
        return Status::Internal(
            "EncodeJobShard: candidate list count does not match the shard "
            "range");
      break;
    case JobShard::Phase::kRefined:
      if (shard.predictions.size() != span || shard.rejected.size() != span)
        return Status::Internal(
            "EncodeJobShard: prediction/rejected count does not match the "
            "shard range");
      break;
    case JobShard::Phase::kFilter:
      if (shard.begin != 0 || shard.candidates.size() != span ||
          shard.rejected.size() != span)
        return Status::Internal(
            "EncodeJobShard: a filter shard must cover [0, num_users) with "
            "matching candidates + rejected");
      break;
    default:
      return Status::Internal("EncodeJobShard: unknown phase");
  }

  std::string out(kShardMagic, sizeof(kShardMagic));
  Append(out, kVersion);
  const size_t payload_begin = out.size();
  Append(out, job_fingerprint);
  Append(out, static_cast<uint8_t>(shard.phase));
  Append(out, shard.begin);
  Append(out, shard.end);
  if (shard.phase == JobShard::Phase::kTopK ||
      shard.phase == JobShard::Phase::kFilter) {
    for (const std::vector<int>& list : shard.candidates) {
      Append(out, static_cast<uint32_t>(list.size()));
      for (int v : list) Append(out, static_cast<int32_t>(v));
    }
  }
  if (shard.phase == JobShard::Phase::kRefined)
    for (size_t i = 0; i < span; ++i)
      Append(out, static_cast<int32_t>(shard.predictions[i]));
  if (shard.phase == JobShard::Phase::kRefined ||
      shard.phase == JobShard::Phase::kFilter)
    for (size_t i = 0; i < span; ++i)
      Append(out, static_cast<uint8_t>(shard.rejected[i] ? 1 : 0));
  Append(out, Fnv1a(out.data() + payload_begin, out.size() - payload_begin));
  return out;
}

StatusOr<JobShard> DecodeJobShard(const std::string& bytes,
                                  uint64_t job_fingerprint,
                                  JobShard::Phase expected_phase,
                                  uint32_t expected_begin,
                                  uint32_t expected_end,
                                  const std::string& path) {
  size_t begin = 0, end = 0;
  DEHEALTH_RETURN_IF_ERROR(
      CheckFrame("job shard", kShardMagic, bytes, path, &begin, &end));
  Reader reader("job shard", bytes, begin, end, path);

  uint64_t stored_fingerprint = 0;
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&stored_fingerprint));
  if (stored_fingerprint != job_fingerprint)
    return reader.Fail(
        "shard belongs to a different job (forums or config changed)");
  uint8_t phase = 0;
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&phase));
  if (phase != static_cast<uint8_t>(expected_phase))
    return reader.Fail("unexpected phase " + std::to_string(phase));
  JobShard shard;
  shard.phase = expected_phase;
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&shard.begin));
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&shard.end));
  if (shard.begin != expected_begin || shard.end != expected_end)
    return reader.Fail("unexpected user range [" +
                       std::to_string(shard.begin) + ", " +
                       std::to_string(shard.end) + ")");
  const size_t span = shard.end - shard.begin;

  if (expected_phase == JobShard::Phase::kTopK ||
      expected_phase == JobShard::Phase::kFilter) {
    shard.candidates.resize(span);
    for (size_t i = 0; i < span; ++i) {
      uint32_t count = 0;
      DEHEALTH_RETURN_IF_ERROR(reader.Read(&count));
      if (!reader.CanHold(count, sizeof(int32_t)))
        return reader.Fail("candidate list length exceeds payload");
      shard.candidates[i].resize(count);
      for (uint32_t j = 0; j < count; ++j) {
        int32_t v = 0;
        DEHEALTH_RETURN_IF_ERROR(reader.Read(&v));
        shard.candidates[i][j] = v;
      }
    }
  }
  if (expected_phase == JobShard::Phase::kRefined) {
    if (!reader.CanHold(span, sizeof(int32_t) + sizeof(uint8_t)))
      return reader.Fail("prediction list exceeds payload");
    shard.predictions.resize(span);
    for (size_t i = 0; i < span; ++i) {
      int32_t p = 0;
      DEHEALTH_RETURN_IF_ERROR(reader.Read(&p));
      shard.predictions[i] = p;
    }
  }
  if (expected_phase == JobShard::Phase::kRefined ||
      expected_phase == JobShard::Phase::kFilter) {
    if (!reader.CanHold(span, sizeof(uint8_t)))
      return reader.Fail("rejected flags exceed payload");
    shard.rejected.resize(span);
    for (size_t i = 0; i < span; ++i) {
      uint8_t flag = 0;
      DEHEALTH_RETURN_IF_ERROR(reader.Read(&flag));
      if (flag > 1) return reader.Fail("rejected flag out of range");
      shard.rejected[i] = flag != 0;
    }
  }
  if (!reader.AtEnd()) return reader.Fail("trailing bytes after payload");
  return shard;
}

}  // namespace dehealth
