#ifndef DEHEALTH_CORE_FILTERING_H_
#define DEHEALTH_CORE_FILTERING_H_

#include <vector>

#include "common/status.h"
#include "core/candidate_source.h"
#include "core/top_k.h"

namespace dehealth {

/// Parameters of the paper's Algorithm 2 (threshold-vector filtering).
struct FilterConfig {
  double epsilon = 0.01;  // ε: offset above the global minimum similarity
  int num_thresholds = 10;  // l: length of the threshold vector
};

/// Result of filtering: pruned candidate sets plus the users concluded to
/// have no auxiliary counterpart (u → ⊥).
struct FilterResult {
  CandidateSets candidates;
  std::vector<bool> rejected;  // rejected[u]: u → ⊥
  std::vector<double> thresholds;  // the vector T, largest first
};

/// Applies Algorithm 2: builds the threshold vector from the global
/// max/min similarity, then keeps, per user, the candidates surviving the
/// largest threshold that leaves the set non-empty; a user whose candidates
/// all fall below the smallest threshold is rejected (open-world ⊥).
/// Candidate order (decreasing similarity) is preserved.
StatusOr<FilterResult> FilterCandidates(
    const std::vector<std::vector<double>>& similarity,
    const CandidateSets& candidates, FilterConfig config = {});

/// CandidateSource variant: identical results, but rows are streamed from
/// the source (one O(n2) row at a time) instead of indexed out of a
/// materialized matrix — the global max/min pass makes filtering inherently
/// a full-scan phase, so the indexed path trades matrix memory for row
/// recomputation here.
StatusOr<FilterResult> FilterCandidates(const CandidateSource& scores,
                                        const CandidateSets& candidates,
                                        FilterConfig config = {});

}  // namespace dehealth

#endif  // DEHEALTH_CORE_FILTERING_H_
