#include "core/top_k.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "graph/bipartite_matching.h"

namespace dehealth {

namespace {

CandidateSets DirectSelection(
    const std::vector<std::vector<double>>& similarity, int k) {
  CandidateSets candidates(similarity.size());
  for (size_t u = 0; u < similarity.size(); ++u) {
    const auto& row = similarity[u];
    std::vector<int> order(row.size());
    std::iota(order.begin(), order.end(), 0);
    const size_t take = std::min(static_cast<size_t>(k), row.size());
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(take),
                      order.end(), [&row](int a, int b) {
                        if (row[static_cast<size_t>(a)] !=
                            row[static_cast<size_t>(b)])
                          return row[static_cast<size_t>(a)] >
                                 row[static_cast<size_t>(b)];
                        return a < b;
                      });
    candidates[u].assign(order.begin(),
                         order.begin() + static_cast<long>(take));
  }
  return candidates;
}

CandidateSets GraphMatchingSelection(
    const std::vector<std::vector<double>>& similarity, int k) {
  // Mutable copy: matched edges get their weight zeroed between rounds.
  std::vector<std::vector<double>> weights = similarity;
  CandidateSets candidates(similarity.size());
  const size_t n2 = similarity.empty() ? 0 : similarity[0].size();
  const int rounds = std::min(static_cast<size_t>(k), n2) == 0
                         ? 0
                         : static_cast<int>(
                               std::min(static_cast<size_t>(k), n2));
  for (int round = 0; round < rounds; ++round) {
    const std::vector<int> assignment = MaxWeightBipartiteMatching(weights);
    for (size_t u = 0; u < assignment.size(); ++u) {
      const int v = assignment[u];
      if (v < 0) continue;
      // Skip if already a candidate (possible when weights hit zero).
      if (std::find(candidates[u].begin(), candidates[u].end(), v) ==
          candidates[u].end())
        candidates[u].push_back(v);
      weights[u][static_cast<size_t>(v)] = 0.0;
    }
  }
  // Order each candidate list by decreasing original similarity.
  for (size_t u = 0; u < candidates.size(); ++u) {
    const auto& row = similarity[u];
    std::stable_sort(candidates[u].begin(), candidates[u].end(),
                     [&row](int a, int b) {
                       return row[static_cast<size_t>(a)] >
                              row[static_cast<size_t>(b)];
                     });
  }
  return candidates;
}

}  // namespace

StatusOr<CandidateSets> SelectTopKCandidates(
    const std::vector<std::vector<double>>& similarity, int k,
    CandidateSelection method) {
  if (k < 1)
    return Status::InvalidArgument("SelectTopKCandidates: k must be >= 1");
  if (similarity.empty()) return CandidateSets{};
  const size_t n2 = similarity[0].size();
  for (const auto& row : similarity)
    if (row.size() != n2)
      return Status::InvalidArgument(
          "SelectTopKCandidates: ragged similarity matrix");
  switch (method) {
    case CandidateSelection::kDirect:
      return DirectSelection(similarity, k);
    case CandidateSelection::kGraphMatching:
      return GraphMatchingSelection(similarity, k);
  }
  return Status::InvalidArgument("SelectTopKCandidates: unknown method");
}

double TopKSuccessRate(const CandidateSets& candidates,
                       const std::vector<int>& truth) {
  assert(candidates.size() == truth.size());
  int overlapping = 0, hits = 0;
  for (size_t u = 0; u < candidates.size(); ++u) {
    if (truth[u] < 0) continue;
    ++overlapping;
    if (std::find(candidates[u].begin(), candidates[u].end(), truth[u]) !=
        candidates[u].end())
      ++hits;
  }
  if (overlapping == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(overlapping);
}

std::vector<double> TopKSuccessCurve(const CandidateSets& candidates,
                                     const std::vector<int>& truth,
                                     const std::vector<int>& ks) {
  assert(candidates.size() == truth.size());
  assert(std::is_sorted(ks.begin(), ks.end()));
  std::vector<int> hits_at(ks.size(), 0);
  int overlapping = 0;
  for (size_t u = 0; u < candidates.size(); ++u) {
    if (truth[u] < 0) continue;
    ++overlapping;
    const auto& list = candidates[u];
    const auto it = std::find(list.begin(), list.end(), truth[u]);
    if (it == list.end()) continue;
    const int rank = static_cast<int>(it - list.begin()) + 1;
    for (size_t i = 0; i < ks.size(); ++i)
      if (rank <= ks[i]) ++hits_at[i];
  }
  std::vector<double> rates(ks.size(), 0.0);
  if (overlapping > 0)
    for (size_t i = 0; i < ks.size(); ++i)
      rates[i] = static_cast<double>(hits_at[i]) /
                 static_cast<double>(overlapping);
  return rates;
}

}  // namespace dehealth
