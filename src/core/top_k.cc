#include "core/top_k.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "common/parallel.h"
#include "graph/bipartite_matching.h"
#include "obs/standard_metrics.h"
#include "obs/trace.h"

namespace dehealth {

namespace {

CandidateSets DirectSelection(
    const std::vector<std::vector<double>>& similarity, int k,
    int num_threads) {
  CandidateSets candidates(similarity.size());
  // Each task owns one row's candidate list; output is independent of the
  // thread count.
  ParallelFor(
      0, static_cast<int64_t>(similarity.size()),
      [&](int64_t ui) {
        const size_t u = static_cast<size_t>(ui);
        candidates[u] = TopKForRow(similarity[u], k);
      },
      num_threads);
  return candidates;
}

CandidateSets GraphMatchingSelection(
    const std::vector<std::vector<double>>& similarity, int k) {
  // Bookkeeping copy: matched edges are marked with a -infinity sentinel so
  // they stay distinguishable from legitimately zero-similarity pairs (the
  // old code zeroed them, so an all-zero round could "match" and admit
  // pairs with no similarity at all).
  constexpr double kMatched = -std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> weights = similarity;
  CandidateSets candidates(similarity.size());
  const size_t n2 = similarity.empty() ? 0 : similarity[0].size();
  const int rounds = static_cast<int>(std::min(static_cast<size_t>(k), n2));
  for (int round = 0; round < rounds; ++round) {
    // The Hungarian solver requires non-negative weights; matched (and any
    // negative) entries participate as weight 0 but are never admitted.
    std::vector<std::vector<double>> solver_weights(weights.size());
    for (size_t u = 0; u < weights.size(); ++u) {
      solver_weights[u].resize(weights[u].size());
      for (size_t v = 0; v < weights[u].size(); ++v)
        solver_weights[u][v] = std::max(weights[u][v], 0.0);
    }
    const std::vector<int> assignment =
        MaxWeightBipartiteMatching(solver_weights);
    bool any_admitted = false;
    for (size_t u = 0; u < assignment.size(); ++u) {
      const int v = assignment[u];
      if (v < 0) continue;
      // Only positive-similarity assignments become candidates: previously
      // matched edges (sentinel) and zero-similarity pairs are both
      // skipped, which also makes duplicate candidates impossible.
      if (weights[u][static_cast<size_t>(v)] <= 0.0) continue;
      candidates[u].push_back(v);
      weights[u][static_cast<size_t>(v)] = kMatched;
      any_admitted = true;
    }
    if (!any_admitted) break;  // all remaining edges are zero or matched
  }
  // Order each candidate list by decreasing original similarity.
  for (size_t u = 0; u < candidates.size(); ++u) {
    const auto& row = similarity[u];
    std::stable_sort(candidates[u].begin(), candidates[u].end(),
                     [&row](int a, int b) {
                       return row[static_cast<size_t>(a)] >
                              row[static_cast<size_t>(b)];
                     });
  }
  return candidates;
}

}  // namespace

std::vector<int> TopKForRow(const std::vector<double>& row, int k) {
  assert(k >= 1);
  std::vector<int> order(row.size());
  std::iota(order.begin(), order.end(), 0);
  const size_t take = std::min(static_cast<size_t>(k), row.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<long>(take),
                    order.end(), [&row](int a, int b) {
                      if (row[static_cast<size_t>(a)] !=
                          row[static_cast<size_t>(b)])
                        return row[static_cast<size_t>(a)] >
                               row[static_cast<size_t>(b)];
                      return a < b;
                    });
  order.resize(take);
  return order;
}

std::vector<ScoredUser> MergeScoredTopK(
    const std::vector<std::vector<ScoredUser>>& per_shard, int k) {
  std::vector<ScoredUser> merged;
  size_t total = 0;
  for (const auto& shard : per_shard) total += shard.size();
  merged.reserve(total);
  for (const auto& shard : per_shard)
    merged.insert(merged.end(), shard.begin(), shard.end());
  const size_t take =
      std::min(static_cast<size_t>(std::max(k, 0)), merged.size());
  std::partial_sort(merged.begin(), merged.begin() + static_cast<long>(take),
                    merged.end(), BetterScoredUser);
  merged.resize(take);
  return merged;
}

StatusOr<CandidateSets> SelectTopKCandidates(
    const std::vector<std::vector<double>>& similarity, int k,
    CandidateSelection method, int num_threads) {
  if (k < 1)
    return Status::InvalidArgument("SelectTopKCandidates: k must be >= 1");
  if (similarity.empty()) return CandidateSets{};
  obs::Span span("core", "select_top_k");
  span.SetArg("rows", static_cast<int64_t>(similarity.size()));
  obs::GetCoreMetrics().topk_dense_rows->Increment(similarity.size());
  const size_t n2 = similarity[0].size();
  for (const auto& row : similarity)
    if (row.size() != n2)
      return Status::InvalidArgument(
          "SelectTopKCandidates: ragged similarity matrix");
  switch (method) {
    case CandidateSelection::kDirect:
      return DirectSelection(similarity, k, num_threads);
    case CandidateSelection::kGraphMatching:
      return GraphMatchingSelection(similarity, k);
  }
  return Status::InvalidArgument("SelectTopKCandidates: unknown method");
}

double TopKSuccessRate(const CandidateSets& candidates,
                       const std::vector<int>& truth) {
  // Size mismatch previously only tripped an assert — in NDEBUG builds the
  // loop read past the end of `truth`. Degrade to "no successes" instead.
  if (candidates.size() != truth.size()) return 0.0;
  int overlapping = 0, hits = 0;
  for (size_t u = 0; u < candidates.size(); ++u) {
    if (truth[u] < 0) continue;
    ++overlapping;
    if (std::find(candidates[u].begin(), candidates[u].end(), truth[u]) !=
        candidates[u].end())
      ++hits;
  }
  if (overlapping == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(overlapping);
}

std::vector<double> TopKSuccessCurve(const CandidateSets& candidates,
                                     const std::vector<int>& truth,
                                     const std::vector<int>& ks) {
  // See TopKSuccessRate: mismatch must not be UB in release builds.
  if (candidates.size() != truth.size())
    return std::vector<double>(ks.size(), 0.0);
  assert(std::is_sorted(ks.begin(), ks.end()));
  std::vector<int> hits_at(ks.size(), 0);
  int overlapping = 0;
  for (size_t u = 0; u < candidates.size(); ++u) {
    if (truth[u] < 0) continue;
    ++overlapping;
    const auto& list = candidates[u];
    const auto it = std::find(list.begin(), list.end(), truth[u]);
    if (it == list.end()) continue;
    const int rank = static_cast<int>(it - list.begin()) + 1;
    for (size_t i = 0; i < ks.size(); ++i)
      if (rank <= ks[i]) ++hits_at[i];
  }
  std::vector<double> rates(ks.size(), 0.0);
  if (overlapping > 0)
    for (size_t i = 0; i < ks.size(); ++i)
      rates[i] = static_cast<double>(hits_at[i]) /
                 static_cast<double>(overlapping);
  return rates;
}

}  // namespace dehealth
