#include "core/filtering.h"

#include <algorithm>
#include <limits>

#include "obs/standard_metrics.h"
#include "obs/trace.h"

namespace dehealth {

StatusOr<FilterResult> FilterCandidates(const CandidateSource& scores,
                                        const CandidateSets& candidates,
                                        FilterConfig config) {
  if (config.num_thresholds < 1)
    return Status::InvalidArgument(
        "FilterCandidates: num_thresholds must be >= 1");
  if (config.epsilon < 0.0)
    return Status::InvalidArgument(
        "FilterCandidates: epsilon must be >= 0");
  if (static_cast<size_t>(scores.num_anonymized()) != candidates.size())
    return Status::InvalidArgument(
        "FilterCandidates: similarity/candidate size mismatch");

  obs::Span span("core", "filter_candidates");
  span.SetArg("users", static_cast<int64_t>(candidates.size()));
  obs::CoreMetrics& metrics = obs::GetCoreMetrics();
  metrics.filter_runs->Increment();

  FilterResult result;
  result.candidates.resize(candidates.size());
  result.rejected.assign(candidates.size(), false);
  if (candidates.empty()) return result;

  // Global similarity extremes (line 1-2 of Algorithm 2), streamed one row
  // at a time; each candidate's score is kept so the threshold pass below
  // never needs the row again.
  double s_max = -std::numeric_limits<double>::infinity();
  double s_min = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> candidate_scores(candidates.size());
  std::vector<double> scratch;
  for (size_t u = 0; u < candidates.size(); ++u) {
    const std::vector<double>& row =
        scores.Row(static_cast<NodeId>(u), &scratch);
    for (double s : row) {
      s_max = std::max(s_max, s);
      s_min = std::min(s_min, s);
    }
    candidate_scores[u].reserve(candidates[u].size());
    for (int v : candidates[u])
      candidate_scores[u].push_back(row[static_cast<size_t>(v)]);
  }
  if (s_min > s_max) {  // no auxiliary users at all
    result.rejected.assign(candidates.size(), true);
    metrics.filter_rejected->Increment(candidates.size());
    return result;
  }
  const double s_upper = s_max;
  const double s_lower = std::min(s_min + config.epsilon, s_upper);

  // Threshold vector T_i = s_u - i/(l-1) · (s_u - s_l), largest first.
  const int l = config.num_thresholds;
  result.thresholds.resize(static_cast<size_t>(l));
  for (int i = 0; i < l; ++i) {
    const double frac =
        l == 1 ? 0.0 : static_cast<double>(i) / static_cast<double>(l - 1);
    result.thresholds[static_cast<size_t>(i)] =
        s_upper - frac * (s_upper - s_lower);
  }

  for (size_t u = 0; u < candidates.size(); ++u) {
    bool kept = false;
    for (double threshold : result.thresholds) {
      std::vector<int> surviving;
      for (size_t i = 0; i < candidates[u].size(); ++i)
        if (candidate_scores[u][i] >= threshold)
          surviving.push_back(candidates[u][i]);
      if (!surviving.empty()) {
        result.candidates[u] = std::move(surviving);
        kept = true;
        break;
      }
    }
    if (!kept) result.rejected[u] = true;  // u → ⊥ (line 12-13)
  }
  uint64_t rejected = 0;
  for (const bool r : result.rejected) rejected += r ? 1 : 0;
  metrics.filter_rejected->Increment(rejected);
  return result;
}

StatusOr<FilterResult> FilterCandidates(
    const std::vector<std::vector<double>>& similarity,
    const CandidateSets& candidates, FilterConfig config) {
  const DenseCandidateSource source(similarity);
  return FilterCandidates(source, candidates, config);
}

}  // namespace dehealth
