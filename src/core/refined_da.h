#ifndef DEHEALTH_CORE_REFINED_DA_H_
#define DEHEALTH_CORE_REFINED_DA_H_

#include <vector>

#include "common/status.h"
#include "core/candidate_source.h"
#include "core/similarity.h"
#include "core/top_k.h"
#include "core/uda_graph.h"
#include "ml/svm_smo.h"

namespace dehealth {

/// Benchmark learner used by the refined-DA phase.
enum class LearnerKind {
  kKnn,
  kSmoSvm,
  kRlsc,
  kNearestCentroid,
};

const char* LearnerKindName(LearnerKind kind);

/// Open-world verification scheme (Section III-B, "Refined DA").
enum class VerificationScheme {
  kNone,            // closed world: always accept the classifier output
  kFalseAddition,   // add K' decoy users; prediction of a decoy => ⊥
  kMeanVerification,  // accept only if s_uv >= (1 + r) * mean_w s_uw
};

/// Configuration of the refined-DA phase.
struct RefinedDaConfig {
  LearnerKind learner = LearnerKind::kSmoSvm;
  int knn_k = 3;
  double rlsc_lambda = 1.0;
  SvmConfig svm;

  /// Appends graph-structural features (degree, weighted degree, log post
  /// count) of the post's author to each stylometric sample, as the paper
  /// trains on "stylometric and structural features".
  bool include_structural_features = true;

  /// How per-post classifier outputs combine into the user-level decision.
  /// kScoreSum adds decision scores (strong); kMajorityVote counts per-post
  /// argmax predictions (the classical Weka-era pipeline — weak when
  /// single posts are barely attributable, which is the paper's regime).
  enum class PostAggregation { kScoreSum, kMajorityVote };
  PostAggregation aggregation = PostAggregation::kScoreSum;

  /// Train on ONE aggregated (mean-of-posts) instance per candidate user
  /// and classify the anonymized user's aggregate vector — the paper's
  /// Weka-style user-level attribution, where every class has a single
  /// training example and large candidate sets starve the classifier
  /// (the Fig. 4/6 regime). When false, every post is a training sample
  /// and per-post decision scores are summed (a stronger variant).
  bool user_level_instances = false;

  VerificationScheme verification = VerificationScheme::kNone;
  /// The margin r of the mean-verification scheme, applied to similarity
  /// scores above the per-row floor. The paper uses r = 0.25 on its
  /// similarity scale; on the weighted-Jaccard attribute scale used here
  /// the discriminative band is narrower, so the calibrated default is
  /// 0.05 (see EXPERIMENTS.md).
  double mean_verification_r = 0.05;
  /// K' decoys for false addition; 0 means "as many as |C_u|".
  int false_addition_count = 0;

  /// Base seed for decoy sampling. Each anonymized user u draws from its
  /// own stream Rng(MixSeed(seed, u)), so decoy sets are a pure function
  /// of (seed, u) — independent of thread count and iteration order.
  uint64_t seed = 7;

  /// Threads for the per-user training loop (0 = hardware concurrency).
  /// Predictions are identical for any value; see DESIGN.md "Threading
  /// model".
  int num_threads = 0;
};

/// Result of refined DA over all anonymized users.
struct RefinedDaResult {
  /// predictions[u] = auxiliary id, or kNotPresent (⊥) when rejected.
  std::vector<int> predictions;
  /// rejected[u]: u → ⊥ was an explicit verification/filtering decision
  /// (kNotPresent alone can also mean "no posts / no candidates").
  std::vector<bool> rejected;
  /// Number of users decided by verification rejection (u → ⊥).
  int num_rejected = 0;
};

/// Runs the refined-DA phase: per anonymized user u, trains a classifier on
/// the posts of the users in C_u (labels = auxiliary ids), classifies u's
/// anonymized posts, aggregates per-post decision scores, and applies the
/// configured verification scheme. `rejected` (from filtering) may be null;
/// users rejected there map to ⊥ directly. `similarity` must be the matrix
/// the candidates were selected from (used by mean-verification).
StatusOr<RefinedDaResult> RunRefinedDa(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const CandidateSets& candidates, const std::vector<bool>* rejected,
    const std::vector<std::vector<double>>& similarity,
    const RefinedDaConfig& config);

/// CandidateSource variant: identical predictions. Similarity rows are only
/// pulled (one O(n2) row per user) when mean-verification needs them, so
/// the indexed path never materializes the matrix.
StatusOr<RefinedDaResult> RunRefinedDa(const UdaGraph& anonymized,
                                       const UdaGraph& auxiliary,
                                       const CandidateSets& candidates,
                                       const std::vector<bool>* rejected,
                                       const CandidateSource& scores,
                                       const RefinedDaConfig& config);

/// Batch entry point for the serving path: answers ONLY the listed
/// anonymized users (result entry i belongs to users[i]). `candidates` and
/// `rejected` stay indexed by absolute user id, exactly as a full run takes
/// them. Each user's problem is a pure function of (config, u) — the decoy
/// stream is Rng(MixSeed(seed, u)) with the ABSOLUTE id — so every answer
/// is bitwise-identical to the corresponding entry of a full RunRefinedDa,
/// whether the user is asked solo or in any batch, on any thread count.
/// Duplicate ids are allowed (and answered identically).
StatusOr<RefinedDaResult> RunRefinedDaForUsers(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const std::vector<int>& users, const CandidateSets& candidates,
    const std::vector<bool>* rejected, const CandidateSource& scores,
    const RefinedDaConfig& config);

/// Variant for the case where every anonymized user has the SAME candidate
/// set (the "Stylometry" baseline): trains one shared classifier instead of
/// |V1| identical ones. Fails if candidate sets differ. False-addition is
/// meaningless here (every user is already a candidate) and is treated as
/// kNone; mean-verification applies per user as usual.
StatusOr<RefinedDaResult> RunRefinedDaShared(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const CandidateSets& candidates,
    const std::vector<std::vector<double>>& similarity,
    const RefinedDaConfig& config);

/// CandidateSource variant of RunRefinedDaShared (see RunRefinedDa).
StatusOr<RefinedDaResult> RunRefinedDaShared(const UdaGraph& anonymized,
                                             const UdaGraph& auxiliary,
                                             const CandidateSets& candidates,
                                             const CandidateSource& scores,
                                             const RefinedDaConfig& config);

}  // namespace dehealth

#endif  // DEHEALTH_CORE_REFINED_DA_H_
