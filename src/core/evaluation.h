#ifndef DEHEALTH_CORE_EVALUATION_H_
#define DEHEALTH_CORE_EVALUATION_H_

#include <vector>

#include "core/refined_da.h"
#include "ml/metrics.h"

namespace dehealth {

/// Tallies refined-DA outcomes against a scenario's ground truth
/// (truth[u] = auxiliary id, or negative for no-true-mapping users).
/// Closed world: read `.Accuracy()`. Open world: also
/// `.FalsePositiveRate()`.
OpenWorldCounts EvaluateRefinedDa(const RefinedDaResult& result,
                                  const std::vector<int>& truth);

}  // namespace dehealth

#endif  // DEHEALTH_CORE_EVALUATION_H_
