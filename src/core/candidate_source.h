#ifndef DEHEALTH_CORE_CANDIDATE_SOURCE_H_
#define DEHEALTH_CORE_CANDIDATE_SOURCE_H_

#include <vector>

#include "common/status.h"
#include "core/top_k.h"
#include "graph/correlation_graph.h"

namespace dehealth {

/// Where per-pair similarity scores and Top-K candidate sets come from.
///
/// The dense path materializes the full |Δ1|×|Δ2| matrix (exact, O(n1·n2)
/// memory); the indexed path (src/index/) answers the same queries from a
/// persistent auxiliary-side index without ever forming the matrix. Both
/// must produce bitwise-identical scores and candidate sets, so every
/// downstream phase (filtering, refined DA, evaluation) can consume either
/// through this interface.
class CandidateSource {
 public:
  virtual ~CandidateSource() = default;

  virtual int num_anonymized() const = 0;
  virtual int num_auxiliary() const = 0;

  /// Exact similarity s_uv of anonymized u against auxiliary v.
  virtual double Score(NodeId u, NodeId v) const = 0;

  /// All of u's scores, in auxiliary-id order. Dense sources return a
  /// reference to their materialized row; others fill *scratch (resized to
  /// num_auxiliary()) and return it — an O(n2) computation, so phases that
  /// stream rows (filtering, mean-verification) pay per-row compute instead
  /// of whole-matrix memory.
  virtual const std::vector<double>& Row(NodeId u,
                                         std::vector<double>* scratch)
      const = 0;

  /// Direct Top-K candidate sets for every anonymized user: per user the
  /// min(k, n2) auxiliary ids with the largest scores, ordered by
  /// decreasing score with ties broken by smaller id — exactly what
  /// SelectTopKCandidates(kDirect) returns on the dense matrix. k must be
  /// >= 1. Row-parallel across num_threads (0 = hardware concurrency) with
  /// thread-count-independent output.
  virtual StatusOr<CandidateSets> TopK(int k, int num_threads) const = 0;

  /// Batch entry point for the serving path: direct Top-K candidate lists
  /// for just the listed anonymized users — result[i] is bitwise-identical
  /// to TopK(k, ...)[users[i]], for any batch composition and thread count.
  /// Fails with InvalidArgument on k < 1 or an out-of-range user id. The
  /// default streams one Row per user through TopKForRow; sources with a
  /// cheaper per-user query (the candidate index) override it.
  virtual StatusOr<CandidateSets> TopKForUsers(const std::vector<int>& users,
                                               int k, int num_threads) const;

  /// The materialized matrix when this source holds one, else nullptr.
  /// Graph-matching candidate selection is inherently global and requires
  /// it.
  virtual const std::vector<std::vector<double>>* DenseMatrix() const {
    return nullptr;
  }
};

/// CandidateSource over a materialized similarity matrix. Borrows the
/// matrix, which must outlive this object; rows must be uniform length.
class DenseCandidateSource final : public CandidateSource {
 public:
  explicit DenseCandidateSource(
      const std::vector<std::vector<double>>& matrix);

  int num_anonymized() const override;
  int num_auxiliary() const override;
  double Score(NodeId u, NodeId v) const override;
  const std::vector<double>& Row(NodeId u,
                                 std::vector<double>* scratch) const override;
  StatusOr<CandidateSets> TopK(int k, int num_threads) const override;
  const std::vector<std::vector<double>>* DenseMatrix() const override;

 private:
  const std::vector<std::vector<double>>* matrix_;
};

}  // namespace dehealth

#endif  // DEHEALTH_CORE_CANDIDATE_SOURCE_H_
