#ifndef DEHEALTH_CORE_ENGINE_KIND_H_
#define DEHEALTH_CORE_ENGINE_KIND_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace dehealth {

/// Which phase-1 attack engine produces the per-pair scores behind
/// CandidateSource (--engine). The enum lives in core (next to
/// DeHealthConfig) so selecting an engine never drags the engine
/// implementations (src/engines/) into layers that only need the name.
///
/// Every engine honors the same contract, spelled out in docs/ENGINES.md:
/// deterministic given the config, bitwise-identical results for any
/// thread count, unchanged under checkpoint resume, and --shards N merges
/// bitwise-identical to N = 1.
enum class EngineKind {
  /// The paper's structural-similarity attack (degree + landmark distance
  /// + stylometric attributes through the PR-6 kernel) — the default, and
  /// the only engine with a persistent candidate index.
  kStructural = 0,
  /// Seed-free blind DA (Lee et al., PAPERS.md): degree/neighborhood-
  /// distribution distance refined by iterative similarity propagation.
  /// Uses no auxiliary-side text at all.
  kBlind = 1,
  /// Community-aware DA (Onaran et al., PAPERS.md): label-propagation
  /// communities on both graphs are matched first; the PR-6 structural
  /// kernel scores candidates, damped across unmatched communities.
  kCommunity = 2,
};

/// Canonical spelling of an engine ("structural", "blind", "community") —
/// what --engine accepts and what docs/ENGINES.md documents.
const char* EngineKindName(EngineKind kind);

/// Parses an --engine value. InvalidArgument (listing the valid
/// spellings) on anything else.
StatusOr<EngineKind> ParseEngineKind(const std::string& name);

/// All engines, in enum order — the sweep set of the conformance suite,
/// `dehealth_cli evaluate`, and bench_engines.
const std::vector<EngineKind>& AllEngineKinds();

}  // namespace dehealth

#endif  // DEHEALTH_CORE_ENGINE_KIND_H_
