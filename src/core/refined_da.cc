#include "core/refined_da.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/parallel.h"
#include "common/rng.h"
#include "ml/knn.h"
#include "obs/standard_metrics.h"
#include "obs/trace.h"
#include "ml/metrics.h"
#include "ml/nearest_centroid.h"
#include "ml/rlsc.h"

namespace dehealth {

const char* LearnerKindName(LearnerKind kind) {
  switch (kind) {
    case LearnerKind::kKnn: return "KNN";
    case LearnerKind::kSmoSvm: return "SMO";
    case LearnerKind::kRlsc: return "RLSC";
    case LearnerKind::kNearestCentroid: return "NearestCentroid";
  }
  return "?";
}

namespace {

std::unique_ptr<Classifier> MakeLearner(const RefinedDaConfig& config) {
  switch (config.learner) {
    case LearnerKind::kKnn:
      return std::make_unique<KnnClassifier>(config.knn_k);
    case LearnerKind::kSmoSvm:
      return std::make_unique<SmoSvmClassifier>(config.svm);
    case LearnerKind::kRlsc:
      return std::make_unique<RlscClassifier>(config.rlsc_lambda);
    case LearnerKind::kNearestCentroid:
      return std::make_unique<NearestCentroidClassifier>();
  }
  return nullptr;
}

/// Collects the union of nonzero feature ids across a set of sparse
/// vectors and maps them to compact dense indices — the per-user training
/// problems only touch a few hundred of the ~1.8K feature dimensions.
class CompactIndex {
 public:
  void Collect(const SparseVector& v) {
    for (const auto& [id, value] : v.entries()) {
      if (index_.insert({id, static_cast<int>(index_.size())}).second) {
        // inserted
      }
    }
  }

  int dims() const { return static_cast<int>(index_.size()); }

  std::vector<double> Densify(const SparseVector& v, int extra_dims) const {
    std::vector<double> dense(index_.size() + static_cast<size_t>(extra_dims),
                              0.0);
    for (const auto& [id, value] : v.entries()) {
      auto it = index_.find(id);
      if (it != index_.end()) dense[static_cast<size_t>(it->second)] = value;
    }
    return dense;
  }

 private:
  std::unordered_map<int, int> index_;
};

constexpr int kNumStructuralFeatures = 3;

void AppendStructural(const UdaGraph& side, NodeId user,
                      std::vector<double>& dense) {
  const size_t base = dense.size() - kNumStructuralFeatures;
  dense[base + 0] = static_cast<double>(side.graph.Degree(user));
  dense[base + 1] = side.graph.WeightedDegree(user);
  dense[base + 2] = std::log(
      1.0 + static_cast<double>(side.profiles[static_cast<size_t>(user)]
                                    .num_posts()));
}

/// The mean-verification acceptance test (see the RefinedDaConfig docs):
/// the predicted user's similarity, measured above the per-row floor, must
/// exceed the mean of the other candidates' by a factor (1 + r).
bool PassesMeanVerification(const std::vector<double>& row,
                            const std::vector<int>& candidate_set,
                            int predicted, double r) {
  const double floor = *std::min_element(row.begin(), row.end());
  double mean = 0.0;
  int competitors = 0;
  for (int w : candidate_set) {
    if (w == predicted) continue;
    mean += row[static_cast<size_t>(w)] - floor;
    ++competitors;
  }
  if (competitors == 0) return true;
  mean /= static_cast<double>(competitors);
  return row[static_cast<size_t>(predicted)] - floor >= (1.0 + r) * mean;
}

/// Per-user outcome slot: each parallel task writes only its own entry.
struct UserOutcome {
  int prediction = kNotPresent;
  bool rejected = false;
};

/// The per-user refined-DA problem: assemble labels (+ decoys), train the
/// per-user classifier, classify u's posts, verify. Pure function of its
/// inputs — the decoy stream comes from a per-user Rng the caller derives
/// as Rng(MixSeed(seed, u)), so the outcome does not depend on which
/// thread runs it or in what order.
Status RefineOneUser(const UdaGraph& anonymized, const UdaGraph& auxiliary,
                     const CandidateSets& candidates,
                     const CandidateSource& scores,
                     const RefinedDaConfig& config, NodeId u,
                     UserOutcome& out) {
  const int extra_dims =
      config.include_structural_features ? kNumStructuralFeatures : 0;
  const auto& posts_u = anonymized.post_features[static_cast<size_t>(u)];
  if (posts_u.empty() || candidates[static_cast<size_t>(u)].empty())
    return Status();

  // Assemble the label set: candidates plus (optionally) decoys.
  std::vector<int> labels = candidates[static_cast<size_t>(u)];
  std::unordered_set<int> decoys;
  if (config.verification == VerificationScheme::kFalseAddition) {
    Rng rng(MixSeed(config.seed, static_cast<uint64_t>(u)));
    const int n2 = auxiliary.num_users();
    std::unordered_set<int> in_set(labels.begin(), labels.end());
    int want = config.false_addition_count > 0
                   ? config.false_addition_count
                   : static_cast<int>(labels.size());
    want = std::min(want, n2 - static_cast<int>(in_set.size()));
    int guard = 0;
    while (static_cast<int>(decoys.size()) < want && guard++ < 50 * want) {
      const int v = static_cast<int>(rng.NextBounded(
          static_cast<uint64_t>(n2)));
      if (in_set.count(v)) continue;
      if (decoys.insert(v).second) labels.push_back(v);
    }
  }

  // Assemble sparse training samples: one per auxiliary post, or one
  // aggregated instance per candidate in user-level mode.
  std::vector<std::pair<SparseVector, int>> train_sparse;
  std::vector<SparseVector> query_sparse;
  if (config.user_level_instances) {
    for (int v : labels) {
      const UserProfile& profile =
          auxiliary.profiles[static_cast<size_t>(v)];
      if (profile.num_posts() == 0) continue;
      train_sparse.emplace_back(profile.MeanFeatures(), v);
    }
    query_sparse.push_back(
        anonymized.profiles[static_cast<size_t>(u)].MeanFeatures());
  } else {
    for (int v : labels)
      for (const SparseVector& f :
           auxiliary.post_features[static_cast<size_t>(v)])
        train_sparse.emplace_back(f, v);
    query_sparse.assign(posts_u.begin(), posts_u.end());
  }
  if (train_sparse.empty()) return Status();

  CompactIndex index;
  for (const auto& [f, v] : train_sparse) index.Collect(f);
  for (const SparseVector& f : query_sparse) index.Collect(f);

  Dataset train(static_cast<size_t>(index.dims() + extra_dims));
  for (const auto& [f, v] : train_sparse) {
    std::vector<double> dense = index.Densify(f, extra_dims);
    if (extra_dims > 0) AppendStructural(auxiliary, v, dense);
    DEHEALTH_RETURN_IF_ERROR(train.Add({std::move(dense), v}));
  }

  StandardScaler scaler;
  DEHEALTH_RETURN_IF_ERROR(scaler.Fit(train));
  const Dataset scaled = scaler.TransformDataset(train);

  std::unique_ptr<Classifier> learner = MakeLearner(config);
  if (learner == nullptr)
    return Status::InvalidArgument("RunRefinedDa: unknown learner");
  DEHEALTH_RETURN_IF_ERROR(learner->Fit(scaled));

  // Aggregate decision scores over the query vectors (u's posts, or
  // the single user-level aggregate).
  const std::vector<int>& classes = learner->classes();
  std::vector<double> total_scores(classes.size(), 0.0);
  for (const SparseVector& f : query_sparse) {
    std::vector<double> dense = index.Densify(f, extra_dims);
    if (extra_dims > 0) AppendStructural(anonymized, u, dense);
    const std::vector<double> decision =
        learner->DecisionScores(scaler.Transform(dense));
    if (config.aggregation ==
        RefinedDaConfig::PostAggregation::kMajorityVote) {
      size_t argmax = 0;
      for (size_t c = 1; c < decision.size(); ++c)
        if (decision[c] > decision[argmax]) argmax = c;
      total_scores[argmax] += 1.0;
    } else {
      for (size_t c = 0; c < decision.size(); ++c)
        total_scores[c] += decision[c];
    }
  }
  size_t best = 0;
  for (size_t c = 1; c < total_scores.size(); ++c)
    if (total_scores[c] > total_scores[best]) best = c;
  const int predicted = classes[best];

  // Verification.
  if (config.verification == VerificationScheme::kFalseAddition &&
      decoys.count(predicted)) {
    out.rejected = true;  // u → ⊥
    return Status();
  }
  if (config.verification == VerificationScheme::kMeanVerification) {
    std::vector<double> scratch;
    if (!PassesMeanVerification(scores.Row(u, &scratch),
                                candidates[static_cast<size_t>(u)],
                                predicted, config.mean_verification_r)) {
      out.rejected = true;  // u → ⊥
      return Status();
    }
  }
  out.prediction = predicted;
  return Status();
}

}  // namespace

StatusOr<RefinedDaResult> RunRefinedDa(const UdaGraph& anonymized,
                                       const UdaGraph& auxiliary,
                                       const CandidateSets& candidates,
                                       const std::vector<bool>* rejected,
                                       const CandidateSource& scores,
                                       const RefinedDaConfig& config) {
  const int n1 = anonymized.num_users();
  if (static_cast<int>(candidates.size()) != n1)
    return Status::InvalidArgument(
        "RunRefinedDa: candidate set count != anonymized users");
  if (scores.num_anonymized() != n1)
    return Status::InvalidArgument(
        "RunRefinedDa: similarity row count != anonymized users");
  obs::Span span("core", "refined_da");
  span.SetArg("users", n1);
  obs::GetCoreMetrics().refined_users->Increment(static_cast<uint64_t>(n1));

  // One independent training problem per anonymized user; each task writes
  // only its own outcome/status slot, so predictions are identical for any
  // thread count.
  std::vector<UserOutcome> outcomes(static_cast<size_t>(n1));
  std::vector<Status> statuses(static_cast<size_t>(n1));
  ParallelFor(
      0, n1,
      [&](int64_t ui) {
        const NodeId u = static_cast<NodeId>(ui);
        if (rejected != nullptr && (*rejected)[static_cast<size_t>(u)]) {
          outcomes[static_cast<size_t>(u)].rejected = true;
          return;  // filtering already concluded u → ⊥
        }
        statuses[static_cast<size_t>(u)] =
            RefineOneUser(anonymized, auxiliary, candidates, scores,
                          config, u, outcomes[static_cast<size_t>(u)]);
      },
      config.num_threads);
  // Surface the first (lowest-u) error, matching the old serial behavior.
  for (const Status& st : statuses)
    if (!st.ok()) return st;

  RefinedDaResult result;
  result.predictions.assign(static_cast<size_t>(n1), kNotPresent);
  result.rejected.assign(static_cast<size_t>(n1), false);
  for (size_t u = 0; u < outcomes.size(); ++u) {
    result.predictions[u] = outcomes[u].prediction;
    result.rejected[u] = outcomes[u].rejected;
    if (outcomes[u].rejected) ++result.num_rejected;
  }
  return result;
}

StatusOr<RefinedDaResult> RunRefinedDa(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const CandidateSets& candidates, const std::vector<bool>* rejected,
    const std::vector<std::vector<double>>& similarity,
    const RefinedDaConfig& config) {
  const DenseCandidateSource source(similarity);
  return RunRefinedDa(anonymized, auxiliary, candidates, rejected, source,
                      config);
}

StatusOr<RefinedDaResult> RunRefinedDaForUsers(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const std::vector<int>& users, const CandidateSets& candidates,
    const std::vector<bool>* rejected, const CandidateSource& scores,
    const RefinedDaConfig& config) {
  const int n1 = anonymized.num_users();
  if (static_cast<int>(candidates.size()) != n1)
    return Status::InvalidArgument(
        "RunRefinedDaForUsers: candidate set count != anonymized users");
  if (scores.num_anonymized() != n1)
    return Status::InvalidArgument(
        "RunRefinedDaForUsers: similarity row count != anonymized users");
  for (int u : users)
    if (u < 0 || u >= n1)
      return Status::InvalidArgument(
          "RunRefinedDaForUsers: user id " + std::to_string(u) +
          " out of range [0, " + std::to_string(n1) + ")");
  obs::Span span("core", "refined_da_for_users");
  span.SetArg("users", static_cast<int64_t>(users.size()));
  obs::GetCoreMetrics().refined_users->Increment(users.size());

  // Same per-user problems as the full run, just over a subset; each task
  // writes only its own batch slot.
  std::vector<UserOutcome> outcomes(users.size());
  std::vector<Status> statuses(users.size());
  ParallelFor(
      0, static_cast<int64_t>(users.size()),
      [&](int64_t i) {
        const NodeId u = static_cast<NodeId>(users[static_cast<size_t>(i)]);
        if (rejected != nullptr && (*rejected)[static_cast<size_t>(u)]) {
          outcomes[static_cast<size_t>(i)].rejected = true;
          return;  // filtering already concluded u → ⊥
        }
        statuses[static_cast<size_t>(i)] =
            RefineOneUser(anonymized, auxiliary, candidates, scores, config,
                          u, outcomes[static_cast<size_t>(i)]);
      },
      config.num_threads);
  for (const Status& st : statuses)
    if (!st.ok()) return st;

  RefinedDaResult result;
  result.predictions.assign(users.size(), kNotPresent);
  result.rejected.assign(users.size(), false);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    result.predictions[i] = outcomes[i].prediction;
    result.rejected[i] = outcomes[i].rejected;
    if (outcomes[i].rejected) ++result.num_rejected;
  }
  return result;
}

StatusOr<RefinedDaResult> RunRefinedDaShared(const UdaGraph& anonymized,
                                             const UdaGraph& auxiliary,
                                             const CandidateSets& candidates,
                                             const CandidateSource& scores,
                                             const RefinedDaConfig& config) {
  const int n1 = anonymized.num_users();
  if (static_cast<int>(candidates.size()) != n1)
    return Status::InvalidArgument(
        "RunRefinedDaShared: candidate set count != anonymized users");
  if (scores.num_anonymized() != n1)
    return Status::InvalidArgument(
        "RunRefinedDaShared: similarity row count != anonymized users");
  for (const auto& set : candidates)
    if (set != candidates.front())
      return Status::InvalidArgument(
          "RunRefinedDaShared: candidate sets are not identical");

  RefinedDaResult result;
  result.predictions.assign(static_cast<size_t>(n1), kNotPresent);
  result.rejected.assign(static_cast<size_t>(n1), false);
  if (n1 == 0) return result;
  const std::vector<int>& labels = candidates.front();
  if (labels.empty()) return result;

  const int extra_dims =
      config.include_structural_features ? kNumStructuralFeatures : 0;

  // Shared training samples (per post, or one aggregate per candidate in
  // user-level mode) and per-user query vectors.
  std::vector<std::pair<SparseVector, int>> train_sparse;
  std::vector<std::vector<SparseVector>> queries(static_cast<size_t>(n1));
  if (config.user_level_instances) {
    for (int v : labels) {
      const UserProfile& profile =
          auxiliary.profiles[static_cast<size_t>(v)];
      if (profile.num_posts() == 0) continue;
      train_sparse.emplace_back(profile.MeanFeatures(), v);
    }
    for (NodeId u = 0; u < n1; ++u)
      if (anonymized.profiles[static_cast<size_t>(u)].num_posts() > 0)
        queries[static_cast<size_t>(u)].push_back(
            anonymized.profiles[static_cast<size_t>(u)].MeanFeatures());
  } else {
    for (int v : labels)
      for (const SparseVector& f :
           auxiliary.post_features[static_cast<size_t>(v)])
        train_sparse.emplace_back(f, v);
    for (NodeId u = 0; u < n1; ++u)
      queries[static_cast<size_t>(u)].assign(
          anonymized.post_features[static_cast<size_t>(u)].begin(),
          anonymized.post_features[static_cast<size_t>(u)].end());
  }
  if (train_sparse.empty()) return result;

  CompactIndex index;
  for (const auto& [f, v] : train_sparse) index.Collect(f);
  for (const auto& user_queries : queries)
    for (const SparseVector& f : user_queries) index.Collect(f);

  Dataset train(static_cast<size_t>(index.dims() + extra_dims));
  for (const auto& [f, v] : train_sparse) {
    std::vector<double> dense = index.Densify(f, extra_dims);
    if (extra_dims > 0) AppendStructural(auxiliary, v, dense);
    DEHEALTH_RETURN_IF_ERROR(train.Add({std::move(dense), v}));
  }

  StandardScaler scaler;
  DEHEALTH_RETURN_IF_ERROR(scaler.Fit(train));
  const Dataset scaled = scaler.TransformDataset(train);
  std::unique_ptr<Classifier> learner = MakeLearner(config);
  if (learner == nullptr)
    return Status::InvalidArgument("RunRefinedDaShared: unknown learner");
  DEHEALTH_RETURN_IF_ERROR(learner->Fit(scaled));

  // Classification of each anonymized user against the one shared learner
  // is read-only on the model, so the per-user loop parallelizes with
  // per-slot writes.
  const std::vector<int>& classes = learner->classes();
  std::vector<UserOutcome> outcomes(static_cast<size_t>(n1));
  ParallelFor(
      0, n1,
      [&](int64_t ui) {
        const NodeId u = static_cast<NodeId>(ui);
        const auto& user_queries = queries[static_cast<size_t>(u)];
        if (user_queries.empty()) return;
        std::vector<double> total_scores(classes.size(), 0.0);
        for (const SparseVector& f : user_queries) {
          std::vector<double> dense = index.Densify(f, extra_dims);
          if (extra_dims > 0) AppendStructural(anonymized, u, dense);
          const std::vector<double> decision =
              learner->DecisionScores(scaler.Transform(dense));
          if (config.aggregation ==
              RefinedDaConfig::PostAggregation::kMajorityVote) {
            size_t argmax = 0;
            for (size_t c = 1; c < decision.size(); ++c)
              if (decision[c] > decision[argmax]) argmax = c;
            total_scores[argmax] += 1.0;
          } else {
            for (size_t c = 0; c < decision.size(); ++c)
              total_scores[c] += decision[c];
          }
        }
        size_t best = 0;
        for (size_t c = 1; c < total_scores.size(); ++c)
          if (total_scores[c] > total_scores[best]) best = c;
        const int predicted = classes[best];

        if (config.verification == VerificationScheme::kMeanVerification) {
          std::vector<double> scratch;
          if (!PassesMeanVerification(scores.Row(u, &scratch), labels,
                                      predicted,
                                      config.mean_verification_r)) {
            outcomes[static_cast<size_t>(u)].rejected = true;  // u → ⊥
            return;
          }
        }
        outcomes[static_cast<size_t>(u)].prediction = predicted;
      },
      config.num_threads);
  for (size_t u = 0; u < outcomes.size(); ++u) {
    result.predictions[u] = outcomes[u].prediction;
    result.rejected[u] = outcomes[u].rejected;
    if (outcomes[u].rejected) ++result.num_rejected;
  }
  return result;
}

StatusOr<RefinedDaResult> RunRefinedDaShared(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const CandidateSets& candidates,
    const std::vector<std::vector<double>>& similarity,
    const RefinedDaConfig& config) {
  const DenseCandidateSource source(similarity);
  return RunRefinedDaShared(anonymized, auxiliary, candidates, source,
                            config);
}

}  // namespace dehealth
