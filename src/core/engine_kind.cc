#include "core/engine_kind.h"

namespace dehealth {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kStructural:
      return "structural";
    case EngineKind::kBlind:
      return "blind";
    case EngineKind::kCommunity:
      return "community";
  }
  return "structural";
}

StatusOr<EngineKind> ParseEngineKind(const std::string& name) {
  if (name == "structural") return EngineKind::kStructural;
  if (name == "blind") return EngineKind::kBlind;
  if (name == "community") return EngineKind::kCommunity;
  return Status::InvalidArgument(
      "unknown engine '" + name +
      "' (valid: structural, blind, community)");
}

const std::vector<EngineKind>& AllEngineKinds() {
  static const std::vector<EngineKind>* kinds = new std::vector<EngineKind>{
      EngineKind::kStructural, EngineKind::kBlind, EngineKind::kCommunity};
  return *kinds;
}

}  // namespace dehealth
