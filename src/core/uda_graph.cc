#include "core/uda_graph.h"

#include "obs/standard_metrics.h"
#include "obs/trace.h"
#include "stylo/extractor.h"

namespace dehealth {

UdaGraph BuildUdaGraph(const ForumDataset& dataset) {
  obs::Span span("core", "build_uda_graph");
  span.SetArg("posts", static_cast<int64_t>(dataset.posts.size()));
  obs::CoreMetrics& metrics = obs::GetCoreMetrics();
  metrics.uda_builds->Increment();
  metrics.uda_posts->Increment(dataset.posts.size());
  UdaGraph uda;
  uda.graph = BuildCorrelationGraph(dataset);
  uda.profiles.resize(static_cast<size_t>(dataset.num_users));
  uda.post_features.resize(static_cast<size_t>(dataset.num_users));

  const FeatureExtractor extractor;
  for (const Post& post : dataset.posts) {
    SparseVector features = extractor.ExtractPost(post.text);
    const auto uid = static_cast<size_t>(post.user_id);
    uda.profiles[uid].AddPost(features);
    uda.post_features[uid].push_back(std::move(features));
  }
  return uda;
}

Status ApplyPostsToUdaGraph(UdaGraph* uda, ForumDataset* dataset,
                            const std::vector<Post>& new_posts,
                            int num_users_after, int num_threads_after) {
  obs::Span span("core", "apply_posts_to_uda_graph");
  span.SetArg("posts", static_cast<int64_t>(new_posts.size()));
  if (num_users_after < dataset->num_users ||
      num_threads_after < dataset->num_threads)
    return Status::InvalidArgument(
        "ApplyPostsToUdaGraph: universe must not shrink (" +
        std::to_string(num_users_after) + " users after vs " +
        std::to_string(dataset->num_users) + " before)");
  for (const Post& post : new_posts) {
    if (post.user_id < 0 || post.user_id >= num_users_after)
      return Status::OutOfRange(
          "ApplyPostsToUdaGraph: user_id " + std::to_string(post.user_id) +
          " outside [0, " + std::to_string(num_users_after) + ")");
    if (post.thread_id < 0 || post.thread_id >= num_threads_after)
      return Status::OutOfRange(
          "ApplyPostsToUdaGraph: thread_id " +
          std::to_string(post.thread_id) + " outside [0, " +
          std::to_string(num_threads_after) + ")");
  }
  obs::CoreMetrics& metrics = obs::GetCoreMetrics();
  metrics.uda_posts->Increment(new_posts.size());
  dataset->num_users = num_users_after;
  dataset->num_threads = num_threads_after;
  uda->profiles.resize(static_cast<size_t>(num_users_after));
  uda->post_features.resize(static_cast<size_t>(num_users_after));
  const FeatureExtractor extractor;
  for (const Post& post : new_posts) {
    dataset->posts.push_back(post);
    SparseVector features = extractor.ExtractPost(post.text);
    const auto uid = static_cast<size_t>(post.user_id);
    uda->profiles[uid].AddPost(features);
    uda->post_features[uid].push_back(std::move(features));
  }
  // The graph is rebuilt from the accumulated dataset rather than patched:
  // BuildCorrelationGraph keys on thread->participant sets (order-free), so
  // the rebuild is bitwise what a from-scratch build would produce, and it
  // costs no text processing — the expensive part above touched only the
  // new posts.
  uda->graph = BuildCorrelationGraph(*dataset);
  return Status::OK();
}

}  // namespace dehealth
