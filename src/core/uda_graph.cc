#include "core/uda_graph.h"

#include "stylo/extractor.h"

namespace dehealth {

UdaGraph BuildUdaGraph(const ForumDataset& dataset) {
  UdaGraph uda;
  uda.graph = BuildCorrelationGraph(dataset);
  uda.profiles.resize(static_cast<size_t>(dataset.num_users));
  uda.post_features.resize(static_cast<size_t>(dataset.num_users));

  const FeatureExtractor extractor;
  for (const Post& post : dataset.posts) {
    SparseVector features = extractor.ExtractPost(post.text);
    const auto uid = static_cast<size_t>(post.user_id);
    uda.profiles[uid].AddPost(features);
    uda.post_features[uid].push_back(std::move(features));
  }
  return uda;
}

}  // namespace dehealth
