#include "core/uda_graph.h"

#include "obs/standard_metrics.h"
#include "obs/trace.h"
#include "stylo/extractor.h"

namespace dehealth {

UdaGraph BuildUdaGraph(const ForumDataset& dataset) {
  obs::Span span("core", "build_uda_graph");
  span.SetArg("posts", static_cast<int64_t>(dataset.posts.size()));
  obs::CoreMetrics& metrics = obs::GetCoreMetrics();
  metrics.uda_builds->Increment();
  metrics.uda_posts->Increment(dataset.posts.size());
  UdaGraph uda;
  uda.graph = BuildCorrelationGraph(dataset);
  uda.profiles.resize(static_cast<size_t>(dataset.num_users));
  uda.post_features.resize(static_cast<size_t>(dataset.num_users));

  const FeatureExtractor extractor;
  for (const Post& post : dataset.posts) {
    SparseVector features = extractor.ExtractPost(post.text);
    const auto uid = static_cast<size_t>(post.user_id);
    uda.profiles[uid].AddPost(features);
    uda.post_features[uid].push_back(std::move(features));
  }
  return uda;
}

}  // namespace dehealth
