#ifndef DEHEALTH_CORE_TOP_K_H_
#define DEHEALTH_CORE_TOP_K_H_

#include <vector>

#include "common/status.h"

namespace dehealth {

/// How the Top-K candidate sets are selected from the similarity matrix.
enum class CandidateSelection {
  /// Per anonymized user, the K auxiliary users with the largest
  /// similarity scores.
  kDirect,
  /// The paper's graph-matching variant: repeat K rounds of maximum-weight
  /// bipartite matching, adding each user's matched partner to its
  /// candidate set and deleting the matched edge. Globally consistent but
  /// O(K·n^3) — use at small scale.
  kGraphMatching,
};

/// A per-anonymized-user candidate list, ordered by decreasing similarity.
using CandidateSets = std::vector<std::vector<int>>;

/// One (score, auxiliary id) candidate. The score carries the full double
/// so merged rankings (sharded Top-K, DHQP scored answers) reproduce the
/// dense ordering bitwise.
struct ScoredUser {
  double score = 0.0;
  int user = 0;
};

/// The direct-selection total order: larger score first, ties broken by
/// the smaller auxiliary id — the ONE comparator every Top-K path (dense
/// TopKForRow, the candidate index, the shard merge) ranks with.
inline bool BetterScoredUser(const ScoredUser& a, const ScoredUser& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.user < b.user;
}

/// Merges per-shard Top-K lists into the global Top-K. Each input list
/// must be sorted by BetterScoredUser and hold that shard's best
/// min(k, shard size) candidates with GLOBAL auxiliary ids; the result is
/// the best min(k, Σ sizes) across all lists, sorted by BetterScoredUser —
/// bitwise-identical to ranking the concatenated universe directly,
/// because any global Top-K member is necessarily in its own shard's local
/// Top-K (see DESIGN.md "Sharding").
std::vector<ScoredUser> MergeScoredTopK(
    const std::vector<std::vector<ScoredUser>>& per_shard, int k);

/// Computes Top-K candidate sets. `similarity[u][v]` scores anonymized u
/// against auxiliary v. K must be >= 1 (it is capped at the number of
/// auxiliary users). Direct selection is row-parallel across `num_threads`
/// threads (0 = hardware concurrency) with output independent of the
/// thread count; graph matching is inherently global and runs serially.
/// Graph matching only admits positive-similarity pairs: zero-similarity
/// assignments (which the Hungarian solver may produce once a row is
/// exhausted) are not candidates.
StatusOr<CandidateSets> SelectTopKCandidates(
    const std::vector<std::vector<double>>& similarity, int k,
    CandidateSelection method = CandidateSelection::kDirect,
    int num_threads = 0);

/// Direct Top-K selection for ONE similarity row: the min(k, |row|)
/// auxiliary ids ordered by decreasing score, ties broken by smaller id.
/// This is THE definition every direct-selection path (dense matrix,
/// CandidateSource::TopKForUsers, serving batches) shares, so tie-breaking
/// can never diverge between them. k must be >= 1.
std::vector<int> TopKForRow(const std::vector<double>& row, int k);

/// Fraction of anonymized users whose true mapping appears in their
/// candidate set (the paper's "successful Top-K DA" rate). `truth[u]` is
/// the auxiliary id or a negative value for non-overlapping users, which
/// are skipped. Returns 0.0 if the two sizes disagree (defined behavior in
/// release builds, not just an assert).
double TopKSuccessRate(const CandidateSets& candidates,
                       const std::vector<int>& truth);

/// Success rates for a sweep of K values over one (large-K) candidate
/// computation: result[i] = success rate when candidate lists are truncated
/// to ks[i]. `ks` must be sorted ascending; candidate lists must be ordered
/// by decreasing similarity (as SelectTopKCandidates returns). Returns all
/// zeros if `candidates` and `truth` sizes disagree.
std::vector<double> TopKSuccessCurve(const CandidateSets& candidates,
                                     const std::vector<int>& truth,
                                     const std::vector<int>& ks);

}  // namespace dehealth

#endif  // DEHEALTH_CORE_TOP_K_H_
