#include "core/evaluation.h"

#include <cassert>

namespace dehealth {

OpenWorldCounts EvaluateRefinedDa(const RefinedDaResult& result,
                                  const std::vector<int>& truth) {
  assert(result.predictions.size() == truth.size());
  // Normalize "no true mapping" markers to kNotPresent.
  std::vector<int> normalized_truth(truth.size());
  for (size_t i = 0; i < truth.size(); ++i)
    normalized_truth[i] = truth[i] < 0 ? kNotPresent : truth[i];
  return TallyOpenWorld(result.predictions, normalized_truth);
}

}  // namespace dehealth
