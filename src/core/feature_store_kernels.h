#ifndef DEHEALTH_CORE_FEATURE_STORE_KERNELS_H_
#define DEHEALTH_CORE_FEATURE_STORE_KERNELS_H_

// Private contract between the FeatureStore driver (feature_store.cc) and
// the per-ISA block kernels (feature_store.cc scalar,
// feature_store_sse2.cc, feature_store_avx2.cc — the latter two built as
// separate translation units so only they carry -m flags).
//
// Every kernel scores ONE query against ONE block of
// FeatureStore::kBlockWidth candidates and must be bitwise-identical to
// CombinedStructuralScore: vectorization is across candidate lanes only,
// each lane accumulates its dot products sequentially in ascending element
// order, multiplies and adds stay separate (no FMA), and zero denominators
// are blended to 1.0 before dividing (the quotient is discarded via a
// zero numerator, and the UBSan job stays clean). See DESIGN.md
// "Score kernel" for why this reproduces the scalar bits exactly.

namespace dehealth::internal {

inline constexpr int kScoreBlockWidth = 8;

/// Flattened inputs of one block-scoring call. Candidate-side arrays are
/// lane-interleaved: element i of lane l lives at data[i * kScoreBlockWidth
/// + l]. `attr_sim` is precomputed by the driver (the attribute merge is
/// scalar in every tier); padded lanes carry all-zero features.
struct BlockKernelArgs {
  // Query side.
  double q_degree = 0.0;
  double q_weighted_degree = 0.0;
  const double* q_ncs = nullptr;
  int q_ncs_len = 0;
  double q_ncs_norm = 0.0;
  const double* q_hop = nullptr;
  int q_hop_len = 0;
  double q_hop_norm = 0.0;
  const double* q_whop = nullptr;
  int q_whop_len = 0;
  double q_whop_norm = 0.0;
  // Candidate block (kScoreBlockWidth lanes).
  const double* degree = nullptr;           // [kScoreBlockWidth]
  const double* weighted_degree = nullptr;  // [kScoreBlockWidth]
  const double* ncs = nullptr;              // [ncs_stride * kScoreBlockWidth]
  int ncs_stride = 0;
  const double* hop = nullptr;              // [hop_stride * kScoreBlockWidth]
  int hop_stride = 0;
  const double* whop = nullptr;             // [whop_stride * kScoreBlockWidth]
  int whop_stride = 0;
  const double* ncs_norm = nullptr;         // [kScoreBlockWidth]
  const double* hop_norm = nullptr;         // [kScoreBlockWidth]
  const double* whop_norm = nullptr;        // [kScoreBlockWidth]
  const double* attr_sim = nullptr;         // [kScoreBlockWidth]
  // Score weights.
  double c1 = 0.0;
  double c2 = 0.0;
  double c3 = 0.0;
};

using BlockKernelFn = void (*)(const BlockKernelArgs& args,
                               double out[kScoreBlockWidth]);

/// Portable golden-path kernel (always available).
void ScoreBlockScalar(const BlockKernelArgs& args,
                      double out[kScoreBlockWidth]);

/// SSE2 / AVX2 kernels, or nullptr when the translation unit was built
/// without the corresponding instruction set.
BlockKernelFn Sse2BlockKernel();
BlockKernelFn Avx2BlockKernel();

}  // namespace dehealth::internal

#endif  // DEHEALTH_CORE_FEATURE_STORE_KERNELS_H_
