#include "core/feature_store.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "core/feature_store_kernels.h"
#include "obs/standard_metrics.h"

namespace dehealth {

namespace {

using internal::BlockKernelArgs;
using internal::BlockKernelFn;
using internal::kScoreBlockWidth;

static_assert(FeatureStore::kBlockWidth == kScoreBlockWidth,
              "store block width and kernel block width must agree");

/// Attribute weights in [0, 2^26] whose per-user totals stay <= 2^52 keep
/// every partial sum of the merge an exact integer < 2^53: summation is
/// then order-free, which is what licenses the union-via-totals shortcut
/// and the dense-lookup scan. Non-IDF weights (raw post counts) always
/// qualify; IDF-scaled weights (irrational logs) never do.
constexpr double kMaxExactWeight = 67108864.0;         // 2^26
constexpr double kMaxExactTotal = 4503599627370496.0;  // 2^52

bool WeightIsExactInteger(double w) {
  return w >= 0.0 && w <= kMaxExactWeight && std::floor(w) == w;
}

/// sqrt of the ascending-order sum of squares — the exact bits
/// CosineSimilarity's na/nb accumulation produces for this vector, taken
/// once instead of once per pair (sqrt is IEEE correctly rounded, so the
/// precomputed value divides identically).
double VectorNorm(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return sum == 0.0 ? 0.0 : std::sqrt(sum);
}

/// One lane's cosine term against lane-interleaved block data. The dot
/// product runs over min(query length, stride): entries past either length
/// are zero-padded, and adding x*0 products to a non-negative accumulator
/// never changes its bits, so truncating the loop is exact.
double CosineLane(const double* q, int q_len, double q_norm,
                  const double* data, int stride, double v_norm, int lane) {
  const int n = std::min(q_len, stride);
  double dot = 0.0;
  for (int i = 0; i < n; ++i)
    dot += q[i] * data[i * kScoreBlockWidth + lane];
  if (q_norm == 0.0 || v_norm == 0.0) return 0.0;
  return dot / (q_norm * v_norm);
}

}  // namespace

namespace internal {

void ScoreBlockScalar(const BlockKernelArgs& a, double out[kScoreBlockWidth]) {
  for (int l = 0; l < kScoreBlockWidth; ++l) {
    const double degree_sim =
        (MinMaxRatio(a.q_degree, a.degree[l]) +
         MinMaxRatio(a.q_weighted_degree, a.weighted_degree[l])) +
        CosineLane(a.q_ncs, a.q_ncs_len, a.q_ncs_norm, a.ncs, a.ncs_stride,
                   a.ncs_norm[l], l);
    const double distance_sim =
        CosineLane(a.q_hop, a.q_hop_len, a.q_hop_norm, a.hop, a.hop_stride,
                   a.hop_norm[l], l) +
        CosineLane(a.q_whop, a.q_whop_len, a.q_whop_norm, a.whop,
                   a.whop_stride, a.whop_norm[l], l);
    out[l] = (a.c1 * degree_sim + a.c2 * distance_sim) + a.c3 * a.attr_sim[l];
  }
}

}  // namespace internal

FeatureStore FeatureStore::Build(const std::vector<UserFeatureView>& users) {
  FeatureStore store;
  const int n = static_cast<int>(users.size());
  store.num_users_ = n;
  store.num_blocks_ = (n + kBlockWidth - 1) / kBlockWidth;
  const size_t padded = static_cast<size_t>(store.num_blocks_) * kBlockWidth;

  for (const UserFeatureView& u : users) {
    store.hop_stride_ =
        std::max(store.hop_stride_, static_cast<int>(u.hop->size()));
    store.whop_stride_ =
        std::max(store.whop_stride_, static_cast<int>(u.weighted_hop->size()));
  }

  store.degree_.assign(padded, 0.0);
  store.weighted_degree_.assign(padded, 0.0);
  store.hop_.assign(padded * static_cast<size_t>(store.hop_stride_), 0.0);
  store.whop_.assign(padded * static_cast<size_t>(store.whop_stride_), 0.0);
  store.hop_norm_.assign(padded, 0.0);
  store.whop_norm_.assign(padded, 0.0);
  store.ncs_norm_.assign(padded, 0.0);
  store.ncs_offset_.assign(static_cast<size_t>(store.num_blocks_), 0);
  store.ncs_stride_.assign(static_cast<size_t>(store.num_blocks_), 0);
  store.attr_offset_.assign(static_cast<size_t>(n) + 1, 0);
  store.attr_total_.assign(static_cast<size_t>(n), 0.0);

  size_t total_attrs = 0;
  for (const UserFeatureView& u : users) total_attrs += u.attributes->size();
  store.attr_id_.reserve(total_attrs);
  store.attr_weight_.reserve(total_attrs);

  // Per-block NCS strides first so the packed extent is known up front.
  size_t ncs_total = 0;
  for (int b = 0; b < store.num_blocks_; ++b) {
    int stride = 0;
    for (int l = 0; l < kBlockWidth; ++l) {
      const int v = b * kBlockWidth + l;
      if (v < n)
        stride = std::max(stride,
                          static_cast<int>(users[static_cast<size_t>(v)]
                                               .ncs->size()));
    }
    store.ncs_offset_[static_cast<size_t>(b)] = ncs_total;
    store.ncs_stride_[static_cast<size_t>(b)] = stride;
    ncs_total += static_cast<size_t>(stride) * kBlockWidth;
  }
  store.ncs_.assign(ncs_total, 0.0);

  for (int v = 0; v < n; ++v) {
    const UserFeatureView& u = users[static_cast<size_t>(v)];
    const int b = v / kBlockWidth;
    const int lane = v % kBlockWidth;
    store.degree_[static_cast<size_t>(v)] = u.degree;
    store.weighted_degree_[static_cast<size_t>(v)] = u.weighted_degree;

    double* hop_base = store.hop_.data() +
                       static_cast<size_t>(b) * kBlockWidth *
                           static_cast<size_t>(store.hop_stride_);
    for (size_t i = 0; i < u.hop->size(); ++i)
      hop_base[i * kScoreBlockWidth + static_cast<size_t>(lane)] = (*u.hop)[i];
    double* whop_base = store.whop_.data() +
                        static_cast<size_t>(b) * kBlockWidth *
                            static_cast<size_t>(store.whop_stride_);
    for (size_t i = 0; i < u.weighted_hop->size(); ++i)
      whop_base[i * kScoreBlockWidth + static_cast<size_t>(lane)] =
          (*u.weighted_hop)[i];
    double* ncs_base =
        store.ncs_.data() + store.ncs_offset_[static_cast<size_t>(b)];
    for (size_t i = 0; i < u.ncs->size(); ++i)
      ncs_base[i * kScoreBlockWidth + static_cast<size_t>(lane)] = (*u.ncs)[i];

    store.hop_norm_[static_cast<size_t>(v)] = VectorNorm(*u.hop);
    store.whop_norm_[static_cast<size_t>(v)] = VectorNorm(*u.weighted_hop);
    store.ncs_norm_[static_cast<size_t>(v)] = VectorNorm(*u.ncs);

    double total = 0.0;
    for (const auto& [id, weight] : *u.attributes) {
      store.attr_id_.push_back(id);
      store.attr_weight_.push_back(weight);
      store.max_attr_id_ = std::max(store.max_attr_id_, id);
      total += weight;
      // Negative ids can't index the dense query table; they also force
      // the merge path.
      if (id < 0 || !WeightIsExactInteger(weight)) store.attrs_exact_ = false;
    }
    if (total > kMaxExactTotal) store.attrs_exact_ = false;
    store.attr_total_[static_cast<size_t>(v)] = total;
    store.attr_offset_[static_cast<size_t>(v) + 1] = store.attr_id_.size();
  }
  return store;
}

ScoreQuery FeatureStore::MakeQuery(const UserFeatureView& query) const {
  ScoreQuery q;
  q.degree = query.degree;
  q.weighted_degree = query.weighted_degree;
  q.ncs = query.ncs;
  q.hop = query.hop;
  q.weighted_hop = query.weighted_hop;
  q.attributes = query.attributes;
  q.ncs_norm = VectorNorm(*query.ncs);
  q.hop_norm = VectorNorm(*query.hop);
  q.whop_norm = VectorNorm(*query.weighted_hop);

  q.attrs_exact = attrs_exact_;
  double total = 0.0;
  for (const auto& [id, weight] : *query.attributes) {
    total += weight;
    if (!WeightIsExactInteger(weight)) q.attrs_exact = false;
  }
  if (total > kMaxExactTotal) q.attrs_exact = false;
  q.attr_total = total;
  if (q.attrs_exact && max_attr_id_ >= 0) {
    q.attr_weight.assign(static_cast<size_t>(max_attr_id_) + 1, 0.0);
    q.attr_present.assign(static_cast<size_t>(max_attr_id_) + 1, 0);
    for (const auto& [id, weight] : *query.attributes) {
      if (id < 0 || id > max_attr_id_) continue;  // can't match any stored id
      q.attr_weight[static_cast<size_t>(id)] = weight;
      q.attr_present[static_cast<size_t>(id)] = 1;
    }
  }
  return q;
}

double FeatureStore::AttrSimilarity(const ScoreQuery& q, int v) const {
  const size_t begin = attr_offset_[static_cast<size_t>(v)];
  const size_t end = attr_offset_[static_cast<size_t>(v) + 1];
  const size_t b_len = end - begin;
  const auto& a = *q.attributes;
  if (a.empty() && b_len == 0) return 0.0;

  if (q.attrs_exact && !q.attr_present.empty()) {
    // Exact-integer fast path: every sum below is an exact integer, so the
    // merge's accumulation order is immaterial and the union follows from
    // the precomputed totals — bitwise equal to the branchy merge, at one
    // table lookup per candidate attribute. Matched mins still accumulate
    // in ascending-id order, exactly like the merge.
    // Branchless on purpose: the presence test is a coin flip on real
    // data, so a branch mispredicts constantly. Absent ids hold a +0.0
    // query weight, and min(+0.0, w) adds +0.0 to a non-negative
    // accumulator — bitwise neutral — while attr_present is the 0/1
    // intersection increment itself.
    size_t inter = 0;
    double weight_inter = 0.0;
    for (size_t k = begin; k < end; ++k) {
      const auto id = static_cast<size_t>(attr_id_[k]);
      inter += q.attr_present[id];
      weight_inter += std::min(q.attr_weight[id], attr_weight_[k]);
    }
    const double weight_union =
        (q.attr_total + attr_total_[static_cast<size_t>(v)]) - weight_inter;
    const size_t set_union = a.size() + b_len - inter;
    double sim = 0.0;
    if (set_union > 0)
      sim += static_cast<double>(inter) / static_cast<double>(set_union);
    if (weight_union > 0) sim += weight_inter / weight_union;
    return sim;
  }

  // General path (IDF-scaled or otherwise non-integral weights): the golden
  // merge of FlattenedAttributeSimilarity, operation for operation, over
  // the CSR arrays.
  size_t set_intersection = 0;
  double weight_intersection = 0.0, weight_union = 0.0;
  size_t i = 0, j = begin;
  while (i < a.size() && j < end) {
    if (a[i].first < attr_id_[j]) {
      weight_union += a[i].second;
      ++i;
    } else if (attr_id_[j] < a[i].first) {
      weight_union += attr_weight_[j];
      ++j;
    } else {
      ++set_intersection;
      weight_intersection += std::min(a[i].second, attr_weight_[j]);
      weight_union += std::max(a[i].second, attr_weight_[j]);
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) weight_union += a[i].second;
  for (; j < end; ++j) weight_union += attr_weight_[j];

  const size_t set_union = a.size() + b_len - set_intersection;
  double sim = 0.0;
  if (set_union > 0)
    sim += static_cast<double>(set_intersection) /
           static_cast<double>(set_union);
  if (weight_union > 0) sim += weight_intersection / weight_union;
  return sim;
}

namespace {

/// Picks the widest available kernel at or below the resolved tier (a
/// translation unit built without its -m flag contributes nullptr).
/// Returns the tier that will actually run.
BlockKernelFn SelectKernel(SimdMode resolved, SimdMode* actual) {
  if (resolved == SimdMode::kAvx2) {
    if (BlockKernelFn fn = internal::Avx2BlockKernel()) {
      *actual = SimdMode::kAvx2;
      return fn;
    }
    resolved = SimdMode::kSse2;
  }
  if (resolved == SimdMode::kSse2) {
    if (BlockKernelFn fn = internal::Sse2BlockKernel()) {
      *actual = SimdMode::kSse2;
      return fn;
    }
  }
  *actual = SimdMode::kScalar;
  return &internal::ScoreBlockScalar;
}

}  // namespace

void FeatureStore::ScoreRow(const SimilarityConfig& config,
                            const ScoreQuery& q, double* out) const {
  if (num_users_ == 0) return;
  SimdMode actual = SimdMode::kScalar;
  const BlockKernelFn kernel =
      SelectKernel(ResolveSimdMode(config.simd), &actual);
  obs::CoreMetrics& metrics = obs::GetCoreMetrics();
  metrics.simd_kernel->Set(static_cast<int64_t>(actual));

  BlockKernelArgs args;
  args.q_degree = q.degree;
  args.q_weighted_degree = q.weighted_degree;
  args.q_ncs = q.ncs->data();
  args.q_ncs_len = static_cast<int>(q.ncs->size());
  args.q_ncs_norm = q.ncs_norm;
  args.q_hop = q.hop->data();
  args.q_hop_len = static_cast<int>(q.hop->size());
  args.q_hop_norm = q.hop_norm;
  args.q_whop = q.weighted_hop->data();
  args.q_whop_len = static_cast<int>(q.weighted_hop->size());
  args.q_whop_norm = q.whop_norm;
  args.hop_stride = hop_stride_;
  args.whop_stride = whop_stride_;
  args.c1 = config.c1;
  args.c2 = config.c2;
  args.c3 = config.c3;

  double attr_tmp[kScoreBlockWidth];
  double score_tmp[kScoreBlockWidth];
  for (int b = 0; b < num_blocks_; ++b) {
    const int base = b * kBlockWidth;
    const int width = std::min(kBlockWidth, num_users_ - base);
    for (int l = 0; l < kBlockWidth; ++l)
      attr_tmp[l] = l < width ? AttrSimilarity(q, base + l) : 0.0;

    args.degree = degree_.data() + base;
    args.weighted_degree = weighted_degree_.data() + base;
    args.hop = hop_.data() + static_cast<size_t>(b) * kBlockWidth *
                                 static_cast<size_t>(hop_stride_);
    args.whop = whop_.data() + static_cast<size_t>(b) * kBlockWidth *
                                   static_cast<size_t>(whop_stride_);
    args.ncs = ncs_.data() + ncs_offset_[static_cast<size_t>(b)];
    args.ncs_stride = ncs_stride_[static_cast<size_t>(b)];
    args.hop_norm = hop_norm_.data() + base;
    args.whop_norm = whop_norm_.data() + base;
    args.ncs_norm = ncs_norm_.data() + base;
    args.attr_sim = attr_tmp;

    kernel(args, score_tmp);
    for (int l = 0; l < width; ++l) out[base + l] = score_tmp[l];
    metrics.score_block_size->Record(static_cast<double>(width));
  }
}

double FeatureStore::ScoreOne(const SimilarityConfig& config,
                              const ScoreQuery& q, int v) const {
  const int b = v / kBlockWidth;
  const int lane = v % kBlockWidth;
  const auto sv = static_cast<size_t>(v);
  const double degree_sim =
      (MinMaxRatio(q.degree, degree_[sv]) +
       MinMaxRatio(q.weighted_degree, weighted_degree_[sv])) +
      CosineLane(q.ncs->data(), static_cast<int>(q.ncs->size()), q.ncs_norm,
                 ncs_.data() + ncs_offset_[static_cast<size_t>(b)],
                 ncs_stride_[static_cast<size_t>(b)], ncs_norm_[sv], lane);
  const double distance_sim =
      CosineLane(q.hop->data(), static_cast<int>(q.hop->size()), q.hop_norm,
                 hop_.data() + static_cast<size_t>(b) * kBlockWidth *
                                   static_cast<size_t>(hop_stride_),
                 hop_stride_, hop_norm_[sv], lane) +
      CosineLane(q.weighted_hop->data(),
                 static_cast<int>(q.weighted_hop->size()), q.whop_norm,
                 whop_.data() + static_cast<size_t>(b) * kBlockWidth *
                                    static_cast<size_t>(whop_stride_),
                 whop_stride_, whop_norm_[sv], lane);
  const double attr_sim = AttrSimilarity(q, v);
  return (config.c1 * degree_sim + config.c2 * distance_sim) +
         config.c3 * attr_sim;
}

}  // namespace dehealth
