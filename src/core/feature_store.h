#ifndef DEHEALTH_CORE_FEATURE_STORE_H_
#define DEHEALTH_CORE_FEATURE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/similarity.h"
#include "core/simd_dispatch.h"

namespace dehealth {

/// Per-query precomputation shared by every FeatureStore scoring call: the
/// three vector norms (so the kernel divides by the same sqrt bits the
/// scalar path computes per pair, once instead of once per candidate) and,
/// when the attribute weights on both sides are exact small integers, a
/// dense weight-by-id lookup table that turns the O(|A_u|+|A_v|) branchy
/// merge into an O(|A_v|) scan. Borrows the query's feature vectors — they
/// must outlive the ScoreQuery.
struct ScoreQuery {
  double degree = 0.0;
  double weighted_degree = 0.0;
  const std::vector<double>* ncs = nullptr;
  const std::vector<double>* hop = nullptr;
  const std::vector<double>* weighted_hop = nullptr;
  const std::vector<std::pair<int, double>>* attributes = nullptr;
  double ncs_norm = 0.0;
  double hop_norm = 0.0;
  double whop_norm = 0.0;
  /// True when every query attribute weight is an exact non-negative small
  /// integer (see FeatureStore::attrs_exact()); required for the dense
  /// fast path, which relies on exact (order-free) summation.
  bool attrs_exact = false;
  double attr_total = 0.0;
  /// Dense query weight by attribute id, sized to the store's max id + 1;
  /// attr_present[id] distinguishes "absent" from a zero weight.
  std::vector<double> attr_weight;
  std::vector<uint8_t> attr_present;
};

/// Cache-blocked SoA mirror of one side's per-user similarity features,
/// laid out for the batched score kernel:
///
///  - hop / weighted-hop / NCS vectors live in fixed-stride, lane-
///    interleaved blocks of kBlockWidth users (element i of user
///    `block*kBlockWidth + lane` at data[block_base + i*kBlockWidth +
///    lane]), zero-padded to the stride — bitwise-neutral for the cosine
///    accumulation, so SIMD lanes can run candidates in lockstep;
///  - per-user norms are precomputed once (sqrt of the same ascending-order
///    sum of squares the scalar kernel forms per pair);
///  - attribute lists are CSR-packed ((id, weight) runs behind a prefix
///    offset array) with per-user totals for the exact-integer union
///    shortcut.
///
/// Scores from ScoreRow/ScoreOne are bitwise-identical to
/// CombinedStructuralScore on the original features for every SimdMode —
/// the equivalence suite in tests/core/feature_store_test.cc holds each
/// tier to that, and DESIGN.md "Score kernel" gives the argument.
class FeatureStore {
 public:
  static constexpr int kBlockWidth = 8;

  FeatureStore() = default;

  /// Packs one side's features (typically the auxiliary side). Copies all
  /// vector/attribute data; `users` views may be discarded afterwards.
  static FeatureStore Build(const std::vector<UserFeatureView>& users);

  int num_users() const { return num_users_; }
  int num_blocks() const { return num_blocks_; }
  /// True when every stored attribute weight is an exact non-negative
  /// integer <= 2^26 with per-user totals <= 2^52 (always the case without
  /// IDF scaling, where weights are raw post counts) — the regime in which
  /// floating-point summation is exact and the dense-lookup attribute path
  /// is bitwise-equal to the merge.
  bool attrs_exact() const { return attrs_exact_; }
  int max_attribute_id() const { return max_attr_id_; }

  /// Precomputes the per-query state for ScoreRow/ScoreOne. `query`'s
  /// vectors must outlive the returned ScoreQuery.
  ScoreQuery MakeQuery(const UserFeatureView& query) const;

  /// Scores `query` against every stored user into out[0..num_users()),
  /// running the block kernel of ResolveSimdMode(config.simd). Updates the
  /// core_simd_kernel gauge and the score-block-size histogram.
  void ScoreRow(const SimilarityConfig& config, const ScoreQuery& query,
                double* out) const;

  /// Scores `query` against one stored user (scalar, but with the same
  /// per-query precomputation as ScoreRow — this is what the index's
  /// best-first retrieval calls per surviving candidate).
  double ScoreOne(const SimilarityConfig& config, const ScoreQuery& query,
                  int v) const;

 private:
  int num_users_ = 0;
  int num_blocks_ = 0;
  int hop_stride_ = 0;
  int whop_stride_ = 0;
  // Lane-interleaved block data (padded lanes are all-zero users).
  std::vector<double> degree_;           // [num_blocks * kBlockWidth]
  std::vector<double> weighted_degree_;  // [num_blocks * kBlockWidth]
  std::vector<double> hop_;    // [num_blocks * hop_stride * kBlockWidth]
  std::vector<double> whop_;   // [num_blocks * whop_stride * kBlockWidth]
  // NCS vectors vary per user (length = degree), so each block gets its
  // own stride = max length within the block.
  std::vector<double> ncs_;
  std::vector<size_t> ncs_offset_;  // [num_blocks]
  std::vector<int> ncs_stride_;     // [num_blocks]
  // Precomputed norms, padded like degree_.
  std::vector<double> hop_norm_;
  std::vector<double> whop_norm_;
  std::vector<double> ncs_norm_;
  // CSR-packed attributes (ids ascending within a user).
  std::vector<size_t> attr_offset_;  // [num_users + 1]
  std::vector<int32_t> attr_id_;
  std::vector<double> attr_weight_;
  std::vector<double> attr_total_;   // [num_users]
  bool attrs_exact_ = true;
  int max_attr_id_ = -1;

  /// s^a of `query` vs stored user v — dense fast path when both sides are
  /// exact-integer, else the golden two-pointer merge. Bitwise equal to
  /// FlattenedAttributeSimilarity either way.
  double AttrSimilarity(const ScoreQuery& query, int v) const;
};

}  // namespace dehealth

#endif  // DEHEALTH_CORE_FEATURE_STORE_H_
