#ifndef DEHEALTH_CORE_UDA_GRAPH_H_
#define DEHEALTH_CORE_UDA_GRAPH_H_

#include <vector>

#include "datagen/corpus.h"
#include "graph/correlation_graph.h"
#include "stylo/feature_vector.h"
#include "stylo/user_profile.h"

namespace dehealth {

/// The paper's User-Data-Attribute graph G = (V, E, W, A, O, L): the user
/// correlation graph extended with per-user attribute sets derived from the
/// stylometric feature space. Per-post feature vectors are retained for the
/// refined-DA (classifier) phase.
struct UdaGraph {
  CorrelationGraph graph;
  /// profiles[u] holds A(u), WA(u) and the aggregated feature vector.
  std::vector<UserProfile> profiles;
  /// post_features[u] are the per-post stylometric vectors of user u.
  std::vector<std::vector<SparseVector>> post_features;

  int num_users() const { return graph.num_nodes(); }
};

/// Builds the UDA graph of a dataset: extracts Table-I features from every
/// post, aggregates per-user attributes, and constructs the co-thread
/// correlation graph. Cost: one extraction pass over all posts.
UdaGraph BuildUdaGraph(const ForumDataset& dataset);

}  // namespace dehealth

#endif  // DEHEALTH_CORE_UDA_GRAPH_H_
