#ifndef DEHEALTH_CORE_UDA_GRAPH_H_
#define DEHEALTH_CORE_UDA_GRAPH_H_

#include <vector>

#include "common/status.h"
#include "datagen/corpus.h"
#include "graph/correlation_graph.h"
#include "stylo/feature_vector.h"
#include "stylo/user_profile.h"

namespace dehealth {

/// The paper's User-Data-Attribute graph G = (V, E, W, A, O, L): the user
/// correlation graph extended with per-user attribute sets derived from the
/// stylometric feature space. Per-post feature vectors are retained for the
/// refined-DA (classifier) phase.
struct UdaGraph {
  CorrelationGraph graph;
  /// profiles[u] holds A(u), WA(u) and the aggregated feature vector.
  std::vector<UserProfile> profiles;
  /// post_features[u] are the per-post stylometric vectors of user u.
  std::vector<std::vector<SparseVector>> post_features;

  int num_users() const { return graph.num_nodes(); }
};

/// Builds the UDA graph of a dataset: extracts Table-I features from every
/// post, aggregates per-user attributes, and constructs the co-thread
/// correlation graph. Cost: one extraction pass over all posts.
UdaGraph BuildUdaGraph(const ForumDataset& dataset);

/// Streaming-ingest entry point: appends `new_posts` to `dataset` (growing
/// it to `num_users_after`/`num_threads_after`), extracts features for the
/// NEW posts only, folds them into the existing profiles in post order, and
/// rebuilds the co-thread correlation graph from the accumulated dataset.
///
/// Bitwise contract: after any sequence of Apply calls, `*uda` is
/// byte-for-byte equal to `BuildUdaGraph(*dataset)` — per-user AddPost call
/// sequences are identical (the full dataset lists base posts before
/// appended posts), and BuildCorrelationGraph is insertion-order-
/// independent by construction. Only the feature-extraction cost of the
/// new posts is paid. Fails if any new post's ids fall outside the
/// after-bounds or the bounds shrink.
Status ApplyPostsToUdaGraph(UdaGraph* uda, ForumDataset* dataset,
                            const std::vector<Post>& new_posts,
                            int num_users_after, int num_threads_after);

}  // namespace dehealth

#endif  // DEHEALTH_CORE_UDA_GRAPH_H_
