#include "core/simd_dispatch.h"

#include <cstdio>
#include <cstdlib>

namespace dehealth {

const char* SimdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAuto:
      return "auto";
    case SimdMode::kScalar:
      return "scalar";
    case SimdMode::kSse2:
      return "sse2";
    case SimdMode::kAvx2:
      return "avx2";
  }
  return "auto";
}

StatusOr<SimdMode> ParseSimdMode(const std::string& value) {
  if (value == "auto") return SimdMode::kAuto;
  if (value == "scalar") return SimdMode::kScalar;
  if (value == "sse2") return SimdMode::kSse2;
  if (value == "avx2") return SimdMode::kAvx2;
  return Status::InvalidArgument(
      "simd mode must be auto, scalar, sse2, or avx2 (got '" + value + "')");
}

SimdMode DetectCpuSimd() {
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return SimdMode::kAvx2;
#endif
  // SSE2 is part of the x86-64 baseline.
  return SimdMode::kSse2;
#else
  return SimdMode::kScalar;
#endif
}

namespace {

/// DEHEALTH_SIMD, parsed once per process. kAuto when unset, "auto", or
/// unparseable.
SimdMode EnvSimdMode() {
  static const SimdMode cached = [] {
    const char* env = std::getenv("DEHEALTH_SIMD");
    if (env == nullptr || *env == '\0') return SimdMode::kAuto;
    StatusOr<SimdMode> parsed = ParseSimdMode(env);
    if (!parsed.ok()) {
      std::fprintf(stderr,
                   "warning: ignoring DEHEALTH_SIMD='%s' (%s)\n", env,
                   parsed.status().ToString().c_str());
      return SimdMode::kAuto;
    }
    return *parsed;
  }();
  return cached;
}

}  // namespace

SimdMode ResolveSimdMode(SimdMode requested) {
  SimdMode mode = requested;
  if (mode == SimdMode::kAuto) mode = EnvSimdMode();
  const SimdMode widest = DetectCpuSimd();
  if (mode == SimdMode::kAuto) return widest;
  // Clamp a request the CPU cannot honor down to the widest supported tier.
  if (static_cast<int>(mode) > static_cast<int>(widest)) return widest;
  return mode;
}

}  // namespace dehealth
