#include "core/similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/math_utils.h"
#include "common/parallel.h"
#include "core/feature_store.h"
#include "graph/landmarks.h"
#include "obs/standard_metrics.h"
#include "obs/trace.h"

namespace dehealth {

namespace {

// Shared merge-join over (id, weight) lists sorted by id. Templated on the
// weight type so the int overload runs the identical expression tree over
// doubles (each weight cast at use) without materializing converted copies
// — the old int overload heap-allocated two vectors per call, which
// dominated scoring cost for high-attribute users.
template <typename W1, typename W2>
double FlattenedAttributeSimilarityImpl(
    const std::vector<std::pair<int, W1>>& a,
    const std::vector<std::pair<int, W2>>& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t set_intersection = 0;
  double weight_intersection = 0.0, weight_union = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      weight_union += static_cast<double>(a[i].second);
      ++i;
    } else if (b[j].first < a[i].first) {
      weight_union += static_cast<double>(b[j].second);
      ++j;
    } else {
      ++set_intersection;
      weight_intersection += std::min(static_cast<double>(a[i].second),
                                      static_cast<double>(b[j].second));
      weight_union += std::max(static_cast<double>(a[i].second),
                               static_cast<double>(b[j].second));
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i)
    weight_union += static_cast<double>(a[i].second);
  for (; j < b.size(); ++j)
    weight_union += static_cast<double>(b[j].second);

  const size_t set_union = a.size() + b.size() - set_intersection;
  double sim = 0.0;
  if (set_union > 0)
    sim += static_cast<double>(set_intersection) /
           static_cast<double>(set_union);
  if (weight_union > 0) sim += weight_intersection / weight_union;
  return sim;
}

}  // namespace

double FlattenedAttributeSimilarity(
    const std::vector<std::pair<int, double>>& a,
    const std::vector<std::pair<int, double>>& b) {
  return FlattenedAttributeSimilarityImpl(a, b);
}

double FlattenedAttributeSimilarity(
    const std::vector<std::pair<int, int>>& a,
    const std::vector<std::pair<int, int>>& b) {
  return FlattenedAttributeSimilarityImpl(a, b);
}

StructuralSimilarity::StructuralSimilarity(const UdaGraph& anonymized,
                                           const UdaGraph& auxiliary,
                                           SimilarityConfig config)
    : anonymized_(anonymized), auxiliary_(auxiliary), config_(config) {
  // Attribute document frequencies over the auxiliary side (IDF mode).
  std::unordered_map<int, int> document_frequency;
  if (config_.idf_weight_attributes) {
    for (const UserProfile& profile : auxiliary_.profiles)
      for (const auto& [id, weight] : profile.attributes())
        ++document_frequency[id];
  }
  const double n2 = static_cast<double>(auxiliary_.num_users());
  auto idf = [&](int id) {
    if (!config_.idf_weight_attributes) return 1.0;
    auto it = document_frequency.find(id);
    const double df = it == document_frequency.end() ? 0.0 : it->second;
    return std::log((1.0 + n2) / (1.0 + df));
  };

  const UdaGraph* sides[2] = {&anonymized_, &auxiliary_};
  for (int s = 0; s < 2; ++s) {
    const UdaGraph& side = *sides[s];
    const int n = side.num_users();
    const LandmarkIndex landmarks(side.graph, config_.num_landmarks,
                                  config_.num_threads);
    hop_vectors_[s].reserve(static_cast<size_t>(n));
    weighted_vectors_[s].reserve(static_cast<size_t>(n));
    ncs_vectors_[s].reserve(static_cast<size_t>(n));
    attributes_[s].reserve(static_cast<size_t>(n));
    for (NodeId u = 0; u < n; ++u) {
      hop_vectors_[s].push_back(landmarks.HopVector(u));
      weighted_vectors_[s].push_back(landmarks.WeightedVector(u));
      ncs_vectors_[s].push_back(side.graph.NcsVector(u));
      std::vector<std::pair<int, double>> scaled;
      for (const auto& [id, weight] :
           side.profiles[static_cast<size_t>(u)].attributes())
        scaled.emplace_back(id, weight * idf(id));
      attributes_[s].push_back(std::move(scaled));
    }
  }
}

int StructuralSimilarity::num_anonymized() const {
  return anonymized_.num_users();
}
int StructuralSimilarity::num_auxiliary() const {
  return auxiliary_.num_users();
}

double StructuralSimilarity::DegreeSimilarity(NodeId u, NodeId v) const {
  const double du = anonymized_.graph.Degree(u);
  const double dv = auxiliary_.graph.Degree(v);
  const double wdu = anonymized_.graph.WeightedDegree(u);
  const double wdv = auxiliary_.graph.WeightedDegree(v);
  return MinMaxRatio(du, dv) + MinMaxRatio(wdu, wdv) +
         CosineSimilarity(ncs_vectors_[0][static_cast<size_t>(u)],
                          ncs_vectors_[1][static_cast<size_t>(v)]);
}

double StructuralSimilarity::DistanceSimilarity(NodeId u, NodeId v) const {
  return CosineSimilarity(hop_vectors_[0][static_cast<size_t>(u)],
                          hop_vectors_[1][static_cast<size_t>(v)]) +
         CosineSimilarity(weighted_vectors_[0][static_cast<size_t>(u)],
                          weighted_vectors_[1][static_cast<size_t>(v)]);
}

double StructuralSimilarity::AttrSimilarity(NodeId u, NodeId v) const {
  return FlattenedAttributeSimilarity(attributes_[0][static_cast<size_t>(u)],
                                      attributes_[1][static_cast<size_t>(v)]);
}

double CombinedStructuralScore(const SimilarityConfig& config,
                               const UserFeatureView& u,
                               const UserFeatureView& v) {
  const double degree_sim = MinMaxRatio(u.degree, v.degree) +
                            MinMaxRatio(u.weighted_degree, v.weighted_degree) +
                            CosineSimilarity(*u.ncs, *v.ncs);
  const double distance_sim = CosineSimilarity(*u.hop, *v.hop) +
                              CosineSimilarity(*u.weighted_hop, *v.weighted_hop);
  const double attr_sim =
      FlattenedAttributeSimilarity(*u.attributes, *v.attributes);
  return config.c1 * degree_sim + config.c2 * distance_sim +
         config.c3 * attr_sim;
}

double StructuralSimilarity::Combined(NodeId u, NodeId v) const {
  UserFeatureView view_u;
  view_u.degree = anonymized_.graph.Degree(u);
  view_u.weighted_degree = anonymized_.graph.WeightedDegree(u);
  view_u.ncs = &ncs_vectors_[0][static_cast<size_t>(u)];
  view_u.hop = &hop_vectors_[0][static_cast<size_t>(u)];
  view_u.weighted_hop = &weighted_vectors_[0][static_cast<size_t>(u)];
  view_u.attributes = &attributes_[0][static_cast<size_t>(u)];
  UserFeatureView view_v;
  view_v.degree = auxiliary_.graph.Degree(v);
  view_v.weighted_degree = auxiliary_.graph.WeightedDegree(v);
  view_v.ncs = &ncs_vectors_[1][static_cast<size_t>(v)];
  view_v.hop = &hop_vectors_[1][static_cast<size_t>(v)];
  view_v.weighted_hop = &weighted_vectors_[1][static_cast<size_t>(v)];
  view_v.attributes = &attributes_[1][static_cast<size_t>(v)];
  return CombinedStructuralScore(config_, view_u, view_v);
}

std::vector<std::vector<double>> StructuralSimilarity::ComputeMatrix() const {
  const int n1 = num_anonymized();
  const int n2 = num_auxiliary();
  obs::Span span("core", "similarity_matrix");
  span.SetArg("rows", n1);
  obs::CoreMetrics& metrics = obs::GetCoreMetrics();
  metrics.similarity_matrices->Increment();
  metrics.similarity_rows->Increment(static_cast<uint64_t>(n1));
  std::vector<std::vector<double>> matrix(
      static_cast<size_t>(n1), std::vector<double>(static_cast<size_t>(n2)));

  // Pack the auxiliary side into the blocked SoA store once, then score
  // whole rows through the batched kernel — bitwise-identical to calling
  // Combined() per pair (tests/core/feature_store_test.cc pins this).
  std::vector<UserFeatureView> aux_views(static_cast<size_t>(n2));
  for (NodeId v = 0; v < n2; ++v) {
    UserFeatureView& view = aux_views[static_cast<size_t>(v)];
    view.degree = auxiliary_.graph.Degree(v);
    view.weighted_degree = auxiliary_.graph.WeightedDegree(v);
    view.ncs = &ncs_vectors_[1][static_cast<size_t>(v)];
    view.hop = &hop_vectors_[1][static_cast<size_t>(v)];
    view.weighted_hop = &weighted_vectors_[1][static_cast<size_t>(v)];
    view.attributes = &attributes_[1][static_cast<size_t>(v)];
  }
  const FeatureStore store = FeatureStore::Build(aux_views);

  // Row-parallel: each task owns exactly one preallocated row, so the
  // result is bitwise-identical for any thread count.
  ParallelFor(
      0, n1,
      [&](int64_t u) {
        UserFeatureView view_u;
        const auto su = static_cast<size_t>(u);
        view_u.degree = anonymized_.graph.Degree(static_cast<NodeId>(u));
        view_u.weighted_degree =
            anonymized_.graph.WeightedDegree(static_cast<NodeId>(u));
        view_u.ncs = &ncs_vectors_[0][su];
        view_u.hop = &hop_vectors_[0][su];
        view_u.weighted_hop = &weighted_vectors_[0][su];
        view_u.attributes = &attributes_[0][su];
        const ScoreQuery query = store.MakeQuery(view_u);
        store.ScoreRow(config_, query, matrix[su].data());
      },
      config_.num_threads);
  return matrix;
}

}  // namespace dehealth
