#include "core/similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/math_utils.h"
#include "common/parallel.h"
#include "graph/landmarks.h"
#include "obs/standard_metrics.h"
#include "obs/trace.h"

namespace dehealth {

double FlattenedAttributeSimilarity(
    const std::vector<std::pair<int, double>>& a,
    const std::vector<std::pair<int, double>>& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t set_intersection = 0;
  double weight_intersection = 0.0, weight_union = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) {
      weight_union += a[i].second;
      ++i;
    } else if (b[j].first < a[i].first) {
      weight_union += b[j].second;
      ++j;
    } else {
      ++set_intersection;
      weight_intersection += std::min(a[i].second, b[j].second);
      weight_union += std::max(a[i].second, b[j].second);
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) weight_union += a[i].second;
  for (; j < b.size(); ++j) weight_union += b[j].second;

  const size_t set_union = a.size() + b.size() - set_intersection;
  double sim = 0.0;
  if (set_union > 0)
    sim += static_cast<double>(set_intersection) /
           static_cast<double>(set_union);
  if (weight_union > 0) sim += weight_intersection / weight_union;
  return sim;
}

double FlattenedAttributeSimilarity(
    const std::vector<std::pair<int, int>>& a,
    const std::vector<std::pair<int, int>>& b) {
  std::vector<std::pair<int, double>> da(a.begin(), a.end());
  std::vector<std::pair<int, double>> db(b.begin(), b.end());
  return FlattenedAttributeSimilarity(da, db);
}

StructuralSimilarity::StructuralSimilarity(const UdaGraph& anonymized,
                                           const UdaGraph& auxiliary,
                                           SimilarityConfig config)
    : anonymized_(anonymized), auxiliary_(auxiliary), config_(config) {
  // Attribute document frequencies over the auxiliary side (IDF mode).
  std::unordered_map<int, int> document_frequency;
  if (config_.idf_weight_attributes) {
    for (const UserProfile& profile : auxiliary_.profiles)
      for (const auto& [id, weight] : profile.attributes())
        ++document_frequency[id];
  }
  const double n2 = static_cast<double>(auxiliary_.num_users());
  auto idf = [&](int id) {
    if (!config_.idf_weight_attributes) return 1.0;
    auto it = document_frequency.find(id);
    const double df = it == document_frequency.end() ? 0.0 : it->second;
    return std::log((1.0 + n2) / (1.0 + df));
  };

  const UdaGraph* sides[2] = {&anonymized_, &auxiliary_};
  for (int s = 0; s < 2; ++s) {
    const UdaGraph& side = *sides[s];
    const int n = side.num_users();
    const LandmarkIndex landmarks(side.graph, config_.num_landmarks,
                                  config_.num_threads);
    hop_vectors_[s].reserve(static_cast<size_t>(n));
    weighted_vectors_[s].reserve(static_cast<size_t>(n));
    ncs_vectors_[s].reserve(static_cast<size_t>(n));
    attributes_[s].reserve(static_cast<size_t>(n));
    for (NodeId u = 0; u < n; ++u) {
      hop_vectors_[s].push_back(landmarks.HopVector(u));
      weighted_vectors_[s].push_back(landmarks.WeightedVector(u));
      ncs_vectors_[s].push_back(side.graph.NcsVector(u));
      std::vector<std::pair<int, double>> scaled;
      for (const auto& [id, weight] :
           side.profiles[static_cast<size_t>(u)].attributes())
        scaled.emplace_back(id, weight * idf(id));
      attributes_[s].push_back(std::move(scaled));
    }
  }
}

int StructuralSimilarity::num_anonymized() const {
  return anonymized_.num_users();
}
int StructuralSimilarity::num_auxiliary() const {
  return auxiliary_.num_users();
}

double StructuralSimilarity::DegreeSimilarity(NodeId u, NodeId v) const {
  const double du = anonymized_.graph.Degree(u);
  const double dv = auxiliary_.graph.Degree(v);
  const double wdu = anonymized_.graph.WeightedDegree(u);
  const double wdv = auxiliary_.graph.WeightedDegree(v);
  return MinMaxRatio(du, dv) + MinMaxRatio(wdu, wdv) +
         CosineSimilarity(ncs_vectors_[0][static_cast<size_t>(u)],
                          ncs_vectors_[1][static_cast<size_t>(v)]);
}

double StructuralSimilarity::DistanceSimilarity(NodeId u, NodeId v) const {
  return CosineSimilarity(hop_vectors_[0][static_cast<size_t>(u)],
                          hop_vectors_[1][static_cast<size_t>(v)]) +
         CosineSimilarity(weighted_vectors_[0][static_cast<size_t>(u)],
                          weighted_vectors_[1][static_cast<size_t>(v)]);
}

double StructuralSimilarity::AttrSimilarity(NodeId u, NodeId v) const {
  return FlattenedAttributeSimilarity(attributes_[0][static_cast<size_t>(u)],
                                      attributes_[1][static_cast<size_t>(v)]);
}

double CombinedStructuralScore(const SimilarityConfig& config,
                               const UserFeatureView& u,
                               const UserFeatureView& v) {
  const double degree_sim = MinMaxRatio(u.degree, v.degree) +
                            MinMaxRatio(u.weighted_degree, v.weighted_degree) +
                            CosineSimilarity(*u.ncs, *v.ncs);
  const double distance_sim = CosineSimilarity(*u.hop, *v.hop) +
                              CosineSimilarity(*u.weighted_hop, *v.weighted_hop);
  const double attr_sim =
      FlattenedAttributeSimilarity(*u.attributes, *v.attributes);
  return config.c1 * degree_sim + config.c2 * distance_sim +
         config.c3 * attr_sim;
}

double StructuralSimilarity::Combined(NodeId u, NodeId v) const {
  UserFeatureView view_u;
  view_u.degree = anonymized_.graph.Degree(u);
  view_u.weighted_degree = anonymized_.graph.WeightedDegree(u);
  view_u.ncs = &ncs_vectors_[0][static_cast<size_t>(u)];
  view_u.hop = &hop_vectors_[0][static_cast<size_t>(u)];
  view_u.weighted_hop = &weighted_vectors_[0][static_cast<size_t>(u)];
  view_u.attributes = &attributes_[0][static_cast<size_t>(u)];
  UserFeatureView view_v;
  view_v.degree = auxiliary_.graph.Degree(v);
  view_v.weighted_degree = auxiliary_.graph.WeightedDegree(v);
  view_v.ncs = &ncs_vectors_[1][static_cast<size_t>(v)];
  view_v.hop = &hop_vectors_[1][static_cast<size_t>(v)];
  view_v.weighted_hop = &weighted_vectors_[1][static_cast<size_t>(v)];
  view_v.attributes = &attributes_[1][static_cast<size_t>(v)];
  return CombinedStructuralScore(config_, view_u, view_v);
}

std::vector<std::vector<double>> StructuralSimilarity::ComputeMatrix() const {
  const int n1 = num_anonymized();
  const int n2 = num_auxiliary();
  obs::Span span("core", "similarity_matrix");
  span.SetArg("rows", n1);
  obs::CoreMetrics& metrics = obs::GetCoreMetrics();
  metrics.similarity_matrices->Increment();
  metrics.similarity_rows->Increment(static_cast<uint64_t>(n1));
  std::vector<std::vector<double>> matrix(
      static_cast<size_t>(n1), std::vector<double>(static_cast<size_t>(n2)));
  // Row-parallel: each task owns exactly one preallocated row, so the
  // result is bitwise-identical for any thread count.
  ParallelFor(
      0, n1,
      [&](int64_t u) {
        std::vector<double>& row = matrix[static_cast<size_t>(u)];
        for (NodeId v = 0; v < n2; ++v)
          row[static_cast<size_t>(v)] = Combined(static_cast<NodeId>(u), v);
      },
      config_.num_threads);
  return matrix;
}

}  // namespace dehealth
