#ifndef DEHEALTH_CORE_SIMD_DISPATCH_H_
#define DEHEALTH_CORE_SIMD_DISPATCH_H_

#include <string>

#include "common/status.h"

namespace dehealth {

/// Which instruction set the batched score kernel runs on. Every tier
/// produces bitwise-identical scores (see DESIGN.md "Score kernel"); the
/// choice is purely a throughput knob.
enum class SimdMode {
  kAuto = 0,    // --simd/env/cpuid resolution (never a resolved value)
  kScalar = 1,  // portable golden path, one candidate lane at a time
  kSse2 = 2,    // 2-wide doubles, x86-64 baseline
  kAvx2 = 3,    // 4-wide doubles
};

/// Canonical lowercase name ("auto", "scalar", "sse2", "avx2").
const char* SimdModeName(SimdMode mode);

/// Parses a --simd flag value; InvalidArgument on anything but
/// auto|scalar|sse2|avx2.
StatusOr<SimdMode> ParseSimdMode(const std::string& value);

/// The widest tier the running CPU supports (kAvx2, kSse2, or kScalar).
SimdMode DetectCpuSimd();

/// Resolves a requested mode to the tier that will actually run — never
/// kAuto. Precedence: an explicit request wins; kAuto consults the
/// DEHEALTH_SIMD environment variable (same spelling as --simd; read once
/// per process) and then falls back to CPU detection. Requests wider than
/// the CPU supports clamp down (e.g. kAvx2 on an SSE2-only machine runs
/// kSse2); an unparseable DEHEALTH_SIMD is ignored with a one-time warning.
SimdMode ResolveSimdMode(SimdMode requested);

}  // namespace dehealth

#endif  // DEHEALTH_CORE_SIMD_DISPATCH_H_
