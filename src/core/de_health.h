#ifndef DEHEALTH_CORE_DE_HEALTH_H_
#define DEHEALTH_CORE_DE_HEALTH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/candidate_source.h"
#include "core/engine_kind.h"
#include "core/filtering.h"
#include "core/refined_da.h"
#include "core/similarity.h"
#include "core/top_k.h"
#include "core/uda_graph.h"

namespace dehealth {

/// End-to-end configuration of the De-Health attack (Algorithm 1).
struct DeHealthConfig {
  SimilarityConfig similarity;
  int top_k = 10;  // K

  /// Which phase-1 attack engine scores anonymized-vs-auxiliary pairs
  /// (--engine). kStructural is the paper's attack and the only engine the
  /// candidate index accelerates; kBlind and kCommunity (src/engines/) are
  /// matrix-backed and obey the same determinism/thread-invariance/
  /// checkpoint contract (docs/ENGINES.md). Consumed by
  /// BuildAttackScoreSource — DeHealth::Run itself always runs the
  /// structural matrix.
  EngineKind engine = EngineKind::kStructural;
  /// Seed of the community engine's label-propagation passes (and any
  /// future stochastic engine step). Result-shaping: part of the job
  /// fingerprint for non-structural engines.
  uint64_t engine_seed = 1;
  CandidateSelection selection = CandidateSelection::kDirect;
  /// The paper marks filtering optional ("no guarantee ... to improve the
  /// DA performance. Therefore, we set the filtering process as an
  /// optional choice") — off by default, like the closed-world evaluation.
  bool enable_filtering = false;
  FilterConfig filter;
  RefinedDaConfig refined;

  /// Single threading knob for the whole pipeline (0 = hardware
  /// concurrency). Run() copies it into the similarity and refined-DA
  /// sub-configs and the Top-K selection, overriding their own
  /// `num_threads` fields; set those directly only when driving the
  /// components standalone. Every phase is bitwise-deterministic for any
  /// value (see DESIGN.md "Threading model").
  int num_threads = 0;

  /// Answer phase 1 from the persistent auxiliary-side candidate index
  /// (src/index/) instead of materializing the dense |Δ1|×|Δ2| similarity
  /// matrix. Scores and candidate sets are bitwise-identical to the dense
  /// path (see DESIGN.md "Candidate index"); DeHealthResult::similarity is
  /// left empty. Consumed by RunDeHealthAttack (src/index/pipeline.h) —
  /// DeHealth::Run itself always runs dense.
  bool use_index = false;
  /// When non-empty, the index is loaded from this snapshot file if it
  /// matches the auxiliary side + config (and rebuilt + saved otherwise).
  std::string index_snapshot_path;
  /// Recall knob: when > 0, the index only *evaluates* at most this many
  /// exact scores per anonymized user (best-first by upper bound) — faster,
  /// but Top-K results may lose recall and are no longer guaranteed
  /// identical to dense. 0 = exact (the default).
  int index_max_candidates = 0;

  /// In-process horizontal sharding (src/shard/): when > 1, the auxiliary
  /// universe is partitioned into this many contiguous-id-range shards,
  /// each owning its own candidate index, behind a scatter-gather
  /// CandidateSource. Results are bitwise-identical to num_shards == 1
  /// (every shard runs the same exact kernel; see DESIGN.md "Sharding"),
  /// so this knob is NOT part of the job fingerprint — checkpoints
  /// interchange across shard counts. With index_snapshot_path set, each
  /// shard persists its own `<path>.shard-<i>-of-<n>.dhix` snapshot.
  int num_shards = 1;
  /// Shard-slice mode for distributed serving (dehealth_router + N
  /// backends): this process owns only shard `shard_index` of
  /// `shard_count` — its score source covers the auxiliary id range
  /// [begin, end) of that shard, with LOCAL auxiliary ids 0..end-begin.
  /// Unlike num_shards this DOES change this process's results (it sees a
  /// sliced universe), so both fields are part of the job fingerprint.
  /// shard_count == 1 (the default) disables slice mode. Mutually
  /// exclusive with num_shards > 1 and with enable_filtering (filter
  /// thresholds are global).
  int shard_index = 0;
  int shard_count = 1;

  /// Durable checkpoint/resume (src/job/): when non-empty, the attack runs
  /// through the crash-safe job runner rooted at this directory — per-user
  /// work is committed in atomically written, checksummed shards, and a
  /// re-run with the same forums + config resumes from the last durable
  /// shard with bitwise-identical final output. Consumed by
  /// RunDeHealthAttackJob (src/job/runner.h) and the serving engine;
  /// DeHealth::Run itself ignores it.
  std::string job_dir;
  /// Users per durable shard (>= 1): smaller shards checkpoint more often
  /// (less work lost to a crash) at the cost of more small files.
  int job_shard_size = 64;
};

/// Everything the two phases produced; kept so benches and callers can
/// evaluate Top-K success and refined accuracy from one run.
struct DeHealthResult {
  std::vector<std::vector<double>> similarity;  // s_uv matrix
  CandidateSets candidates;                     // final candidate sets C_u
  std::vector<bool> rejected;                   // u → ⊥ decided by filtering
  RefinedDaResult refined;                      // phase-2 predictions
};

/// The phase-1 global state (candidate sets + filtering verdicts) a
/// long-lived query service precomputes once and then answers per-user
/// queries against. Produced by DeHealth::SelectCandidates; consumed by
/// DeHealth::RefineUsers.
struct DeHealthCandidates {
  CandidateSets candidates;    // post-filtering when filtering is enabled
  std::vector<bool> rejected;  // u → ⊥ decided by filtering
};

/// The De-Health framework: Top-K DA (structural similarity + candidate
/// selection + optional filtering) followed by refined DA (per-user
/// classifier + optional open-world verification).
class DeHealth {
 public:
  explicit DeHealth(DeHealthConfig config = {});

  /// Runs both phases of Algorithm 1 on an anonymized/auxiliary UDA-graph
  /// pair. Deterministic given the config seeds.
  StatusOr<DeHealthResult> Run(const UdaGraph& anonymized,
                               const UdaGraph& auxiliary) const;

  /// Runs phases 1b-2 against an externally provided score source (the
  /// dense matrix wrapped in a DenseCandidateSource, or the candidate
  /// index). DeHealthResult::similarity is only populated when the source
  /// exposes a dense matrix; graph-matching selection requires one and
  /// fails with FailedPrecondition otherwise.
  StatusOr<DeHealthResult> RunWithSource(const UdaGraph& anonymized,
                                         const UdaGraph& auxiliary,
                                         const CandidateSource& scores) const;

  /// Phases 1b-1c only: Top-K candidate selection plus (when enabled)
  /// filtering — exactly the state Run/RunWithSource compute before phase
  /// 2. The serving path (src/serve/) calls this once at startup and keeps
  /// the result resident.
  StatusOr<DeHealthCandidates> SelectCandidates(
      const CandidateSource& scores) const;

  /// Batch entry point for the serving path: phase-2 refined-DA answers
  /// for just the listed anonymized users against precomputed phase-1
  /// state (result entry i belongs to users[i]). Bitwise-identical to the
  /// corresponding entries of a full Run for any batch composition — see
  /// RunRefinedDaForUsers.
  StatusOr<RefinedDaResult> RefineUsers(const UdaGraph& anonymized,
                                        const UdaGraph& auxiliary,
                                        const CandidateSource& scores,
                                        const DeHealthCandidates& state,
                                        const std::vector<int>& users) const;

  const DeHealthConfig& config() const { return config_; }

 private:
  DeHealthConfig config_;
};

/// The paper's "Stylometry" comparison method: the refined-DA classifier
/// applied directly against *all* auxiliary users, without the Top-K phase.
StatusOr<RefinedDaResult> RunStylometryBaseline(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const std::vector<std::vector<double>>& similarity,
    const RefinedDaConfig& config);

}  // namespace dehealth

#endif  // DEHEALTH_CORE_DE_HEALTH_H_
