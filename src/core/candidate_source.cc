#include "core/candidate_source.h"

namespace dehealth {

DenseCandidateSource::DenseCandidateSource(
    const std::vector<std::vector<double>>& matrix)
    : matrix_(&matrix) {}

int DenseCandidateSource::num_anonymized() const {
  return static_cast<int>(matrix_->size());
}

int DenseCandidateSource::num_auxiliary() const {
  return matrix_->empty() ? 0 : static_cast<int>(matrix_->front().size());
}

double DenseCandidateSource::Score(NodeId u, NodeId v) const {
  return (*matrix_)[static_cast<size_t>(u)][static_cast<size_t>(v)];
}

const std::vector<double>& DenseCandidateSource::Row(
    NodeId u, std::vector<double>* /*scratch*/) const {
  return (*matrix_)[static_cast<size_t>(u)];
}

StatusOr<CandidateSets> DenseCandidateSource::TopK(int k,
                                                   int num_threads) const {
  return SelectTopKCandidates(*matrix_, k, CandidateSelection::kDirect,
                              num_threads);
}

const std::vector<std::vector<double>>* DenseCandidateSource::DenseMatrix()
    const {
  return matrix_;
}

}  // namespace dehealth
