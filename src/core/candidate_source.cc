#include "core/candidate_source.h"

#include "common/parallel.h"

namespace dehealth {

StatusOr<CandidateSets> CandidateSource::TopKForUsers(
    const std::vector<int>& users, int k, int num_threads) const {
  if (k < 1)
    return Status::InvalidArgument(
        "CandidateSource::TopKForUsers: k must be >= 1");
  const int n1 = num_anonymized();
  for (int u : users)
    if (u < 0 || u >= n1)
      return Status::InvalidArgument(
          "CandidateSource::TopKForUsers: user id " + std::to_string(u) +
          " out of range [0, " + std::to_string(n1) + ")");
  CandidateSets result(users.size());
  // Each task owns one output slot (and its own row scratch), so the lists
  // are identical for any thread count.
  ParallelFor(
      0, static_cast<int64_t>(users.size()),
      [&](int64_t i) {
        std::vector<double> scratch;
        const std::vector<double>& row =
            Row(users[static_cast<size_t>(i)], &scratch);
        result[static_cast<size_t>(i)] = TopKForRow(row, k);
      },
      num_threads);
  return result;
}

DenseCandidateSource::DenseCandidateSource(
    const std::vector<std::vector<double>>& matrix)
    : matrix_(&matrix) {}

int DenseCandidateSource::num_anonymized() const {
  return static_cast<int>(matrix_->size());
}

int DenseCandidateSource::num_auxiliary() const {
  return matrix_->empty() ? 0 : static_cast<int>(matrix_->front().size());
}

double DenseCandidateSource::Score(NodeId u, NodeId v) const {
  return (*matrix_)[static_cast<size_t>(u)][static_cast<size_t>(v)];
}

const std::vector<double>& DenseCandidateSource::Row(
    NodeId u, std::vector<double>* /*scratch*/) const {
  return (*matrix_)[static_cast<size_t>(u)];
}

StatusOr<CandidateSets> DenseCandidateSource::TopK(int k,
                                                   int num_threads) const {
  return SelectTopKCandidates(*matrix_, k, CandidateSelection::kDirect,
                              num_threads);
}

const std::vector<std::vector<double>>* DenseCandidateSource::DenseMatrix()
    const {
  return matrix_;
}

}  // namespace dehealth
