#ifndef DEHEALTH_CORE_SIMILARITY_H_
#define DEHEALTH_CORE_SIMILARITY_H_

#include <utility>
#include <vector>

#include "core/simd_dispatch.h"
#include "core/uda_graph.h"

namespace dehealth {

/// Weights and parameters of the paper's structural similarity
/// s_uv = c1·s^d_uv + c2·s^s_uv + c3·s^a_uv.
struct SimilarityConfig {
  /// Paper defaults (Section V): low weight on degree and distance because
  /// the health graphs are sparse and disconnected; attribute similarity
  /// dominates.
  double c1 = 0.05;  // degree similarity weight
  double c2 = 0.05;  // distance (landmark) similarity weight
  double c3 = 0.9;   // attribute similarity weight
  int num_landmarks = 50;  // ħ

  /// Scale each attribute's weight l_u(A_i) by the inverse document
  /// frequency log((1+n2)/(1+df_i)) computed over the auxiliary users.
  /// The paper leaves the attribute weighting open; IDF suppresses
  /// population-wide attributes (everyone writes 'e's and DT-NN bigrams)
  /// so the rare, identifying ones dominate — essential when the corpus
  /// is topic-noisy (see the Fig. 4 bench and EXPERIMENTS.md).
  bool idf_weight_attributes = false;

  /// Threads used for landmark precomputation and ComputeMatrix
  /// (0 = hardware concurrency). Results are bitwise-identical for any
  /// value; see DESIGN.md "Threading model".
  int num_threads = 0;

  /// Instruction-set tier of the batched score kernel (--simd). Purely a
  /// throughput knob: every tier is bitwise-identical (DESIGN.md "Score
  /// kernel"). kAuto honors DEHEALTH_SIMD, then CPU detection.
  SimdMode simd = SimdMode::kAuto;
};

/// Borrowed view of one user's precomputed similarity features — the exact
/// inputs of the pair-scoring kernel. All pointers must be non-null.
struct UserFeatureView {
  double degree = 0.0;
  double weighted_degree = 0.0;
  const std::vector<double>* ncs = nullptr;
  const std::vector<double>* hop = nullptr;
  const std::vector<double>* weighted_hop = nullptr;
  const std::vector<std::pair<int, double>>* attributes = nullptr;
};

/// The pair-scoring kernel s_uv = c1·s^d + c2·s^s + c3·s^a. Both the dense
/// path (StructuralSimilarity::Combined) and the candidate index
/// (src/index/) call this ONE compiled function, so their exact scores are
/// bitwise-identical by construction — the determinism contract in
/// DESIGN.md "Candidate index" depends on it.
double CombinedStructuralScore(const SimilarityConfig& config,
                               const UserFeatureView& u,
                               const UserFeatureView& v);

/// Precomputes everything needed to score anonymized-vs-auxiliary user
/// pairs: landmark proximity vectors on both UDA graphs, NCS vectors, and
/// flattened attribute lists. The three components are exposed separately
/// (the theory benches and the ablation bench sweep them independently).
class StructuralSimilarity {
 public:
  /// `anonymized` and `auxiliary` must outlive this object.
  StructuralSimilarity(const UdaGraph& anonymized, const UdaGraph& auxiliary,
                       SimilarityConfig config = {});

  /// s^d: min/max degree ratio + min/max weighted-degree ratio +
  /// cos(D_u, D_v). Range [0, 3].
  double DegreeSimilarity(NodeId u, NodeId v) const;

  /// s^s: cos(H_u(S1), H_v(S2)) + cos(WH_u(S1), WH_v(S2)). Range [0, 2].
  double DistanceSimilarity(NodeId u, NodeId v) const;

  /// s^a: Jaccard + weighted Jaccard over attribute sets. Range [0, 2].
  double AttrSimilarity(NodeId u, NodeId v) const;

  /// c1·s^d + c2·s^s + c3·s^a.
  double Combined(NodeId u, NodeId v) const;

  /// Full similarity matrix: result[u][v] = Combined(u, v). O(n1·n2) —
  /// row-parallel across config().num_threads threads; bitwise-identical
  /// output for any thread count. Rows run through the batched FeatureStore
  /// kernel (config().simd picks the tier), which is bitwise-identical to
  /// the per-pair Combined().
  std::vector<std::vector<double>> ComputeMatrix() const;

  const SimilarityConfig& config() const { return config_; }
  int num_anonymized() const;
  int num_auxiliary() const;

 private:
  const UdaGraph& anonymized_;
  const UdaGraph& auxiliary_;
  SimilarityConfig config_;

  // Per-user precomputed vectors (index 0 = anonymized side, 1 = auxiliary).
  std::vector<std::vector<double>> hop_vectors_[2];
  std::vector<std::vector<double>> weighted_vectors_[2];
  std::vector<std::vector<double>> ncs_vectors_[2];
  // Flattened (attribute id, weight) lists for fast merge joins; weights
  // are IDF-scaled when config_.idf_weight_attributes is set.
  std::vector<std::vector<std::pair<int, double>>> attributes_[2];
};

/// Standalone weighted-Jaccard attribute similarity over flattened
/// attribute lists (sorted by id). Exposed for testing.
double FlattenedAttributeSimilarity(
    const std::vector<std::pair<int, int>>& a,
    const std::vector<std::pair<int, int>>& b);

/// Real-weighted variant (used internally when IDF scaling is on):
/// set Jaccard over the ids plus min/max weighted Jaccard over the
/// (already scaled) weights.
double FlattenedAttributeSimilarity(
    const std::vector<std::pair<int, double>>& a,
    const std::vector<std::pair<int, double>>& b);

}  // namespace dehealth

#endif  // DEHEALTH_CORE_SIMILARITY_H_
