#include "core/de_health.h"

#include <numeric>

namespace dehealth {

DeHealth::DeHealth(DeHealthConfig config) : config_(config) {}

StatusOr<DeHealthResult> DeHealth::Run(const UdaGraph& anonymized,
                                       const UdaGraph& auxiliary) const {
  DeHealthResult result;

  // Phase 1a: structural similarity (Algorithm 1, lines 2-4). The
  // pipeline-level thread knob overrides the sub-config fields.
  SimilarityConfig sim_config = config_.similarity;
  sim_config.num_threads = config_.num_threads;
  const StructuralSimilarity similarity(anonymized, auxiliary, sim_config);
  result.similarity = similarity.ComputeMatrix();

  // Phase 1b: Top-K candidate sets (line 5).
  StatusOr<CandidateSets> candidates =
      SelectTopKCandidates(result.similarity, config_.top_k,
                           config_.selection, config_.num_threads);
  if (!candidates.ok()) return candidates.status();
  result.candidates = std::move(candidates).value();
  result.rejected.assign(result.candidates.size(), false);

  // Phase 1c: optional threshold-vector filtering (line 6, Algorithm 2).
  if (config_.enable_filtering) {
    StatusOr<FilterResult> filtered = FilterCandidates(
        result.similarity, result.candidates, config_.filter);
    if (!filtered.ok()) return filtered.status();
    result.candidates = std::move(filtered->candidates);
    result.rejected = std::move(filtered->rejected);
  }

  // Phase 2: refined DA (lines 7-9).
  RefinedDaConfig refined_config = config_.refined;
  refined_config.num_threads = config_.num_threads;
  StatusOr<RefinedDaResult> refined =
      RunRefinedDa(anonymized, auxiliary, result.candidates,
                   &result.rejected, result.similarity, refined_config);
  if (!refined.ok()) return refined.status();
  result.refined = std::move(refined).value();
  return result;
}

StatusOr<RefinedDaResult> RunStylometryBaseline(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const std::vector<std::vector<double>>& similarity,
    const RefinedDaConfig& config) {
  // Every auxiliary user is a candidate for every anonymized user; the
  // training problem is therefore identical across anonymized users, so
  // one shared classifier replaces per-user retraining (a ~|V1|x speedup
  // with the same semantics).
  std::vector<int> all(static_cast<size_t>(auxiliary.num_users()));
  std::iota(all.begin(), all.end(), 0);
  const CandidateSets candidates(
      static_cast<size_t>(anonymized.num_users()), all);
  return RunRefinedDaShared(anonymized, auxiliary, candidates, similarity,
                            config);
}

}  // namespace dehealth
