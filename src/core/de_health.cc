#include "core/de_health.h"

#include <numeric>

namespace dehealth {

DeHealth::DeHealth(DeHealthConfig config) : config_(config) {}

namespace {

/// Phases 1b-2 against an arbitrary score source; fills every result field
/// except `similarity` (the caller owns matrix materialization policy).
Status RunPhases(const DeHealth& attack, const UdaGraph& anonymized,
                 const UdaGraph& auxiliary, const CandidateSource& scores,
                 DeHealthResult& result) {
  // Phases 1b-1c: candidate selection + optional filtering.
  StatusOr<DeHealthCandidates> selected = attack.SelectCandidates(scores);
  if (!selected.ok()) return selected.status();
  result.candidates = std::move(selected->candidates);
  result.rejected = std::move(selected->rejected);

  // Phase 2: refined DA (lines 7-9).
  const DeHealthConfig& config = attack.config();
  RefinedDaConfig refined_config = config.refined;
  refined_config.num_threads = config.num_threads;
  StatusOr<RefinedDaResult> refined =
      RunRefinedDa(anonymized, auxiliary, result.candidates,
                   &result.rejected, scores, refined_config);
  if (!refined.ok()) return refined.status();
  result.refined = std::move(refined).value();
  return Status();
}

}  // namespace

StatusOr<DeHealthCandidates> DeHealth::SelectCandidates(
    const CandidateSource& scores) const {
  DeHealthCandidates state;

  // Phase 1b: Top-K candidate sets (Algorithm 1, line 5). Graph matching
  // needs the whole matrix at once, so it only works on dense sources.
  if (config_.selection == CandidateSelection::kGraphMatching &&
      scores.DenseMatrix() == nullptr)
    return Status::FailedPrecondition(
        "DeHealth: graph-matching selection requires a dense similarity "
        "matrix (disable use_index or use direct selection)");
  StatusOr<CandidateSets> candidates =
      config_.selection == CandidateSelection::kGraphMatching
          ? SelectTopKCandidates(*scores.DenseMatrix(), config_.top_k,
                                 config_.selection, config_.num_threads)
          : scores.TopK(config_.top_k, config_.num_threads);
  if (!candidates.ok()) return candidates.status();
  state.candidates = std::move(candidates).value();
  state.rejected.assign(state.candidates.size(), false);

  // Phase 1c: optional threshold-vector filtering (line 6, Algorithm 2).
  // Thresholds are global (max/min over all candidate scores), which is
  // why this belongs to the precomputed state and not the per-query path.
  if (config_.enable_filtering) {
    StatusOr<FilterResult> filtered =
        FilterCandidates(scores, state.candidates, config_.filter);
    if (!filtered.ok()) return filtered.status();
    state.candidates = std::move(filtered->candidates);
    state.rejected = std::move(filtered->rejected);
  }
  return state;
}

StatusOr<RefinedDaResult> DeHealth::RefineUsers(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const CandidateSource& scores, const DeHealthCandidates& state,
    const std::vector<int>& users) const {
  RefinedDaConfig refined_config = config_.refined;
  refined_config.num_threads = config_.num_threads;
  return RunRefinedDaForUsers(anonymized, auxiliary, users, state.candidates,
                              &state.rejected, scores, refined_config);
}

StatusOr<DeHealthResult> DeHealth::Run(const UdaGraph& anonymized,
                                       const UdaGraph& auxiliary) const {
  DeHealthResult result;

  // Phase 1a: structural similarity (Algorithm 1, lines 2-4). The
  // pipeline-level thread knob overrides the sub-config fields.
  SimilarityConfig sim_config = config_.similarity;
  sim_config.num_threads = config_.num_threads;
  const StructuralSimilarity similarity(anonymized, auxiliary, sim_config);
  result.similarity = similarity.ComputeMatrix();

  const DenseCandidateSource source(result.similarity);
  DEHEALTH_RETURN_IF_ERROR(
      RunPhases(*this, anonymized, auxiliary, source, result));
  return result;
}

StatusOr<DeHealthResult> DeHealth::RunWithSource(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const CandidateSource& scores) const {
  DeHealthResult result;
  if (const auto* matrix = scores.DenseMatrix()) result.similarity = *matrix;
  DEHEALTH_RETURN_IF_ERROR(
      RunPhases(*this, anonymized, auxiliary, scores, result));
  return result;
}

StatusOr<RefinedDaResult> RunStylometryBaseline(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const std::vector<std::vector<double>>& similarity,
    const RefinedDaConfig& config) {
  // Every auxiliary user is a candidate for every anonymized user; the
  // training problem is therefore identical across anonymized users, so
  // one shared classifier replaces per-user retraining (a ~|V1|x speedup
  // with the same semantics).
  std::vector<int> all(static_cast<size_t>(auxiliary.num_users()));
  std::iota(all.begin(), all.end(), 0);
  const CandidateSets candidates(
      static_cast<size_t>(anonymized.num_users()), all);
  return RunRefinedDaShared(anonymized, auxiliary, candidates, similarity,
                            config);
}

}  // namespace dehealth
