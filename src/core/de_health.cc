#include "core/de_health.h"

#include <numeric>

namespace dehealth {

DeHealth::DeHealth(DeHealthConfig config) : config_(config) {}

namespace {

/// Phases 1b-2 against an arbitrary score source; fills every result field
/// except `similarity` (the caller owns matrix materialization policy).
Status RunPhases(const DeHealthConfig& config, const UdaGraph& anonymized,
                 const UdaGraph& auxiliary, const CandidateSource& scores,
                 DeHealthResult& result) {
  // Phase 1b: Top-K candidate sets (Algorithm 1, line 5). Graph matching
  // needs the whole matrix at once, so it only works on dense sources.
  if (config.selection == CandidateSelection::kGraphMatching &&
      scores.DenseMatrix() == nullptr)
    return Status::FailedPrecondition(
        "DeHealth: graph-matching selection requires a dense similarity "
        "matrix (disable use_index or use direct selection)");
  StatusOr<CandidateSets> candidates =
      config.selection == CandidateSelection::kGraphMatching
          ? SelectTopKCandidates(*scores.DenseMatrix(), config.top_k,
                                 config.selection, config.num_threads)
          : scores.TopK(config.top_k, config.num_threads);
  if (!candidates.ok()) return candidates.status();
  result.candidates = std::move(candidates).value();
  result.rejected.assign(result.candidates.size(), false);

  // Phase 1c: optional threshold-vector filtering (line 6, Algorithm 2).
  if (config.enable_filtering) {
    StatusOr<FilterResult> filtered =
        FilterCandidates(scores, result.candidates, config.filter);
    if (!filtered.ok()) return filtered.status();
    result.candidates = std::move(filtered->candidates);
    result.rejected = std::move(filtered->rejected);
  }

  // Phase 2: refined DA (lines 7-9).
  RefinedDaConfig refined_config = config.refined;
  refined_config.num_threads = config.num_threads;
  StatusOr<RefinedDaResult> refined =
      RunRefinedDa(anonymized, auxiliary, result.candidates,
                   &result.rejected, scores, refined_config);
  if (!refined.ok()) return refined.status();
  result.refined = std::move(refined).value();
  return Status();
}

}  // namespace

StatusOr<DeHealthResult> DeHealth::Run(const UdaGraph& anonymized,
                                       const UdaGraph& auxiliary) const {
  DeHealthResult result;

  // Phase 1a: structural similarity (Algorithm 1, lines 2-4). The
  // pipeline-level thread knob overrides the sub-config fields.
  SimilarityConfig sim_config = config_.similarity;
  sim_config.num_threads = config_.num_threads;
  const StructuralSimilarity similarity(anonymized, auxiliary, sim_config);
  result.similarity = similarity.ComputeMatrix();

  const DenseCandidateSource source(result.similarity);
  DEHEALTH_RETURN_IF_ERROR(
      RunPhases(config_, anonymized, auxiliary, source, result));
  return result;
}

StatusOr<DeHealthResult> DeHealth::RunWithSource(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const CandidateSource& scores) const {
  DeHealthResult result;
  if (const auto* matrix = scores.DenseMatrix()) result.similarity = *matrix;
  DEHEALTH_RETURN_IF_ERROR(
      RunPhases(config_, anonymized, auxiliary, scores, result));
  return result;
}

StatusOr<RefinedDaResult> RunStylometryBaseline(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const std::vector<std::vector<double>>& similarity,
    const RefinedDaConfig& config) {
  // Every auxiliary user is a candidate for every anonymized user; the
  // training problem is therefore identical across anonymized users, so
  // one shared classifier replaces per-user retraining (a ~|V1|x speedup
  // with the same semantics).
  std::vector<int> all(static_cast<size_t>(auxiliary.num_users()));
  std::iota(all.begin(), all.end(), 0);
  const CandidateSets candidates(
      static_cast<size_t>(anonymized.num_users()), all);
  return RunRefinedDaShared(anonymized, auxiliary, candidates, similarity,
                            config);
}

}  // namespace dehealth
