// SSE2 block kernel (x86-64 baseline, so this TU needs no extra -m flags).
// Bitwise-identity rules (see feature_store_kernels.h): vectorize across
// candidate lanes only, sequential ascending-order accumulation per lane,
// separate mul/add (explicit intrinsics are never contracted to FMA), zero
// denominators blended to 1.0 before the divide.

#include "core/feature_store_kernels.h"

#if defined(__SSE2__) || defined(_M_X64)

#include <emmintrin.h>

#include <algorithm>

namespace dehealth::internal {

namespace {

constexpr int kVec = 2;  // doubles per __m128d
constexpr int kHalves = kScoreBlockWidth / kVec;

/// min(a,b)/max(a,b) with MinMaxRatio's 0/0 -> 1 convention, two lanes at
/// a time. Inputs are non-negative degrees, so _mm_min_pd/_mm_max_pd agree
/// with std::min/std::max bitwise.
inline __m128d MinMaxRatioVec(__m128d q, __m128d d) {
  const __m128d zero = _mm_setzero_pd();
  const __m128d one = _mm_set1_pd(1.0);
  const __m128d mx = _mm_max_pd(q, d);
  const __m128d mn = _mm_min_pd(q, d);
  const __m128d both_zero = _mm_cmpeq_pd(mx, zero);
  // Blend via and/andnot (SSE2 has no blendv): divide by 1 where max == 0,
  // then overwrite the quotient with 1.0 there.
  const __m128d safe_mx =
      _mm_or_pd(_mm_andnot_pd(both_zero, mx), _mm_and_pd(both_zero, one));
  const __m128d ratio = _mm_div_pd(mn, safe_mx);
  return _mm_or_pd(_mm_andnot_pd(both_zero, ratio),
                   _mm_and_pd(both_zero, one));
}

/// Cosine term for lanes [half*2, half*2+2): one accumulator per lane,
/// elements added in ascending order.
inline __m128d CosineVec(const double* q, int q_len, double q_norm,
                         const double* data, int stride,
                         const double* v_norm, int half) {
  const __m128d zero = _mm_setzero_pd();
  if (q_norm == 0.0) return zero;
  const int n = std::min(q_len, stride);
  __m128d dot = zero;
  const double* base = data + half * kVec;
  for (int i = 0; i < n; ++i) {
    const __m128d qv = _mm_set1_pd(q[i]);
    const __m128d x = _mm_loadu_pd(base + i * kScoreBlockWidth);
    dot = _mm_add_pd(dot, _mm_mul_pd(qv, x));
  }
  const __m128d vn = _mm_loadu_pd(v_norm + half * kVec);
  const __m128d vn_zero = _mm_cmpeq_pd(vn, zero);
  __m128d denom = _mm_mul_pd(_mm_set1_pd(q_norm), vn);
  // Where the candidate norm is 0 its lane's dot is +0.0 too; divide by
  // 1.0 there so +0/1 reproduces the scalar early-return's 0.0 without a
  // 0/0 NaN.
  denom = _mm_or_pd(_mm_andnot_pd(vn_zero, denom),
                    _mm_and_pd(vn_zero, _mm_set1_pd(1.0)));
  return _mm_div_pd(dot, denom);
}

void ScoreBlockSse2(const BlockKernelArgs& a, double out[kScoreBlockWidth]) {
  for (int h = 0; h < kHalves; ++h) {
    const __m128d r1 = MinMaxRatioVec(_mm_set1_pd(a.q_degree),
                                      _mm_loadu_pd(a.degree + h * kVec));
    const __m128d r2 =
        MinMaxRatioVec(_mm_set1_pd(a.q_weighted_degree),
                       _mm_loadu_pd(a.weighted_degree + h * kVec));
    const __m128d ncs = CosineVec(a.q_ncs, a.q_ncs_len, a.q_ncs_norm, a.ncs,
                                  a.ncs_stride, a.ncs_norm, h);
    const __m128d degree_sim = _mm_add_pd(_mm_add_pd(r1, r2), ncs);
    const __m128d hop = CosineVec(a.q_hop, a.q_hop_len, a.q_hop_norm, a.hop,
                                  a.hop_stride, a.hop_norm, h);
    const __m128d whop = CosineVec(a.q_whop, a.q_whop_len, a.q_whop_norm,
                                   a.whop, a.whop_stride, a.whop_norm, h);
    const __m128d distance_sim = _mm_add_pd(hop, whop);
    const __m128d attr = _mm_loadu_pd(a.attr_sim + h * kVec);
    const __m128d score = _mm_add_pd(
        _mm_add_pd(_mm_mul_pd(_mm_set1_pd(a.c1), degree_sim),
                   _mm_mul_pd(_mm_set1_pd(a.c2), distance_sim)),
        _mm_mul_pd(_mm_set1_pd(a.c3), attr));
    _mm_storeu_pd(out + h * kVec, score);
  }
}

}  // namespace

BlockKernelFn Sse2BlockKernel() { return &ScoreBlockSse2; }

}  // namespace dehealth::internal

#else  // !__SSE2__

namespace dehealth::internal {
BlockKernelFn Sse2BlockKernel() { return nullptr; }
}  // namespace dehealth::internal

#endif
