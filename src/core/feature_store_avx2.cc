// AVX2 block kernel. This translation unit is the only one compiled with
// -mavx2 (see src/core/CMakeLists.txt); when the toolchain can't target
// AVX2 the fallback stub below keeps the link whole and dispatch falls
// through to SSE2/scalar.
//
// Bitwise-identity rules (see feature_store_kernels.h): vectorize across
// candidate lanes only, sequential ascending-order accumulation per lane,
// explicit mul/add intrinsics (never contracted to FMA), zero denominators
// blended to 1.0 before the divide.

#include "core/feature_store_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>

namespace dehealth::internal {

namespace {

constexpr int kVec = 4;  // doubles per __m256d
constexpr int kHalves = kScoreBlockWidth / kVec;

/// min(a,b)/max(a,b) with MinMaxRatio's 0/0 -> 1 convention, four lanes at
/// a time. Inputs are non-negative degrees, so _mm256_min_pd/_mm256_max_pd
/// agree with std::min/std::max bitwise.
inline __m256d MinMaxRatioVec(__m256d q, __m256d d) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d mx = _mm256_max_pd(q, d);
  const __m256d mn = _mm256_min_pd(q, d);
  const __m256d both_zero = _mm256_cmp_pd(mx, zero, _CMP_EQ_OQ);
  const __m256d safe_mx = _mm256_blendv_pd(mx, one, both_zero);
  const __m256d ratio = _mm256_div_pd(mn, safe_mx);
  return _mm256_blendv_pd(ratio, one, both_zero);
}

/// Cosine term for lanes [half*4, half*4+4): one accumulator per lane,
/// elements added in ascending order.
inline __m256d CosineVec(const double* q, int q_len, double q_norm,
                         const double* data, int stride,
                         const double* v_norm, int half) {
  const __m256d zero = _mm256_setzero_pd();
  if (q_norm == 0.0) return zero;
  const int n = std::min(q_len, stride);
  __m256d dot = zero;
  const double* base = data + half * kVec;
  for (int i = 0; i < n; ++i) {
    const __m256d qv = _mm256_set1_pd(q[i]);
    const __m256d x = _mm256_loadu_pd(base + i * kScoreBlockWidth);
    dot = _mm256_add_pd(dot, _mm256_mul_pd(qv, x));
  }
  const __m256d vn = _mm256_loadu_pd(v_norm + half * kVec);
  const __m256d vn_zero = _mm256_cmp_pd(vn, zero, _CMP_EQ_OQ);
  // Where the candidate norm is 0 its lane's dot is +0.0 too; divide by
  // 1.0 there so +0/1 reproduces the scalar early-return's 0.0 without a
  // 0/0 NaN.
  __m256d denom = _mm256_mul_pd(_mm256_set1_pd(q_norm), vn);
  denom = _mm256_blendv_pd(denom, _mm256_set1_pd(1.0), vn_zero);
  return _mm256_div_pd(dot, denom);
}

void ScoreBlockAvx2(const BlockKernelArgs& a, double out[kScoreBlockWidth]) {
  for (int h = 0; h < kHalves; ++h) {
    const __m256d r1 = MinMaxRatioVec(_mm256_set1_pd(a.q_degree),
                                      _mm256_loadu_pd(a.degree + h * kVec));
    const __m256d r2 =
        MinMaxRatioVec(_mm256_set1_pd(a.q_weighted_degree),
                       _mm256_loadu_pd(a.weighted_degree + h * kVec));
    const __m256d ncs = CosineVec(a.q_ncs, a.q_ncs_len, a.q_ncs_norm, a.ncs,
                                  a.ncs_stride, a.ncs_norm, h);
    const __m256d degree_sim = _mm256_add_pd(_mm256_add_pd(r1, r2), ncs);
    const __m256d hop = CosineVec(a.q_hop, a.q_hop_len, a.q_hop_norm, a.hop,
                                  a.hop_stride, a.hop_norm, h);
    const __m256d whop = CosineVec(a.q_whop, a.q_whop_len, a.q_whop_norm,
                                   a.whop, a.whop_stride, a.whop_norm, h);
    const __m256d distance_sim = _mm256_add_pd(hop, whop);
    const __m256d attr = _mm256_loadu_pd(a.attr_sim + h * kVec);
    const __m256d score = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(_mm256_set1_pd(a.c1), degree_sim),
                      _mm256_mul_pd(_mm256_set1_pd(a.c2), distance_sim)),
        _mm256_mul_pd(_mm256_set1_pd(a.c3), attr));
    _mm256_storeu_pd(out + h * kVec, score);
  }
}

}  // namespace

BlockKernelFn Avx2BlockKernel() { return &ScoreBlockAvx2; }

}  // namespace dehealth::internal

#else  // !__AVX2__

namespace dehealth::internal {
BlockKernelFn Avx2BlockKernel() { return nullptr; }
}  // namespace dehealth::internal

#endif
