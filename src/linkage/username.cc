#include "linkage/username.h"

#include <cmath>

namespace dehealth {

namespace {

constexpr const char* kCommonWords[] = {
    "butterfly", "sunshine", "shadow",  "dragon",  "flower", "angel",
    "tiger",     "music",    "happy",   "winter",  "summer", "storm",
    "river",     "phoenix",  "rose",    "wolf",    "star",   "moon",
    "blue",      "silver",
};

constexpr const char* kFirstInitials = "abcdefghijklmnopqrstuvwxyz";

constexpr const char* kSurnames[] = {
    "smith",  "jones",  "brown",  "wilson", "taylor", "clark",
    "walker", "wright", "turner", "baker",  "carter", "morris",
    "cooper", "reed",   "bailey", "howard", "wolfe",  "hayes",
};

constexpr const char* kHandleSyllables[] = {
    "zyx", "qua", "vex", "kro", "phi", "juk", "wiz", "trx",
    "nyx", "gZr", "blk", "Qy",  "xv",  "zz",  "jq",  "kx",
};

}  // namespace

std::string GenerateUsername(UsernameStyle style, Rng& rng) {
  std::string name;
  switch (style) {
    case UsernameStyle::kCommonWord: {
      name = kCommonWords[rng.NextBounded(sizeof(kCommonWords) /
                                          sizeof(kCommonWords[0]))];
      if (rng.NextBool(0.5)) {
        const int digits = static_cast<int>(rng.NextInt(1, 2));
        for (int d = 0; d < digits; ++d)
          name += static_cast<char>('0' + rng.NextBounded(10));
      }
      break;
    }
    case UsernameStyle::kNameAndNumber: {
      name += kFirstInitials[rng.NextBounded(26)];
      name += kSurnames[rng.NextBounded(sizeof(kSurnames) /
                                        sizeof(kSurnames[0]))];
      const int digits = static_cast<int>(rng.NextInt(2, 4));
      for (int d = 0; d < digits; ++d)
        name += static_cast<char>('0' + rng.NextBounded(10));
      break;
    }
    case UsernameStyle::kHandle: {
      const int parts = static_cast<int>(rng.NextInt(2, 4));
      for (int p = 0; p < parts; ++p)
        name += kHandleSyllables[rng.NextBounded(
            sizeof(kHandleSyllables) / sizeof(kHandleSyllables[0]))];
      if (rng.NextBool(0.7)) {
        const int digits = static_cast<int>(rng.NextInt(2, 5));
        for (int d = 0; d < digits; ++d)
          name += static_cast<char>('0' + rng.NextBounded(10));
      }
      break;
    }
  }
  return name;
}

UsernameEntropyModel::UsernameEntropyModel()
    : transition_counts_(kStates * kStates, 0.0),
      state_totals_(kStates, 0.0) {}

int UsernameEntropyModel::CharState(char c) const {
  const int v = static_cast<unsigned char>(c);
  if (v < 32 || v >= 127) return kStart;  // fold non-printables
  return v - 32;
}

void UsernameEntropyModel::Train(const std::vector<std::string>& usernames) {
  for (const std::string& name : usernames) {
    int prev = kStart;
    for (char c : name) {
      const int cur = CharState(c);
      transition_counts_[static_cast<size_t>(prev) * kStates +
                         static_cast<size_t>(cur)] += 1.0;
      state_totals_[static_cast<size_t>(prev)] += 1.0;
      prev = cur;
    }
    if (!name.empty()) trained_ = true;
  }
}

double UsernameEntropyModel::Bits(const std::string& username) const {
  if (username.empty()) return 0.0;
  double bits = 0.0;
  int prev = kStart;
  for (char c : username) {
    const int cur = CharState(c);
    const double count =
        transition_counts_[static_cast<size_t>(prev) * kStates +
                           static_cast<size_t>(cur)] +
        1.0;  // add-one smoothing
    const double total =
        state_totals_[static_cast<size_t>(prev)] + kStates;
    bits += -std::log2(count / total);
    prev = cur;
  }
  return bits;
}

}  // namespace dehealth
