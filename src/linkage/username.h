#ifndef DEHEALTH_LINKAGE_USERNAME_H_
#define DEHEALTH_LINKAGE_USERNAME_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace dehealth {

/// How distinctive a generated username is. Common-pool names ("jsmith",
/// "butterfly") are picked independently by many people; personal names
/// ("qwolfe6589") are effectively unique — the Perito et al. observation
/// that drives NameLink.
enum class UsernameStyle {
  kCommonWord,     // dictionary word, maybe a digit or two
  kNameAndNumber,  // initial + surname + number
  kHandle,         // invented high-entropy handle
};

/// Generates a username in the given style.
std::string GenerateUsername(UsernameStyle style, Rng& rng);

/// Order-1 character-level Markov model over usernames, used to estimate a
/// username's information content (bits). Mirrors the entropy estimator of
/// Perito et al. ("How unique and traceable are usernames?"): rare
/// character transitions => high surprisal => likely unique owner.
class UsernameEntropyModel {
 public:
  UsernameEntropyModel();

  /// Accumulates transition counts from a corpus of usernames.
  void Train(const std::vector<std::string>& usernames);

  /// Total surprisal −log2 P(username) under the trained model (with
  /// add-one smoothing). Longer and weirder names score higher. Returns 0
  /// for an empty string.
  double Bits(const std::string& username) const;

  /// True once Train has seen at least one username.
  bool trained() const { return trained_; }

 private:
  // 96 printable-ASCII states plus a start state.
  static constexpr int kStates = 97;
  static constexpr int kStart = 96;
  int CharState(char c) const;

  std::vector<double> transition_counts_;  // kStates x kStates
  std::vector<double> state_totals_;
  bool trained_ = false;
};

}  // namespace dehealth

#endif  // DEHEALTH_LINKAGE_USERNAME_H_
