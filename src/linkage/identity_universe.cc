#include "linkage/identity_universe.h"

#include "common/string_utils.h"
#include "linkage/username.h"

namespace dehealth {

const char* ServiceName(Service s) {
  switch (s) {
    case Service::kHealthForum: return "HealthForum";
    case Service::kOtherHealthForum: return "OtherHealthForum";
    case Service::kSocialA: return "SocialA";
    case Service::kSocialB: return "SocialB";
    case Service::kSocialC: return "SocialC";
    case Service::kDirectory: return "Directory";
    case Service::kServiceCount: break;
  }
  return "?";
}

namespace {

constexpr const char* kFirstNames[] = {
    "james", "mary",  "john",   "linda", "robert", "susan",
    "david", "karen", "daniel", "nancy", "paul",   "lisa",
    "mark",  "betty", "steven", "helen", "kevin",  "donna",
};
constexpr const char* kLastNames[] = {
    "smith",  "johnson", "williams", "brown", "jones",  "garcia",
    "miller", "davis",   "martinez", "lopez", "wilson", "anderson",
    "thomas", "taylor",  "moore",    "white", "harris", "clark",
};
constexpr const char* kCities[] = {
    "springfield", "riverton",  "lakewood", "fairview", "georgetown",
    "clinton",     "madison",   "salem",    "bristol",  "ashland",
};

std::string MutateUsername(const std::string& base, Rng& rng) {
  std::string out = base;
  switch (rng.NextBounded(3)) {
    case 0: {  // append digits
      const int digits = static_cast<int>(rng.NextInt(1, 3));
      for (int d = 0; d < digits; ++d)
        out += static_cast<char>('0' + rng.NextBounded(10));
      break;
    }
    case 1:  // underscore prefix
      out = "_" + out;
      break;
    default:  // append a short suffix
      out += rng.NextBool(0.5) ? "x" : "99";
      break;
  }
  return out;
}

AvatarKind SampleAvatarKind(const UniverseConfig& c, const Person& person,
                            Rng& rng) {
  if (!person.sets_avatars) return AvatarKind::kNone;
  // A small chance any given account is left without an avatar anyway.
  if (!rng.NextBool(0.85)) return AvatarKind::kNone;
  if (person.uses_self_photo) return AvatarKind::kHumanSelf;
  if (rng.NextBool(c.p_avatar_default)) return AvatarKind::kDefault;
  // Remaining mass split across the excluded categories.
  switch (rng.NextBounded(3)) {
    case 0: return AvatarKind::kNonHuman;
    case 1: return AvatarKind::kFictitious;
    default: return AvatarKind::kKids;
  }
}

}  // namespace

StatusOr<IdentityUniverse> BuildIdentityUniverse(const UniverseConfig& c) {
  if (c.num_persons <= 0)
    return Status::InvalidArgument(
        "BuildIdentityUniverse: num_persons must be > 0");
  for (double p :
       {c.p_health_forum, c.p_other_health_forum, c.p_social,
        c.p_username_reuse, c.p_username_mutation, c.p_has_avatar,
        c.p_avatar_human, c.p_avatar_default, c.p_avatar_reuse_health,
        c.p_avatar_reuse_social,
        c.p_style_common, c.p_style_name_number}) {
    if (p < 0.0 || p > 1.0)
      return Status::InvalidArgument(
          "BuildIdentityUniverse: probabilities must be in [0, 1]");
  }
  if (c.p_username_reuse + c.p_username_mutation > 1.0)
    return Status::InvalidArgument(
        "BuildIdentityUniverse: reuse + mutation probability exceeds 1");

  Rng rng(c.seed);
  IdentityUniverse universe;
  universe.persons.reserve(static_cast<size_t>(c.num_persons));
  universe.accounts_by_service.resize(static_cast<size_t>(kNumServices));

  int next_photo_id = 0;
  int next_fresh_avatar_id = 1'000'000;  // non-reused images are unique

  for (int i = 0; i < c.num_persons; ++i) {
    Person person;
    person.id = i;
    person.full_name = StrFormat(
        "%s %s",
        kFirstNames[rng.NextBounded(sizeof(kFirstNames) /
                                    sizeof(kFirstNames[0]))],
        kLastNames[rng.NextBounded(sizeof(kLastNames) /
                                   sizeof(kLastNames[0]))]);
    person.birth_year = static_cast<int>(rng.NextInt(1945, 2000));
    person.phone = StrFormat("555-%04d", static_cast<int>(rng.NextInt(0, 9999)));
    person.city =
        kCities[rng.NextBounded(sizeof(kCities) / sizeof(kCities[0]))];
    person.photo_id = next_photo_id++;
    person.sets_avatars = rng.NextBool(c.p_has_avatar);
    person.uses_self_photo =
        person.sets_avatars && rng.NextBool(c.p_avatar_human);

    UsernameStyle style;
    const double sr = rng.NextDouble();
    if (sr < c.p_style_common) {
      style = UsernameStyle::kCommonWord;
    } else if (sr < c.p_style_common + c.p_style_name_number) {
      style = UsernameStyle::kNameAndNumber;
    } else {
      style = UsernameStyle::kHandle;
    }
    person.base_username = GenerateUsername(style, rng);

    // Create accounts.
    const struct {
      Service service;
      double prob;
    } memberships[] = {
        {Service::kHealthForum, c.p_health_forum},
        {Service::kOtherHealthForum, c.p_other_health_forum},
        {Service::kSocialA, c.p_social},
        {Service::kSocialB, c.p_social},
        {Service::kSocialC, c.p_social},
        {Service::kDirectory, 0.8},  // most people appear in directories
    };
    for (const auto& m : memberships) {
      if (!rng.NextBool(m.prob)) continue;
      Account account;
      account.person_id = i;
      account.service = m.service;
      const double ur = rng.NextDouble();
      if (ur < c.p_username_reuse) {
        account.username = person.base_username;
      } else if (ur < c.p_username_reuse + c.p_username_mutation) {
        account.username = MutateUsername(person.base_username, rng);
      } else {
        account.username = GenerateUsername(style, rng);
      }
      account.avatar_kind = SampleAvatarKind(c, person, rng);
      if (account.avatar_kind == AvatarKind::kHumanSelf) {
        const double reuse_prob = m.service == Service::kHealthForum
                                      ? c.p_avatar_reuse_health
                                      : c.p_avatar_reuse_social;
        account.avatar_id = rng.NextBool(reuse_prob)
                                ? person.photo_id
                                : next_fresh_avatar_id++;
      } else if (account.avatar_kind != AvatarKind::kNone) {
        // Non-self avatars: drawn from a small shared pool (stock images),
        // so they can collide across unrelated people.
        account.avatar_id =
            2'000'000 + static_cast<int>(rng.NextBounded(500));
      }
      universe.accounts_by_service[static_cast<size_t>(m.service)]
          .push_back(static_cast<int>(universe.accounts.size()));
      universe.accounts.push_back(std::move(account));
    }
    universe.persons.push_back(std::move(person));
  }
  return universe;
}

}  // namespace dehealth
