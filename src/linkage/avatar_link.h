#ifndef DEHEALTH_LINKAGE_AVATAR_LINK_H_
#define DEHEALTH_LINKAGE_AVATAR_LINK_H_

#include <vector>

#include "linkage/identity_universe.h"

namespace dehealth {

/// One avatar-based link: a health-forum account matched (by identical
/// profile image) to an account on a social service.
struct AvatarLinkResult {
  int source_account = 0;
  int target_account = 0;
  Service target_service = Service::kSocialA;
  bool correct = false;  // ground truth
};

/// AvatarLink configuration (Section VI-A/B).
struct AvatarLinkConfig {
  /// Reject avatars shared by more than this many accounts on the target
  /// side (stock images collide across strangers; the paper's manual
  /// validation would throw such results out).
  int max_image_owners = 2;
};

/// The AvatarLink tool: applies the paper's four avatar exclusion filters
/// (default images, non-human subjects, fictitious persons, kids-only
/// photos), then matches the remaining avatars against the target services
/// by exact image identity — the offline stand-in for reverse image search.
class AvatarLink {
 public:
  explicit AvatarLink(const IdentityUniverse& universe,
                      AvatarLinkConfig config = {});

  /// Indices of `source` accounts surviving the four exclusion conditions.
  std::vector<int> FilterTargets(Service source) const;

  /// Runs the linkage from `source` to every social service.
  std::vector<AvatarLinkResult> Run(Service source) const;

 private:
  const IdentityUniverse& universe_;
  AvatarLinkConfig config_;
};

}  // namespace dehealth

#endif  // DEHEALTH_LINKAGE_AVATAR_LINK_H_
