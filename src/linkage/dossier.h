#ifndef DEHEALTH_LINKAGE_DOSSIER_H_
#define DEHEALTH_LINKAGE_DOSSIER_H_

#include <string>
#include <vector>

#include "linkage/avatar_link.h"
#include "linkage/identity_universe.h"
#include "linkage/name_link.h"

namespace dehealth {

/// What the attacker assembles per re-identified health-forum account
/// (Section VI-B: "we can acquire most of the 347 users' full name,
/// medical/health information, birthdate, phone numbers, addresses...").
/// Identity fields are read from the *linked* public accounts, so a wrong
/// link produces a wrong dossier — exactly like the real attack.
struct Dossier {
  int health_account = 0;       // index into universe.accounts
  std::string forum_username;   // the pseudonym being de-anonymized

  /// Identity claim aggregated from the linked social/directory accounts.
  std::string full_name;
  int birth_year = 0;
  std::string phone;
  std::string city;

  std::vector<int> linked_accounts;  // all matched account indices
  int num_social_services = 0;       // distinct social networks linked
  bool has_other_forum_history = false;  // NameLink found the other forum
  bool cross_validated = false;  // found by BOTH NameLink and AvatarLink

  /// Ground truth (evaluation only): does the claimed identity belong to
  /// the forum account's real owner?
  bool identity_correct = false;
};

/// Merges NameLink and AvatarLink results into per-account dossiers. The
/// claimed identity is taken by majority vote over the persons behind the
/// avatar-linked social accounts (ties broken by the first seen), then
/// enriched from the directory service when the claimed person has a
/// directory record. Accounts with no avatar link but a NameLink match
/// still get a (name-less) aggregation dossier.
std::vector<Dossier> BuildDossiers(
    const IdentityUniverse& universe,
    const std::vector<NameLinkResult>& name_links,
    const std::vector<AvatarLinkResult>& avatar_links);

/// Fraction of dossiers with a claimed identity that is correct.
double DossierPrecision(const std::vector<Dossier>& dossiers);

}  // namespace dehealth

#endif  // DEHEALTH_LINKAGE_DOSSIER_H_
