#include "linkage/avatar_link.h"

#include <unordered_map>

namespace dehealth {

AvatarLink::AvatarLink(const IdentityUniverse& universe,
                       AvatarLinkConfig config)
    : universe_(universe), config_(config) {}

std::vector<int> AvatarLink::FilterTargets(Service source) const {
  std::vector<int> kept;
  for (int idx : universe_.AccountsOf(source)) {
    const Account& a = universe_.accounts[static_cast<size_t>(idx)];
    // The four exclusion conditions: default avatars, non-human objects,
    // fictitious persons, kids-only pictures (and accounts with no avatar).
    if (a.avatar_kind == AvatarKind::kHumanSelf) kept.push_back(idx);
  }
  return kept;
}

std::vector<AvatarLinkResult> AvatarLink::Run(Service source) const {
  const Service socials[] = {Service::kSocialA, Service::kSocialB,
                             Service::kSocialC};

  // Index social accounts by avatar image id.
  std::unordered_map<int, std::vector<int>> image_index;
  for (Service s : socials)
    for (int idx : universe_.AccountsOf(s)) {
      const Account& a = universe_.accounts[static_cast<size_t>(idx)];
      if (a.avatar_id >= 0) image_index[a.avatar_id].push_back(idx);
    }

  std::vector<AvatarLinkResult> links;
  for (int src_idx : FilterTargets(source)) {
    const Account& src = universe_.accounts[static_cast<size_t>(src_idx)];
    auto it = image_index.find(src.avatar_id);
    if (it == image_index.end()) continue;
    if (static_cast<int>(it->second.size()) > config_.max_image_owners)
      continue;  // widely-shared image: rejected at validation
    for (int tgt_idx : it->second) {
      const Account& tgt = universe_.accounts[static_cast<size_t>(tgt_idx)];
      AvatarLinkResult link;
      link.source_account = src_idx;
      link.target_account = tgt_idx;
      link.target_service = tgt.service;
      link.correct = src.person_id == tgt.person_id;
      links.push_back(link);
    }
  }
  return links;
}

}  // namespace dehealth
