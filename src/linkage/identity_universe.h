#ifndef DEHEALTH_LINKAGE_IDENTITY_UNIVERSE_H_
#define DEHEALTH_LINKAGE_IDENTITY_UNIVERSE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace dehealth {

/// Internet services in the synthetic universe. kHealthForum plays WebMD
/// (the DA target); kOtherHealthForum plays HealthBoards (the NameLink
/// aggregation target); the socials play Facebook/Twitter/LinkedIn
/// (AvatarLink targets); kDirectory plays Whitepages.
enum class Service {
  kHealthForum = 0,
  kOtherHealthForum,
  kSocialA,
  kSocialB,
  kSocialC,
  kDirectory,
  kServiceCount
};

inline constexpr int kNumServices = static_cast<int>(Service::kServiceCount);
const char* ServiceName(Service s);

/// What an account's avatar depicts — the AvatarLink pre-filter excludes
/// everything but kHumanSelf (the paper's four exclusion conditions).
enum class AvatarKind {
  kNone,       // no avatar set
  kDefault,    // stock/default image
  kHumanSelf,  // a real photo of the account owner
  kNonHuman,   // pets, scenery, logos
  kFictitious, // cartoon / fictional person
  kKids,       // children only
};

/// A real-world person behind one or more accounts.
struct Person {
  int id = 0;
  std::string full_name;
  int birth_year = 0;
  std::string phone;
  std::string city;
  /// The person's preferred base username and how identifying it is.
  std::string base_username;
  /// Photo identity: two accounts showing the same photo share this id.
  int photo_id = -1;
  /// Avatar habits are a per-person trait: someone who uses their own
  /// photo tends to do it on every service (this correlation is what makes
  /// the paper's cross-network AvatarLink matches possible).
  bool sets_avatars = false;
  bool uses_self_photo = false;
};

/// One account on one service.
struct Account {
  int person_id = 0;
  Service service = Service::kHealthForum;
  std::string username;
  AvatarKind avatar_kind = AvatarKind::kNone;
  int avatar_id = -1;  // equal ids <=> visually identical images
};

/// Knobs of the synthetic population. Defaults are tuned so the linkage
/// attack reproduces the paper's Section-VI shape (≈12% of filtered targets
/// avatar-linkable, a large NameLink∩AvatarLink overlap).
struct UniverseConfig {
  int num_persons = 6000;
  uint64_t seed = 11;

  /// Probability a person holds an account on each service.
  double p_health_forum = 0.5;
  double p_other_health_forum = 0.35;
  double p_social = 0.55;  // per social service

  /// Username habits (Perito et al.): probability of reusing the base
  /// username exactly on a service, vs. mutating it, vs. a fresh one.
  double p_username_reuse = 0.55;
  double p_username_mutation = 0.2;

  /// Avatar habits. The first two are per-person traits; the last two are
  /// per-account draws conditioned on those traits.
  double p_has_avatar = 0.6;     // person sets avatars at all
  double p_avatar_human = 0.45;  // avatar-setting person uses own photo
  double p_avatar_default = 0.3;  // non-self-photo account: default image
  /// Self-photo accounts reuse THE canonical photo with different rates on
  /// the health forum (people are warier there) vs. social networks —
  /// this asymmetry produces the paper's "12.4% linkable, but 33% of those
  /// on 2+ networks" pattern.
  double p_avatar_reuse_health = 0.22;
  double p_avatar_reuse_social = 0.65;

  /// Username style mix across the population.
  double p_style_common = 0.35;
  double p_style_name_number = 0.4;  // rest are high-entropy handles
};

/// The generated population with per-service account indexes.
struct IdentityUniverse {
  std::vector<Person> persons;
  std::vector<Account> accounts;
  /// accounts_by_service[s] = indexes into `accounts`.
  std::vector<std::vector<int>> accounts_by_service;

  /// All accounts of a service.
  const std::vector<int>& AccountsOf(Service s) const {
    return accounts_by_service[static_cast<size_t>(s)];
  }
};

/// Builds the universe. Deterministic in config.seed. Fails on invalid
/// probabilities or a non-positive population.
StatusOr<IdentityUniverse> BuildIdentityUniverse(const UniverseConfig& c);

}  // namespace dehealth

#endif  // DEHEALTH_LINKAGE_IDENTITY_UNIVERSE_H_
