#ifndef DEHEALTH_LINKAGE_ATTACK_H_
#define DEHEALTH_LINKAGE_ATTACK_H_

#include <set>
#include <vector>

#include "common/status.h"
#include "linkage/avatar_link.h"
#include "linkage/identity_universe.h"
#include "linkage/name_link.h"

namespace dehealth {

/// Aggregate outcome of the full linkage attack (the numbers Section VI-B
/// reports for the proof-of-concept run against WebMD).
struct LinkageReport {
  int health_forum_accounts = 0;   // all source accounts
  int filtered_avatar_targets = 0;  // the "2805" after avatar filtering

  int name_links = 0;            // accounts linked to the other forum
  int name_links_correct = 0;    // ground-truth correct among them
  int avatar_linked_users = 0;   // distinct accounts linked to >=1 social
  int avatar_links_correct = 0;  // correct account-level avatar links
  int avatar_links_total = 0;
  int users_on_two_plus_socials = 0;  // linked to >= 2 social services
  int overlap_users = 0;  // linked by BOTH NameLink and AvatarLink

  /// Fraction of filtered avatar targets successfully linked (the paper's
  /// 347/2805 = 12.4%).
  double AvatarLinkRate() const;
  /// Precision of the two tools against ground truth.
  double NameLinkPrecision() const;
  double AvatarLinkPrecision() const;
};

/// Configuration of the combined attack.
struct LinkageAttackConfig {
  NameLinkConfig name_link;
  AvatarLinkConfig avatar_link;
};

/// Runs NameLink (health forum -> other health forum, the information-
/// aggregation objective) and AvatarLink (health forum -> social networks,
/// the real-identity objective), then cross-validates the two result sets.
class LinkageAttack {
 public:
  explicit LinkageAttack(const IdentityUniverse& universe,
                         LinkageAttackConfig config = {});

  LinkageReport Run() const;

  /// Individual tool outputs (for inspection / the example binaries).
  std::vector<NameLinkResult> RunNameLink() const;
  std::vector<AvatarLinkResult> RunAvatarLink() const;

 private:
  const IdentityUniverse& universe_;
  LinkageAttackConfig config_;
  NameLink name_link_;
  AvatarLink avatar_link_;
};

}  // namespace dehealth

#endif  // DEHEALTH_LINKAGE_ATTACK_H_
