#include "linkage/dossier.h"

#include <map>
#include <set>

namespace dehealth {

std::vector<Dossier> BuildDossiers(
    const IdentityUniverse& universe,
    const std::vector<NameLinkResult>& name_links,
    const std::vector<AvatarLinkResult>& avatar_links) {
  struct Working {
    std::vector<int> linked;
    std::map<int, int> person_votes;  // person id -> #avatar links
    std::set<int> social_services;
    bool name_linked = false;
  };
  std::map<int, Working> by_account;

  for (const NameLinkResult& link : name_links) {
    Working& w = by_account[link.source_account];
    w.linked.push_back(link.target_account);
    w.name_linked = true;
  }
  for (const AvatarLinkResult& link : avatar_links) {
    Working& w = by_account[link.source_account];
    w.linked.push_back(link.target_account);
    w.social_services.insert(static_cast<int>(link.target_service));
    const Account& target =
        universe.accounts[static_cast<size_t>(link.target_account)];
    ++w.person_votes[target.person_id];
  }

  // Directory index: person id -> has a directory record.
  std::set<int> in_directory;
  for (int idx : universe.AccountsOf(Service::kDirectory))
    in_directory.insert(
        universe.accounts[static_cast<size_t>(idx)].person_id);

  std::vector<Dossier> dossiers;
  dossiers.reserve(by_account.size());
  for (const auto& [account_idx, w] : by_account) {
    const Account& source =
        universe.accounts[static_cast<size_t>(account_idx)];
    Dossier d;
    d.health_account = account_idx;
    d.forum_username = source.username;
    d.linked_accounts = w.linked;
    d.num_social_services = static_cast<int>(w.social_services.size());
    d.has_other_forum_history = w.name_linked;
    d.cross_validated = w.name_linked && !w.social_services.empty();

    if (!w.person_votes.empty()) {
      // Majority person across avatar links is the claimed identity.
      int claimed = -1, best_votes = -1;
      for (const auto& [person, votes] : w.person_votes)
        if (votes > best_votes) {
          best_votes = votes;
          claimed = person;
        }
      const Person& person =
          universe.persons[static_cast<size_t>(claimed)];
      d.full_name = person.full_name;
      d.birth_year = person.birth_year;
      d.city = person.city;
      // Phone numbers come from the directory lookup step ("leveraging
      // the Whitepage service, detailed social profiles ... obtained").
      if (in_directory.count(claimed)) d.phone = person.phone;
      d.identity_correct = claimed == source.person_id;
    }
    dossiers.push_back(std::move(d));
  }
  return dossiers;
}

double DossierPrecision(const std::vector<Dossier>& dossiers) {
  int with_identity = 0, correct = 0;
  for (const Dossier& d : dossiers) {
    if (d.full_name.empty()) continue;
    ++with_identity;
    if (d.identity_correct) ++correct;
  }
  if (with_identity == 0) return 0.0;
  return static_cast<double>(correct) / static_cast<double>(with_identity);
}

}  // namespace dehealth
