#include "linkage/name_link.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "common/string_utils.h"

namespace dehealth {

std::string NormalizeUsername(const std::string& username) {
  std::string out = ToLowerAscii(username);
  // Leading underscore decorations.
  size_t begin = 0;
  while (begin < out.size() && out[begin] == '_') ++begin;
  out.erase(0, begin);
  // Trailing digits.
  while (!out.empty() && std::isdigit(static_cast<unsigned char>(out.back())))
    out.pop_back();
  // Trailing single-'x' decoration (only when something remains).
  if (out.size() > 2 && out.back() == 'x') out.pop_back();
  return out;
}

NameLink::NameLink(const IdentityUniverse& universe, NameLinkConfig config)
    : universe_(universe), config_(config) {
  std::vector<std::string> corpus;
  corpus.reserve(universe.accounts.size());
  for (const Account& a : universe.accounts) corpus.push_back(a.username);
  model_.Train(corpus);
}

double NameLink::EntropyBits(const std::string& username) const {
  return model_.Bits(username);
}

std::vector<NameLinkResult> NameLink::Run(Service source,
                                          Service target) const {
  // Index the target service by exact and (optionally) normalized name.
  std::unordered_map<std::string, std::vector<int>> target_index;
  std::unordered_map<std::string, std::vector<int>> normalized_index;
  for (int idx : universe_.AccountsOf(target)) {
    const std::string& name =
        universe_.accounts[static_cast<size_t>(idx)].username;
    target_index[name].push_back(idx);
    if (config_.allow_normalized_match)
      normalized_index[NormalizeUsername(name)].push_back(idx);
  }

  // Rank source accounts by decreasing entropy (the paper's search order).
  std::vector<std::pair<double, int>> ranked;
  for (int idx : universe_.AccountsOf(source)) {
    const Account& a = universe_.accounts[static_cast<size_t>(idx)];
    ranked.emplace_back(model_.Bits(a.username), idx);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });

  std::vector<NameLinkResult> links;
  for (const auto& [bits, src_idx] : ranked) {
    if (bits < config_.min_entropy_bits) break;  // sorted: all below now
    const Account& src = universe_.accounts[static_cast<size_t>(src_idx)];

    const std::vector<int>* matches = nullptr;
    auto it = target_index.find(src.username);
    if (it != target_index.end()) {
      matches = &it->second;
    } else if (config_.allow_normalized_match &&
               bits >= config_.min_entropy_bits +
                           config_.normalized_margin) {
      auto nit = normalized_index.find(NormalizeUsername(src.username));
      if (nit != normalized_index.end()) matches = &nit->second;
    }
    if (matches == nullptr) continue;
    if (static_cast<int>(matches->size()) > config_.max_ambiguity)
      continue;  // too many owners: ambiguous, reject
    for (int tgt_idx : *matches) {
      const Account& tgt = universe_.accounts[static_cast<size_t>(tgt_idx)];
      NameLinkResult link;
      link.source_account = src_idx;
      link.target_account = tgt_idx;
      link.entropy_bits = bits;
      link.correct = src.person_id == tgt.person_id;
      links.push_back(link);
    }
  }
  return links;
}

}  // namespace dehealth
