#include "linkage/attack.h"

#include <map>
#include <unordered_set>

namespace dehealth {

double LinkageReport::AvatarLinkRate() const {
  if (filtered_avatar_targets == 0) return 0.0;
  return static_cast<double>(avatar_linked_users) /
         static_cast<double>(filtered_avatar_targets);
}

double LinkageReport::NameLinkPrecision() const {
  if (name_links == 0) return 0.0;
  return static_cast<double>(name_links_correct) /
         static_cast<double>(name_links);
}

double LinkageReport::AvatarLinkPrecision() const {
  if (avatar_links_total == 0) return 0.0;
  return static_cast<double>(avatar_links_correct) /
         static_cast<double>(avatar_links_total);
}

LinkageAttack::LinkageAttack(const IdentityUniverse& universe,
                             LinkageAttackConfig config)
    : universe_(universe),
      config_(config),
      name_link_(universe, config.name_link),
      avatar_link_(universe, config.avatar_link) {}

std::vector<NameLinkResult> LinkageAttack::RunNameLink() const {
  return name_link_.Run(Service::kHealthForum, Service::kOtherHealthForum);
}

std::vector<AvatarLinkResult> LinkageAttack::RunAvatarLink() const {
  return avatar_link_.Run(Service::kHealthForum);
}

LinkageReport LinkageAttack::Run() const {
  LinkageReport report;
  report.health_forum_accounts = static_cast<int>(
      universe_.AccountsOf(Service::kHealthForum).size());
  report.filtered_avatar_targets = static_cast<int>(
      avatar_link_.FilterTargets(Service::kHealthForum).size());

  // NameLink: information aggregation against the other health forum.
  const std::vector<NameLinkResult> name_links = RunNameLink();
  std::unordered_set<int> name_linked_accounts;
  for (const NameLinkResult& link : name_links) {
    ++report.name_links;
    if (link.correct) ++report.name_links_correct;
    name_linked_accounts.insert(link.source_account);
  }

  // AvatarLink: real-identity linkage against the social services.
  const std::vector<AvatarLinkResult> avatar_links = RunAvatarLink();
  std::map<int, std::unordered_set<int>> socials_per_account;
  for (const AvatarLinkResult& link : avatar_links) {
    ++report.avatar_links_total;
    if (link.correct) ++report.avatar_links_correct;
    socials_per_account[link.source_account].insert(
        static_cast<int>(link.target_service));
  }
  report.avatar_linked_users =
      static_cast<int>(socials_per_account.size());
  for (const auto& [account, services] : socials_per_account) {
    if (services.size() >= 2) ++report.users_on_two_plus_socials;
    if (name_linked_accounts.count(account)) ++report.overlap_users;
  }
  return report;
}

}  // namespace dehealth
