#ifndef DEHEALTH_LINKAGE_NAME_LINK_H_
#define DEHEALTH_LINKAGE_NAME_LINK_H_

#include <vector>

#include "common/status.h"
#include "linkage/identity_universe.h"
#include "linkage/username.h"

namespace dehealth {

/// One username-based link: a health-forum account matched to an account on
/// another service.
struct NameLinkResult {
  int source_account = 0;  // index into universe.accounts
  int target_account = 0;
  double entropy_bits = 0.0;  // source username surprisal
  bool correct = false;       // ground truth: same person?
};

/// NameLink configuration (Section VI-A).
struct NameLinkConfig {
  /// Only usernames at or above this surprisal are trusted for linking —
  /// the Perito et al. filter: low-entropy names are picked by many people.
  double min_entropy_bits = 30.0;
  /// Reject matches where more than this many distinct accounts on the
  /// target service carry the username (ambiguity filter, stands in for
  /// the paper's manual validation).
  int max_ambiguity = 1;
  /// Also match *normalized* usernames (trailing digits, leading
  /// underscores, and trivial suffixes stripped) — catches the common
  /// mutation habits ("jwolf6589" vs "jwolf6589x"), at lower confidence;
  /// normalized matches demand a higher entropy bar (`+ normalized_margin`).
  bool allow_normalized_match = false;
  double normalized_margin = 8.0;
};

/// Normalization used for the approximate match: lowercase, strip leading
/// '_' runs and trailing digit/'x'/"99" decorations. Exposed for testing.
std::string NormalizeUsername(const std::string& username);

/// The NameLink tool: ranks the source service's usernames by entropy
/// (estimated from a model trained on the whole observable username corpus)
/// and links each high-entropy username to accounts with the identical
/// username on the target service, applying the ambiguity filter.
class NameLink {
 public:
  /// Trains the entropy model on all usernames in `universe`.
  /// The universe must outlive the tool.
  explicit NameLink(const IdentityUniverse& universe,
                    NameLinkConfig config = {});

  /// Links accounts of `source` to accounts of `target`. `correct` in each
  /// result is filled from ground truth for evaluation.
  std::vector<NameLinkResult> Run(Service source, Service target) const;

  /// Surprisal of a username under the trained model.
  double EntropyBits(const std::string& username) const;

 private:
  const IdentityUniverse& universe_;
  NameLinkConfig config_;
  UsernameEntropyModel model_;
};

}  // namespace dehealth

#endif  // DEHEALTH_LINKAGE_NAME_LINK_H_
