#ifndef DEHEALTH_INDEX_INDEXED_SOURCE_H_
#define DEHEALTH_INDEX_INDEXED_SOURCE_H_

#include <vector>

#include "core/candidate_source.h"
#include "index/candidate_index.h"

namespace dehealth {

/// CandidateSource backed by a CandidateIndex: exact scores and Top-K
/// candidate sets without the dense matrix. Construction precomputes the
/// anonymized-side query features (landmark vectors on the anonymized
/// graph, IDF-scaled attributes) — O(ħ·(V+E log V)) once, then every
/// Score/Row/TopK call is matrix-free. The index must outlive this object.
class IndexedCandidateSource final : public CandidateSource {
 public:
  /// `max_candidates > 0` caps exact score evaluations per Top-K query
  /// (recall knob, see CandidateIndex::TopKForQuery); 0 keeps the exact
  /// dense-equivalence guarantee. `num_threads` only affects construction
  /// speed (landmark precomputation), never results.
  IndexedCandidateSource(const UdaGraph& anonymized,
                         const CandidateIndex& index, int num_threads = 0,
                         int max_candidates = 0);

  int num_anonymized() const override;
  int num_auxiliary() const override;
  double Score(NodeId u, NodeId v) const override;
  const std::vector<double>& Row(NodeId u,
                                 std::vector<double>* scratch) const override;

  /// Bitwise-identical to SelectTopKCandidates(kDirect) on the dense
  /// matrix when max_candidates == 0; row-parallel with
  /// thread-count-independent output.
  StatusOr<CandidateSets> TopK(int k, int num_threads) const override;

  /// Per-user best-first retrieval (TopKForQuery) instead of the base
  /// class's full-row scan — the sublinear path the query service rides.
  StatusOr<CandidateSets> TopKForUsers(const std::vector<int>& users, int k,
                                       int num_threads) const override;

 private:
  const CandidateIndex* index_;
  std::vector<IndexedUserFeatures> queries_;
  int max_candidates_;
};

}  // namespace dehealth

#endif  // DEHEALTH_INDEX_INDEXED_SOURCE_H_
