#ifndef DEHEALTH_INDEX_SNAPSHOT_H_
#define DEHEALTH_INDEX_SNAPSHOT_H_

#include <string>

#include "common/status.h"
#include "index/candidate_index.h"

namespace dehealth {

/// Binary snapshot of a CandidateIndex (the persistent part of the index;
/// inverted index and degree buckets are derived and rebuilt on load).
///
/// Layout (little-endian):
///   magic "DHIX" | u32 version | payload | u64 FNV-1a checksum of payload
///
/// The loader returns Status instead of crashing on every malformed input:
/// NotFound (missing file), InvalidArgument (bad magic, truncation,
/// checksum mismatch), Unimplemented (snapshot written by a future format
/// version).

/// Serializes the index's persistent data to the snapshot byte format.
std::string EncodeIndexSnapshot(const CandidateIndex& index);

/// Parses snapshot bytes back into an index. `path` is context only — it
/// names the originating file in error messages (every decode error also
/// carries the byte offset where parsing failed); pass "" for in-memory
/// buffers.
StatusOr<CandidateIndex> DecodeIndexSnapshot(const std::string& bytes,
                                             const std::string& path = "");

/// Writes `index` to `path` atomically (`<path>.tmp` + fsync + rename, see
/// WriteStringToFileAtomic): a crash mid-save can never leave a truncated
/// snapshot that only the checksum would catch at the next load.
Status SaveIndexSnapshot(const CandidateIndex& index,
                         const std::string& path);

/// Reads and decodes the snapshot at `path`.
StatusOr<CandidateIndex> LoadIndexSnapshot(const std::string& path);

/// The load-or-rebuild entry point the pipeline uses: when `path` is empty,
/// always builds from `auxiliary`. Otherwise tries to load `path` and
/// reuses the snapshot only when its score-shaping config fields AND its
/// auxiliary fingerprint match AND it is an unsharded (shard 0 of 1)
/// index — a shard slice shares the universe fingerprint but covers only
/// part of it; on any mismatch, missing file, or decode error it rebuilds
/// from `auxiliary` and overwrites the snapshot (a failing save is
/// surfaced — the caller asked for persistence).
StatusOr<CandidateIndex> LoadOrBuildIndex(const std::string& path,
                                          const UdaGraph& auxiliary,
                                          const SimilarityConfig& config);

}  // namespace dehealth

#endif  // DEHEALTH_INDEX_SNAPSHOT_H_
