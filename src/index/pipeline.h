#ifndef DEHEALTH_INDEX_PIPELINE_H_
#define DEHEALTH_INDEX_PIPELINE_H_

#include <memory>
#include <vector>

#include "core/de_health.h"
#include "core/uda_graph.h"
#include "index/candidate_index.h"

namespace dehealth {

/// The phase-1a score source plus the storage it borrows — one owning
/// bundle shared by the one-shot pipeline (RunDeHealthAttack), the serving
/// engine (QueryEngine) and the checkpointing job runner (src/job/), so
/// all three construct scores identically and answers can never drift.
/// Heap-allocated because `source` borrows the sibling members by address.
struct AttackScoreSource {
  /// Dense path: the materialized |Δ1|×|Δ2| matrix `source` borrows.
  std::vector<std::vector<double>> similarity;
  /// Indexed path: the candidate index `source` borrows.
  std::unique_ptr<CandidateIndex> index;
  std::unique_ptr<CandidateSource> source;
  /// True when config.use_index was set but the index could not be
  /// loaded/built/persisted — the bundle degraded to the dense path with a
  /// warning on stderr instead of failing the whole attack.
  bool degraded_to_dense = false;
  /// Shard identity of this bundle (filled in every mode; trivially 0 of 1
  /// outside slice mode). `universe_size`/`universe_fingerprint` always
  /// describe the FULL auxiliary side, and `shard_begin` is the global
  /// auxiliary id of the source's local id 0 — what a slice-mode backend
  /// adds back when answering DHQP clients, and what the router checks
  /// across backends before serving.
  int shard_index = 0;
  int shard_count = 1;
  int shard_begin = 0;
  int universe_size = 0;
  uint64_t universe_fingerprint = 0;
};

/// Builds the score source the config asks for: the dense similarity
/// matrix, the auxiliary-side candidate index (loaded from
/// config.index_snapshot_path when the snapshot matches, rebuilt + saved
/// otherwise), the in-process sharded scatter-gather source
/// (config.num_shards > 1, bitwise-identical answers), or a single-shard
/// slice (config.shard_count > 1 — local auxiliary ids over that shard's
/// range). Graceful degradation: an index that cannot be
/// loaded/built/persisted falls back to the dense path with a warning
/// (see `degraded_to_dense`) — an unusable snapshot file never takes the
/// attack down with it. Defined in src/shard/attack_pipeline.cc (the
/// sharded modes pull in src/shard/, which layers above src/index/).
StatusOr<std::unique_ptr<AttackScoreSource>> BuildAttackScoreSource(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const DeHealthConfig& config);

/// Runs the De-Health attack end-to-end, honoring the index knobs in
/// DeHealthConfig:
///   - use_index == false: identical to DeHealth::Run (dense matrix);
///   - use_index == true: builds the auxiliary-side candidate index (or
///     loads it from config.index_snapshot_path when the snapshot matches
///     the auxiliary side + config, persisting a rebuilt one otherwise)
///     and runs phases 1b-2 through it. Scores, candidate sets, filtering
///     and refined-DA predictions are bitwise-identical to the dense path
///     when index_max_candidates == 0; DeHealthResult::similarity stays
///     empty (the matrix is never formed).
/// config.job_dir is ignored here — use RunDeHealthAttackJob
/// (src/job/runner.h) for the checkpointed variant.
StatusOr<DeHealthResult> RunDeHealthAttack(const UdaGraph& anonymized,
                                           const UdaGraph& auxiliary,
                                           const DeHealthConfig& config);

}  // namespace dehealth

#endif  // DEHEALTH_INDEX_PIPELINE_H_
