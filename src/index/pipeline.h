#ifndef DEHEALTH_INDEX_PIPELINE_H_
#define DEHEALTH_INDEX_PIPELINE_H_

#include "core/de_health.h"
#include "core/uda_graph.h"

namespace dehealth {

/// Runs the De-Health attack end-to-end, honoring the index knobs in
/// DeHealthConfig:
///   - use_index == false: identical to DeHealth::Run (dense matrix);
///   - use_index == true: builds the auxiliary-side candidate index (or
///     loads it from config.index_snapshot_path when the snapshot matches
///     the auxiliary side + config, persisting a rebuilt one otherwise)
///     and runs phases 1b-2 through it. Scores, candidate sets, filtering
///     and refined-DA predictions are bitwise-identical to the dense path
///     when index_max_candidates == 0; DeHealthResult::similarity stays
///     empty (the matrix is never formed).
StatusOr<DeHealthResult> RunDeHealthAttack(const UdaGraph& anonymized,
                                           const UdaGraph& auxiliary,
                                           const DeHealthConfig& config);

}  // namespace dehealth

#endif  // DEHEALTH_INDEX_PIPELINE_H_
