#include "index/pipeline.h"

#include <cstdio>

#include "index/indexed_source.h"
#include "index/snapshot.h"
#include "obs/standard_metrics.h"

namespace dehealth {

StatusOr<std::unique_ptr<AttackScoreSource>> BuildAttackScoreSource(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const DeHealthConfig& config) {
  auto bundle = std::make_unique<AttackScoreSource>();
  SimilarityConfig sim_config = config.similarity;
  sim_config.num_threads = config.num_threads;

  if (config.use_index) {
    StatusOr<CandidateIndex> index =
        LoadOrBuildIndex(config.index_snapshot_path, auxiliary, sim_config);
    if (index.ok()) {
      bundle->index =
          std::make_unique<CandidateIndex>(std::move(index).value());
      // Snapshot loads come back with the default kAuto; the runtime SIMD
      // choice is a per-run knob, never part of the persisted index.
      bundle->index->set_simd_mode(sim_config.simd);
      bundle->source = std::make_unique<IndexedCandidateSource>(
          anonymized, *bundle->index, config.num_threads,
          config.index_max_candidates);
      return bundle;
    }
    // Graceful degradation: an index that cannot be loaded, built, or
    // persisted is a performance feature failing, not a correctness one —
    // warn and continue on the dense path instead of failing the attack.
    // (With index_max_candidates > 0 the dense path is the exact variant
    // of the recall-bounded answers the index would have given.)
    std::fprintf(stderr,
                 "warning: candidate index unavailable (%s); falling back "
                 "to dense similarity path\n",
                 index.status().ToString().c_str());
    bundle->degraded_to_dense = true;
    obs::GetIndexMetrics().dense_fallbacks->Increment();
  }

  const StructuralSimilarity similarity(anonymized, auxiliary, sim_config);
  bundle->similarity = similarity.ComputeMatrix();
  bundle->source = std::make_unique<DenseCandidateSource>(bundle->similarity);
  return bundle;
}

StatusOr<DeHealthResult> RunDeHealthAttack(const UdaGraph& anonymized,
                                           const UdaGraph& auxiliary,
                                           const DeHealthConfig& config) {
  const DeHealth attack(config);
  StatusOr<std::unique_ptr<AttackScoreSource>> scores =
      BuildAttackScoreSource(anonymized, auxiliary, config);
  if (!scores.ok()) return scores.status();
  return attack.RunWithSource(anonymized, auxiliary, *(*scores)->source);
}

}  // namespace dehealth
