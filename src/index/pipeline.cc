#include "index/pipeline.h"

#include "index/indexed_source.h"
#include "index/snapshot.h"

namespace dehealth {

StatusOr<DeHealthResult> RunDeHealthAttack(const UdaGraph& anonymized,
                                           const UdaGraph& auxiliary,
                                           const DeHealthConfig& config) {
  const DeHealth attack(config);
  if (!config.use_index) return attack.Run(anonymized, auxiliary);

  SimilarityConfig sim_config = config.similarity;
  sim_config.num_threads = config.num_threads;
  StatusOr<CandidateIndex> index =
      LoadOrBuildIndex(config.index_snapshot_path, auxiliary, sim_config);
  if (!index.ok()) return index.status();
  const IndexedCandidateSource source(anonymized, *index, config.num_threads,
                                      config.index_max_candidates);
  return attack.RunWithSource(anonymized, auxiliary, source);
}

}  // namespace dehealth
