#include "index/snapshot.h"

#include <cstring>
#include <limits>
#include <type_traits>

#include "common/fault_injection.h"
#include "io/file_util.h"
#include "obs/standard_metrics.h"
#include "obs/trace.h"

namespace dehealth {

namespace {

constexpr char kMagic[4] = {'D', 'H', 'I', 'X'};
/// v2 adds the shard-identity quad (index, count, begin, total) after the
/// auxiliary fingerprint; v1 snapshots decode as shard 0 of 1.
constexpr uint32_t kVersion = 2;

uint64_t Fnv1a(const char* bytes, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
void Append(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.append(buf, sizeof(T));
}

void AppendDoubleVector(std::string& out, const std::vector<double>& v) {
  Append(out, static_cast<uint32_t>(v.size()));
  for (double x : v) Append(out, x);
}

/// "index snapshot 'path' (byte N): what" — every decode failure names the
/// file it came from (when known) and the byte offset where parsing
/// stopped, so a corrupt snapshot in a directory of many is identifiable
/// from the error alone.
Status DecodeError(const std::string& path, size_t offset,
                   const std::string& what,
                   StatusCode code = StatusCode::kInvalidArgument) {
  std::string message = "index snapshot ";
  if (!path.empty()) message += "'" + path + "' ";
  message += "(byte " + std::to_string(offset) + "): " + what;
  return Status(code, std::move(message));
}

/// Bounds-checked sequential reader over the payload span. `pos()` is the
/// absolute byte offset into the snapshot, used for error context.
class Reader {
 public:
  Reader(const std::string& bytes, size_t begin, size_t end,
         const std::string& path)
      : bytes_(bytes), pos_(begin), end_(end), path_(path) {}

  template <typename T>
  Status Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > end_)
      return Fail("truncated payload");
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status ReadDoubleVector(std::vector<double>* v) {
    uint32_t count = 0;
    DEHEALTH_RETURN_IF_ERROR(Read(&count));
    if (static_cast<size_t>(count) > (end_ - pos_) / sizeof(double))
      return Fail("vector length exceeds payload");
    v->resize(count);
    for (uint32_t i = 0; i < count; ++i) DEHEALTH_RETURN_IF_ERROR(Read(&(*v)[i]));
    return Status::OK();
  }

  Status Fail(const std::string& what) const {
    return DecodeError(path_, pos_, what);
  }

  size_t pos() const { return pos_; }

  /// True when at least `count` elements of `element_size` bytes can still
  /// be read — rejects absurd counts BEFORE any allocation, so a snapshot
  /// that passes the checksum but lies about lengths still fails with a
  /// Status instead of std::bad_alloc.
  bool CanHold(uint64_t count, size_t element_size) const {
    return count <= (end_ - pos_) / element_size;
  }

  bool AtEnd() const { return pos_ == end_; }

 private:
  const std::string& bytes_;
  size_t pos_;
  size_t end_;
  const std::string& path_;
};

}  // namespace

std::string EncodeIndexSnapshot(const CandidateIndex& index) {
  const CandidateIndexData& data = index.data();
  std::string out(kMagic, sizeof(kMagic));
  Append(out, kVersion);
  const size_t payload_begin = out.size();

  Append(out, data.c1);
  Append(out, data.c2);
  Append(out, data.c3);
  Append(out, static_cast<int32_t>(data.num_landmarks));
  Append(out, static_cast<uint8_t>(data.idf_weight_attributes ? 1 : 0));
  Append(out, data.auxiliary_fingerprint);
  Append(out, data.shard_index);
  Append(out, data.shard_count);
  Append(out, data.shard_begin);
  Append(out, data.shard_total);

  Append(out, static_cast<uint32_t>(data.idf_table.size()));
  for (const auto& [id, w] : data.idf_table) {
    Append(out, static_cast<int32_t>(id));
    Append(out, w);
  }
  Append(out, data.default_idf);

  Append(out, static_cast<uint32_t>(data.users.size()));
  for (const IndexedUserFeatures& f : data.users) {
    Append(out, f.degree);
    Append(out, f.weighted_degree);
    AppendDoubleVector(out, f.ncs);
    AppendDoubleVector(out, f.hop);
    AppendDoubleVector(out, f.weighted_hop);
    Append(out, static_cast<uint32_t>(f.attributes.size()));
    for (const auto& [id, w] : f.attributes) {
      Append(out, static_cast<int32_t>(id));
      Append(out, w);
    }
  }

  Append(out, Fnv1a(out.data() + payload_begin, out.size() - payload_begin));
  return out;
}

StatusOr<CandidateIndex> DecodeIndexSnapshot(const std::string& bytes,
                                             const std::string& path) {
  constexpr size_t kHeaderSize = sizeof(kMagic) + sizeof(uint32_t);
  constexpr size_t kFooterSize = sizeof(uint64_t);
  if (bytes.size() < kHeaderSize + kFooterSize)
    return DecodeError(path, bytes.size(),
                       "file smaller than header + footer");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return DecodeError(path, 0,
                       "bad magic (not a candidate-index snapshot)");
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version < 1 || version > kVersion)
    return DecodeError(path, sizeof(kMagic),
                       "unsupported format version " +
                           std::to_string(version),
                       StatusCode::kUnimplemented);

  const size_t payload_end = bytes.size() - kFooterSize;
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes.data() + payload_end, kFooterSize);
  const uint64_t actual_checksum =
      Fnv1a(bytes.data() + kHeaderSize, payload_end - kHeaderSize);
  if (stored_checksum != actual_checksum)
    return DecodeError(path, payload_end,
                       "checksum mismatch (corrupt snapshot)");

  Reader reader(bytes, kHeaderSize, payload_end, path);
  CandidateIndexData data;
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&data.c1));
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&data.c2));
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&data.c3));
  int32_t num_landmarks = 0;
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&num_landmarks));
  data.num_landmarks = num_landmarks;
  uint8_t idf_flag = 0;
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&idf_flag));
  data.idf_weight_attributes = idf_flag != 0;
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&data.auxiliary_fingerprint));
  if (version >= 2) {
    DEHEALTH_RETURN_IF_ERROR(reader.Read(&data.shard_index));
    DEHEALTH_RETURN_IF_ERROR(reader.Read(&data.shard_count));
    DEHEALTH_RETURN_IF_ERROR(reader.Read(&data.shard_begin));
    DEHEALTH_RETURN_IF_ERROR(reader.Read(&data.shard_total));
    if (data.shard_count == 0)
      return reader.Fail("shard count must be >= 1");
    if (data.shard_index >= data.shard_count)
      return reader.Fail("shard index out of range");
  }

  uint32_t idf_count = 0;
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&idf_count));
  if (!reader.CanHold(idf_count, sizeof(int32_t) + sizeof(double)))
    return reader.Fail("idf table length exceeds payload");
  data.idf_table.reserve(idf_count);
  for (uint32_t i = 0; i < idf_count; ++i) {
    int32_t id = 0;
    double w = 0.0;
    DEHEALTH_RETURN_IF_ERROR(reader.Read(&id));
    DEHEALTH_RETURN_IF_ERROR(reader.Read(&w));
    data.idf_table.emplace_back(id, w);
  }
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&data.default_idf));

  uint32_t num_users = 0;
  DEHEALTH_RETURN_IF_ERROR(reader.Read(&num_users));
  // 2 doubles + 4 u32 lengths is the smallest possible per-user record.
  if (!reader.CanHold(num_users, 2 * sizeof(double) + 4 * sizeof(uint32_t)))
    return reader.Fail("user count exceeds payload");
  data.users.resize(num_users);
  for (uint32_t u = 0; u < num_users; ++u) {
    IndexedUserFeatures& f = data.users[u];
    DEHEALTH_RETURN_IF_ERROR(reader.Read(&f.degree));
    DEHEALTH_RETURN_IF_ERROR(reader.Read(&f.weighted_degree));
    DEHEALTH_RETURN_IF_ERROR(reader.ReadDoubleVector(&f.ncs));
    DEHEALTH_RETURN_IF_ERROR(reader.ReadDoubleVector(&f.hop));
    DEHEALTH_RETURN_IF_ERROR(reader.ReadDoubleVector(&f.weighted_hop));
    uint32_t attr_count = 0;
    DEHEALTH_RETURN_IF_ERROR(reader.Read(&attr_count));
    if (!reader.CanHold(attr_count, sizeof(int32_t) + sizeof(double)))
      return reader.Fail("attribute list length exceeds payload");
    f.attributes.reserve(attr_count);
    for (uint32_t i = 0; i < attr_count; ++i) {
      int32_t id = 0;
      double w = 0.0;
      DEHEALTH_RETURN_IF_ERROR(reader.Read(&id));
      DEHEALTH_RETURN_IF_ERROR(reader.Read(&w));
      f.attributes.emplace_back(id, w);
    }
  }
  if (!reader.AtEnd())
    return reader.Fail("trailing bytes after payload");
  // A v1 snapshot predates sharding: it is the whole universe by
  // definition, so its shard_total is its own user count.
  if (version < 2) data.shard_total = num_users;
  if (data.shard_begin > data.shard_total ||
      static_cast<uint64_t>(data.shard_begin) + num_users >
          data.shard_total)
    return reader.Fail("shard range exceeds universe size");
  return CandidateIndex::FromData(std::move(data));
}

Status SaveIndexSnapshot(const CandidateIndex& index,
                         const std::string& path) {
  DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("snapshot.save"));
  return WriteStringToFileAtomic(EncodeIndexSnapshot(index), path);
}

StatusOr<CandidateIndex> LoadIndexSnapshot(const std::string& path) {
  DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("snapshot.load"));
  StatusOr<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  // Simulated snapshot corruption: the checksum/bounds-checked decoder
  // must answer with a Status (load-or-rebuild then recovers), never UB.
  InjectDataFault("snapshot.load.data", &*bytes);
  return DecodeIndexSnapshot(*bytes, path);
}

StatusOr<CandidateIndex> LoadOrBuildIndex(const std::string& path,
                                          const UdaGraph& auxiliary,
                                          const SimilarityConfig& config) {
  if (!path.empty()) {
    obs::Span span("index", "snapshot_load");
    StatusOr<CandidateIndex> loaded = LoadIndexSnapshot(path);
    if (loaded.ok()) {
      const CandidateIndexData& data = loaded->data();
      const bool config_matches =
          data.c1 == config.c1 && data.c2 == config.c2 &&
          data.c3 == config.c3 &&
          data.num_landmarks == config.num_landmarks &&
          data.idf_weight_attributes == config.idf_weight_attributes;
      // A shard-slice snapshot carries the UNIVERSE fingerprint, so the
      // fingerprint check alone would wrongly accept it as a full index —
      // only shard 0 of 1 is reusable here.
      if (config_matches && data.shard_count == 1 && data.shard_index == 0 &&
          data.auxiliary_fingerprint == FingerprintForIndex(auxiliary)) {
        obs::GetIndexMetrics().snapshot_loads->Increment();
        return loaded;
      }
    }
  }
  obs::Span span("index", "index_rebuild");
  obs::GetIndexMetrics().snapshot_rebuilds->Increment();
  StatusOr<CandidateIndex> built = CandidateIndex::Build(auxiliary, config);
  if (!built.ok()) return built.status();
  if (!path.empty())
    DEHEALTH_RETURN_IF_ERROR(SaveIndexSnapshot(*built, path));
  return built;
}

}  // namespace dehealth
