#include "index/candidate_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_utils.h"
#include "common/parallel.h"
#include "graph/landmarks.h"
#include "obs/standard_metrics.h"

namespace dehealth {

namespace {

/// Absolute slack added to every upper bound before comparing against the
/// current K-th score: the bound accumulators sum floats/doubles in posting
/// order while the exact kernel sums in merge order, so the two can differ
/// by a few ulps. Scores live in [0, c1·3 + c2·2 + c3·2], so 1e-9 absolute
/// dwarfs any achievable summation discrepancy while staying far too small
/// to force meaningful extra evaluations.
constexpr double kBoundSlack = 1e-9;

/// Dense-scan crossover: when the query's posting lists would touch at
/// least this fraction of the universe (counting duplicates — the actual
/// accumulation work), best-first pruning cannot recoup its per-candidate
/// ScoreOne overhead against the batched SIMD row kernel, so Top-K
/// switches to one ExactRowTo scan + heap. Scores are identical either
/// way, so the result is unchanged. Tuned with bench_index_scaling (see
/// BENCH_index.json); at 0.25 the WebMD-like forums' Top-K drops the
/// pre-SIMD regression while sparse queries keep their pruning win.
constexpr double kDenseScanFraction = 0.25;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void FnvMix(uint64_t& h, const void* bytes, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void FnvMixValue(uint64_t& h, T value) {
  FnvMix(h, &value, sizeof(value));
}

/// Smallest float f with (double)f >= w; postings store it so
/// min(w_query, (double)f) >= min(w_query, w_aux) and attribute bounds
/// never under-estimate.
float RoundUpToFloat(double w) {
  float f = static_cast<float>(w);
  if (static_cast<double>(f) < w)
    f = std::nextafterf(f, std::numeric_limits<float>::infinity());
  return f;
}

/// max over d in [lo, hi] of MinMaxRatio(q, d) — the bucket-level bound on
/// a degree-ratio term. Follows MinMaxRatio's conventions (0/0 = 1,
/// x/0 = 0/x = 0).
double MinMaxRatioUpper(double q, double lo, double hi) {
  if (q <= 0.0) return lo <= 0.0 ? 1.0 : 0.0;
  if (lo <= q && q <= hi) return 1.0;
  if (hi < q) return hi <= 0.0 ? 0.0 : hi / q;
  return q / lo;  // lo > q > 0: ratio decreases with d
}

bool AnyNonZero(const std::vector<double>& v) {
  for (double x : v)
    if (x != 0.0) return true;
  return false;
}

int DegreeBucketOf(double degree) {
  const auto d = static_cast<unsigned long long>(degree);
  if (d == 0) return 0;
  int log2 = 0;
  for (unsigned long long x = d; x >>= 1;) ++log2;
  return 1 + log2;
}

constexpr uint8_t kHasNcs = 1;
constexpr uint8_t kHasHop = 2;
constexpr uint8_t kHasWeightedHop = 4;

UserFeatureView ViewOf(const IndexedUserFeatures& f) {
  UserFeatureView view;
  view.degree = f.degree;
  view.weighted_degree = f.weighted_degree;
  view.ncs = &f.ncs;
  view.hop = &f.hop;
  view.weighted_hop = &f.weighted_hop;
  view.attributes = &f.attributes;
  return view;
}

/// Per-retrieval sparse accumulators, epoch-stamped so consecutive queries
/// on the same thread reuse the O(n2) arrays without clearing them.
struct Workspace {
  std::vector<uint32_t> epoch;
  std::vector<int> inter_count;
  std::vector<double> inter_weight;
  std::vector<int32_t> touched;
  uint32_t current = 0;

  void NextQuery(size_t n) {
    if (epoch.size() != n) {
      epoch.assign(n, 0);
      inter_count.assign(n, 0);
      inter_weight.assign(n, 0.0);
      current = 0;
    }
    if (current == std::numeric_limits<uint32_t>::max()) {
      std::fill(epoch.begin(), epoch.end(), 0);
      current = 0;
    }
    ++current;
    touched.clear();
  }
};

}  // namespace

uint64_t FingerprintForIndex(const UdaGraph& side) {
  uint64_t h = kFnvOffset;
  const int n = side.num_users();
  FnvMixValue(h, n);
  for (NodeId u = 0; u < n; ++u) {
    FnvMixValue(h, side.graph.Degree(u));
    FnvMixValue(h, side.graph.WeightedDegree(u));
    const UserProfile& profile = side.profiles[static_cast<size_t>(u)];
    FnvMixValue(h, profile.num_posts());
    FnvMixValue(h, static_cast<int>(profile.attributes().size()));
    for (const auto& [id, weight] : profile.attributes()) {
      FnvMixValue(h, id);
      FnvMixValue(h, weight);
    }
  }
  return h;
}

CandidateIndex::CandidateIndex(CandidateIndexData data)
    : data_(std::move(data)) {}

SimilarityConfig CandidateIndex::similarity_config() const {
  SimilarityConfig config;
  config.c1 = data_.c1;
  config.c2 = data_.c2;
  config.c3 = data_.c3;
  config.num_landmarks = data_.num_landmarks;
  config.idf_weight_attributes = data_.idf_weight_attributes;
  config.num_threads = 0;
  config.simd = simd_mode_;
  return config;
}

double CandidateIndex::IdfWeight(int attribute_id) const {
  if (!data_.idf_weight_attributes) return 1.0;
  auto it = idf_lookup_.find(attribute_id);
  return it == idf_lookup_.end() ? data_.default_idf : it->second;
}

namespace {

/// The per-side feature precomputation of StructuralSimilarity's
/// constructor, reproduced value-for-value: landmark vectors, NCS vectors,
/// and idf-scaled attribute lists.
template <typename IdfFn>
std::vector<IndexedUserFeatures> ComputeSideFeatures(const UdaGraph& side,
                                                     int num_landmarks,
                                                     int num_threads,
                                                     const IdfFn& idf) {
  const int n = side.num_users();
  const LandmarkIndex landmarks(side.graph, num_landmarks, num_threads);
  std::vector<IndexedUserFeatures> features(static_cast<size_t>(n));
  for (NodeId u = 0; u < n; ++u) {
    IndexedUserFeatures& f = features[static_cast<size_t>(u)];
    f.degree = side.graph.Degree(u);
    f.weighted_degree = side.graph.WeightedDegree(u);
    f.ncs = side.graph.NcsVector(u);
    f.hop = landmarks.HopVector(u);
    f.weighted_hop = landmarks.WeightedVector(u);
    for (const auto& [id, weight] :
         side.profiles[static_cast<size_t>(u)].attributes())
      f.attributes.emplace_back(id, weight * idf(id));
  }
  return features;
}

}  // namespace

StatusOr<CandidateIndex> CandidateIndex::Build(
    const UdaGraph& auxiliary, const SimilarityConfig& config) {
  CandidateIndexData data;
  data.c1 = config.c1;
  data.c2 = config.c2;
  data.c3 = config.c3;
  data.num_landmarks = config.num_landmarks;
  data.idf_weight_attributes = config.idf_weight_attributes;
  data.auxiliary_fingerprint = FingerprintForIndex(auxiliary);

  // Document frequencies over the auxiliary side, scaled exactly as the
  // dense path scales them: idf = log((1+n2)/(1+df)).
  const double n2 = static_cast<double>(auxiliary.num_users());
  std::unordered_map<int, int> document_frequency;
  if (data.idf_weight_attributes) {
    for (const UserProfile& profile : auxiliary.profiles)
      for (const auto& [id, weight] : profile.attributes())
        ++document_frequency[id];
    data.idf_table.reserve(document_frequency.size());
    for (const auto& [id, df] : document_frequency)
      data.idf_table.emplace_back(
          id, std::log((1.0 + n2) / (1.0 + static_cast<double>(df))));
    std::sort(data.idf_table.begin(), data.idf_table.end());
    data.default_idf = std::log((1.0 + n2) / (1.0 + 0.0));
  }

  auto idf = [&](int id) {
    if (!data.idf_weight_attributes) return 1.0;
    auto it = document_frequency.find(id);
    const double df = it == document_frequency.end() ? 0.0 : it->second;
    return std::log((1.0 + n2) / (1.0 + df));
  };
  data.users = ComputeSideFeatures(auxiliary, data.num_landmarks,
                                   config.num_threads, idf);
  data.shard_total = static_cast<uint32_t>(data.users.size());
  StatusOr<CandidateIndex> index = FromData(std::move(data));
  if (index.ok()) index->set_simd_mode(config.simd);
  return index;
}

StatusOr<CandidateIndex> CandidateIndex::FromData(CandidateIndexData data) {
  for (const IndexedUserFeatures& f : data.users) {
    if (!std::is_sorted(f.attributes.begin(), f.attributes.end(),
                        [](const auto& a, const auto& b) {
                          return a.first < b.first;
                        }))
      return Status::InvalidArgument(
          "CandidateIndex: attribute list not sorted by id");
    if (f.degree < 0.0)
      return Status::InvalidArgument("CandidateIndex: negative degree");
  }
  if (!std::is_sorted(data.idf_table.begin(), data.idf_table.end()))
    return Status::InvalidArgument("CandidateIndex: idf table not sorted");
  // Hand-built unsharded data may leave shard_total at its zero default;
  // an unsharded index's universe is its own user list.
  if (data.shard_count == 1 && data.shard_begin == 0 && data.shard_total == 0)
    data.shard_total = static_cast<uint32_t>(data.users.size());
  if (data.shard_count == 0 || data.shard_index >= data.shard_count)
    return Status::InvalidArgument("CandidateIndex: bad shard identity");
  if (static_cast<uint64_t>(data.shard_begin) + data.users.size() >
      data.shard_total)
    return Status::InvalidArgument(
        "CandidateIndex: shard range exceeds universe size");
  CandidateIndex index(std::move(data));
  index.BuildDerived();
  return index;
}

void CandidateIndex::BuildDerived() {
  const size_t n2 = data_.users.size();
  std::vector<UserFeatureView> views;
  views.reserve(n2);
  for (const IndexedUserFeatures& f : data_.users) views.push_back(ViewOf(f));
  store_ = FeatureStore::Build(views);
  idf_lookup_.clear();
  idf_lookup_.reserve(data_.idf_table.size());
  for (const auto& [id, w] : data_.idf_table) idf_lookup_.emplace(id, w);

  postings_.clear();
  total_attr_weight_.assign(n2, 0.0);
  has_signal_.assign(n2, 0);
  buckets_.assign(64, DegreeBucket());
  for (size_t v = 0; v < n2; ++v) {
    const IndexedUserFeatures& f = data_.users[v];
    double total = 0.0;
    for (const auto& [id, weight] : f.attributes) {
      postings_[id].push_back(
          {static_cast<int32_t>(v), RoundUpToFloat(weight)});
      total += weight;
    }
    total_attr_weight_[v] = total;
    uint8_t signal = 0;
    if (AnyNonZero(f.ncs)) signal |= kHasNcs;
    if (AnyNonZero(f.hop)) signal |= kHasHop;
    if (AnyNonZero(f.weighted_hop)) signal |= kHasWeightedHop;
    has_signal_[v] = signal;

    DegreeBucket& bucket = buckets_[static_cast<size_t>(
        DegreeBucketOf(f.degree))];
    if (bucket.members.empty()) {
      bucket.min_degree = bucket.max_degree = f.degree;
      bucket.min_weighted_degree = bucket.max_weighted_degree =
          f.weighted_degree;
    } else {
      bucket.min_degree = std::min(bucket.min_degree, f.degree);
      bucket.max_degree = std::max(bucket.max_degree, f.degree);
      bucket.min_weighted_degree =
          std::min(bucket.min_weighted_degree, f.weighted_degree);
      bucket.max_weighted_degree =
          std::max(bucket.max_weighted_degree, f.weighted_degree);
    }
    bucket.any_ncs = bucket.any_ncs || (signal & kHasNcs);
    bucket.any_hop = bucket.any_hop || (signal & kHasHop);
    bucket.any_weighted_hop =
        bucket.any_weighted_hop || (signal & kHasWeightedHop);
    bucket.members.push_back(static_cast<int32_t>(v));
  }
  // Drop empty buckets so retrieval only scans populated ones.
  buckets_.erase(std::remove_if(buckets_.begin(), buckets_.end(),
                                [](const DegreeBucket& b) {
                                  return b.members.empty();
                                }),
                 buckets_.end());
}

std::vector<IndexedUserFeatures> CandidateIndex::ComputeQueryFeatures(
    const UdaGraph& anonymized, int num_threads) const {
  return ComputeSideFeatures(anonymized, data_.num_landmarks, num_threads,
                             [this](int id) { return IdfWeight(id); });
}

double CandidateIndex::ExactScore(const IndexedUserFeatures& query,
                                  NodeId v) const {
  return CombinedStructuralScore(similarity_config(), ViewOf(query),
                                 ViewOf(data_.users[static_cast<size_t>(v)]));
}

void CandidateIndex::ExactRow(const IndexedUserFeatures& query,
                              std::vector<double>* row) const {
  row->resize(data_.users.size());
  ExactRowTo(query, row->data());
}

void CandidateIndex::ExactRowTo(const IndexedUserFeatures& query,
                                double* out) const {
  const SimilarityConfig config = similarity_config();
  const ScoreQuery q = store_.MakeQuery(ViewOf(query));
  store_.ScoreRow(config, q, out);
}

std::vector<int> CandidateIndex::TopKForQuery(const IndexedUserFeatures& query,
                                              int k,
                                              int max_candidates) const {
  const std::vector<ScoredUser> scored =
      TopKScoredForQuery(query, k, max_candidates);
  std::vector<int> result;
  result.reserve(scored.size());
  for (const ScoredUser& c : scored) result.push_back(c.user);
  return result;
}

std::vector<ScoredUser> CandidateIndex::TopKScoredForQuery(
    const IndexedUserFeatures& query, int k, int max_candidates) const {
  const size_t n2 = data_.users.size();
  const size_t want = std::min(static_cast<size_t>(std::max(k, 0)), n2);
  if (want == 0) return {};

  // Dense-scan crossover (exact mode only — a max_candidates cap already
  // bounds the work): the posting volume is a pre-accumulation estimate of
  // phase 1's cost AND a lower bound on how many per-pair ScoreOne calls
  // best-first would risk; past the threshold one batched ScoreRow over
  // the whole universe is cheaper than pruning.
  if (max_candidates <= 0) {
    size_t posting_volume = 0;
    for (const auto& [id, weight] : query.attributes) {
      (void)weight;
      auto it = postings_.find(id);
      if (it != postings_.end()) posting_volume += it->second.size();
    }
    if (static_cast<double>(posting_volume) >=
        kDenseScanFraction * static_cast<double>(n2)) {
      static thread_local std::vector<double> row;
      row.resize(n2);
      ExactRowTo(query, row.data());
      std::vector<ScoredUser> heap;
      heap.reserve(want);
      for (size_t v = 0; v < n2; ++v) {
        const ScoredUser c{row[v], static_cast<int>(v)};
        if (heap.size() < want) {
          heap.push_back(c);
          std::push_heap(heap.begin(), heap.end(), BetterScoredUser);
        } else if (BetterScoredUser(c, heap.front())) {
          std::pop_heap(heap.begin(), heap.end(), BetterScoredUser);
          heap.back() = c;
          std::push_heap(heap.begin(), heap.end(), BetterScoredUser);
        }
      }
      std::sort(heap.begin(), heap.end(), BetterScoredUser);
      obs::IndexMetrics& metrics = obs::GetIndexMetrics();
      metrics.topk_queries->Increment();
      metrics.exact_evals->Increment(n2);
      metrics.dense_scans->Increment();
      return heap;
    }
  }
  const int64_t budget =
      max_candidates > 0
          ? std::max<int64_t>(max_candidates, static_cast<int64_t>(want))
          : std::numeric_limits<int64_t>::max();
  int64_t evaluated = 0;

  static thread_local Workspace ws;
  ws.NextQuery(n2);

  // Sparse accumulation over the query's posting lists: after this loop,
  // ws.touched holds every auxiliary user sharing >= 1 attribute, with the
  // exact intersection count and an upper bound on Σ min(w_q, w_v).
  const bool query_ncs = AnyNonZero(query.ncs);
  const bool query_hop = AnyNonZero(query.hop);
  const bool query_whop = AnyNonZero(query.weighted_hop);
  double query_attr_weight = 0.0;
  for (const auto& [id, weight] : query.attributes) {
    query_attr_weight += weight;
    auto it = postings_.find(id);
    if (it == postings_.end()) continue;
    for (const Posting& p : it->second) {
      const auto v = static_cast<size_t>(p.user);
      if (ws.epoch[v] != ws.current) {
        ws.epoch[v] = ws.current;
        ws.inter_count[v] = 0;
        ws.inter_weight[v] = 0.0;
        ws.touched.push_back(p.user);
      }
      ++ws.inter_count[v];
      ws.inter_weight[v] +=
          std::min(weight, static_cast<double>(p.weight_ub));
    }
  }
  std::sort(ws.touched.begin(), ws.touched.end());

  const SimilarityConfig config = similarity_config();
  // Per-query precompute (norms + dense attribute table) shared by every
  // exact evaluation below; ScoreOne is bitwise-equal to the golden
  // CombinedStructuralScore, so pruning decisions and results are
  // unchanged — each evaluation just costs far less.
  const ScoreQuery score_query = store_.MakeQuery(ViewOf(query));
  std::vector<ScoredUser> heap;
  heap.reserve(want);
  auto kth_score = [&] { return heap.front().score; };
  auto evaluate = [&](int32_t v) {
    const double score =
        store_.ScoreOne(config, score_query, static_cast<int>(v));
    ++evaluated;
    const ScoredUser c{score, v};
    if (heap.size() < want) {
      heap.push_back(c);
      std::push_heap(heap.begin(), heap.end(), BetterScoredUser);
    } else if (BetterScoredUser(c, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), BetterScoredUser);
      heap.back() = c;
      std::push_heap(heap.begin(), heap.end(), BetterScoredUser);
    }
  };
  /// Structural-only upper bound c1·s^d + c2·s^s for one auxiliary user
  /// (exact ratio terms, cosine terms bounded by 1 when both sides have
  /// signal).
  auto structural_bound = [&](size_t v) {
    const IndexedUserFeatures& f = data_.users[v];
    const uint8_t signal = has_signal_[v];
    const double sd =
        MinMaxRatio(query.degree, f.degree) +
        MinMaxRatio(query.weighted_degree, f.weighted_degree) +
        ((query_ncs && (signal & kHasNcs)) ? 1.0 : 0.0);
    const double ss = ((query_hop && (signal & kHasHop)) ? 1.0 : 0.0) +
                      ((query_whop && (signal & kHasWeightedHop)) ? 1.0 : 0.0);
    return data_.c1 * sd + data_.c2 * ss;
  };

  // Phase 1: attribute sharers, best-first by upper bound. A candidate is
  // pruned (and, since bounds are sorted descending, the scan stops) only
  // when the heap is full AND its bound falls strictly below the K-th
  // score — ties always evaluate, so exact tie-breaking is preserved.
  std::vector<ScoredUser> sharers;
  sharers.reserve(ws.touched.size());
  const double query_attr_count = static_cast<double>(query.attributes.size());
  for (int32_t v32 : ws.touched) {
    const auto v = static_cast<size_t>(v32);
    const double inter = static_cast<double>(ws.inter_count[v]);
    const double set_union = query_attr_count +
                             static_cast<double>(
                                 data_.users[v].attributes.size()) -
                             inter;
    double attr_bound = set_union > 0.0 ? inter / set_union : 0.0;
    const double weight_union =
        query_attr_weight + total_attr_weight_[v] - ws.inter_weight[v];
    attr_bound += weight_union > 0.0
                      ? std::min(1.0, ws.inter_weight[v] / weight_union)
                      : 1.0;
    const double bound =
        structural_bound(v) + data_.c3 * attr_bound + kBoundSlack;
    sharers.push_back({bound, v32});
  }
  std::sort(sharers.begin(), sharers.end(), BetterScoredUser);
  for (const ScoredUser& s : sharers) {
    if (heap.size() == want && s.score < kth_score()) break;
    if (evaluated >= budget) break;
    evaluate(s.user);
  }

  // Phase 2: everyone else shares no attribute, so s^a = 0 exactly and
  // only the structural terms remain. Buckets are screened best-first by
  // their collective bound; members get an O(1) per-user bound.
  std::vector<std::pair<double, size_t>> bucket_order;
  bucket_order.reserve(buckets_.size());
  for (size_t b = 0; b < buckets_.size(); ++b) {
    const DegreeBucket& bucket = buckets_[b];
    const double sd =
        MinMaxRatioUpper(query.degree, bucket.min_degree,
                         bucket.max_degree) +
        MinMaxRatioUpper(query.weighted_degree, bucket.min_weighted_degree,
                         bucket.max_weighted_degree) +
        ((query_ncs && bucket.any_ncs) ? 1.0 : 0.0);
    const double ss = ((query_hop && bucket.any_hop) ? 1.0 : 0.0) +
                      ((query_whop && bucket.any_weighted_hop) ? 1.0 : 0.0);
    bucket_order.emplace_back(data_.c1 * sd + data_.c2 * ss + kBoundSlack, b);
  }
  std::sort(bucket_order.begin(), bucket_order.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (const auto& [bucket_bound, b] : bucket_order) {
    if (heap.size() == want && bucket_bound < kth_score()) break;
    if (evaluated >= budget) break;
    for (int32_t v32 : buckets_[b].members) {
      const auto v = static_cast<size_t>(v32);
      if (ws.epoch[v] == ws.current) continue;  // already seen as a sharer
      if (evaluated >= budget) break;
      if (heap.size() == want &&
          structural_bound(v) + kBoundSlack < kth_score())
        continue;
      evaluate(v32);
    }
  }

  std::sort(heap.begin(), heap.end(), BetterScoredUser);

  // One atomic add per counter per query (never per candidate): the prune
  // hit/miss ratio is the number the bench reports, and this keeps the
  // accounting off the inner loop.
  obs::IndexMetrics& metrics = obs::GetIndexMetrics();
  metrics.topk_queries->Increment();
  metrics.exact_evals->Increment(static_cast<uint64_t>(evaluated));
  metrics.bound_pruned->Increment(
      static_cast<uint64_t>(static_cast<int64_t>(n2) - evaluated));
  return heap;
}

}  // namespace dehealth
