#ifndef DEHEALTH_INDEX_CANDIDATE_INDEX_H_
#define DEHEALTH_INDEX_CANDIDATE_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/feature_store.h"
#include "core/similarity.h"
#include "core/top_k.h"
#include "core/uda_graph.h"

namespace dehealth {

/// One user's precomputed similarity features — exactly the per-side values
/// the dense StructuralSimilarity precomputes, so the index can feed the
/// shared CombinedStructuralScore kernel and reproduce dense scores
/// bitwise. `attributes` is sorted by id and IDF-scaled (when enabled).
struct IndexedUserFeatures {
  double degree = 0.0;
  double weighted_degree = 0.0;
  std::vector<double> ncs;
  std::vector<double> hop;
  std::vector<double> weighted_hop;
  std::vector<std::pair<int, double>> attributes;
};

/// Everything a candidate-index snapshot persists: the score-shaping config
/// fields, a fingerprint of the auxiliary side the index was built from,
/// the per-auxiliary-user feature store (landmark vectors included, so a
/// load skips the BFS/Dijkstra precomputation), and the IDF table the query
/// side must reuse verbatim (libm's log may differ across machines; the
/// stored doubles keep query scaling bitwise-stable).
struct CandidateIndexData {
  double c1 = 0.05;
  double c2 = 0.05;
  double c3 = 0.9;
  int num_landmarks = 50;
  bool idf_weight_attributes = false;
  /// Fingerprint of the FULL auxiliary universe this index (or the index
  /// this shard was sliced from) was built against — never the slice, so
  /// shards of the same universe agree on it and a router can fail closed
  /// on mismatched backends.
  uint64_t auxiliary_fingerprint = 0;
  /// Shard identity (DHIX v2). An unsharded index is shard 0 of 1 covering
  /// [0, users.size()). A shard holds the universe's contiguous id range
  /// [shard_begin, shard_begin + users.size()); `users` is indexed by
  /// LOCAL id (global id - shard_begin). shard_total is the universe size.
  uint32_t shard_index = 0;
  uint32_t shard_count = 1;
  uint32_t shard_begin = 0;
  uint32_t shard_total = 0;
  std::vector<IndexedUserFeatures> users;
  /// (attribute id, idf weight), sorted by id; empty when IDF is off.
  std::vector<std::pair<int, double>> idf_table;
  /// IDF of an attribute never seen on the auxiliary side (df = 0).
  double default_idf = 1.0;
};

/// Fingerprint of the auxiliary side used to detect stale snapshots:
/// FNV-1a over user count and per-user degree, weighted degree, post count
/// and the raw (unscaled) attribute list.
uint64_t FingerprintForIndex(const UdaGraph& side);

/// A persistent auxiliary-side DA candidate index. Answers exact
/// per-anonymized-user similarity scores and Top-K candidate queries
/// WITHOUT forming the dense |Δ1|×|Δ2| similarity matrix:
///
///  1. an inverted index over the binary stylometric attributes yields, per
///     query, every auxiliary user sharing at least one attribute together
///     with a weighted-Jaccard upper bound on s^a (non-sharers have
///     s^a = 0 exactly);
///  2. logarithmic degree buckets plus per-user flags ("has NCS / landmark
///     signal") give O(1) upper bounds on c1·s^d + c2·s^s for everyone
///     else;
///  3. best-first retrieval evaluates the exact score — via the SAME
///     compiled kernel as the dense path (CombinedStructuralScore) — only
///     when a candidate's upper bound can still beat the current K-th
///     score.
///
/// Results are bitwise-identical to SelectTopKCandidates(kDirect) on the
/// dense matrix (see DESIGN.md "Candidate index" for the argument); an
/// optional per-query evaluation budget trades recall for speed.
class CandidateIndex {
 public:
  /// Builds the index from the auxiliary side. `config.num_threads` drives
  /// the landmark precomputation; every other field shapes the scores and
  /// is persisted. O(ħ·(V+E log V) + Σ|A(v)|).
  static StatusOr<CandidateIndex> Build(const UdaGraph& auxiliary,
                                        const SimilarityConfig& config);

  /// Wraps deserialized snapshot data, rebuilding the derived structures
  /// (inverted index, degree buckets). InvalidArgument when the data is
  /// internally inconsistent.
  static StatusOr<CandidateIndex> FromData(CandidateIndexData data);

  int num_auxiliary() const { return static_cast<int>(data_.users.size()); }
  const CandidateIndexData& data() const { return data_; }

  /// The score-shaping fields as a SimilarityConfig (num_threads = 0,
  /// simd = the runtime simd_mode()).
  SimilarityConfig similarity_config() const;

  /// Runtime SIMD tier for exact scoring (NOT persisted — a snapshot holds
  /// features, and every tier scores them bitwise-identically). Defaults
  /// to kAuto; Build() copies the config's choice, FromData callers (the
  /// snapshot path) set it afterwards.
  SimdMode simd_mode() const { return simd_mode_; }
  void set_simd_mode(SimdMode mode) { simd_mode_ = mode; }

  /// IDF weight of an attribute id (1.0 when IDF scaling is off;
  /// default_idf for ids unseen on the auxiliary side).
  double IdfWeight(int attribute_id) const;

  /// Query-side feature computation: landmark vectors on the anonymized
  /// graph plus attributes scaled with the index's stored IDF table —
  /// exactly what StructuralSimilarity precomputes for side 0.
  std::vector<IndexedUserFeatures> ComputeQueryFeatures(
      const UdaGraph& anonymized, int num_threads = 0) const;

  /// Exact s_uv of a query against auxiliary user v (bitwise equal to the
  /// dense StructuralSimilarity::Combined).
  double ExactScore(const IndexedUserFeatures& query, NodeId v) const;

  /// Exact scores of a query against every auxiliary user, in id order —
  /// the verification path: one batched FeatureStore row scan, bitwise
  /// equal to per-pair ExactScore calls.
  void ExactRow(const IndexedUserFeatures& query,
                std::vector<double>* row) const;

  /// ExactRow into a caller-provided buffer of num_auxiliary() doubles —
  /// the allocation-free form the dense-scan Top-K path and the sharded
  /// source's row assembly reuse.
  void ExactRowTo(const IndexedUserFeatures& query, double* out) const;

  /// The query's Top-K candidate list: the min(k, n2) auxiliary ids with
  /// the largest exact scores, ordered by decreasing score with ties
  /// broken by smaller id — bitwise what SelectTopKCandidates(kDirect)
  /// returns for this row. `max_candidates > 0` caps the number of exact
  /// score evaluations (clamped to >= k so the list still fills); the cap
  /// may lose recall, 0 keeps the exact guarantee.
  std::vector<int> TopKForQuery(const IndexedUserFeatures& query, int k,
                                int max_candidates = 0) const;

  /// TopKForQuery keeping the exact scores — what shard merging needs
  /// (MergeScoredTopK re-ranks candidates across shards by score, so ids
  /// alone are not enough). `user` fields are LOCAL ids; the caller
  /// translates by data().shard_begin. When max_candidates == 0 and the
  /// inverted index would touch most of the universe anyway, this switches
  /// to a dense scan through the batched row kernel (same scores, so the
  /// result is unchanged; see the "dense-scan crossover" note in
  /// DESIGN.md).
  std::vector<ScoredUser> TopKScoredForQuery(const IndexedUserFeatures& query,
                                             int k,
                                             int max_candidates = 0) const;

 private:
  explicit CandidateIndex(CandidateIndexData data);

  /// Rebuilds the derived structures from data_.users.
  void BuildDerived();

  /// Posting entry of the inverted index: auxiliary user id plus its
  /// (IDF-scaled) attribute weight rounded UP to float, so bounds computed
  /// from it stay valid at 8 bytes/entry.
  struct Posting {
    int32_t user;
    float weight_ub;
  };

  /// A logarithmic degree bucket: per-member O(1) screening data for users
  /// that share no attribute with the query (s^a = 0 there, so only the
  /// cheap structural terms can contribute).
  struct DegreeBucket {
    double min_degree = 0.0;
    double max_degree = 0.0;
    double min_weighted_degree = 0.0;
    double max_weighted_degree = 0.0;
    bool any_ncs = false;
    bool any_hop = false;
    bool any_weighted_hop = false;
    std::vector<int32_t> members;  // ascending user id
  };

  CandidateIndexData data_;
  SimdMode simd_mode_ = SimdMode::kAuto;
  /// Blocked SoA mirror of data_.users for batched/precomputed exact
  /// scoring (rebuilt by BuildDerived; never persisted).
  FeatureStore store_;
  std::unordered_map<int, double> idf_lookup_;
  std::unordered_map<int, std::vector<Posting>> postings_;
  std::vector<DegreeBucket> buckets_;
  /// total_attr_weight_[v] = Σ of v's scaled attribute weights (left-to-
  /// right), for the weighted-Jaccard union lower bound.
  std::vector<double> total_attr_weight_;
  /// has_signal_[v] bit 0/1/2 = NCS / hop / weighted-hop vector has a
  /// nonzero entry (cosine against it can exceed 0).
  std::vector<uint8_t> has_signal_;
};

}  // namespace dehealth

#endif  // DEHEALTH_INDEX_CANDIDATE_INDEX_H_
