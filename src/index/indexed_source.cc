#include "index/indexed_source.h"

#include "common/parallel.h"
#include "obs/trace.h"

namespace dehealth {

IndexedCandidateSource::IndexedCandidateSource(const UdaGraph& anonymized,
                                               const CandidateIndex& index,
                                               int num_threads,
                                               int max_candidates)
    : index_(&index),
      queries_(index.ComputeQueryFeatures(anonymized, num_threads)),
      max_candidates_(max_candidates) {}

int IndexedCandidateSource::num_anonymized() const {
  return static_cast<int>(queries_.size());
}

int IndexedCandidateSource::num_auxiliary() const {
  return index_->num_auxiliary();
}

double IndexedCandidateSource::Score(NodeId u, NodeId v) const {
  return index_->ExactScore(queries_[static_cast<size_t>(u)], v);
}

const std::vector<double>& IndexedCandidateSource::Row(
    NodeId u, std::vector<double>* scratch) const {
  index_->ExactRow(queries_[static_cast<size_t>(u)], scratch);
  return *scratch;
}

StatusOr<CandidateSets> IndexedCandidateSource::TopK(int k,
                                                     int num_threads) const {
  if (k < 1)
    return Status::InvalidArgument(
        "IndexedCandidateSource::TopK: k must be >= 1");
  obs::Span span("index", "indexed_top_k");
  span.SetArg("rows", static_cast<int64_t>(queries_.size()));
  CandidateSets result(queries_.size());
  // Row-parallel like the dense path: each task owns one preallocated
  // output slot, so candidate sets are identical for any thread count.
  ParallelFor(
      0, static_cast<int64_t>(queries_.size()),
      [&](int64_t u) {
        result[static_cast<size_t>(u)] = index_->TopKForQuery(
            queries_[static_cast<size_t>(u)], k, max_candidates_);
      },
      num_threads);
  return result;
}

StatusOr<CandidateSets> IndexedCandidateSource::TopKForUsers(
    const std::vector<int>& users, int k, int num_threads) const {
  if (k < 1)
    return Status::InvalidArgument(
        "IndexedCandidateSource::TopKForUsers: k must be >= 1");
  const int n1 = num_anonymized();
  for (int u : users)
    if (u < 0 || u >= n1)
      return Status::InvalidArgument(
          "IndexedCandidateSource::TopKForUsers: user id " +
          std::to_string(u) + " out of range [0, " + std::to_string(n1) +
          ")");
  CandidateSets result(users.size());
  ParallelFor(
      0, static_cast<int64_t>(users.size()),
      [&](int64_t i) {
        result[static_cast<size_t>(i)] = index_->TopKForQuery(
            queries_[static_cast<size_t>(users[static_cast<size_t>(i)])], k,
            max_candidates_);
      },
      num_threads);
  return result;
}

}  // namespace dehealth
