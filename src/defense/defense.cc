#include "defense/defense.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "common/string_utils.h"
#include "text/lexicon.h"
#include "text/tokenizer.h"

namespace dehealth {

std::string ScrubText(const std::string& text) {
  // Pass 1: lowercase; punctuation / special characters / newlines -> space.
  std::string flattened;
  flattened.reserve(text.size());
  for (char c : text) {
    const auto uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      flattened += static_cast<char>(std::tolower(uc));
    } else if (c == '\'') {
      flattened += c;  // keep contractions as single tokens
    } else {
      flattened += ' ';
    }
  }
  // Pass 2: drop known misspellings, collapse whitespace.
  std::string out;
  out.reserve(flattened.size());
  for (const std::string& token : SplitString(flattened, " ")) {
    if (IsMisspelling(token)) continue;
    if (!out.empty()) out += ' ';
    out += token;
  }
  return out;
}

StatusOr<ForumDataset> ApplyDefense(const ForumDataset& dataset,
                                    const DefenseConfig& config) {
  if (config.post_sample_fraction <= 0.0 ||
      config.post_sample_fraction > 1.0)
    return Status::InvalidArgument(
        "ApplyDefense: post_sample_fraction must be in (0, 1]");

  Rng rng(config.seed);
  ForumDataset defended;
  defended.num_users = dataset.num_users;

  // Subsample per user (keeping at least one post each).
  std::vector<int> kept_posts;
  if (config.post_sample_fraction < 1.0) {
    for (auto& posts : dataset.PostsByUser()) {
      if (posts.empty()) continue;
      std::vector<int> shuffled = posts;
      rng.Shuffle(shuffled);
      const size_t keep = std::max<size_t>(
          1, static_cast<size_t>(config.post_sample_fraction *
                                 static_cast<double>(shuffled.size())));
      kept_posts.insert(kept_posts.end(), shuffled.begin(),
                        shuffled.begin() + static_cast<long>(keep));
    }
    std::sort(kept_posts.begin(), kept_posts.end());
  } else {
    kept_posts.resize(dataset.posts.size());
    for (size_t i = 0; i < kept_posts.size(); ++i)
      kept_posts[i] = static_cast<int>(i);
  }

  int next_thread = config.drop_thread_structure ? 0 : dataset.num_threads;
  defended.posts.reserve(kept_posts.size());
  for (int idx : kept_posts) {
    Post post = dataset.posts[static_cast<size_t>(idx)];
    if (config.drop_thread_structure) post.thread_id = next_thread++;
    if (config.scrub_text) post.text = ScrubText(post.text);
    defended.posts.push_back(std::move(post));
  }
  defended.num_threads =
      config.drop_thread_structure ? next_thread : dataset.num_threads;
  return defended;
}

double ContentWordRetention(const ForumDataset& original,
                            const ForumDataset& defended) {
  if (original.posts.empty()) return 0.0;
  // Index defended posts by (user, thread-or-order): compare multiset of
  // lowercase words per user instead of per post (subsampling reorders).
  std::unordered_map<int, std::unordered_map<std::string, int>> kept;
  for (const Post& p : defended.posts)
    for (const std::string& w : TokenizeWords(p.text))
      ++kept[p.user_id][ToLowerAscii(w)];

  long long total = 0, retained = 0;
  for (const Post& p : original.posts) {
    auto user_it = kept.find(p.user_id);
    for (const std::string& w : TokenizeWords(p.text)) {
      ++total;
      if (user_it == kept.end()) continue;
      auto& counts = user_it->second;
      auto it = counts.find(ToLowerAscii(w));
      if (it != counts.end() && it->second > 0) {
        --it->second;
        ++retained;
      }
    }
  }
  if (total == 0) return 0.0;
  return static_cast<double>(retained) / static_cast<double>(total);
}

}  // namespace dehealth
