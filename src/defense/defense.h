#ifndef DEHEALTH_DEFENSE_DEFENSE_H_
#define DEHEALTH_DEFENSE_DEFENSE_H_

#include <string>

#include "common/status.h"
#include "datagen/corpus.h"

namespace dehealth {

/// Dataset-side anonymization countermeasures. Developing "effective online
/// health data anonymization techniques" is the paper's stated open
/// problem; this module implements the natural first-line defenses so their
/// cost/benefit can be measured against De-Health (bench_defense).
struct DefenseConfig {
  /// Surface scrubbing: lowercase everything, strip punctuation and special
  /// characters, drop known-misspelled words, collapse paragraphs. Attacks
  /// the lexical/syntactic/idiosyncratic stylometric channels.
  bool scrub_text = false;

  /// Destroy the interaction channel: give every post its own thread so the
  /// correlation graph is empty (degree/distance similarities carry no
  /// signal).
  bool drop_thread_structure = false;

  /// Publish only this fraction of each user's posts (1.0 = all). Fewer
  /// posts => weaker attribute weights and thinner classifiers.
  double post_sample_fraction = 1.0;

  /// Random post shuffling across pseudonyms is NOT offered: it destroys
  /// utility entirely (the per-user record becomes meaningless).

  uint64_t seed = 1;
};

/// Applies the configured defenses to a dataset, returning the sanitized
/// copy. Deterministic in config.seed. Fails on an invalid sample fraction.
StatusOr<ForumDataset> ApplyDefense(const ForumDataset& dataset,
                                    const DefenseConfig& config);

/// The text-level scrubber used by `scrub_text` (exposed for testing):
/// lowercases ASCII, maps punctuation/special characters and newlines to
/// spaces, removes tokens found in the misspelling lexicon, and collapses
/// runs of whitespace.
std::string ScrubText(const std::string& text);

/// A crude utility metric: fraction of the original content words that
/// survive in the defended dataset (averaged over posts; 1.0 = lossless for
/// search/analytics that only need the words).
double ContentWordRetention(const ForumDataset& original,
                            const ForumDataset& defended);

}  // namespace dehealth

#endif  // DEHEALTH_DEFENSE_DEFENSE_H_
