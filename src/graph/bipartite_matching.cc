#include "graph/bipartite_matching.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace dehealth {

std::vector<int> MaxWeightBipartiteMatching(
    const std::vector<std::vector<double>>& weights) {
  const int rows = static_cast<int>(weights.size());
  if (rows == 0) return {};
  const int cols = static_cast<int>(weights[0].size());
  for (const auto& row : weights) {
    (void)row;
    assert(static_cast<int>(row.size()) == cols && "ragged weight matrix");
  }
  if (cols == 0) return std::vector<int>(static_cast<size_t>(rows), -1);

  // Convert to a square minimization problem: cost = max_weight - weight;
  // padded cells cost exactly max_weight (equivalent to weight 0).
  double max_weight = 0.0;
  for (const auto& row : weights)
    for (double w : row) {
      assert(w >= 0.0);
      max_weight = std::max(max_weight, w);
    }
  const int n = std::max(rows, cols);
  auto cost = [&](int i, int j) -> double {
    if (i < rows && j < cols) return max_weight - weights[static_cast<size_t>(
                                                      i)][static_cast<size_t>(j)];
    return max_weight;
  };

  // Hungarian algorithm with potentials (1-indexed internals).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(static_cast<size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(n) + 1, 0.0);
  std::vector<int> match_col(static_cast<size_t>(n) + 1, 0);  // col -> row
  std::vector<int> way(static_cast<size_t>(n) + 1, 0);

  for (int i = 1; i <= n; ++i) {
    match_col[0] = i;
    int j0 = 0;
    std::vector<double> min_v(static_cast<size_t>(n) + 1, kInf);
    std::vector<bool> used(static_cast<size_t>(n) + 1, false);
    do {
      used[static_cast<size_t>(j0)] = true;
      const int i0 = match_col[static_cast<size_t>(j0)];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[static_cast<size_t>(i0)] -
                           v[static_cast<size_t>(j)];
        if (cur < min_v[static_cast<size_t>(j)]) {
          min_v[static_cast<size_t>(j)] = cur;
          way[static_cast<size_t>(j)] = j0;
        }
        if (min_v[static_cast<size_t>(j)] < delta) {
          delta = min_v[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(match_col[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          min_v[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (match_col[static_cast<size_t>(j0)] != 0);
    // Augment along the alternating path.
    do {
      const int j1 = way[static_cast<size_t>(j0)];
      match_col[static_cast<size_t>(j0)] = match_col[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> assignment(static_cast<size_t>(rows), -1);
  for (int j = 1; j <= n; ++j) {
    const int i = match_col[static_cast<size_t>(j)];
    if (i >= 1 && i <= rows && j <= cols)
      assignment[static_cast<size_t>(i - 1)] = j - 1;
  }
  return assignment;
}

double MatchingWeight(const std::vector<std::vector<double>>& weights,
                      const std::vector<int>& assignment) {
  double total = 0.0;
  for (size_t i = 0; i < assignment.size(); ++i) {
    const int j = assignment[i];
    if (j >= 0) total += weights[i][static_cast<size_t>(j)];
  }
  return total;
}

}  // namespace dehealth
