#ifndef DEHEALTH_GRAPH_COMMUNITY_H_
#define DEHEALTH_GRAPH_COMMUNITY_H_

#include <vector>

#include "common/rng.h"
#include "graph/correlation_graph.h"

namespace dehealth {

/// Connected-component decomposition. Returns a label per node (labels are
/// 0..num_components-1, assigned in discovery order); isolated nodes form
/// singleton components.
struct ComponentResult {
  std::vector<int> label;  // per node
  int num_components = 0;
};

ComponentResult ConnectedComponents(const CorrelationGraph& graph);

/// Sizes of each component, indexed by label.
std::vector<int> ComponentSizes(const ComponentResult& components);

/// Weighted label-propagation community detection (the tool class used by
/// the Fig-8 community-structure analysis). Deterministic given the seed of
/// the supplied Rng; runs at most `max_iterations` synchronous rounds (each
/// node adopts the label with the largest incident weight, ties broken by
/// smallest label). Returns labels compacted to 0..num_communities-1.
struct CommunityResult {
  std::vector<int> label;
  int num_communities = 0;
  int iterations_run = 0;
};

CommunityResult LabelPropagation(const CorrelationGraph& graph, Rng& rng,
                                 int max_iterations = 50);

/// Summary used by the Fig-8 experiment: community structure of the graph
/// after removing nodes with degree < min_degree.
struct CommunityStructureSummary {
  int min_degree = 0;
  int active_nodes = 0;     // nodes surviving the degree filter with d > 0
  int num_components = 0;   // connected components among active nodes
  int num_communities = 0;  // label-propagation communities (non-singleton)
  int largest_component = 0;
};

CommunityStructureSummary SummarizeCommunityStructure(
    const CorrelationGraph& graph, int min_degree, Rng& rng);

}  // namespace dehealth

#endif  // DEHEALTH_GRAPH_COMMUNITY_H_
