#ifndef DEHEALTH_GRAPH_BIPARTITE_MATCHING_H_
#define DEHEALTH_GRAPH_BIPARTITE_MATCHING_H_

#include <vector>

namespace dehealth {

/// Maximum-weight matching on a complete bipartite graph (the paper's
/// graph-matching-based Top-K candidate selection runs this repeatedly on
/// the anonymized-vs-auxiliary similarity matrix).
///
/// `weights[i][j]` is the (finite, >= 0) weight of pairing left node i with
/// right node j; rows must have equal length. Rectangular inputs are padded
/// internally. Returns, per left node, the matched right index, or -1 when
/// there are fewer right than left nodes and i was left unmatched.
///
/// Implementation: Jonker–Volgenant style Hungarian algorithm with row/column
/// potentials, O(n^3).
std::vector<int> MaxWeightBipartiteMatching(
    const std::vector<std::vector<double>>& weights);

/// Total weight of an assignment produced by MaxWeightBipartiteMatching.
double MatchingWeight(const std::vector<std::vector<double>>& weights,
                      const std::vector<int>& assignment);

}  // namespace dehealth

#endif  // DEHEALTH_GRAPH_BIPARTITE_MATCHING_H_
