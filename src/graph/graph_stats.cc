#include "graph/graph_stats.h"

#include <algorithm>
#include <unordered_set>

#include "graph/community.h"

namespace dehealth {

double LocalClusteringCoefficient(const CorrelationGraph& graph, NodeId u) {
  const auto& neighbors = graph.Neighbors(u);
  const size_t d = neighbors.size();
  if (d < 2) return 0.0;
  std::unordered_set<NodeId> neighbor_set;
  neighbor_set.reserve(d);
  for (const auto& nb : neighbors) neighbor_set.insert(nb.id);
  long long closed = 0;
  for (const auto& nb : neighbors)
    for (const auto& nb2 : graph.Neighbors(nb.id))
      if (nb2.id != u && neighbor_set.count(nb2.id)) ++closed;
  // Each triangle edge counted twice (once from each endpoint).
  const double possible = static_cast<double>(d) * (d - 1);
  return static_cast<double>(closed) / possible;
}

GraphSummary SummarizeGraph(const CorrelationGraph& graph) {
  GraphSummary s;
  s.num_nodes = graph.num_nodes();
  s.num_edges = graph.num_edges();
  if (s.num_nodes == 0) return s;

  double degree_sum = 0.0, weighted_sum = 0.0, clustering_sum = 0.0;
  int clustered_nodes = 0, isolated = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const int d = graph.Degree(u);
    degree_sum += d;
    weighted_sum += graph.WeightedDegree(u);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) ++isolated;
    if (d >= 2) {
      clustering_sum += LocalClusteringCoefficient(graph, u);
      ++clustered_nodes;
    }
  }
  s.mean_degree = degree_sum / s.num_nodes;
  s.mean_weighted_degree = weighted_sum / s.num_nodes;
  s.isolated_fraction = static_cast<double>(isolated) / s.num_nodes;
  if (clustered_nodes > 0) s.mean_clustering = clustering_sum / clustered_nodes;

  const ComponentResult comps = ConnectedComponents(graph);
  s.num_components = comps.num_components;
  for (int size : ComponentSizes(comps))
    s.largest_component = std::max(s.largest_component, size);
  return s;
}

std::vector<int> DegreeHistogram(const CorrelationGraph& graph) {
  int max_degree = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u)
    max_degree = std::max(max_degree, graph.Degree(u));
  std::vector<int> hist(static_cast<size_t>(max_degree) + 1, 0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u)
    ++hist[static_cast<size_t>(graph.Degree(u))];
  return hist;
}

}  // namespace dehealth
