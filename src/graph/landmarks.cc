#include "graph/landmarks.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

#include "common/parallel.h"
#include "graph/shortest_path.h"

namespace dehealth {

LandmarkIndex::LandmarkIndex(const CorrelationGraph& graph, int count,
                             int num_threads) {
  assert(count >= 0);
  const std::vector<NodeId> by_degree = graph.NodesByDegreeDesc();
  const size_t take =
      std::min(static_cast<size_t>(count), by_degree.size());
  landmarks_.assign(by_degree.begin(),
                    by_degree.begin() + static_cast<long>(take));
  // One BFS + one Dijkstra per landmark, each writing only its own slot.
  hop_from_landmark_.resize(take);
  weighted_from_landmark_.resize(take);
  ParallelFor(
      0, static_cast<int64_t>(take),
      [&](int64_t i) {
        const NodeId lm = landmarks_[static_cast<size_t>(i)];
        hop_from_landmark_[static_cast<size_t>(i)] = BfsDistances(graph, lm);
        weighted_from_landmark_[static_cast<size_t>(i)] =
            WeightedDistances(graph, lm);
      },
      num_threads);
}

std::vector<double> LandmarkIndex::HopVector(NodeId u) const {
  std::vector<double> out;
  out.reserve(landmarks_.size());
  for (const auto& dist : hop_from_landmark_)
    out.push_back(HopProximity(dist[static_cast<size_t>(u)]));
  return out;
}

std::vector<double> LandmarkIndex::WeightedVector(NodeId u) const {
  std::vector<double> out;
  out.reserve(landmarks_.size());
  for (const auto& dist : weighted_from_landmark_)
    out.push_back(WeightedProximity(dist[static_cast<size_t>(u)]));
  return out;
}

}  // namespace dehealth
