#include "graph/landmarks.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

#include "graph/shortest_path.h"

namespace dehealth {

LandmarkIndex::LandmarkIndex(const CorrelationGraph& graph, int count) {
  assert(count >= 0);
  const std::vector<NodeId> by_degree = graph.NodesByDegreeDesc();
  const size_t take =
      std::min(static_cast<size_t>(count), by_degree.size());
  landmarks_.assign(by_degree.begin(),
                    by_degree.begin() + static_cast<long>(take));
  hop_from_landmark_.reserve(take);
  weighted_from_landmark_.reserve(take);
  for (NodeId lm : landmarks_) {
    hop_from_landmark_.push_back(BfsDistances(graph, lm));
    weighted_from_landmark_.push_back(WeightedDistances(graph, lm));
  }
}

std::vector<double> LandmarkIndex::HopVector(NodeId u) const {
  std::vector<double> out;
  out.reserve(landmarks_.size());
  for (const auto& dist : hop_from_landmark_)
    out.push_back(HopProximity(dist[static_cast<size_t>(u)]));
  return out;
}

std::vector<double> LandmarkIndex::WeightedVector(NodeId u) const {
  std::vector<double> out;
  out.reserve(landmarks_.size());
  for (const auto& dist : weighted_from_landmark_)
    out.push_back(WeightedProximity(dist[static_cast<size_t>(u)]));
  return out;
}

}  // namespace dehealth
