#ifndef DEHEALTH_GRAPH_GRAPH_STATS_H_
#define DEHEALTH_GRAPH_GRAPH_STATS_H_

#include <vector>

#include "graph/correlation_graph.h"

namespace dehealth {

/// Descriptive statistics of a correlation graph (the Appendix-B analysis
/// surface: degree distribution, connectivity, clustering).
struct GraphSummary {
  int num_nodes = 0;
  int num_edges = 0;
  double mean_degree = 0.0;
  int max_degree = 0;
  double mean_weighted_degree = 0.0;
  /// Fraction of nodes with degree 0.
  double isolated_fraction = 0.0;
  /// Global average of local clustering coefficients (degree >= 2 nodes).
  double mean_clustering = 0.0;
  int num_components = 0;       // including singletons
  int largest_component = 0;
};

/// Computes the summary. Clustering is O(sum of d_u^2) — fine on the
/// sparse health graphs.
GraphSummary SummarizeGraph(const CorrelationGraph& graph);

/// Local clustering coefficient of `u`: closed-triangle fraction among
/// neighbor pairs. 0 for degree < 2.
double LocalClusteringCoefficient(const CorrelationGraph& graph, NodeId u);

/// Degree histogram: result[d] = number of nodes with degree d
/// (length max_degree + 1; a single zero entry for an empty graph).
std::vector<int> DegreeHistogram(const CorrelationGraph& graph);

}  // namespace dehealth

#endif  // DEHEALTH_GRAPH_GRAPH_STATS_H_
