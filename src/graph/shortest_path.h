#ifndef DEHEALTH_GRAPH_SHORTEST_PATH_H_
#define DEHEALTH_GRAPH_SHORTEST_PATH_H_

#include <vector>

#include "graph/correlation_graph.h"

namespace dehealth {

/// Sentinel for "unreachable" in hop-distance results.
inline constexpr int kUnreachable = -1;

/// BFS hop distances h_{source,v} from `source` to every node.
/// Unreachable nodes get kUnreachable.
std::vector<int> BfsDistances(const CorrelationGraph& graph, NodeId source);

/// Dijkstra distances where traversing edge (u, v) costs 1 / w_uv — a
/// strongly-interacting pair is "closer". Unreachable nodes get +infinity.
std::vector<double> WeightedDistances(const CorrelationGraph& graph,
                                      NodeId source);

/// Converts a hop distance to a bounded proximity in (0, 1]:
/// proximity = 1 / (1 + h); unreachable maps to 0. The paper's distance
/// vectors H_u(S) feed a cosine similarity; on the (mostly disconnected)
/// health graphs raw distances would make unrelated unreachable pairs look
/// identical, so De-Health uses this bounded transform, which preserves the
/// ordering "closer => larger component".
double HopProximity(int hop_distance);

/// Same for weighted distances: 1 / (1 + wh); +infinity maps to 0.
double WeightedProximity(double weighted_distance);

}  // namespace dehealth

#endif  // DEHEALTH_GRAPH_SHORTEST_PATH_H_
