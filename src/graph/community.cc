#include "graph/community.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <queue>
#include <unordered_map>

namespace dehealth {

ComponentResult ConnectedComponents(const CorrelationGraph& graph) {
  ComponentResult result;
  result.label.assign(static_cast<size_t>(graph.num_nodes()), -1);
  for (NodeId start = 0; start < graph.num_nodes(); ++start) {
    if (result.label[static_cast<size_t>(start)] != -1) continue;
    const int label = result.num_components++;
    std::queue<NodeId> frontier;
    result.label[static_cast<size_t>(start)] = label;
    frontier.push(start);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const auto& n : graph.Neighbors(u)) {
        if (result.label[static_cast<size_t>(n.id)] == -1) {
          result.label[static_cast<size_t>(n.id)] = label;
          frontier.push(n.id);
        }
      }
    }
  }
  return result;
}

std::vector<int> ComponentSizes(const ComponentResult& components) {
  std::vector<int> sizes(static_cast<size_t>(components.num_components), 0);
  for (int label : components.label) ++sizes[static_cast<size_t>(label)];
  return sizes;
}

CommunityResult LabelPropagation(const CorrelationGraph& graph, Rng& rng,
                                 int max_iterations) {
  const int n = graph.num_nodes();
  CommunityResult result;
  result.label.resize(static_cast<size_t>(n));
  std::iota(result.label.begin(), result.label.end(), 0);

  std::vector<NodeId> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  for (int iter = 0; iter < max_iterations; ++iter) {
    rng.Shuffle(order);
    bool changed = false;
    for (NodeId u : order) {
      const auto& neighbors = graph.Neighbors(u);
      if (neighbors.empty()) continue;
      // Pick the label with the largest incident weight; smallest label on
      // ties for determinism under a fixed visiting order.
      std::map<int, double> weight_by_label;
      for (const auto& nb : neighbors)
        weight_by_label[result.label[static_cast<size_t>(nb.id)]] +=
            nb.weight;
      int best_label = result.label[static_cast<size_t>(u)];
      double best_weight = -1.0;
      for (const auto& [label, weight] : weight_by_label) {
        if (weight > best_weight) {
          best_weight = weight;
          best_label = label;
        }
      }
      if (best_label != result.label[static_cast<size_t>(u)]) {
        result.label[static_cast<size_t>(u)] = best_label;
        changed = true;
      }
    }
    result.iterations_run = iter + 1;
    if (!changed) break;
  }

  // Compact labels.
  std::unordered_map<int, int> remap;
  for (int& label : result.label) {
    auto [it, inserted] = remap.insert({label, static_cast<int>(remap.size())});
    label = it->second;
  }
  result.num_communities = static_cast<int>(remap.size());
  return result;
}

CommunityStructureSummary SummarizeCommunityStructure(
    const CorrelationGraph& graph, int min_degree, Rng& rng) {
  CommunityStructureSummary summary;
  summary.min_degree = min_degree;
  const CorrelationGraph filtered = graph.FilterByDegree(min_degree);

  // Active nodes: still connected to something after the filter.
  std::vector<bool> active(static_cast<size_t>(filtered.num_nodes()), false);
  for (NodeId u = 0; u < filtered.num_nodes(); ++u)
    if (filtered.Degree(u) > 0) {
      active[static_cast<size_t>(u)] = true;
      ++summary.active_nodes;
    }

  const ComponentResult comps = ConnectedComponents(filtered);
  const std::vector<int> sizes = ComponentSizes(comps);
  for (size_t label = 0; label < sizes.size(); ++label) {
    if (sizes[label] > 1) {
      ++summary.num_components;
      summary.largest_component =
          std::max(summary.largest_component, sizes[label]);
    }
  }

  const CommunityResult lp = LabelPropagation(filtered, rng);
  // Count non-singleton communities among active nodes.
  std::unordered_map<int, int> community_sizes;
  for (NodeId u = 0; u < filtered.num_nodes(); ++u)
    if (active[static_cast<size_t>(u)])
      ++community_sizes[lp.label[static_cast<size_t>(u)]];
  for (const auto& [label, size] : community_sizes)
    if (size > 1) ++summary.num_communities;
  return summary;
}

}  // namespace dehealth
