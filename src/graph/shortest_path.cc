#include "graph/shortest_path.h"

#include <cassert>
#include <cstddef>
#include <limits>
#include <queue>

namespace dehealth {

std::vector<int> BfsDistances(const CorrelationGraph& graph, NodeId source) {
  assert(source >= 0 && source < graph.num_nodes());
  std::vector<int> dist(static_cast<size_t>(graph.num_nodes()), kUnreachable);
  std::queue<NodeId> frontier;
  dist[static_cast<size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const auto& n : graph.Neighbors(u)) {
      if (dist[static_cast<size_t>(n.id)] == kUnreachable) {
        dist[static_cast<size_t>(n.id)] = dist[static_cast<size_t>(u)] + 1;
        frontier.push(n.id);
      }
    }
  }
  return dist;
}

std::vector<double> WeightedDistances(const CorrelationGraph& graph,
                                      NodeId source) {
  assert(source >= 0 && source < graph.num_nodes());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<size_t>(graph.num_nodes()), kInf);
  using Entry = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  dist[static_cast<size_t>(source)] = 0.0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;  // stale entry
    for (const auto& n : graph.Neighbors(u)) {
      assert(n.weight > 0.0);
      const double nd = d + 1.0 / n.weight;
      if (nd < dist[static_cast<size_t>(n.id)]) {
        dist[static_cast<size_t>(n.id)] = nd;
        pq.push({nd, n.id});
      }
    }
  }
  return dist;
}

double HopProximity(int hop_distance) {
  if (hop_distance == kUnreachable) return 0.0;
  return 1.0 / (1.0 + static_cast<double>(hop_distance));
}

double WeightedProximity(double weighted_distance) {
  if (weighted_distance == std::numeric_limits<double>::infinity()) return 0.0;
  return 1.0 / (1.0 + weighted_distance);
}

}  // namespace dehealth
