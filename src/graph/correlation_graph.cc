#include "graph/correlation_graph.h"

#include <algorithm>
#include <cassert>

namespace dehealth {

CorrelationGraph::CorrelationGraph(int num_nodes)
    : adjacency_(static_cast<size_t>(num_nodes)) {
  assert(num_nodes >= 0);
}

void CorrelationGraph::AddInteraction(NodeId u, NodeId v, double delta) {
  assert(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  assert(delta > 0.0);
  if (u == v) return;
  auto bump = [&](NodeId from, NodeId to) -> bool {
    for (Neighbor& n : adjacency_[static_cast<size_t>(from)]) {
      if (n.id == to) {
        n.weight += delta;
        return true;
      }
    }
    adjacency_[static_cast<size_t>(from)].push_back({to, delta});
    return false;
  };
  const bool existed = bump(u, v);
  bump(v, u);
  if (!existed) ++num_edges_;
}

const std::vector<CorrelationGraph::Neighbor>& CorrelationGraph::Neighbors(
    NodeId u) const {
  assert(u >= 0 && u < num_nodes());
  return adjacency_[static_cast<size_t>(u)];
}

int CorrelationGraph::Degree(NodeId u) const {
  return static_cast<int>(Neighbors(u).size());
}

double CorrelationGraph::WeightedDegree(NodeId u) const {
  double acc = 0.0;
  for (const Neighbor& n : Neighbors(u)) acc += n.weight;
  return acc;
}

double CorrelationGraph::EdgeWeight(NodeId u, NodeId v) const {
  for (const Neighbor& n : Neighbors(u))
    if (n.id == v) return n.weight;
  return 0.0;
}

std::vector<double> CorrelationGraph::NcsVector(NodeId u) const {
  std::vector<double> weights;
  weights.reserve(Neighbors(u).size());
  for (const Neighbor& n : Neighbors(u)) weights.push_back(n.weight);
  std::sort(weights.begin(), weights.end(), std::greater<double>());
  return weights;
}

std::vector<NodeId> CorrelationGraph::NodesByDegreeDesc() const {
  std::vector<NodeId> nodes(static_cast<size_t>(num_nodes()));
  for (int i = 0; i < num_nodes(); ++i) nodes[static_cast<size_t>(i)] = i;
  std::stable_sort(nodes.begin(), nodes.end(), [this](NodeId a, NodeId b) {
    const int da = Degree(a), db = Degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  return nodes;
}

CorrelationGraph CorrelationGraph::FilterByDegree(int min_degree) const {
  CorrelationGraph out(num_nodes());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    if (Degree(u) < min_degree) continue;
    for (const Neighbor& n : Neighbors(u)) {
      if (n.id > u && Degree(n.id) >= min_degree)
        out.AddInteraction(u, n.id, n.weight);
    }
  }
  return out;
}

}  // namespace dehealth
