#ifndef DEHEALTH_GRAPH_LANDMARKS_H_
#define DEHEALTH_GRAPH_LANDMARKS_H_

#include <vector>

#include "graph/correlation_graph.h"

namespace dehealth {

/// Landmark machinery for the paper's global correlation features: the ħ
/// highest-degree users of a graph serve as landmarks S; every user u is
/// described by the vectors H_u(S) (hop proximities) and WH_u(S) (weighted
/// proximities) to the landmarks, ordered by decreasing landmark degree.
class LandmarkIndex {
 public:
  /// Selects min(count, num_nodes) landmarks by decreasing degree and
  /// precomputes all landmark-rooted shortest-path trees (one BFS and one
  /// Dijkstra per landmark; total O(ħ·(V+E log V))). The per-landmark trees
  /// are computed with ParallelFor across `num_threads` threads
  /// (0 = hardware concurrency); results are identical for any thread
  /// count.
  LandmarkIndex(const CorrelationGraph& graph, int count,
                int num_threads = 0);

  /// Landmark node ids, ordered by decreasing degree.
  const std::vector<NodeId>& landmarks() const { return landmarks_; }

  /// H_u(S) as bounded proximities (see HopProximity); index i corresponds
  /// to landmarks()[i].
  std::vector<double> HopVector(NodeId u) const;

  /// WH_u(S) as bounded weighted proximities.
  std::vector<double> WeightedVector(NodeId u) const;

 private:
  std::vector<NodeId> landmarks_;
  // hop_from_landmark_[i][u] = hops from landmark i to node u.
  std::vector<std::vector<int>> hop_from_landmark_;
  std::vector<std::vector<double>> weighted_from_landmark_;
};

}  // namespace dehealth

#endif  // DEHEALTH_GRAPH_LANDMARKS_H_
