#ifndef DEHEALTH_GRAPH_CORRELATION_GRAPH_H_
#define DEHEALTH_GRAPH_CORRELATION_GRAPH_H_

#include <cstdint>
#include <vector>

namespace dehealth {

/// Node index into a graph.
using NodeId = int;

/// The paper's user correlation graph G = (V, E, W): users are nodes; an
/// undirected edge (i, j) with weight w_ij counts how many times i and j
/// co-posted under the same topic.
class CorrelationGraph {
 public:
  /// An adjacency entry: neighbor id plus accumulated edge weight.
  struct Neighbor {
    NodeId id;
    double weight;
    bool operator==(const Neighbor&) const = default;
  };

  /// Creates a graph with `num_nodes` isolated nodes.
  explicit CorrelationGraph(int num_nodes = 0);

  /// Adds `delta` (default 1) to the weight of undirected edge (u, v),
  /// creating it if absent. Self-loops are ignored. u, v must be valid.
  void AddInteraction(NodeId u, NodeId v, double delta = 1.0);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  int num_edges() const { return num_edges_; }

  /// Neighbors of `u` (unordered).
  const std::vector<Neighbor>& Neighbors(NodeId u) const;

  /// d_u: number of neighbors.
  int Degree(NodeId u) const;

  /// wd_u: sum of incident edge weights.
  double WeightedDegree(NodeId u) const;

  /// Weight of edge (u, v), or 0 when absent.
  double EdgeWeight(NodeId u, NodeId v) const;

  /// The paper's Neighborhood Correlation Strength vector D_u: incident edge
  /// weights in decreasing order.
  std::vector<double> NcsVector(NodeId u) const;

  /// Node ids sorted by decreasing degree (ties broken by id) — used for
  /// landmark selection.
  std::vector<NodeId> NodesByDegreeDesc() const;

  /// Copy of this graph keeping only nodes with degree >= min_degree
  /// (others become isolated; edges to them are dropped). Node ids are
  /// preserved. Used by the Fig-8 community-structure experiment.
  CorrelationGraph FilterByDegree(int min_degree) const;

 private:
  std::vector<std::vector<Neighbor>> adjacency_;
  int num_edges_ = 0;
};

}  // namespace dehealth

#endif  // DEHEALTH_GRAPH_CORRELATION_GRAPH_H_
