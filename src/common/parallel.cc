#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace dehealth {

namespace {

thread_local bool t_in_pool_worker = false;

}  // namespace

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ResolveNumThreads(int num_threads) {
  if (num_threads == 0) return HardwareThreads();
  return std::max(1, num_threads);
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

bool ThreadPool::InWorkerThread() { return t_in_pool_worker; }

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool(HardwareThreads());
  return pool;
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn, int num_threads) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  int64_t threads = std::min<int64_t>(ResolveNumThreads(num_threads), range);
  // Serial fast path; also taken inside pool tasks so nested ParallelFor
  // never waits on pool capacity it may itself be occupying.
  if (threads <= 1 || ThreadPool::InWorkerThread()) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Dynamic chunking: small enough to balance irregular per-index cost
  // (per-user classifier training varies wildly), large enough to keep the
  // shared cursor off the hot path.
  const int64_t chunk = std::max<int64_t>(1, range / (8 * threads));
  std::atomic<int64_t> cursor{begin};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto drain = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const int64_t start = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (start >= end) return;
      const int64_t stop = std::min(end, start + chunk);
      try {
        for (int64_t i = start; i < stop; ++i) fn(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error == nullptr) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // The caller is one of the `threads` executors; the rest are pool tasks.
  // All state lives on this stack frame, so we must not return before every
  // helper finished (done_count reaching helpers). The increment, the
  // notify, and the waiter's predicate all happen under done_mutex: if the
  // count were bumped outside the lock, the waiting thread could observe it,
  // return, and destroy this frame while a helper is still about to lock
  // the (now dead) mutex — wedging that pool worker permanently.
  const int64_t helpers = threads - 1;
  int64_t done_count = 0;  // guarded by done_mutex
  std::mutex done_mutex;
  std::condition_variable all_done;
  ThreadPool& pool = GlobalThreadPool();
  for (int64_t h = 0; h < helpers; ++h) {
    pool.Submit([&] {
      drain();
      std::lock_guard<std::mutex> lock(done_mutex);
      if (++done_count == helpers) all_done.notify_one();
    });
  }
  drain();
  {
    std::unique_lock<std::mutex> lock(done_mutex);
    all_done.wait(lock, [&] { return done_count == helpers; });
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

}  // namespace dehealth
