#ifndef DEHEALTH_COMMON_FLAGS_H_
#define DEHEALTH_COMMON_FLAGS_H_

#include <map>
#include <set>
#include <string>

#include "common/status.h"

namespace dehealth {

/// Minimal "--flag value" command-line parser shared by the CLI binaries
/// (dehealth_cli, dehealth_serve, dehealth_query); flags may appear in any
/// order. Numeric lookups parse strictly: trailing garbage, overflow, or an
/// empty value fail with InvalidArgument instead of silently becoming 0
/// (atoi-style). Flags listed in `boolean_flags` take no value ("--idf").
class FlagParser {
 public:
  FlagParser(int argc, char** argv, int first,
             std::set<std::string> boolean_flags = {});

  /// Value of "--key", or `fallback` when absent.
  std::string Get(const std::string& key,
                  const std::string& fallback = "") const;

  /// Strictly parsed integer value of "--key"; `fallback` when absent.
  StatusOr<int> GetInt(const std::string& key, int fallback) const;

  /// Strictly parsed floating-point value of "--key"; `fallback` when
  /// absent.
  StatusOr<double> GetDouble(const std::string& key, double fallback) const;

  /// True when the boolean flag "--flag" was passed.
  bool Has(const std::string& flag) const;

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> flags_;
};

}  // namespace dehealth

#endif  // DEHEALTH_COMMON_FLAGS_H_
