#ifndef DEHEALTH_COMMON_STRING_UTILS_H_
#define DEHEALTH_COMMON_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace dehealth {

/// Splits `s` on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view s,
                                     std::string_view delims);

/// ASCII lowercase copy.
std::string ToLowerAscii(std::string_view s);

/// True if every character is an ASCII letter (and s non-empty).
bool IsAlphaAscii(std::string_view s);

/// True if every character is an ASCII digit (and s non-empty).
bool IsDigitAscii(std::string_view s);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimAscii(std::string_view s);

/// Joins pieces with a separator.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// True if `s` starts with `prefix` / ends with `suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace dehealth

#endif  // DEHEALTH_COMMON_STRING_UTILS_H_
