#ifndef DEHEALTH_COMMON_FAULT_INJECTION_H_
#define DEHEALTH_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <string>
#include <string_view>

#include "common/status.h"

namespace dehealth {

/// Deterministic fault injection for the I/O and job layers.
///
/// Every fallible syscall-shaped operation in io/file_util, io/forum_io,
/// index/snapshot, io/socket and the job runner passes through a named
/// *injection point* ("file.write_atomic", "socket.read", "job.phase2",
/// ...). In production nothing is registered and each point is a single
/// relaxed atomic load. Tests and the CLI binaries (`--fault-spec`) arm
/// the global registry with rules that fire on exact hit counts, so a
/// fault sequence is a pure function of the spec and the (deterministic)
/// order of operations — the same spec kills the same run at the same
/// byte every time, which is what makes kill-and-resume tests provable
/// instead of flaky.
///
/// Spec grammar (comma-separated rules):
///
///   <site>:<kind>:<hit>[:<count>]
///
///   site   injection-point name (see DESIGN.md "Fault tolerance" for the
///          registry of sites)
///   kind   fail | enospc | short | flip | reset | stall | crash
///   hit    1-based hit number of `site` on which the rule starts firing
///   count  consecutive hits it keeps firing for (default 1; 0 = forever)
///
/// Example: "file.write_atomic:enospc:2,socket.read:reset:1:0" — the 2nd
/// atomic file write fails like a full disk, and every socket read sees a
/// connection reset.
enum class FaultKind {
  kFail,    // generic Internal error
  kEnospc,  // write-side failure shaped like a full disk (Internal)
  kShort,   // truncation: data faults drop the second half of the buffer
  kFlip,    // corruption: data faults flip one bit mid-buffer
  kReset,   // Unavailable, shaped like ECONNRESET/ECONNREFUSED
  kStall,   // injects a short blocking delay, then succeeds
  kCrash,   // terminates the process immediately via _exit (no cleanup)
};

/// Exit code used by FaultKind::kCrash — distinguishable from the normal
/// error exits (1) in kill-and-resume scripts.
inline constexpr int kFaultCrashExitCode = 86;

class FaultInjector {
 public:
  /// The process-wide registry every injection point consults.
  static FaultInjector& Global();

  /// Parses and arms a fault spec (see the grammar above). Replaces any
  /// previously configured rules. An empty spec disarms (same as Reset).
  /// InvalidArgument on a malformed rule, unknown kind, or bad counts.
  Status Configure(const std::string& spec);

  /// Disarms all rules and clears every hit counter.
  void Reset();

  /// True when at least one rule is armed (the fast-path check).
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one hit of `site` and returns the fault to apply, if a rule
  /// fires on this hit. Thread-safe; counters are per-site.
  /// Returns false (no fault) when disarmed or no rule matches.
  bool Hit(std::string_view site, FaultKind* kind);

 private:
  FaultInjector() = default;
  struct Impl;
  Impl* impl();  // lazily constructed, intentionally leaked

  std::atomic<bool> enabled_{false};
  std::atomic<Impl*> impl_{nullptr};
};

/// Status-shaped injection point: returns OK when disarmed or no rule
/// fires; otherwise the injected error (kFail/kEnospc → Internal,
/// kReset → Unavailable, kShort → Internal truncation error). kStall
/// sleeps ~50 ms then returns OK. kCrash calls _exit(kFaultCrashExitCode).
Status InjectFaultPoint(const char* site);

/// Data-corrupting injection point: applies a fired kFlip (one bit flipped
/// at the buffer midpoint) or kShort (second half dropped) to *data and
/// returns true. Other kinds behave like InjectFaultPoint would, reported
/// through the returned status of the enclosing operation — call
/// InjectFaultPoint for those; this helper only services flip/short.
bool InjectDataFault(const char* site, std::string* data);

}  // namespace dehealth

#endif  // DEHEALTH_COMMON_FAULT_INJECTION_H_
