#include "common/fault_injection.h"

#include <unistd.h>

#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/string_utils.h"

namespace dehealth {

namespace {

StatusOr<FaultKind> ParseKind(const std::string& token) {
  if (token == "fail") return FaultKind::kFail;
  if (token == "enospc") return FaultKind::kEnospc;
  if (token == "short") return FaultKind::kShort;
  if (token == "flip") return FaultKind::kFlip;
  if (token == "reset") return FaultKind::kReset;
  if (token == "stall") return FaultKind::kStall;
  if (token == "crash") return FaultKind::kCrash;
  return Status::InvalidArgument(
      "fault spec: unknown kind '" + token +
      "' (want fail|enospc|short|flip|reset|stall|crash)");
}

StatusOr<uint64_t> ParseCount(const std::string& token,
                              const std::string& what) {
  if (token.empty() || token.find_first_not_of("0123456789") !=
                           std::string::npos)
    return Status::InvalidArgument("fault spec: bad " + what + " '" + token +
                                   "'");
  return static_cast<uint64_t>(std::strtoull(token.c_str(), nullptr, 10));
}

}  // namespace

struct FaultInjector::Impl {
  struct Rule {
    FaultKind kind;
    uint64_t first_hit;  // 1-based
    uint64_t count;      // 0 = forever
  };

  std::mutex mutex;
  std::map<std::string, std::vector<Rule>, std::less<>> rules;
  std::map<std::string, uint64_t, std::less<>> hits;
};

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

FaultInjector::Impl* FaultInjector::impl() {
  Impl* existing = impl_.load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  Impl* fresh = new Impl();
  if (impl_.compare_exchange_strong(existing, fresh,
                                    std::memory_order_acq_rel))
    return fresh;
  delete fresh;
  return existing;
}

Status FaultInjector::Configure(const std::string& spec) {
  Impl* state = impl();
  std::map<std::string, std::vector<Impl::Rule>, std::less<>> parsed;
  size_t start = 0;
  while (start < spec.size()) {
    const size_t comma = spec.find(',', start);
    const std::string rule =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    start = comma == std::string::npos ? spec.size() : comma + 1;
    if (rule.empty()) continue;

    // <site>:<kind>:<hit>[:<count>]
    std::vector<std::string> parts;
    size_t field = 0;
    while (field <= rule.size()) {
      const size_t colon = rule.find(':', field);
      parts.push_back(rule.substr(
          field, colon == std::string::npos ? std::string::npos
                                            : colon - field));
      if (colon == std::string::npos) break;
      field = colon + 1;
    }
    if (parts.size() < 3 || parts.size() > 4 || parts[0].empty())
      return Status::InvalidArgument(
          "fault spec: rule '" + rule +
          "' is not <site>:<kind>:<hit>[:<count>]");
    StatusOr<FaultKind> kind = ParseKind(parts[1]);
    if (!kind.ok()) return kind.status();
    StatusOr<uint64_t> first_hit = ParseCount(parts[2], "hit number");
    if (!first_hit.ok()) return first_hit.status();
    if (*first_hit == 0)
      return Status::InvalidArgument(
          "fault spec: hit numbers are 1-based, got 0 in '" + rule + "'");
    uint64_t count = 1;
    if (parts.size() == 4) {
      StatusOr<uint64_t> parsed_count = ParseCount(parts[3], "count");
      if (!parsed_count.ok()) return parsed_count.status();
      count = *parsed_count;
    }
    parsed[parts[0]].push_back({*kind, *first_hit, count});
  }

  std::lock_guard<std::mutex> lock(state->mutex);
  state->rules = std::move(parsed);
  state->hits.clear();
  enabled_.store(!state->rules.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Reset() {
  Impl* state = impl_.load(std::memory_order_acquire);
  if (state == nullptr) return;
  std::lock_guard<std::mutex> lock(state->mutex);
  state->rules.clear();
  state->hits.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::Hit(std::string_view site, FaultKind* kind) {
  if (!enabled()) return false;
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->mutex);
  const auto rules = state->rules.find(site);
  if (rules == state->rules.end()) return false;
  const uint64_t hit = ++state->hits[std::string(site)];
  for (const Impl::Rule& rule : rules->second) {
    if (hit < rule.first_hit) continue;
    if (rule.count != 0 && hit >= rule.first_hit + rule.count) continue;
    *kind = rule.kind;
    return true;
  }
  return false;
}

Status InjectFaultPoint(const char* site) {
  FaultKind kind;
  if (!FaultInjector::Global().Hit(site, &kind)) return Status::OK();
  switch (kind) {
    case FaultKind::kFail:
      return Status::Internal(StrFormat("injected fault at %s", site));
    case FaultKind::kEnospc:
      return Status::Internal(
          StrFormat("injected fault at %s: No space left on device", site));
    case FaultKind::kShort:
      return Status::Internal(
          StrFormat("injected short I/O at %s", site));
    case FaultKind::kReset:
      return Status::Unavailable(
          StrFormat("injected fault at %s: Connection reset by peer", site));
    case FaultKind::kStall:
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      return Status::OK();
    case FaultKind::kCrash:
      // Simulates a SIGKILL/OOM-kill at this exact point: no destructors,
      // no buffers flushed, no atexit — the durable state on disk is
      // whatever the operations before this point made durable.
      ::_exit(kFaultCrashExitCode);
  }
  return Status::OK();
}

bool InjectDataFault(const char* site, std::string* data) {
  FaultKind kind;
  if (!FaultInjector::Global().Hit(site, &kind)) return false;
  switch (kind) {
    case FaultKind::kFlip:
      if (!data->empty()) (*data)[data->size() / 2] ^= 0x10;
      return true;
    case FaultKind::kShort:
      data->resize(data->size() / 2);
      return true;
    case FaultKind::kCrash:
      ::_exit(kFaultCrashExitCode);
    default:
      // Status-shaped kinds are serviced by InjectFaultPoint; firing one
      // at a data site is a spec mistake — ignore rather than corrupt in
      // an undefined way.
      return false;
  }
}

}  // namespace dehealth
