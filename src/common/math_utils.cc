#include "common/math_utils.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dehealth {

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  // Mismatched lengths compare as if the shorter vector carried trailing
  // zeros: the pad contributes nothing to the dot product or the shorter
  // norm, while the longer vector's tail still counts toward its own norm.
  // (Hop/NCS vectors from graphs with different landmark counts hit this
  // path; see the length-mismatch tests in math_utils_test.cc.)
  const size_t n = std::max(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double x = i < a.size() ? a[i] : 0.0;
    const double y = i < b.size() ? b[i] : 0.0;
    dot += x * y;
    na += x * x;
    nb += y * y;
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double MinMaxRatio(double a, double b) {
  assert(a >= 0.0 && b >= 0.0);
  const double mx = std::max(a, b);
  if (mx == 0.0) return 1.0;
  return std::min(a, b) / mx;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

SummaryStats Summarize(const std::vector<double>& v) {
  SummaryStats s;
  s.count = v.size();
  if (v.empty()) return s;
  s.mean = Mean(v);
  s.stddev = StdDev(v);
  s.min = *std::min_element(v.begin(), v.end());
  s.max = *std::max_element(v.begin(), v.end());
  return s;
}

StatusOr<std::vector<double>> EmpiricalCdf(
    const std::vector<double>& values, const std::vector<double>& thresholds) {
  // Checked in every build type: a Release build used to sail past the old
  // `assert` and hand back fractions that no longer lined up with the
  // thresholds the caller thought it asked about.
  if (!std::is_sorted(thresholds.begin(), thresholds.end()))
    return Status::InvalidArgument(
        "EmpiricalCdf: thresholds must be sorted ascending");
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out(thresholds.size(), 0.0);
  if (sorted.empty()) return out;
  for (size_t i = 0; i < thresholds.size(); ++i) {
    auto it = std::upper_bound(sorted.begin(), sorted.end(), thresholds[i]);
    out[i] = static_cast<double>(it - sorted.begin()) /
             static_cast<double>(sorted.size());
  }
  return out;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::Add(double value) {
  // Clamp in floating point BEFORE the integer cast: the old code computed
  // the bucket as a `long` first, so a NaN value was undefined behavior on
  // the cast and a hugely out-of-range `t` (e.g. +inf) was implementation-
  // defined. NaN routes to the first bucket, mirroring
  // LatencyHistogram::Record's "non-positive -> first bucket" contract.
  const double scaled =
      (value - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  size_t bin = 0;
  if (std::isnan(scaled) || scaled <= 0.0) {
    bin = 0;
  } else if (scaled >= static_cast<double>(counts_.size())) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<size_t>(scaled);
    if (bin >= counts_.size()) bin = counts_.size() - 1;
  }
  ++counts_[bin];
  ++total_;
}

double Histogram::BinCenter(size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * (static_cast<double>(bin) + 0.5);
}

double Histogram::Fraction(size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

double LogBinomial(int n, int k) {
  assert(n >= 0 && k >= 0 && k <= n);
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

}  // namespace dehealth
