#ifndef DEHEALTH_COMMON_MATH_UTILS_H_
#define DEHEALTH_COMMON_MATH_UTILS_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dehealth {

/// Cosine similarity between two vectors. If lengths differ, the shorter is
/// implicitly zero-padded (the paper's convention for NCS vectors). Returns 0
/// when either vector has zero norm.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Ratio min/max with the convention 0/0 == 1 (identical "no signal") and
/// x/0 or 0/x == 0 for x > 0. Used by the degree-similarity term.
double MinMaxRatio(double a, double b);

/// Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& v);

/// Population variance; 0 for fewer than 2 elements.
double Variance(const std::vector<double>& v);

double StdDev(const std::vector<double>& v);

/// Summary statistics over a sample.
struct SummaryStats {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

SummaryStats Summarize(const std::vector<double>& v);

/// Empirical CDF evaluated at caller-supplied thresholds:
/// result[i] = fraction of `values` <= thresholds[i].
/// `thresholds` must be sorted ascending — verified in every build type;
/// unsorted thresholds fail with InvalidArgument instead of silently
/// returning fractions that don't line up with the caller's axis.
StatusOr<std::vector<double>> EmpiricalCdf(
    const std::vector<double>& values, const std::vector<double>& thresholds);

/// A fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double value);

  size_t bin_count() const { return counts_.size(); }
  size_t count(size_t bin) const { return counts_[bin]; }
  size_t total() const { return total_; }
  /// Center of bucket `bin`.
  double BinCenter(size_t bin) const;
  /// Fraction of all observations in bucket `bin` (0 if empty histogram).
  double Fraction(size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

/// Natural-log binomial coefficient ln(C(n, k)) via lgamma.
double LogBinomial(int n, int k);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace dehealth

#endif  // DEHEALTH_COMMON_MATH_UTILS_H_
