#ifndef DEHEALTH_COMMON_PARALLEL_H_
#define DEHEALTH_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dehealth {

/// Number of hardware threads, always >= 1 (std::thread::hardware_concurrency
/// may report 0 on exotic platforms).
int HardwareThreads();

/// Resolves a `num_threads` config value: 0 means "all hardware threads",
/// anything else is clamped to >= 1.
int ResolveNumThreads(int num_threads);

/// A fixed-size pool of worker threads consuming a FIFO task queue. Tasks
/// must not block on other tasks (ParallelFor never does: the submitting
/// thread always makes progress on the shared work itself, so completion
/// never depends on a pool worker being scheduled).
///
/// Workers mark themselves with a thread-local flag; ParallelFor called from
/// inside a pool task runs serially instead of re-entering the pool, so
/// nested parallel sections cannot deadlock on pool capacity.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker thread.
  void Submit(std::function<void()> task);

  int size() const { return static_cast<int>(workers_.size()); }

  /// True when the calling thread is one of this process's pool workers.
  static bool InWorkerThread();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> tasks_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// The process-wide pool used by ParallelFor, sized to HardwareThreads().
/// Created on first use.
ThreadPool& GlobalThreadPool();

/// Runs fn(i) for every i in [begin, end) across up to `num_threads`
/// threads (0 = all hardware threads). Blocks until every index completed.
///
/// Scheduling is dynamic (threads grab contiguous chunks from a shared
/// cursor), so WHICH thread runs an index — and in what order — is
/// unspecified. Results are nevertheless bitwise-deterministic as long as
/// fn(i) writes only to state owned by index i (e.g. a preallocated output
/// slot) and reads only shared state that no task writes; every parallel
/// call site in this codebase follows that contract.
///
/// If any fn(i) throws, remaining chunks are abandoned (indices already
/// dispatched still run to completion of their chunk) and the first
/// exception observed is rethrown on the calling thread.
///
/// The calling thread participates in the work, so ParallelFor makes
/// progress even when the pool is saturated; with num_threads <= 1 (or when
/// called from inside a pool task) it degenerates to a plain serial loop.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn, int num_threads = 0);

}  // namespace dehealth

#endif  // DEHEALTH_COMMON_PARALLEL_H_
