#include "common/shutdown.h"

#include <csignal>

#include <atomic>

namespace dehealth {

namespace {

std::atomic<bool> shutdown_requested{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler requires a lock-free flag");

void HandleSignal(int /*signum*/) { RequestProcessShutdown(); }

}  // namespace

void InstallShutdownSignalHandlers() {
  struct sigaction action = {};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: blocking accept/read calls return EINTR so serving
  // loops observe the flag promptly.
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

bool ProcessShutdownRequested() {
  return shutdown_requested.load(std::memory_order_relaxed);
}

void RequestProcessShutdown() {
  shutdown_requested.store(true, std::memory_order_relaxed);
}

void ResetProcessShutdownForTesting() {
  shutdown_requested.store(false, std::memory_order_relaxed);
}

}  // namespace dehealth
