#include "common/flags.h"

#include <cerrno>
#include <climits>
#include <cstdlib>

namespace dehealth {

FlagParser::FlagParser(int argc, char** argv, int first,
                       std::set<std::string> boolean_flags) {
  for (int i = first; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) continue;
    const std::string name = token.substr(2);
    if (boolean_flags.count(name) > 0) {  // boolean: no value
      flags_.insert(name);
      continue;
    }
    if (i + 1 < argc) values_[name] = argv[++i];
  }
}

std::string FlagParser::Get(const std::string& key,
                            const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

StatusOr<int> FlagParser::GetInt(const std::string& key, int fallback) const {
  const std::string v = Get(key);
  if (v.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || errno != 0 || value < INT_MIN ||
      value > INT_MAX)
    return Status::InvalidArgument("--" + key + " expects an integer, got '" +
                                   v + "'");
  return static_cast<int>(value);
}

StatusOr<double> FlagParser::GetDouble(const std::string& key,
                                       double fallback) const {
  const std::string v = Get(key);
  if (v.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0' || errno != 0)
    return Status::InvalidArgument("--" + key + " expects a number, got '" +
                                   v + "'");
  return value;
}

bool FlagParser::Has(const std::string& flag) const {
  return flags_.count(flag) > 0;
}

}  // namespace dehealth
