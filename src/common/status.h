#ifndef DEHEALTH_COMMON_STATUS_H_
#define DEHEALTH_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dehealth {

/// Error category for a failed operation. Mirrors the Arrow/RocksDB style
/// status model: the library never throws; fallible operations return a
/// `Status` or a `StatusOr<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  /// Transient failure the caller may retry: connection refused/reset, an
  /// overloaded server shedding load. The retry policies (serve/client.h)
  /// key on this code — keep genuinely fatal errors out of it.
  kUnavailable,
  /// A deadline expired before the operation executed (server-side queue
  /// timeout). Retrying is the caller's call: the work never ran.
  kDeadlineExceeded,
  /// The operation was interrupted cooperatively (SIGTERM/SIGINT shutdown
  /// flag) after reaching a safe stopping point — e.g. the job runner
  /// checkpointed and can resume.
  kCancelled,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap, value-semantic success/error result. An OK status carries no
/// message; error statuses carry a code plus a context message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "error status requires a non-OK code");
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Accessing the value of an
/// errored result is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit so `return value;` works from functions returning StatusOr<T>.
  StatusOr(T value) : value_(std::move(value)) {}

  /// Implicit so `return Status::...;` works. `status` must be an error.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates errors to the caller: `DEHEALTH_RETURN_IF_ERROR(DoThing());`
#define DEHEALTH_RETURN_IF_ERROR(expr)             \
  do {                                             \
    ::dehealth::Status _st = (expr);               \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace dehealth

#endif  // DEHEALTH_COMMON_STATUS_H_
