#ifndef DEHEALTH_COMMON_HISTOGRAM_H_
#define DEHEALTH_COMMON_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace dehealth {

/// Thread-safe latency histogram with power-of-two buckets over
/// microseconds: bucket i counts samples in [2^i, 2^(i+1)) µs, so 48
/// buckets span 1 µs to ~3.2 days. Record() is a single relaxed atomic
/// increment — cheap enough for every request on a serving hot path — and
/// quantile reads walk the bucket array without locking. A quantile is
/// reported as the upper bound of the bucket holding that rank (at most 2x
/// the true value), which is the usual fidelity for service p50/p99
/// metrics; the exact observed maximum is tracked separately.
///
/// Reads concurrent with writes see a consistent-enough snapshot: counts
/// only grow, so a quantile computed mid-traffic is bracketed by the
/// distributions just before and just after the read.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one sample. Non-positive values count into the first bucket.
  void Record(double micros);

  /// Total number of recorded samples.
  uint64_t TotalCount() const;

  /// Upper bound (µs) of the bucket containing the q-quantile sample
  /// (q clamped to [0, 1]); 0 when nothing was recorded.
  double QuantileMicros(double q) const;

  /// Largest sample recorded (µs, rounded to whole µs); 0 when empty.
  double MaxMicros() const;

  /// Sum of all recorded samples (whole µs, saturating only at uint64
  /// wrap). Lets exporters derive a mean and emit Prometheus `_sum`.
  uint64_t SumMicros() const;

  /// Bucket introspection for exporters (obs::Registry renders these as
  /// cumulative Prometheus buckets). Bucket i counts samples in
  /// [2^i, 2^(i+1)) µs; BucketUpperBound(i) is the exclusive upper edge.
  static constexpr int kNumBuckets = 48;
  uint64_t BucketCount(int i) const;
  static double BucketUpperBound(int i);

 private:
  static int BucketFor(uint64_t micros);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_;
  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> max_micros_;
  std::atomic<uint64_t> sum_micros_;
};

}  // namespace dehealth

#endif  // DEHEALTH_COMMON_HISTOGRAM_H_
