#ifndef DEHEALTH_COMMON_RNG_H_
#define DEHEALTH_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dehealth {

/// Mixes a base seed with a stream index into a statistically independent
/// derived seed (SplitMix64 finalizer over seed ⊕ golden-ratio-scaled
/// stream). Parallel code derives one `Rng(MixSeed(seed, i))` per work item
/// so the random stream consumed by item i is a pure function of (seed, i),
/// independent of thread count and iteration order.
uint64_t MixSeed(uint64_t seed, uint64_t stream);

/// Deterministic pseudo-random number generator (xoshiro256** seeded through
/// SplitMix64). Every stochastic component of the library draws from an
/// explicitly passed `Rng` so experiments are reproducible bit-for-bit.
///
/// Not thread-safe; use one instance per thread.
class Rng {
 public:
  /// Seeds the generator. Distinct seeds give independent-looking streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Standard normal via polar Box-Muller (caches the spare deviate).
  double NextGaussian();

  /// Normal with given mean and standard deviation (stddev >= 0).
  double NextGaussian(double mean, double stddev);

  /// Poisson-distributed count with the given mean (> 0). Uses Knuth's
  /// product method for small means and normal approximation above 64.
  int NextPoisson(double mean);

  /// Zipf-distributed rank in [1, n] with exponent `s` > 0, via inverse-CDF
  /// over precomputed weights would be O(n); this uses rejection-free
  /// cumulative search on demand and is intended for n up to ~1e6.
  /// Prefer `ZipfSampler` for repeated draws.
  int NextZipf(int n, double s);

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// weights[i]. All weights must be >= 0 and sum to > 0.
  size_t NextCategorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples `k` distinct indices uniformly from [0, n) (k <= n),
  /// returned in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Precomputed Zipf(n, s) sampler: O(n) setup, O(log n) per draw.
class ZipfSampler {
 public:
  /// Requires n >= 1 and s > 0.
  ZipfSampler(int n, double s);

  /// Returns a rank in [1, n].
  int Sample(Rng& rng) const;

  int n() const { return n_; }
  double exponent() const { return s_; }

 private:
  int n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i + 1)
};

}  // namespace dehealth

#endif  // DEHEALTH_COMMON_RNG_H_
