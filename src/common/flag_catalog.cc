#include "common/flag_catalog.h"

namespace dehealth {

const std::vector<FlagDoc>& FlagCatalog() {
  static const std::vector<FlagDoc>* catalog = new std::vector<FlagDoc>{
      {"allow-epoch-skew", "router, ingest rollout", true,
       "Accept a fleet whose backends report different ingest epochs "
       "(mid-rollout); merged answers are transitional, not "
       "bitwise-reproducible"},
      {"anon-out", "cli split", false,
       "Output path for the anonymized-side dataset"},
      {"anonymized", "cli attack, serve", false,
       "Anonymized-side forum dataset (JSONL)"},
      {"auto-seal-posts", "serve", false,
       "With --ingest: seal a new epoch automatically once this many "
       "staged posts accumulate (0 = off, the default)"},
      {"auto-seal-secs", "serve", false,
       "With --ingest: seal a new epoch automatically once the oldest "
       "staged segment is this many seconds old (0 = off, the default)"},
      {"aux-fraction", "cli split", false,
       "Fraction of each user's posts routed to the auxiliary side "
       "(closed world; default 0.5)"},
      {"aux-out", "cli split", false,
       "Output path for the auxiliary-side dataset"},
      {"auxiliary", "cli attack, serve", false,
       "Auxiliary-side forum dataset (JSONL)"},
      {"backends", "router, ingest rollout", false,
       "Shard backends to fan out to: ',' separates shard groups, '|' "
       "separates replicas within a group (each replica one "
       "dehealth_serve)"},
      {"base", "ingest", false,
       "Base forum dataset (JSONL) a delta segment chain builds on — must "
       "match the --auxiliary the servers were started with"},
      {"batch", "router, serve", false,
       "Largest number of queued requests coalesced into one engine batch "
       "(default 16)"},
      {"dataset", "cli split", false, "Input forum dataset to split"},
      {"engine", "cli attack, serve", false,
       "Phase-1 attack engine: structural (default; the paper's attack), "
       "blind (seed-free Lee et al.), or community (community-matched "
       "Onaran et al.) — see docs/ENGINES.md"},
      {"engines", "cli evaluate", false,
       "Comma-separated engines to run head-to-head over the same "
       "forums/truth (default: structural,blind,community)"},
      {"fault-spec", "cli, ingest, router, serve", false,
       "Deterministic fault injection spec '<site>:<kind>:<hit>,...' "
       "(testing only)"},
      {"filter", "cli attack, serve", true,
       "Enable phase-1c candidate filtering (Algorithm 2)"},
      {"hedge-ms", "router", false,
       "Hedged reads: fire a scatter leg that has not answered within "
       "this many ms at a healthy sibling replica and take the first "
       "answer (0 = off, the default)"},
      {"host", "query, router, serve", false,
       "Server address (default 127.0.0.1)"},
      {"idf", "cli attack, serve", true,
       "IDF-weight attribute similarity"},
      {"index", "cli attack, serve", true,
       "Answer phase 1 from the candidate index instead of the dense "
       "similarity matrix"},
      {"index-path", "cli attack, serve", false,
       "DHIX snapshot path: load the index when fresh, else rebuild and "
       "persist (implies --index)"},
      {"ingest", "serve", true,
       "Enable streaming ingestion: accept load-segment/seal-epoch admin "
       "requests and swap epochs without dropping in-flight queries"},
      {"job-dir", "cli attack, serve", false,
       "Run through the crash-safe job runner, checkpointing shards into "
       "this directory"},
      {"k", "cli attack, serve, query", false,
       "Top-K candidate set size (default 10; query: 0 = server default)"},
      {"ks", "cli evaluate", false,
       "Comma-separated ascending K values of the evaluate success-rate/"
       "rank-CDF curve (default 1,2,5,10,20,50)"},
      {"learner", "cli attack, serve", false,
       "Phase-2 learner: smo (default), knn, rlsc, centroid"},
      {"max-candidates", "cli attack, serve", false,
       "Per-query exact-evaluation budget of the indexed path (0 = exact, "
       "the default)"},
      {"metrics-out", "cli attack", false,
       "Write the run's metrics registry to this file (Prometheus text "
       "format)"},
      {"no-seal", "ingest rollout", true,
       "Stage --segments on every backend without sealing (a later "
       "seal-only rollout or auto-seal performs the epoch swap)"},
      {"out", "cli generate/split/attack, query, ingest", false,
       "Output path (dataset, predictions CSV, query answers, or DHSG "
       "segment)"},
      {"overlap", "cli split", false,
       "Open-world user overlap fraction; > 0 selects the open-world "
       "split"},
      {"port", "query, router, serve", false,
       "TCP port (serve/router: 0 binds an ephemeral port)"},
      {"port-file", "router, serve", false,
       "Write the bound port to this file once listening (for scripts "
       "using --port 0)"},
      {"preset", "cli generate", false,
       "Synthetic forum preset: webmd (default) or hb"},
      {"queue", "router, serve", false,
       "Admission bound: requests beyond this many queued are rejected "
       "OVERLOADED (default 64)"},
      {"require-all-shards", "router", true,
       "Fail-closed routing: any unreachable shard makes the whole query "
       "UNAVAILABLE instead of a PARTIAL merge of the live shards"},
      {"retries", "query, router, ingest rollout", false,
       "Retry budget for transient failures (connection refused, "
       "overload)"},
      {"seed", "cli generate/split", false,
       "RNG seed (default 1); same seed => same dataset/split"},
      {"segment", "query load-segment", false,
       "DHSG delta-segment path to stage (a path on the SERVER's "
       "filesystem)"},
      {"segments", "ingest", false,
       "Comma-separated chain of already-cut DHSG segments to replay "
       "before --tail (segment), to merge (compact), or to push fleet-wide "
       "(rollout; paths on the backends' filesystem)"},
      {"shard-count", "serve, ingest", false,
       "Serve ONE slice of a router-fronted fleet: total number of shards "
       "the auxiliary universe is split into (default 1 = unsharded)"},
      {"shard-index", "serve, ingest", false,
       "Which contiguous shard of --shard-count this process owns "
       "(default 0)"},
      {"shard-size", "cli attack, serve", false,
       "Users per checkpoint shard under --job-dir (default 64)"},
      {"shards", "cli attack, serve", false,
       "Partition the auxiliary universe across this many in-process "
       "engine shards with bitwise-identical merged answers (default 1)"},
      {"simd", "cli attack, serve", false,
       "Score-kernel instruction set: auto (default; DEHEALTH_SIMD env, "
       "then cpuid), avx2, sse2, or scalar — all tiers score identically"},
      {"stats-period", "router, serve", false,
       "Seconds between periodic stats lines on stderr (0 = off)"},
      {"tail", "ingest", false,
       "JSONL file whose new posts (beyond --tail-offset) become the next "
       "delta segment — typically the live append-only forum log"},
      {"tail-offset", "ingest", false,
       "Posts of --tail already covered by --base plus --segments; the "
       "segment starts after them (default: computed from base+segments)"},
      {"threads", "cli attack, serve", false,
       "Worker threads (0 = all hardware threads); results are identical "
       "for any value"},
      {"timeout-ms", "cli attack, serve, router, query", false,
       "Server-side queue-wait deadline per request (0 = none)"},
      {"trace-out", "cli attack, serve", false,
       "Record a span trace of the run to this file (.json = Chrome "
       "trace_event, else JSONL)"},
      {"truth", "cli attack", false,
       "Truth CSV from `split` to evaluate predictions against"},
      {"truth-out", "cli split", false,
       "Output path for the ground-truth mapping CSV"},
      {"users", "cli generate, query", false,
       "generate: number of users; query: comma-separated anonymized user "
       "ids"},
  };
  return *catalog;
}

std::set<std::string> AttackBooleanFlags() {
  std::set<std::string> flags;
  for (const FlagDoc& doc : FlagCatalog())
    if (doc.boolean) flags.insert(doc.name);
  return flags;
}

}  // namespace dehealth
