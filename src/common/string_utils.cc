#include "common/string_utils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace dehealth {

std::vector<std::string> SplitString(std::string_view s,
                                     std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool IsAlphaAscii(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s)
    if (!std::isalpha(static_cast<unsigned char>(c))) return false;
  return true;
}

bool IsDigitAscii(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s)
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  return true;
}

std::string_view TrimAscii(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace dehealth
