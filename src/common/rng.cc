#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace dehealth {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  // Offset by one golden-ratio step so MixSeed(s, 0) != a plain SplitMix64
  // finalization of s (which seeding already performs internally).
  uint64_t x = seed + (stream + 1) * 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256**
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling: discard values in the biased tail.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

double Rng::NextGaussian(double mean, double stddev) {
  assert(stddev >= 0.0);
  return mean + stddev * NextGaussian();
}

int Rng::NextPoisson(double mean) {
  assert(mean > 0.0);
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    double x = std::round(NextGaussian(mean, std::sqrt(mean)));
    return x < 0.0 ? 0 : static_cast<int>(x);
  }
  const double limit = std::exp(-mean);
  double prod = NextDouble();
  int count = 0;
  while (prod > limit) {
    prod *= NextDouble();
    ++count;
  }
  return count;
}

int Rng::NextZipf(int n, double s) {
  assert(n >= 1 && s > 0.0);
  double total = 0.0;
  for (int i = 1; i <= n; ++i) total += std::pow(i, -s);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (int i = 1; i <= n; ++i) {
    acc += std::pow(i, -s);
    if (acc >= target) return i;
  }
  return n;
}

size_t Rng::NextCategorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (acc >= target) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  if (k == 0) return {};
  if (k * 3 >= n) {
    // Dense case: shuffle a full index array and truncate.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    Shuffle(idx);
    idx.resize(k);
    return idx;
  }
  // Sparse case: rejection sampling into a set.
  std::unordered_set<size_t> seen;
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    size_t candidate = static_cast<size_t>(NextBounded(n));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

ZipfSampler::ZipfSampler(int n, double s) : n_(n), s_(s) {
  assert(n >= 1 && s > 0.0);
  cdf_.resize(static_cast<size_t>(n));
  double acc = 0.0;
  for (int i = 1; i <= n; ++i) {
    acc += std::pow(i, -s);
    cdf_[static_cast<size_t>(i - 1)] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

int ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_;
  return static_cast<int>(it - cdf_.begin()) + 1;
}

}  // namespace dehealth
