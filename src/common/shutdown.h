#ifndef DEHEALTH_COMMON_SHUTDOWN_H_
#define DEHEALTH_COMMON_SHUTDOWN_H_

namespace dehealth {

/// Cooperative process-wide shutdown for long-lived binaries
/// (dehealth_serve): a SIGTERM/SIGINT handler flips one lock-free flag and
/// serving loops poll it, so teardown happens on a normal thread — never
/// inside the signal handler — and in-flight work can drain gracefully.

/// Installs SIGTERM and SIGINT handlers that call RequestProcessShutdown().
/// Idempotent; call once from main() before serving.
void InstallShutdownSignalHandlers();

/// True once a shutdown was requested (by signal or programmatically).
bool ProcessShutdownRequested();

/// Requests shutdown. Async-signal-safe (a single atomic store).
void RequestProcessShutdown();

/// Clears the flag so tests can exercise the signal path repeatedly.
void ResetProcessShutdownForTesting();

}  // namespace dehealth

#endif  // DEHEALTH_COMMON_SHUTDOWN_H_
