#include "common/histogram.h"

#include <bit>
#include <cmath>

namespace dehealth {

LatencyHistogram::LatencyHistogram()
    : count_(0), max_micros_(0), sum_micros_(0) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int LatencyHistogram::BucketFor(uint64_t micros) {
  if (micros < 2) return 0;  // [1, 2) plus the sub-µs clamp
  const int bucket = std::bit_width(micros) - 1;
  return bucket < kNumBuckets ? bucket : kNumBuckets - 1;
}

void LatencyHistogram::Record(double micros) {
  const uint64_t value =
      micros <= 1.0 ? 1 : static_cast<uint64_t>(std::llround(micros));
  buckets_[static_cast<size_t>(BucketFor(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micros_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_micros_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_micros_.compare_exchange_weak(seen, value,
                                            std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::TotalCount() const {
  return count_.load(std::memory_order_relaxed);
}

double LatencyHistogram::QuantileMicros(double q) const {
  const uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  // Rank of the quantile sample, 1-based: ceil(q * total), at least 1.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * total)));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    if (seen >= rank)
      return static_cast<double>(uint64_t{1} << (i + 1));  // bucket upper bound
  }
  // Counts raced ahead of count_; the last bucket still bounds the sample.
  return static_cast<double>(uint64_t{1} << kNumBuckets);
}

double LatencyHistogram::MaxMicros() const {
  return static_cast<double>(max_micros_.load(std::memory_order_relaxed));
}

uint64_t LatencyHistogram::SumMicros() const {
  return sum_micros_.load(std::memory_order_relaxed);
}

uint64_t LatencyHistogram::BucketCount(int i) const {
  if (i < 0 || i >= kNumBuckets) return 0;
  return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
}

double LatencyHistogram::BucketUpperBound(int i) {
  if (i < 0) return 0.0;
  if (i >= kNumBuckets) i = kNumBuckets - 1;
  return static_cast<double>(uint64_t{1} << (i + 1));
}

}  // namespace dehealth
