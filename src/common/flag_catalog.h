#ifndef DEHEALTH_COMMON_FLAG_CATALOG_H_
#define DEHEALTH_COMMON_FLAG_CATALOG_H_

#include <set>
#include <string>
#include <vector>

namespace dehealth {

/// One command-line flag a shipped binary accepts. The catalog is the
/// single source of truth for the flag surface: AttackBooleanFlags() is
/// derived from it, docs/OPERATIONS.md documents exactly this set, and two
/// checks hold the three in sync — the docs-consistency unit test
/// (catalog ⊆ OPERATIONS.md) and tests/docs/docs_check.cmake (every
/// FlagParser lookup in the binaries ⊆ OPERATIONS.md). Add a flag => add
/// it here AND to the table in docs/OPERATIONS.md.
struct FlagDoc {
  /// Name without the leading "--", e.g. "job-dir".
  const char* name;
  /// Where it applies, e.g. "cli attack, serve" or "query".
  const char* binaries;
  /// True for value-less switches ("--idf"); FlagParser needs these
  /// declared up front to parse "--idf --k 10" correctly.
  bool boolean;
  /// One-line meaning for the docs table.
  const char* help;
};

/// Every flag accepted by dehealth_cli, dehealth_serve, dehealth_router,
/// and dehealth_query, sorted by name.
const std::vector<FlagDoc>& FlagCatalog();

/// The value-less flags of the catalog, what dehealth_cli, dehealth_serve
/// and dehealth_router pass to FlagParser so "--idf --k 10" parses
/// correctly. (Declaring a boolean another binary owns — e.g. the
/// router's --require-all-shards — is harmless: undeclared-but-unused
/// flags are simply never looked up.)
std::set<std::string> AttackBooleanFlags();

}  // namespace dehealth

#endif  // DEHEALTH_COMMON_FLAG_CATALOG_H_
