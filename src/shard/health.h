#ifndef DEHEALTH_SHARD_HEALTH_H_
#define DEHEALTH_SHARD_HEALTH_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace dehealth {

/// When the HealthTracker ejects a backend and how it schedules the
/// probe-and-readmit cycle afterwards. The probe schedule is jittered
/// exponential backoff exactly like the PR 4 client retry: the delay
/// before 1-based probe attempt `a` of backend `b` is
///   min(initial_probe_ms * multiplier^(a-1), max_probe_ms)
/// scaled by a deterministic jitter factor in [0.5, 1.0] drawn from
/// Rng(MixSeed(seed, b * 1000003 + a)) — a pure function of
/// (seed, backend, attempt), so tests can predict every probe instant
/// while distinct seeds decorrelate probing across real routers.
struct HealthPolicy {
  /// Consecutive failed exchanges that eject a backend. 1 (the default)
  /// ejects on the first failure: the scatter layer already failed over,
  /// so there is no reason to keep routing fresh legs at a dead peer.
  int failure_threshold = 1;
  int initial_probe_ms = 100;
  int max_probe_ms = 2000;
  double multiplier = 2.0;
  uint64_t seed = 1;
};

/// Sanitized copy of `policy`: threshold >= 1, non-negative backoffs with
/// max >= initial, multiplier >= 1 (NaN treated as 1). Same hygiene as
/// ClampRetryPolicy in serve/client.h — a mis-set flag must degrade to a
/// sane schedule, never a zero-delay probe spin.
HealthPolicy ClampHealthPolicy(HealthPolicy policy);

/// Per-backend health for a replicated scatter-gather fleet, indexed by
/// (group, replica). Pure bookkeeping: the router records the outcome of
/// every exchange and asks two questions — "which replicas of this group
/// should a leg try, in what order?" and "is this ejected backend due for
/// a probe?". The tracker never touches the network; probing (a
/// queue-bypassing kShardInfo round trip) is the router's job.
///
/// Thread-safe: scatter legs run concurrently under ParallelFor and
/// record outcomes from worker threads; one mutex guards all state (the
/// operations are a few integer updates, far off any hot path).
///
/// Deterministic: the probe schedule depends only on (policy.seed,
/// backend, attempt) and the injected clock, so a test driving the clock
/// by hand sees the exact same ejection/probe/readmit trace every run.
class HealthTracker {
 public:
  /// `group_sizes[g]` = number of replicas of shard group g. All backends
  /// start healthy. `now_ms` overrides the clock (tests); the default
  /// reads std::chrono::steady_clock.
  HealthTracker(std::vector<int> group_sizes, HealthPolicy policy,
                std::function<int64_t()> now_ms = {});

  int num_groups() const { return static_cast<int>(sizes_.size()); }
  int group_size(int group) const { return sizes_[static_cast<size_t>(group)]; }

  bool healthy(int group, int replica) const;
  /// Healthy backends across the whole fleet (the value of the
  /// dehealth_replica_healthy_backends gauge).
  int healthy_count() const;

  /// Records a successful exchange with (group, replica): clears the
  /// failure streak, and readmits the backend if it was ejected. Returns
  /// true exactly when this call readmitted it (ejected -> healthy).
  bool RecordSuccess(int group, int replica);

  /// Records a failed exchange. For a healthy backend, grows the failure
  /// streak and ejects once it reaches policy.failure_threshold; for an
  /// ejected backend (a failed probe), advances the probe attempt so the
  /// next probe backs off further. Returns true exactly when this call
  /// ejected it (healthy -> ejected).
  bool RecordFailure(int group, int replica);

  /// True when (group, replica) is ejected and its probe delay has
  /// elapsed. A true return ARMS the probe: the caller must follow up
  /// with RecordSuccess (readmit) or RecordFailure (back off further);
  /// until then, repeated calls return false so concurrent queries never
  /// double-probe one backend.
  bool ShouldProbe(int group, int replica);

  /// The order a scatter leg for `group` should try replicas: healthy
  /// replicas first, rotated by a per-group round-robin cursor (each call
  /// advances it — replicas of a bitwise-identical group share load),
  /// then ejected replicas in index order as a last resort (a leg with
  /// no healthy replica left is still worth attempting everywhere before
  /// the router degrades the answer).
  std::vector<int> RouteOrder(int group);

  /// Milliseconds between ejection (or the previous probe failure) and
  /// 1-based probe attempt `attempt` of flat backend id `backend` —
  /// exposed so tests can assert the schedule the tracker follows.
  int ProbeDelayMs(int backend, int attempt) const;

 private:
  struct Slot {
    int consecutive_failures = 0;
    bool healthy = true;
    /// 1-based probe attempt the next probe will be; valid when ejected.
    int probe_attempt = 1;
    /// Clock reading at/after which the next probe may fire.
    int64_t next_probe_ms = 0;
    /// A ShouldProbe() armed this slot; cleared by Record{Success,Failure}.
    bool probe_armed = false;
  };

  Slot& At(int group, int replica);
  const Slot& At(int group, int replica) const;
  int FlatId(int group, int replica) const;

  std::vector<int> sizes_;
  std::vector<int> offsets_;  // flat id of each group's replica 0
  HealthPolicy policy_;
  std::function<int64_t()> now_ms_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
  std::vector<size_t> cursors_;  // per-group round-robin cursor
};

}  // namespace dehealth

#endif  // DEHEALTH_SHARD_HEALTH_H_
