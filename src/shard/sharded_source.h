#ifndef DEHEALTH_SHARD_SHARDED_SOURCE_H_
#define DEHEALTH_SHARD_SHARDED_SOURCE_H_

#include <vector>

#include "core/candidate_source.h"
#include "index/candidate_index.h"
#include "shard/partition.h"

namespace dehealth {

/// In-process scatter-gather CandidateSource over N per-shard candidate
/// indexes (BuildShardIndexes): every Top-K query fans out to all shards
/// and merges the per-shard heaps with MergeScoredTopK. Because each shard
/// slices the same full build (global idf table, universe fingerprint) and
/// runs the identical exact kernel, Score / Row / TopK answers are
/// bitwise-identical to the single-index path for every N and thread count
/// (see DESIGN.md "Sharding") — so `dehealth_cli attack --shards=N`, the
/// job runner and the filtering/refined phases consume it unchanged.
class ShardedCandidateSource final : public CandidateSource {
 public:
  /// `shards[i]` must be shard i of shards.size() of one universe, ranges
  /// partitioning [0, universe) in order — exactly what BuildShardIndexes
  /// returns. Construction computes the anonymized-side query features
  /// ONCE (all shards share the idf table and landmark count, so the
  /// features are shard-independent). `max_candidates` is the per-SHARD
  /// evaluation cap (recall knob): each shard evaluates at most that many
  /// candidates, so a capped sharded run can evaluate more total
  /// candidates than a capped single-index run.
  ShardedCandidateSource(const UdaGraph& anonymized,
                         std::vector<CandidateIndex> shards,
                         int num_threads = 0, int max_candidates = 0);

  int num_anonymized() const override;
  int num_auxiliary() const override;
  double Score(NodeId u, NodeId v) const override;
  const std::vector<double>& Row(NodeId u,
                                 std::vector<double>* scratch) const override;
  StatusOr<CandidateSets> TopK(int k, int num_threads) const override;
  StatusOr<CandidateSets> TopKForUsers(const std::vector<int>& users, int k,
                                       int num_threads) const override;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const std::vector<ShardRange>& ranges() const { return ranges_; }

 private:
  /// The shard owning global auxiliary id v (ranges are contiguous and
  /// ordered, so this is one binary search).
  size_t ShardOf(NodeId v) const;
  std::vector<ScoredUser> MergedTopKForQuery(size_t query, int k) const;

  std::vector<CandidateIndex> shards_;
  std::vector<ShardRange> ranges_;
  std::vector<IndexedUserFeatures> queries_;
  int num_auxiliary_ = 0;
  int max_candidates_;
};

}  // namespace dehealth

#endif  // DEHEALTH_SHARD_SHARDED_SOURCE_H_
