#include "shard/shard_index.h"

#include <cstdio>
#include <optional>
#include <utility>

#include "index/snapshot.h"
#include "obs/standard_metrics.h"
#include "obs/trace.h"

namespace dehealth {

namespace {

/// True when a decoded snapshot is exactly the shard we were asked for:
/// score-shaping config, universe fingerprint, and the full shard identity
/// must all match — a fingerprint match alone would accept a slice of the
/// right universe but the wrong range.
bool ShardSnapshotMatches(const CandidateIndexData& data,
                          const SimilarityConfig& config,
                          uint64_t universe_fingerprint, ShardRange range,
                          int shard_index, int shard_count,
                          int universe_size) {
  return data.c1 == config.c1 && data.c2 == config.c2 &&
         data.c3 == config.c3 &&
         data.num_landmarks == config.num_landmarks &&
         data.idf_weight_attributes == config.idf_weight_attributes &&
         data.auxiliary_fingerprint == universe_fingerprint &&
         data.shard_index == static_cast<uint32_t>(shard_index) &&
         data.shard_count == static_cast<uint32_t>(shard_count) &&
         data.shard_begin == static_cast<uint32_t>(range.begin) &&
         data.shard_total == static_cast<uint32_t>(universe_size) &&
         data.users.size() == static_cast<size_t>(range.size());
}

/// Moves a corrupt shard snapshot out of the way so the rebuild's save
/// cannot be confused with the bad bytes (and an operator can inspect
/// them). Rename failure is non-fatal: the save overwrites in place.
void QuarantineShardSnapshot(const std::string& path) {
  const std::string quarantined = path + ".quarantined";
  std::rename(path.c_str(), quarantined.c_str());
  obs::GetShardMetrics().snapshot_quarantines->Increment();
  std::fprintf(stderr,
               "warning: corrupt shard snapshot '%s' quarantined to '%s'\n",
               path.c_str(), quarantined.c_str());
}

/// Tries to satisfy shard (shard_index of shard_count) from its snapshot
/// file. Returns the index on a fresh match; nullopt when the shard must
/// be rebuilt (missing, stale, or corrupt-and-quarantined file).
std::optional<CandidateIndex> TryLoadShard(const std::string& snapshot_path,
                                           const SimilarityConfig& config,
                                           uint64_t universe_fingerprint,
                                           ShardRange range, int shard_index,
                                           int shard_count,
                                           int universe_size) {
  if (snapshot_path.empty()) return std::nullopt;
  const std::string path =
      ShardSnapshotPath(snapshot_path, shard_index, shard_count);
  StatusOr<CandidateIndex> loaded = LoadIndexSnapshot(path);
  if (!loaded.ok()) {
    // A missing file is the normal first run; anything else on disk is a
    // damaged snapshot (bad magic/checksum/bounds) — quarantine it so only
    // THIS shard pays the rebuild.
    if (loaded.status().code() != StatusCode::kNotFound)
      QuarantineShardSnapshot(path);
    return std::nullopt;
  }
  if (!ShardSnapshotMatches(loaded->data(), config, universe_fingerprint,
                            range, shard_index, shard_count, universe_size))
    return std::nullopt;
  loaded->set_simd_mode(config.simd);
  obs::GetIndexMetrics().snapshot_loads->Increment();
  return std::move(loaded).value();
}

/// The shared rebuild path: slice `full` (built once by the caller) into
/// shard `shard_index` and persist it when a snapshot path is configured.
StatusOr<CandidateIndex> SliceAndSave(const CandidateIndex& full,
                                      const std::string& snapshot_path,
                                      const SimilarityConfig& config,
                                      ShardRange range, int shard_index,
                                      int shard_count) {
  StatusOr<CandidateIndex> shard = CandidateIndex::FromData(
      SliceIndexData(full.data(), range, shard_index, shard_count));
  if (!shard.ok()) return shard.status();
  shard->set_simd_mode(config.simd);
  obs::GetIndexMetrics().snapshot_rebuilds->Increment();
  if (!snapshot_path.empty())
    DEHEALTH_RETURN_IF_ERROR(SaveIndexSnapshot(
        *shard, ShardSnapshotPath(snapshot_path, shard_index, shard_count)));
  return shard;
}

}  // namespace

CandidateIndexData SliceIndexData(const CandidateIndexData& full,
                                  ShardRange range, int shard_index,
                                  int shard_count) {
  CandidateIndexData slice;
  slice.c1 = full.c1;
  slice.c2 = full.c2;
  slice.c3 = full.c3;
  slice.num_landmarks = full.num_landmarks;
  slice.idf_weight_attributes = full.idf_weight_attributes;
  slice.auxiliary_fingerprint = full.auxiliary_fingerprint;
  slice.shard_index = static_cast<uint32_t>(shard_index);
  slice.shard_count = static_cast<uint32_t>(shard_count);
  slice.shard_begin = static_cast<uint32_t>(range.begin);
  slice.shard_total = static_cast<uint32_t>(full.users.size());
  slice.users.assign(full.users.begin() + range.begin,
                     full.users.begin() + range.end);
  // The GLOBAL idf table, verbatim: shard-local document frequencies would
  // change attribute weights and break bitwise identity with N = 1.
  slice.idf_table = full.idf_table;
  slice.default_idf = full.default_idf;
  return slice;
}

StatusOr<std::vector<CandidateIndex>> BuildShardIndexes(
    const std::string& snapshot_path, const UdaGraph& auxiliary,
    const SimilarityConfig& config, int num_shards) {
  if (num_shards < 1)
    return Status::InvalidArgument("BuildShardIndexes: num_shards must be >= 1");
  obs::Span span("shard", "build_shard_indexes");
  span.SetArg("shards", static_cast<int64_t>(num_shards));
  const int universe_size = auxiliary.num_users();
  const std::vector<ShardRange> ranges =
      ComputeShardRanges(universe_size, num_shards);
  const uint64_t universe_fingerprint = FingerprintForIndex(auxiliary);

  std::vector<CandidateIndex> shards;
  shards.reserve(static_cast<size_t>(num_shards));
  // The full build is the expensive part (landmark BFS over the whole
  // graph); do it at most once, and only if some shard misses its
  // snapshot.
  std::optional<CandidateIndex> full;
  for (int i = 0; i < num_shards; ++i) {
    const ShardRange range = ranges[static_cast<size_t>(i)];
    std::optional<CandidateIndex> loaded =
        TryLoadShard(snapshot_path, config, universe_fingerprint, range, i,
                     num_shards, universe_size);
    if (loaded.has_value()) {
      shards.push_back(std::move(*loaded));
      continue;
    }
    if (!full.has_value()) {
      StatusOr<CandidateIndex> built =
          CandidateIndex::Build(auxiliary, config);
      if (!built.ok()) return built.status();
      full = std::move(built).value();
    }
    StatusOr<CandidateIndex> shard =
        SliceAndSave(*full, snapshot_path, config, range, i, num_shards);
    if (!shard.ok()) return shard.status();
    shards.push_back(std::move(shard).value());
  }
  return shards;
}

StatusOr<CandidateIndex> LoadOrBuildShardIndex(
    const std::string& snapshot_path, const UdaGraph& auxiliary,
    const SimilarityConfig& config, int shard_index, int shard_count) {
  if (shard_count < 1 || shard_index < 0 || shard_index >= shard_count)
    return Status::InvalidArgument(
        "LoadOrBuildShardIndex: shard_index must be in [0, shard_count)");
  const int universe_size = auxiliary.num_users();
  const ShardRange range = ComputeShardRanges(
      universe_size, shard_count)[static_cast<size_t>(shard_index)];
  const uint64_t universe_fingerprint = FingerprintForIndex(auxiliary);
  std::optional<CandidateIndex> loaded =
      TryLoadShard(snapshot_path, config, universe_fingerprint, range,
                   shard_index, shard_count, universe_size);
  if (loaded.has_value()) return std::move(*loaded);
  obs::Span span("shard", "shard_index_rebuild");
  StatusOr<CandidateIndex> full = CandidateIndex::Build(auxiliary, config);
  if (!full.ok()) return full.status();
  return SliceAndSave(*full, snapshot_path, config, range, shard_index,
                      shard_count);
}

}  // namespace dehealth
