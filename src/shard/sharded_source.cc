#include "shard/sharded_source.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "common/parallel.h"
#include "obs/standard_metrics.h"
#include "obs/trace.h"

namespace dehealth {

ShardedCandidateSource::ShardedCandidateSource(
    const UdaGraph& anonymized, std::vector<CandidateIndex> shards,
    int num_threads, int max_candidates)
    : shards_(std::move(shards)), max_candidates_(max_candidates) {
  assert(!shards_.empty() && "ShardedCandidateSource needs >= 1 shard");
  ranges_.reserve(shards_.size());
  for (const CandidateIndex& shard : shards_) {
    const CandidateIndexData& data = shard.data();
    const int begin = static_cast<int>(data.shard_begin);
    ranges_.push_back(ShardRange{begin, begin + shard.num_auxiliary()});
  }
  num_auxiliary_ = ranges_.back().end;
  // Query features depend only on the anonymized graph, the landmark count
  // and the (global, shared) idf table — any shard computes the same
  // vectors, so compute them once on shard 0.
  queries_ = shards_.front().ComputeQueryFeatures(anonymized, num_threads);
}

int ShardedCandidateSource::num_anonymized() const {
  return static_cast<int>(queries_.size());
}

int ShardedCandidateSource::num_auxiliary() const { return num_auxiliary_; }

size_t ShardedCandidateSource::ShardOf(NodeId v) const {
  // First range whose end exceeds v; empty shards (end == begin) can never
  // win because v < end implies the range is non-empty at v's position.
  const auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), v,
      [](NodeId value, const ShardRange& r) { return value < r.end; });
  assert(it != ranges_.end());
  return static_cast<size_t>(it - ranges_.begin());
}

double ShardedCandidateSource::Score(NodeId u, NodeId v) const {
  const size_t s = ShardOf(v);
  return shards_[s].ExactScore(queries_[static_cast<size_t>(u)],
                               v - ranges_[s].begin);
}

const std::vector<double>& ShardedCandidateSource::Row(
    NodeId u, std::vector<double>* scratch) const {
  scratch->resize(static_cast<size_t>(num_auxiliary_));
  // Each shard's batched row kernel fills its own contiguous segment of
  // the global row — same kernel, same per-slot values as the single-index
  // ExactRow, just written through N calls.
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (ranges_[s].size() == 0) continue;
    shards_[s].ExactRowTo(queries_[static_cast<size_t>(u)],
                          scratch->data() + ranges_[s].begin);
  }
  return *scratch;
}

std::vector<ScoredUser> ShardedCandidateSource::MergedTopKForQuery(
    size_t query, int k) const {
  std::vector<std::vector<ScoredUser>> per_shard(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    per_shard[s] =
        shards_[s].TopKScoredForQuery(queries_[query], k, max_candidates_);
    for (ScoredUser& c : per_shard[s]) c.user += ranges_[s].begin;
  }
  return MergeScoredTopK(per_shard, k);
}

StatusOr<CandidateSets> ShardedCandidateSource::TopK(int k,
                                                     int num_threads) const {
  if (k < 1)
    return Status::InvalidArgument(
        "ShardedCandidateSource::TopK: k must be >= 1");
  obs::Span span("shard", "sharded_top_k");
  span.SetArg("rows", static_cast<int64_t>(queries_.size()));
  span.SetArg("shards", static_cast<int64_t>(shards_.size()));
  obs::GetShardMetrics().scatter_rpcs->Increment(queries_.size() *
                                                 shards_.size());
  CandidateSets result(queries_.size());
  // Row-parallel like every other source: each task owns one output slot,
  // scattering to all shards serially inside the task (a nested
  // ParallelFor would serialize anyway), so candidate sets are identical
  // for any thread count.
  ParallelFor(
      0, static_cast<int64_t>(queries_.size()),
      [&](int64_t u) {
        const std::vector<ScoredUser> merged =
            MergedTopKForQuery(static_cast<size_t>(u), k);
        std::vector<int>& out = result[static_cast<size_t>(u)];
        out.reserve(merged.size());
        for (const ScoredUser& c : merged) out.push_back(c.user);
      },
      num_threads);
  return result;
}

StatusOr<CandidateSets> ShardedCandidateSource::TopKForUsers(
    const std::vector<int>& users, int k, int num_threads) const {
  if (k < 1)
    return Status::InvalidArgument(
        "ShardedCandidateSource::TopKForUsers: k must be >= 1");
  const int n1 = num_anonymized();
  for (int u : users)
    if (u < 0 || u >= n1)
      return Status::InvalidArgument(
          "ShardedCandidateSource::TopKForUsers: user id " +
          std::to_string(u) + " out of range [0, " + std::to_string(n1) +
          ")");
  obs::GetShardMetrics().scatter_rpcs->Increment(users.size() *
                                                 shards_.size());
  CandidateSets result(users.size());
  ParallelFor(
      0, static_cast<int64_t>(users.size()),
      [&](int64_t i) {
        const std::vector<ScoredUser> merged = MergedTopKForQuery(
            static_cast<size_t>(users[static_cast<size_t>(i)]), k);
        std::vector<int>& out = result[static_cast<size_t>(i)];
        out.reserve(merged.size());
        for (const ScoredUser& c : merged) out.push_back(c.user);
      },
      num_threads);
  return result;
}

}  // namespace dehealth
