// Implements index/pipeline.h. Lives in src/shard/ (not src/index/)
// because BuildAttackScoreSource is the one place all four score-source
// modes meet — dense, indexed, in-process sharded, and shard slice — and
// the sharded modes need src/shard/, which layers above src/index/.
#include "index/pipeline.h"

#include <cstdio>
#include <utility>

#include "engines/pipeline.h"
#include "index/indexed_source.h"
#include "index/snapshot.h"
#include "obs/standard_metrics.h"
#include "shard/matrix_sharded_source.h"
#include "shard/partition.h"
#include "shard/shard_index.h"
#include "shard/sharded_source.h"

namespace dehealth {

namespace {

void WarnDenseFallback(const Status& status) {
  std::fprintf(stderr,
               "warning: candidate index unavailable (%s); falling back "
               "to dense similarity path\n",
               status.ToString().c_str());
  obs::GetIndexMetrics().dense_fallbacks->Increment();
}

}  // namespace

StatusOr<std::unique_ptr<AttackScoreSource>> BuildAttackScoreSource(
    const UdaGraph& anonymized, const UdaGraph& auxiliary,
    const DeHealthConfig& config) {
  if (config.num_shards < 1)
    return Status::InvalidArgument(
        "BuildAttackScoreSource: num_shards must be >= 1");
  if (config.shard_count < 1 || config.shard_index < 0 ||
      config.shard_index >= config.shard_count)
    return Status::InvalidArgument(
        "BuildAttackScoreSource: shard_index must be in [0, shard_count)");
  if (config.num_shards > 1 && config.shard_count > 1)
    return Status::InvalidArgument(
        "BuildAttackScoreSource: num_shards > 1 (in-process sharding) and "
        "shard_count > 1 (slice mode) are mutually exclusive");
  if (config.shard_count > 1 && config.enable_filtering)
    return Status::InvalidArgument(
        "BuildAttackScoreSource: filtering thresholds are global and cannot "
        "be computed on a shard slice");

  auto bundle = std::make_unique<AttackScoreSource>();
  SimilarityConfig sim_config = config.similarity;
  sim_config.num_threads = config.num_threads;
  bundle->shard_index = config.shard_index;
  bundle->shard_count = config.shard_count;
  bundle->universe_size = auxiliary.num_users();
  bundle->universe_fingerprint = FingerprintForIndex(auxiliary);

  if (config.engine != EngineKind::kStructural) {
    // Matrix-backed engines (--engine=blind|community, src/engines/): the
    // score matrix is built once over the FULL universe, then served
    // dense, scatter-gathered (--shards N, candidate selection only), or
    // column-sliced (--shard-count fleet mode) — all bitwise-identical
    // rankings by the shard-merge argument (DESIGN.md "Sharding"). The
    // candidate index is a structural-kernel artifact, so the index knobs
    // are meaningless here and fail fast instead of silently degrading.
    if (config.use_index || !config.index_snapshot_path.empty() ||
        config.index_max_candidates > 0)
      return Status::InvalidArgument(
          std::string("BuildAttackScoreSource: --index/--index-path/"
                      "--max-candidates only apply to the structural "
                      "engine, not --engine=") +
          EngineKindName(config.engine));
    StatusOr<std::vector<std::vector<double>>> matrix =
        BuildEngineMatrix(anonymized, auxiliary, config);
    if (!matrix.ok()) return matrix.status();
    if (config.shard_count > 1) {
      // Slice mode: keep only this shard's columns, exactly like the
      // structural dense-slice path — local ids over [begin, end).
      const ShardRange range =
          ComputeShardRanges(bundle->universe_size, config.shard_count)
              [static_cast<size_t>(config.shard_index)];
      bundle->shard_begin = range.begin;
      bundle->similarity.resize(matrix->size());
      for (size_t u = 0; u < matrix->size(); ++u)
        bundle->similarity[u].assign(
            (*matrix)[u].begin() + range.begin,
            (*matrix)[u].begin() + range.end);
      bundle->source =
          std::make_unique<DenseCandidateSource>(bundle->similarity);
      return bundle;
    }
    bundle->similarity = std::move(matrix).value();
    if (config.num_shards > 1)
      bundle->source = std::make_unique<MatrixShardedSource>(
          bundle->similarity, config.num_shards);
    else
      bundle->source =
          std::make_unique<DenseCandidateSource>(bundle->similarity);
    return bundle;
  }

  if (config.shard_count > 1) {
    // Slice mode: this process serves only its shard's auxiliary range,
    // with LOCAL ids — the router (or the operator) re-anchors answers at
    // shard_begin. Always index-backed: the slice IS a candidate index.
    const ShardRange range =
        ComputeShardRanges(bundle->universe_size, config.shard_count)
            [static_cast<size_t>(config.shard_index)];
    bundle->shard_begin = range.begin;
    StatusOr<CandidateIndex> index = LoadOrBuildShardIndex(
        config.index_snapshot_path, auxiliary, sim_config,
        config.shard_index, config.shard_count);
    if (index.ok()) {
      bundle->index =
          std::make_unique<CandidateIndex>(std::move(index).value());
      bundle->index->set_simd_mode(sim_config.simd);
      bundle->source = std::make_unique<IndexedCandidateSource>(
          anonymized, *bundle->index, config.num_threads,
          config.index_max_candidates);
      return bundle;
    }
    // Dense-slice fallback: compute the full matrix and keep only this
    // shard's columns, so the slice still answers with local ids.
    WarnDenseFallback(index.status());
    bundle->degraded_to_dense = true;
    const StructuralSimilarity similarity(anonymized, auxiliary, sim_config);
    std::vector<std::vector<double>> full = similarity.ComputeMatrix();
    bundle->similarity.resize(full.size());
    for (size_t u = 0; u < full.size(); ++u)
      bundle->similarity[u].assign(
          full[u].begin() + range.begin, full[u].begin() + range.end);
    bundle->source =
        std::make_unique<DenseCandidateSource>(bundle->similarity);
    return bundle;
  }

  if (config.num_shards > 1) {
    // In-process sharding: N per-shard indexes behind scatter-gather.
    // Answers are bitwise-identical to every other exact mode, so a
    // failure here degrades to the dense path exactly like a failed index.
    StatusOr<std::vector<CandidateIndex>> shards = BuildShardIndexes(
        config.index_snapshot_path, auxiliary, sim_config, config.num_shards);
    if (shards.ok()) {
      bundle->source = std::make_unique<ShardedCandidateSource>(
          anonymized, std::move(shards).value(), config.num_threads,
          config.index_max_candidates);
      return bundle;
    }
    WarnDenseFallback(shards.status());
    bundle->degraded_to_dense = true;
  } else if (config.use_index) {
    StatusOr<CandidateIndex> index =
        LoadOrBuildIndex(config.index_snapshot_path, auxiliary, sim_config);
    if (index.ok()) {
      bundle->index =
          std::make_unique<CandidateIndex>(std::move(index).value());
      // Snapshot loads come back with the default kAuto; the runtime SIMD
      // choice is a per-run knob, never part of the persisted index.
      bundle->index->set_simd_mode(sim_config.simd);
      bundle->source = std::make_unique<IndexedCandidateSource>(
          anonymized, *bundle->index, config.num_threads,
          config.index_max_candidates);
      return bundle;
    }
    // Graceful degradation: an index that cannot be loaded, built, or
    // persisted is a performance feature failing, not a correctness one —
    // warn and continue on the dense path instead of failing the attack.
    // (With index_max_candidates > 0 the dense path is the exact variant
    // of the recall-bounded answers the index would have given.)
    WarnDenseFallback(index.status());
    bundle->degraded_to_dense = true;
  }

  const StructuralSimilarity similarity(anonymized, auxiliary, sim_config);
  bundle->similarity = similarity.ComputeMatrix();
  bundle->source = std::make_unique<DenseCandidateSource>(bundle->similarity);
  return bundle;
}

StatusOr<DeHealthResult> RunDeHealthAttack(const UdaGraph& anonymized,
                                           const UdaGraph& auxiliary,
                                           const DeHealthConfig& config) {
  const DeHealth attack(config);
  StatusOr<std::unique_ptr<AttackScoreSource>> scores =
      BuildAttackScoreSource(anonymized, auxiliary, config);
  if (!scores.ok()) return scores.status();
  return attack.RunWithSource(anonymized, auxiliary, *(*scores)->source);
}

}  // namespace dehealth
