#include "shard/health.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/rng.h"

namespace dehealth {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

HealthPolicy ClampHealthPolicy(HealthPolicy policy) {
  policy.failure_threshold = std::max(policy.failure_threshold, 1);
  policy.initial_probe_ms = std::max(policy.initial_probe_ms, 0);
  policy.max_probe_ms =
      std::max(policy.max_probe_ms, policy.initial_probe_ms);
  if (!(policy.multiplier >= 1.0)) policy.multiplier = 1.0;  // NaN too
  return policy;
}

HealthTracker::HealthTracker(std::vector<int> group_sizes,
                             HealthPolicy policy,
                             std::function<int64_t()> now_ms)
    : sizes_(std::move(group_sizes)),
      policy_(ClampHealthPolicy(policy)),
      now_ms_(now_ms ? std::move(now_ms) : SteadyNowMs) {
  offsets_.reserve(sizes_.size());
  int flat = 0;
  for (int size : sizes_) {
    offsets_.push_back(flat);
    flat += std::max(size, 0);
  }
  slots_.resize(static_cast<size_t>(flat));
  cursors_.assign(sizes_.size(), 0);
}

int HealthTracker::FlatId(int group, int replica) const {
  return offsets_[static_cast<size_t>(group)] + replica;
}

HealthTracker::Slot& HealthTracker::At(int group, int replica) {
  return slots_[static_cast<size_t>(FlatId(group, replica))];
}

const HealthTracker::Slot& HealthTracker::At(int group, int replica) const {
  return slots_[static_cast<size_t>(FlatId(group, replica))];
}

bool HealthTracker::healthy(int group, int replica) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return At(group, replica).healthy;
}

int HealthTracker::healthy_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int count = 0;
  for (const Slot& slot : slots_) count += slot.healthy ? 1 : 0;
  return count;
}

int HealthTracker::ProbeDelayMs(int backend, int attempt) const {
  double delay = policy_.initial_probe_ms;
  for (int i = 1; i < attempt; ++i) delay *= policy_.multiplier;
  delay = std::min(delay, static_cast<double>(policy_.max_probe_ms));
  // Same jitter shape as the client retry backoff: deterministic in
  // (seed, backend, attempt). 1000003 keeps the (backend, attempt)
  // streams of different backends disjoint for any sane attempt count.
  Rng rng(MixSeed(policy_.seed,
                  static_cast<uint64_t>(backend) * 1000003ULL +
                      static_cast<uint64_t>(attempt)));
  return static_cast<int>(delay * (0.5 + 0.5 * rng.NextDouble()));
}

bool HealthTracker::RecordSuccess(int group, int replica) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = At(group, replica);
  slot.consecutive_failures = 0;
  slot.probe_armed = false;
  if (slot.healthy) return false;
  slot.healthy = true;
  slot.probe_attempt = 1;
  return true;
}

bool HealthTracker::RecordFailure(int group, int replica) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = At(group, replica);
  if (slot.healthy) {
    if (++slot.consecutive_failures < policy_.failure_threshold)
      return false;
    slot.healthy = false;
    slot.probe_attempt = 1;
    slot.probe_armed = false;
    slot.next_probe_ms =
        now_ms_() + ProbeDelayMs(FlatId(group, replica), 1);
    return true;
  }
  // A failed probe (or a last-resort leg that also failed): back off.
  slot.probe_armed = false;
  slot.probe_attempt += 1;
  slot.next_probe_ms =
      now_ms_() + ProbeDelayMs(FlatId(group, replica), slot.probe_attempt);
  return false;
}

bool HealthTracker::ShouldProbe(int group, int replica) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = At(group, replica);
  if (slot.healthy || slot.probe_armed) return false;
  if (now_ms_() < slot.next_probe_ms) return false;
  slot.probe_armed = true;
  return true;
}

std::vector<int> HealthTracker::RouteOrder(int group) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int size = sizes_[static_cast<size_t>(group)];
  std::vector<int> healthy_ids, ejected_ids;
  healthy_ids.reserve(static_cast<size_t>(size));
  for (int r = 0; r < size; ++r)
    (At(group, r).healthy ? healthy_ids : ejected_ids).push_back(r);
  std::vector<int> order;
  order.reserve(static_cast<size_t>(size));
  if (!healthy_ids.empty()) {
    const size_t start = cursors_[static_cast<size_t>(group)]++ %
                         healthy_ids.size();
    for (size_t i = 0; i < healthy_ids.size(); ++i)
      order.push_back(healthy_ids[(start + i) % healthy_ids.size()]);
  }
  order.insert(order.end(), ejected_ids.begin(), ejected_ids.end());
  return order;
}

}  // namespace dehealth
