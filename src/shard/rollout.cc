#include "shard/rollout.h"

#include <cstdio>
#include <utility>

#include "obs/standard_metrics.h"

namespace dehealth {

namespace {

std::string Where(const BackendAddress& address) {
  return address.host + ":" + std::to_string(address.port);
}

}  // namespace

StatusOr<RolloutReport> RunRollout(
    const std::vector<std::vector<BackendAddress>>& groups,
    const RolloutOptions& options) {
  if (groups.empty())
    return Status::InvalidArgument("rollout: no backends");
  for (const auto& group : groups)
    if (group.empty())
      return Status::InvalidArgument("rollout: empty shard group");

  obs::ReplicaMetrics& metrics = obs::GetReplicaMetrics();
  RolloutReport report;
  report.groups.reserve(groups.size());

  for (size_t g = 0; g < groups.size(); ++g) {
    // Replica by replica: push the whole segment chain and seal, so each
    // replica crosses the epoch boundary in one visit and the group's
    // mixed-epoch window is as short as the slowest single rebuild.
    std::vector<ShardInfoAnswer> landed;
    landed.reserve(groups[g].size());
    uint64_t group_shard_index = 0;
    for (size_t r = 0; r < groups[g].size(); ++r) {
      const std::string where = Where(groups[g][r]);
      StatusOr<QueryClient> client = QueryClient::Connect(
          groups[g][r].host, groups[g][r].port, options.retry);
      if (!client.ok())
        return Status(client.status().code(),
                      "rollout: group " + std::to_string(g) + " replica " +
                          std::to_string(r) + " (" + where +
                          ") unreachable: " + client.status().message());
      StatusOr<ShardInfoAnswer> info = client->ShardInfo();
      if (!info.ok())
        return Status(info.status().code(),
                      "rollout: " + where + " shard-info failed: " +
                          info.status().message());
      // Replica discipline BEFORE mutating anything: a mis-grouped spec
      // must not push one shard's rollout visit onto another shard.
      if (r == 0) {
        group_shard_index = info->shard_index;
      } else if (info->shard_index != group_shard_index) {
        return Status::FailedPrecondition(
            "rollout: " + where + " claims shard " +
            std::to_string(info->shard_index) +
            " but its replica group's first backend claims shard " +
            std::to_string(group_shard_index) +
            " — refusing to mutate a mis-grouped fleet");
      }
      for (const std::string& segment : options.segments) {
        StatusOr<ShardInfoAnswer> after = client->LoadSegment(segment);
        if (!after.ok())
          return Status(after.status().code(),
                        "rollout: " + where + " refused segment " +
                            segment + ": " + after.status().message());
        info = after;
      }
      if (options.seal) {
        StatusOr<ShardInfoAnswer> sealed = client->SealEpoch();
        if (!sealed.ok())
          return Status(sealed.status().code(),
                        "rollout: " + where + " seal failed: " +
                            sealed.status().message());
        info = sealed;
        metrics.rollout_seals->Increment();
        ++report.seals;
      }
      report.segments_loaded += static_cast<int>(options.segments.size());
      landed.push_back(*info);
    }
    // Group convergence gate: every replica at the same epoch and
    // fingerprint before the next group starts — THIS is what keeps a
    // serving router's --allow-epoch-skew window to one group at a time.
    for (size_t r = 1; r < landed.size(); ++r) {
      if (landed[r].epoch_seq == landed[0].epoch_seq &&
          landed[r].universe_fingerprint ==
              landed[0].universe_fingerprint)
        continue;
      const std::string divergence =
          "rollout: group " + std::to_string(g) + " diverged: replica " +
          std::to_string(r) + " (" + Where(groups[g][r]) +
          ") landed at epoch " + std::to_string(landed[r].epoch_seq) +
          " but replica 0 (" + Where(groups[g][0]) + ") is at epoch " +
          std::to_string(landed[0].epoch_seq) +
          (landed[r].epoch_seq == landed[0].epoch_seq
               ? " with a different universe fingerprint"
               : "");
      if (!options.allow_epoch_skew)
        return Status::FailedPrecondition(
            divergence + " — fix the named replica and rerun (pass "
                         "--allow-epoch-skew to proceed anyway)");
      std::fprintf(stderr, "[dehealth_ingest] warning: %s "
                           "(--allow-epoch-skew)\n", divergence.c_str());
    }
    RolloutGroupReport group_report;
    group_report.replicas = static_cast<int>(landed.size());
    group_report.epoch_seq = landed[0].epoch_seq;
    group_report.universe_fingerprint = landed[0].universe_fingerprint;
    report.groups.push_back(group_report);
  }

  // Fleet convergence: every group ends at the same epoch AND universe
  // fingerprint — each backend stages the full auxiliary universe even in
  // slice mode, so after identical segment chains the fingerprints agree
  // fleet-wide, not just per group.
  for (size_t g = 1; g < report.groups.size(); ++g) {
    if (report.groups[g].epoch_seq == report.groups[0].epoch_seq &&
        report.groups[g].universe_fingerprint ==
            report.groups[0].universe_fingerprint)
      continue;
    const std::string divergence =
        "rollout: fleet diverged after rollout: group " +
        std::to_string(g) + " landed at epoch " +
        std::to_string(report.groups[g].epoch_seq) + " but group 0 is at " +
        std::to_string(report.groups[0].epoch_seq);
    if (!options.allow_epoch_skew)
      return Status::FailedPrecondition(
          divergence + " (pass --allow-epoch-skew to accept)");
    std::fprintf(stderr, "[dehealth_ingest] warning: %s "
                         "(--allow-epoch-skew)\n", divergence.c_str());
  }
  return report;
}

}  // namespace dehealth
