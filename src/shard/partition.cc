#include "shard/partition.h"

namespace dehealth {

std::vector<ShardRange> ComputeShardRanges(int total, int num_shards) {
  if (num_shards < 1) num_shards = 1;
  if (total < 0) total = 0;
  std::vector<ShardRange> ranges(static_cast<size_t>(num_shards));
  const int base = total / num_shards;
  const int extra = total % num_shards;
  int begin = 0;
  for (int i = 0; i < num_shards; ++i) {
    const int size = base + (i < extra ? 1 : 0);
    ranges[static_cast<size_t>(i)] = ShardRange{begin, begin + size};
    begin += size;
  }
  return ranges;
}

std::string ShardSnapshotPath(const std::string& base, int shard_index,
                              int shard_count) {
  if (base.empty()) return base;
  std::string stem = base;
  constexpr const char kExt[] = ".dhix";
  constexpr size_t kExtLen = sizeof(kExt) - 1;
  if (stem.size() >= kExtLen &&
      stem.compare(stem.size() - kExtLen, kExtLen, kExt) == 0)
    stem.resize(stem.size() - kExtLen);
  return stem + ".shard-" + std::to_string(shard_index) + "-of-" +
         std::to_string(shard_count) + ".dhix";
}

}  // namespace dehealth
