#ifndef DEHEALTH_SHARD_SHARD_INDEX_H_
#define DEHEALTH_SHARD_SHARD_INDEX_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/similarity.h"
#include "core/uda_graph.h"
#include "index/candidate_index.h"
#include "shard/partition.h"

namespace dehealth {

/// Slices one shard out of a full index's persistent data: the users in
/// `range` (re-indexed to local ids), with every score-shaping field, the
/// UNIVERSE fingerprint and the GLOBAL idf table copied verbatim — so a
/// shard scores any (query, member) pair bitwise-identically to the full
/// index (the per-pair kernel never looks outside the pair).
CandidateIndexData SliceIndexData(const CandidateIndexData& full,
                                  ShardRange range, int shard_index,
                                  int shard_count);

/// The N per-shard candidate indexes for an in-process sharded run,
/// partitioning `auxiliary` via ComputeShardRanges. With a non-empty
/// `snapshot_path` each shard persists/loads its own
/// ShardSnapshotPath(snapshot_path, i, n) file; fresh shard snapshots
/// (config + universe fingerprint + shard identity all matching) are
/// reused, stale or missing ones are rebuilt by slicing ONE full
/// in-memory build (done lazily, at most once), and corrupt ones are
/// quarantined (renamed to `<file>.quarantined`, counted by
/// dehealth_shard_snapshot_quarantines_total) before the rebuild — a bad
/// file never takes the run down, a failing save does (the caller asked
/// for persistence).
StatusOr<std::vector<CandidateIndex>> BuildShardIndexes(
    const std::string& snapshot_path, const UdaGraph& auxiliary,
    const SimilarityConfig& config, int num_shards);

/// One shard's index for a slice-mode backend process (dehealth_serve
/// --shard-index=i --shard-count=n): same load / quarantine / rebuild
/// policy as BuildShardIndexes but touches only shard i, so N backends can
/// each build their own slice from the shared auxiliary dataset.
StatusOr<CandidateIndex> LoadOrBuildShardIndex(
    const std::string& snapshot_path, const UdaGraph& auxiliary,
    const SimilarityConfig& config, int shard_index, int shard_count);

}  // namespace dehealth

#endif  // DEHEALTH_SHARD_SHARD_INDEX_H_
