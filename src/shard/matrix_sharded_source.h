#ifndef DEHEALTH_SHARD_MATRIX_SHARDED_SOURCE_H_
#define DEHEALTH_SHARD_MATRIX_SHARDED_SOURCE_H_

#include <vector>

#include "core/candidate_source.h"
#include "shard/partition.h"

namespace dehealth {

/// CandidateSource over a borrowed, already-materialized score matrix that
/// answers TopK by scatter-gather across `num_shards` contiguous
/// auxiliary-id column ranges: per shard the local Top-K of the range,
/// merged with MergeScoredTopK — bitwise-identical to ranking the whole
/// row at once (the shard-merge argument in DESIGN.md "Sharding").
///
/// This is how the matrix-backed engines (--engine=blind|community, whose
/// scores have no persistent index) honor --shards N: the matrix is built
/// once over the full universe, and only candidate SELECTION is sharded.
/// With num_shards == 1 it degenerates to exactly DenseCandidateSource
/// behavior. The matrix must outlive this object; rows must be uniform
/// length.
class MatrixShardedSource final : public CandidateSource {
 public:
  /// num_shards must be >= 1 (clamped to the universe size internally the
  /// same way ComputeShardRanges splits small universes).
  MatrixShardedSource(const std::vector<std::vector<double>>& matrix,
                      int num_shards);

  int num_anonymized() const override;
  int num_auxiliary() const override;
  double Score(NodeId u, NodeId v) const override;
  const std::vector<double>& Row(NodeId u,
                                 std::vector<double>* scratch) const override;
  StatusOr<CandidateSets> TopK(int k, int num_threads) const override;
  /// Exposed so graph-matching selection (inherently global) still works.
  const std::vector<std::vector<double>>* DenseMatrix() const override;

  int num_shards() const { return static_cast<int>(ranges_.size()); }

 private:
  const std::vector<std::vector<double>>* matrix_;
  std::vector<ShardRange> ranges_;
};

}  // namespace dehealth

#endif  // DEHEALTH_SHARD_MATRIX_SHARDED_SOURCE_H_
