#ifndef DEHEALTH_SHARD_PARTITION_H_
#define DEHEALTH_SHARD_PARTITION_H_

#include <string>
#include <vector>

namespace dehealth {

/// One shard's contiguous auxiliary-id range [begin, end). The partition
/// invariant every sharded path relies on: ranges are disjoint, ordered,
/// and cover [0, total) exactly — so global id v lives in precisely one
/// shard, at local id v - begin (see DESIGN.md "Sharding").
struct ShardRange {
  int begin = 0;
  int end = 0;
  int size() const { return end - begin; }
};

/// Splits [0, total) into `num_shards` near-equal contiguous ranges: the
/// first total % num_shards shards get one extra user. Deterministic, so
/// every process (CLI, backends, router, bench) derives the same partition
/// from (total, num_shards) alone — no partition map is ever persisted or
/// exchanged. num_shards < 1 is treated as 1; shards beyond `total` come
/// back empty.
std::vector<ShardRange> ComputeShardRanges(int total, int num_shards);

/// Snapshot path of shard i of n derived from the unsharded snapshot path:
/// a trailing ".dhix" is stripped and ".shard-<i>-of-<n>.dhix" appended
/// (so "aux.dhix" → "aux.shard-0-of-3.dhix"). Empty `base` stays empty
/// (persistence off).
std::string ShardSnapshotPath(const std::string& base, int shard_index,
                              int shard_count);

}  // namespace dehealth

#endif  // DEHEALTH_SHARD_PARTITION_H_
