#ifndef DEHEALTH_SHARD_ROLLOUT_H_
#define DEHEALTH_SHARD_ROLLOUT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/client.h"
#include "shard/router.h"

namespace dehealth {

/// One fleet-wide rolling ingestion pass (dehealth_ingest rollout).
struct RolloutOptions {
  /// DHSG segment paths pushed to every backend, in order. Paths are on
  /// the BACKENDS' filesystem (kLoadSegment semantics). May be empty —
  /// a seal-only rollout re-seals whatever each backend has staged.
  std::vector<std::string> segments;
  /// Seal after loading (the epoch swap). false stages only.
  bool seal = true;
  /// Tolerate divergent (epoch_seq, fingerprint) after a group or the
  /// fleet converges — downgraded to a stderr warning. Without it the
  /// driver fails the rollout at the first replica that lands somewhere
  /// its siblings did not (e.g. a backend that had extra segments
  /// staged), leaving the fleet for the operator to reconcile.
  bool allow_epoch_skew = false;
  /// Per-backend connect retry (serve/client.h semantics). Admin ops
  /// themselves are never retried — kLoadSegment/kSealEpoch mutate state.
  RetryPolicy retry;
};

struct RolloutGroupReport {
  int replicas = 0;
  /// Where every replica of the group landed (post-verification).
  uint64_t epoch_seq = 0;
  uint64_t universe_fingerprint = 0;
};

struct RolloutReport {
  std::vector<RolloutGroupReport> groups;
  int segments_loaded = 0;  // across all replicas
  int seals = 0;
};

/// Drives a rolling ingestion across a replicated fleet: group by group,
/// replica by replica, push every segment (kLoadSegment) and seal
/// (kSealEpoch), then verify the group CONVERGED — every replica at the
/// same epoch_seq and universe fingerprint — before touching the next
/// group. A replica group therefore serves mixed epochs only inside its
/// own rollout window; a router pointed at the fleet needs
/// --allow-epoch-skew exactly for that window, never across it. After the
/// last group the same convergence check runs fleet-wide.
///
/// Fail-closed: any unreachable replica, refused segment, or
/// post-group divergence (without options.allow_epoch_skew) aborts with
/// the offending backend named and the already-converged groups left
/// sealed. Recovery is manual by design — a backend's parent-fingerprint
/// check refuses a re-pushed segment it already applied, so the operator
/// reconciles the named backend (usually: restart it at the group's
/// snapshot) and reruns; the driver never guesses which replica is the
/// stale one.
///
/// Increments dehealth_replica_rollout_seals_total (Registry::Global())
/// once per successful kSealEpoch.
StatusOr<RolloutReport> RunRollout(
    const std::vector<std::vector<BackendAddress>>& groups,
    const RolloutOptions& options);

}  // namespace dehealth

#endif  // DEHEALTH_SHARD_ROLLOUT_H_
