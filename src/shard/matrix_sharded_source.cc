#include "shard/matrix_sharded_source.h"

#include <algorithm>

#include "common/parallel.h"

namespace dehealth {

MatrixShardedSource::MatrixShardedSource(
    const std::vector<std::vector<double>>& matrix, int num_shards)
    : matrix_(&matrix) {
  const int n2 = matrix.empty() ? 0 : static_cast<int>(matrix.front().size());
  ranges_ = ComputeShardRanges(n2, num_shards);
}

int MatrixShardedSource::num_anonymized() const {
  return static_cast<int>(matrix_->size());
}

int MatrixShardedSource::num_auxiliary() const {
  return matrix_->empty() ? 0 : static_cast<int>(matrix_->front().size());
}

double MatrixShardedSource::Score(NodeId u, NodeId v) const {
  return (*matrix_)[static_cast<size_t>(u)][static_cast<size_t>(v)];
}

const std::vector<double>& MatrixShardedSource::Row(
    NodeId u, std::vector<double>* /*scratch*/) const {
  return (*matrix_)[static_cast<size_t>(u)];
}

StatusOr<CandidateSets> MatrixShardedSource::TopK(int k,
                                                  int num_threads) const {
  if (k < 1)
    return Status::InvalidArgument("MatrixShardedSource::TopK: k must be >= 1");
  const int n1 = num_anonymized();
  CandidateSets result(static_cast<size_t>(n1));
  // Row-parallel like every other Top-K path; inside a row, each shard
  // ranks its column range locally and MergeScoredTopK rebuilds the
  // global order — proven bitwise-identical to ranking the whole row
  // (any global Top-K member is in its own shard's local Top-K).
  ParallelFor(
      0, n1,
      [&](int64_t u) {
        const std::vector<double>& row = (*matrix_)[static_cast<size_t>(u)];
        std::vector<std::vector<ScoredUser>> per_shard(ranges_.size());
        for (size_t s = 0; s < ranges_.size(); ++s) {
          const ShardRange& range = ranges_[s];
          std::vector<double> local(row.begin() + range.begin,
                                    row.begin() + range.end);
          if (local.empty()) continue;
          const std::vector<int> local_ids = TopKForRow(local, k);
          std::vector<ScoredUser>& scored = per_shard[s];
          scored.reserve(local_ids.size());
          for (int id : local_ids)
            scored.push_back(
                {local[static_cast<size_t>(id)], id + range.begin});
        }
        const std::vector<ScoredUser> merged = MergeScoredTopK(per_shard, k);
        std::vector<int>& out = result[static_cast<size_t>(u)];
        out.reserve(merged.size());
        for (const ScoredUser& su : merged) out.push_back(su.user);
      },
      num_threads);
  return result;
}

const std::vector<std::vector<double>>* MatrixShardedSource::DenseMatrix()
    const {
  return matrix_;
}

}  // namespace dehealth
