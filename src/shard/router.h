#ifndef DEHEALTH_SHARD_ROUTER_H_
#define DEHEALTH_SHARD_ROUTER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/standard_metrics.h"
#include "serve/client.h"
#include "serve/handler.h"
#include "serve/protocol.h"

namespace dehealth {

/// One downstream dehealth_serve instance, addressed host:port.
struct BackendAddress {
  std::string host;
  int port = 0;
};

/// Parses a comma-separated "host:port,host:port,..." list (what
/// dehealth_router's --backends flag carries). A bare "host" is rejected —
/// every backend needs an explicit port.
StatusOr<std::vector<BackendAddress>> ParseBackendList(
    const std::string& spec);

struct RouterOptions {
  /// Per-backend connect + round-trip retry (serve/client.h semantics).
  RetryPolicy retry;
  /// Fail-closed mode: any unreachable shard makes the whole query
  /// Unavailable. Default is graceful degradation — answers merged from
  /// the reachable shards go out as kPartial frames.
  bool require_all_shards = false;
  /// Streaming ingestion: by default Connect refuses a fleet whose
  /// backends report different epoch_seq values — mixed epochs mean the
  /// backends sealed different segment chains and serve different logical
  /// forums (the universe-fingerprint check would usually also fire, but
  /// epoch skew is the actionable diagnosis). --allow-epoch-skew downgrades
  /// the refusal to a stderr warning for mid-rollout fleets.
  bool allow_epoch_skew = false;
  /// Registry the shard scatter/merge metrics record into; nullptr binds
  /// Registry::Global().
  obs::Registry* registry = nullptr;
};

/// The scatter-gather head of a sharded serving fleet: a QueryHandler that
/// answers Top-K by fanning the query out to N dehealth_serve backends
/// (each holding one contiguous slice of the auxiliary universe, started
/// with --shard-index/--shard-count) and merging the per-shard scored
/// heaps with MergeScoredTopK — bitwise-identical to one unsharded server
/// (see DESIGN.md "Sharding"). Plugged into QueryServer, it speaks plain
/// DHQP upstream, so dehealth_query and QueryClient work against a router
/// unchanged.
///
/// Connect() is fail-closed on topology: it requires every backend
/// reachable and their ShardInfo answers to form exactly one canonical
/// partition (ComputeShardRanges) of one universe — same fingerprint, same
/// anonymized side, same default K, shard indices covering 0..N-1. After
/// that, a backend dying mid-service degrades per require_all_shards;
/// reconnection is automatic on later queries (client-side retry).
///
/// Refine/Filtered are refused (Unimplemented): both phases need
/// universe-global state no slice holds. Route those to an unsharded
/// server.
class RouterHandler final : public QueryHandler {
 public:
  /// Connects to every backend and validates the fleet topology.
  static StatusOr<std::unique_ptr<RouterHandler>> Connect(
      const std::vector<BackendAddress>& backends, RouterOptions options);

  int num_anonymized() const override { return num_anonymized_; }
  int default_top_k() const override { return default_top_k_; }

  StatusOr<TopKAnswer> TopK(const std::vector<int>& users,
                            int k) const override;
  StatusOr<ScoredTopKAnswer> TopKScored(const std::vector<int>& users,
                                        int k) const override;
  StatusOr<RefinedAnswer> Refine(const std::vector<int>& users) const override;
  StatusOr<FilteredAnswer> Filtered(
      const std::vector<int>& users) const override;

  /// The merged universe: the router presents itself as shard 0 of 1.
  ShardInfoAnswer ShardInfo() const override;

  /// Forwarded kMetrics scrape: connects to every backend (fresh admin
  /// connections — the scatter clients belong to the executor thread and
  /// this runs on reader threads), pulls its Prometheus render, and
  /// re-exports the `dehealth_ingest_*` lines labeled {backend="i"}, plus
  /// per-backend epoch/staged-segment gauges in the router's own registry.
  /// An unreachable backend becomes a comment line, never an error — a
  /// scrape must not fail because one shard is mid-restart.
  std::string ForwardedMetrics() const override;

  int num_backends() const { return static_cast<int>(backends_.size()); }
  uint64_t universe_size() const { return universe_size_; }
  uint64_t epoch_seq() const { return epoch_seq_; }

 private:
  struct Backend {
    BackendAddress address;
    ShardInfoAnswer info;
    /// Mutated by const query methods (round-trips); safe because queries
    /// run on the server's single executor thread and each ParallelFor
    /// scatter task touches exactly one backend.
    mutable QueryClient client;
    mutable obs::Histogram* latency = nullptr;  // per-backend, router registry
    mutable obs::Gauge* epoch_seq = nullptr;
    mutable obs::Gauge* staged_segments = nullptr;
  };

  RouterHandler(std::vector<Backend> backends, RouterOptions options);

  /// Backends ordered by shard_index == position (validated by Connect).
  std::vector<Backend> backends_;
  RouterOptions options_;
  obs::ShardMetrics metrics_;
  /// Serializes ForwardedMetrics scrapes (reader threads).
  mutable std::mutex scrape_mutex_;
  int num_anonymized_ = 0;
  int default_top_k_ = 0;
  uint64_t universe_size_ = 0;
  uint64_t universe_fingerprint_ = 0;
  /// The fleet's epoch at connect time (backends agree, or
  /// allow_epoch_skew accepted the max with a warning).
  uint64_t epoch_seq_ = 0;
};

}  // namespace dehealth

#endif  // DEHEALTH_SHARD_ROUTER_H_
