#ifndef DEHEALTH_SHARD_ROUTER_H_
#define DEHEALTH_SHARD_ROUTER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/standard_metrics.h"
#include "serve/client.h"
#include "serve/handler.h"
#include "serve/protocol.h"
#include "shard/health.h"

namespace dehealth {

/// One downstream dehealth_serve instance, addressed host:port.
struct BackendAddress {
  std::string host;
  int port = 0;
};

/// Parses a comma-separated "host:port,host:port,..." list (what
/// dehealth_router's --backends flag carried before replica groups). A
/// bare "host" is rejected — every backend needs an explicit port.
StatusOr<std::vector<BackendAddress>> ParseBackendList(
    const std::string& spec);

/// Parses a replicated fleet spec: ',' separates shard groups, '|'
/// separates replicas within a group —
///   "a:1|b:1,c:1|d:1"  = 2 shards, 2 replicas each
///   "a:1,b:1"          = 2 shards, unreplicated (PR 7 spec, unchanged)
/// Every group must be non-empty; replica counts may differ per group (a
/// fleet mid-expansion is legal).
StatusOr<std::vector<std::vector<BackendAddress>>> ParseBackendGroups(
    const std::string& spec);

struct RouterOptions {
  /// Per-backend connect + round-trip retry (serve/client.h semantics).
  RetryPolicy retry;
  /// Fail-closed mode: any shard group with no answering replica makes
  /// the whole query Unavailable. Default is graceful degradation —
  /// answers merged from the reachable shards go out as kPartial frames.
  bool require_all_shards = false;
  /// Streaming ingestion: by default Connect refuses a fleet whose
  /// backends report different epoch_seq values — mixed epochs mean the
  /// backends sealed different segment chains and serve different logical
  /// forums (the universe-fingerprint check would usually also fire, but
  /// epoch skew is the actionable diagnosis). --allow-epoch-skew downgrades
  /// the refusal to a stderr warning for mid-rollout fleets.
  bool allow_epoch_skew = false;
  /// Hedged reads: when > 0 and a scatter leg's primary replica has not
  /// answered within this many ms, the leg fires the same request at a
  /// healthy sibling replica and takes whichever answer lands first (the
  /// loser is cancelled). 0 disables hedging. Replicas are verified
  /// bitwise-identical at connect, so the two answers are interchangeable
  /// and merged output stays deterministic.
  int hedge_ms = 0;
  /// Ejection threshold + probe-and-readmit schedule (shard/health.h).
  HealthPolicy health;
  /// Registry the shard scatter/merge metrics record into; nullptr binds
  /// Registry::Global().
  obs::Registry* registry = nullptr;
};

/// The scatter-gather head of a sharded serving fleet: a QueryHandler that
/// answers Top-K by fanning the query out to N shard groups of
/// dehealth_serve backends (each group holding one contiguous slice of the
/// auxiliary universe, its replicas bitwise-identical copies) and merging
/// the per-shard scored heaps with MergeScoredTopK — bitwise-identical to
/// one unsharded server (see DESIGN.md "Sharding"). Plugged into
/// QueryServer, it speaks plain DHQP upstream, so dehealth_query and
/// QueryClient work against a router unchanged.
///
/// Connect() is fail-closed on topology: it requires every backend
/// reachable, the groups' ShardInfo answers to form exactly one canonical
/// partition (ComputeShardRanges) of one universe — same fingerprint, same
/// anonymized side, same default K, shard indices covering 0..N-1 — and
/// the replicas within each group to agree on all of it (a replica serving
/// a different epoch than its siblings is a rollout mid-flight; only
/// --allow-epoch-skew serves through that).
///
/// After connect, each scatter leg walks its group's replicas in
/// health-tracked round-robin order and fails over to a sibling before the
/// gather ever sees the leg as down; a replica that keeps failing is
/// ejected and re-admitted by jittered-backoff kShardInfo probes. Only
/// when every replica of a group is unreachable does the answer degrade
/// per require_all_shards.
///
/// Refine/Filtered are refused (Unimplemented): both phases need
/// universe-global state no slice holds. Route those to an unsharded
/// server.
class RouterHandler final : public QueryHandler {
 public:
  /// Connects to every backend and validates the fleet topology.
  static StatusOr<std::unique_ptr<RouterHandler>> Connect(
      const std::vector<std::vector<BackendAddress>>& groups,
      RouterOptions options);

  /// Unreplicated convenience overload: each backend is its own group.
  static StatusOr<std::unique_ptr<RouterHandler>> Connect(
      const std::vector<BackendAddress>& backends, RouterOptions options);

  int num_anonymized() const override { return num_anonymized_; }
  int default_top_k() const override { return default_top_k_; }

  StatusOr<TopKAnswer> TopK(const std::vector<int>& users,
                            int k) const override;
  StatusOr<ScoredTopKAnswer> TopKScored(const std::vector<int>& users,
                                        int k) const override;
  StatusOr<RefinedAnswer> Refine(const std::vector<int>& users) const override;
  StatusOr<FilteredAnswer> Filtered(
      const std::vector<int>& users) const override;

  /// The merged universe: the router presents itself as shard 0 of 1.
  ShardInfoAnswer ShardInfo() const override;

  /// Forwarded kMetrics scrape: connects to every backend (fresh admin
  /// connections — the scatter clients belong to the executor thread and
  /// this runs on reader threads), pulls its Prometheus render, and
  /// re-exports the `dehealth_ingest_*` lines labeled {backend="g.r"}
  /// (shard group g, replica r), plus per-backend epoch/staged-segment
  /// gauges in the router's own registry. An unreachable backend becomes a
  /// comment line, never an error — a scrape must not fail because one
  /// replica is mid-restart.
  std::string ForwardedMetrics() const override;

  int num_groups() const { return static_cast<int>(groups_.size()); }
  int group_size(int group) const {
    return static_cast<int>(groups_[static_cast<size_t>(group)].size());
  }
  /// Total backends across every group.
  int num_backends() const;
  uint64_t universe_size() const { return universe_size_; }
  uint64_t epoch_seq() const { return epoch_seq_; }

  /// Whether (group, replica) is currently admitted by the health tracker
  /// (exposed for tests and the --print-topology banner).
  bool replica_healthy(int group, int replica) const {
    return health_->healthy(group, replica);
  }

 private:
  struct Backend {
    BackendAddress address;
    /// Refreshed by a successful probe (const query path, executor
    /// thread only).
    mutable ShardInfoAnswer info;
    /// Mutated by const query methods (round-trips); safe because queries
    /// run on the server's single executor thread and each ParallelFor
    /// scatter task touches exactly one group's backends. The hedge helper
    /// thread (when hedging) owns the PRIMARY replica's client for the
    /// duration of the leg while the task thread drives the sibling's.
    mutable QueryClient client;
    mutable obs::Histogram* latency = nullptr;  // per-backend, router registry
    mutable obs::Gauge* epoch_seq = nullptr;
    mutable obs::Gauge* staged_segments = nullptr;
  };

  RouterHandler(std::vector<std::vector<Backend>> groups,
                RouterOptions options);

  /// Probes every ejected replica whose backoff has elapsed (fresh
  /// fail-fast kShardInfo) and re-admits the ones that answer with a
  /// ShardInfo matching the fleet. Runs at the top of each scatter, on the
  /// executor thread.
  void ProbeEjectedReplicas() const;

  /// One scatter leg: walks group `g`'s replicas in RouteOrder, hedging
  /// the first attempt when configured, failing over on transient errors.
  StatusOr<ScoredTopKAnswer> ScatterLeg(int g, const std::vector<int>& users,
                                        int k) const;

  /// The request against exactly one replica, hedged against `sibling`
  /// when sibling >= 0 and options_.hedge_ms > 0.
  StatusOr<ScoredTopKAnswer> TimedLeg(int g, int r,
                                      const std::vector<int>& users,
                                      int k) const;
  StatusOr<ScoredTopKAnswer> HedgedLeg(int g, int primary, int sibling,
                                       const std::vector<int>& users,
                                       int k) const;

  /// Health-tracker recording + the readmission/ejection counters and the
  /// healthy-backends gauge, in one place.
  void NoteSuccess(int g, int r) const;
  void NoteFailure(int g, int r) const;

  /// Groups ordered by shard_index == position (validated by Connect).
  std::vector<std::vector<Backend>> groups_;
  RouterOptions options_;
  obs::ShardMetrics metrics_;
  obs::ReplicaMetrics replica_metrics_;
  std::unique_ptr<HealthTracker> health_;
  /// Serializes ForwardedMetrics scrapes (reader threads).
  mutable std::mutex scrape_mutex_;
  int num_anonymized_ = 0;
  int default_top_k_ = 0;
  uint64_t universe_size_ = 0;
  uint64_t universe_fingerprint_ = 0;
  /// The fleet's epoch at connect time (backends agree, or
  /// allow_epoch_skew accepted the max with a warning).
  uint64_t epoch_seq_ = 0;
};

}  // namespace dehealth

#endif  // DEHEALTH_SHARD_ROUTER_H_
