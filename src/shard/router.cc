#include "shard/router.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <mutex>
#include <utility>

#include "common/fault_injection.h"
#include "common/parallel.h"
#include "core/top_k.h"
#include "shard/partition.h"

namespace dehealth {

namespace {

double ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Per-backend latency histogram in the router's registry. The MetricDef
/// strings are leaked once per (registry, backend index) — registries keep
/// the def by pointer and must outlive every render.
obs::Histogram* BackendLatencyHistogram(obs::Registry& registry, int index) {
  auto* name = new std::string("dehealth_shard_backend" +
                               std::to_string(index) + "_latency_micros");
  auto* help = new std::string(
      "Round-trip latency of scatter RPCs to shard backend " +
      std::to_string(index));
  obs::MetricDef def{name->c_str(), obs::MetricType::kHistogram, "us",
                     "shard", help->c_str()};
  return registry.GetHistogram(def);
}

/// Per-backend gauge, same leaked-def pattern as the latency histogram.
obs::Gauge* BackendGauge(obs::Registry& registry, int index,
                         const std::string& what, const std::string& help) {
  auto* name = new std::string("dehealth_shard_backend" +
                               std::to_string(index) + "_" + what);
  auto* help_text =
      new std::string(help + " of shard backend " + std::to_string(index));
  obs::MetricDef def{name->c_str(), obs::MetricType::kGauge, "1", "shard",
                     help_text->c_str()};
  return registry.GetGauge(def);
}

/// Re-labels one Prometheus sample line with {backend="i"} — inserted into
/// an existing label set when the sample already carries one.
std::string LabelSample(const std::string& line, size_t backend) {
  const std::string label = "backend=\"" + std::to_string(backend) + "\"";
  const size_t brace = line.find('{');
  const size_t space = line.find(' ');
  if (brace != std::string::npos && (space == std::string::npos ||
                                     brace < space))
    return line.substr(0, brace + 1) + label + "," + line.substr(brace + 1);
  if (space == std::string::npos) return line;  // malformed; pass through
  return line.substr(0, space) + "{" + label + "}" + line.substr(space);
}

}  // namespace

StatusOr<std::vector<BackendAddress>> ParseBackendList(
    const std::string& spec) {
  std::vector<BackendAddress> backends;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty())
      return Status::InvalidArgument(
          "--backends: empty entry in \"" + spec + "\"");
    const size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == entry.size())
      return Status::InvalidArgument(
          "--backends: \"" + entry + "\" is not host:port");
    int port = 0;
    for (size_t i = colon + 1; i < entry.size(); ++i) {
      const char c = entry[i];
      if (c < '0' || c > '9')
        return Status::InvalidArgument(
            "--backends: bad port in \"" + entry + "\"");
      port = port * 10 + (c - '0');
      if (port > 65535)
        return Status::InvalidArgument(
            "--backends: port out of range in \"" + entry + "\"");
    }
    if (port < 1)
      return Status::InvalidArgument(
          "--backends: port must be >= 1 in \"" + entry + "\"");
    backends.push_back(BackendAddress{entry.substr(0, colon), port});
  }
  if (backends.empty())
    return Status::InvalidArgument("--backends: no backends listed");
  return backends;
}

RouterHandler::RouterHandler(std::vector<Backend> backends,
                             RouterOptions options)
    : backends_(std::move(backends)), options_(options) {
  obs::Registry& registry =
      options_.registry != nullptr ? *options_.registry
                                   : obs::Registry::Global();
  metrics_ = obs::BindShardMetrics(registry);
  for (size_t i = 0; i < backends_.size(); ++i) {
    backends_[i].latency =
        BackendLatencyHistogram(registry, static_cast<int>(i));
    backends_[i].epoch_seq = BackendGauge(
        registry, static_cast<int>(i), "epoch_seq", "Ingest epoch sequence");
    backends_[i].staged_segments =
        BackendGauge(registry, static_cast<int>(i), "staged_segments",
                     "Unsealed staged delta segments");
    backends_[i].epoch_seq->Set(
        static_cast<int64_t>(backends_[i].info.epoch_seq));
    backends_[i].staged_segments->Set(
        static_cast<int64_t>(backends_[i].info.staged_segments));
    epoch_seq_ = std::max(epoch_seq_, backends_[i].info.epoch_seq);
  }
  num_anonymized_ =
      static_cast<int>(backends_.front().info.num_anonymized);
  default_top_k_ = static_cast<int>(backends_.front().info.default_top_k);
  universe_size_ = backends_.front().info.shard_total;
  universe_fingerprint_ = backends_.front().info.universe_fingerprint;
}

StatusOr<std::unique_ptr<RouterHandler>> RouterHandler::Connect(
    const std::vector<BackendAddress>& backends, RouterOptions options) {
  if (backends.empty())
    return Status::InvalidArgument("RouterHandler: no backends");
  const int n = static_cast<int>(backends.size());

  // Connect + interrogate every backend. Topology validation is
  // fail-closed regardless of require_all_shards: a router that cannot
  // see the whole fleet cannot prove the fleet is one universe.
  std::vector<bool> claimed(static_cast<size_t>(n), false);
  std::vector<std::pair<ShardInfoAnswer, QueryClient>> connected;
  connected.reserve(backends.size());
  for (const BackendAddress& address : backends) {
    const std::string where =
        address.host + ":" + std::to_string(address.port);
    StatusOr<QueryClient> client =
        QueryClient::Connect(address.host, address.port, options.retry);
    if (!client.ok())
      return Status(client.status().code(),
                    "RouterHandler: backend " + where +
                        " unreachable: " + client.status().message());
    StatusOr<ShardInfoAnswer> info = client->ShardInfo();
    if (!info.ok())
      return Status(info.status().code(),
                    "RouterHandler: backend " + where +
                        " shard-info failed: " + info.status().message());
    connected.emplace_back(*info, std::move(client).value());
  }

  // One canonical partition of one universe, or nothing.
  const ShardInfoAnswer& head = connected.front().first;
  if (head.shard_total >
      static_cast<uint64_t>(std::numeric_limits<int>::max()))
    return Status::InvalidArgument(
        "RouterHandler: universe too large for int ids");
  const std::vector<ShardRange> ranges =
      ComputeShardRanges(static_cast<int>(head.shard_total), n);
  // (shard index, backend), sorted into shard order once validated.
  std::vector<std::pair<size_t, Backend>> tagged;
  tagged.reserve(connected.size());
  for (size_t b = 0; b < connected.size(); ++b) {
    const ShardInfoAnswer& info = connected[b].first;
    const std::string where = backends[b].host + ":" +
                              std::to_string(backends[b].port);
    if (static_cast<int>(info.shard_count) != n)
      return Status::FailedPrecondition(
          "RouterHandler: backend " + where + " is shard " +
          std::to_string(info.shard_index) + " of " +
          std::to_string(info.shard_count) + ", but " +
          std::to_string(n) + " backends are configured");
    if (info.shard_total != head.shard_total)
      return Status::FailedPrecondition(
          "RouterHandler: backend " + where +
          " serves a different-sized auxiliary universe — refusing to "
          "merge (scatter ranges would not partition either universe)");
    if (info.universe_fingerprint != head.universe_fingerprint) {
      // Sealing an ingest epoch rewrites the aux content, so a fleet
      // mid-rollout legitimately shows mixed fingerprints at equal size.
      // Only --allow-epoch-skew accepts that; the merged answers are then
      // transitional, not bitwise-reproducible.
      if (!options.allow_epoch_skew)
        return Status::FailedPrecondition(
            "RouterHandler: backend " + where +
            " serves a different auxiliary universe (fingerprint "
            "mismatch) — refusing to merge (pass --allow-epoch-skew if "
            "this fleet is mid-epoch-rollout)");
      std::fprintf(stderr,
                   "[dehealth_router] warning: backend %s universe "
                   "fingerprint differs from the first backend "
                   "(--allow-epoch-skew; merged answers are transitional)\n",
                   where.c_str());
    }
    if (info.num_anonymized != head.num_anonymized)
      return Status::FailedPrecondition(
          "RouterHandler: backend " + where +
          " serves a different anonymized dataset");
    if (info.default_top_k != head.default_top_k)
      return Status::FailedPrecondition(
          "RouterHandler: backend " + where +
          " is configured with a different default K");
    // Mixed ingest epochs mean the backends sealed different segment
    // chains — different logical forums. The fingerprint check above
    // usually fires first (sealing changes the universe fingerprint), but
    // epoch_seq names the actionable condition: a rollout mid-flight.
    if (info.epoch_seq != head.epoch_seq) {
      const std::string skew =
          "RouterHandler: backend " + where + " is at ingest epoch " +
          std::to_string(info.epoch_seq) + " but the first backend is at " +
          std::to_string(head.epoch_seq);
      if (!options.allow_epoch_skew)
        return Status::FailedPrecondition(
            skew + " — mixed-epoch fleet refused (pass --allow-epoch-skew "
                   "to serve through a rollout)");
      std::fprintf(stderr, "[dehealth_router] warning: %s "
                           "(--allow-epoch-skew)\n", skew.c_str());
    }
    const size_t index = info.shard_index;
    if (index >= static_cast<size_t>(n) || claimed[index])
      return Status::FailedPrecondition(
          "RouterHandler: backend " + where + " claims shard " +
          std::to_string(info.shard_index) +
          (index < static_cast<size_t>(n) ? ", already claimed"
                                          : ", out of range"));
    if (info.shard_begin != static_cast<uint64_t>(ranges[index].begin))
      return Status::FailedPrecondition(
          "RouterHandler: backend " + where + " starts at auxiliary id " +
          std::to_string(info.shard_begin) + "; the canonical shard " +
          std::to_string(info.shard_index) + " of " + std::to_string(n) +
          " starts at " + std::to_string(ranges[index].begin));
    claimed[index] = true;
    tagged.emplace_back(
        index, Backend{backends[b], info, std::move(connected[b].second),
                       nullptr});
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Backend> ordered;
  ordered.reserve(tagged.size());
  for (auto& [index, backend] : tagged) {
    (void)index;
    ordered.push_back(std::move(backend));
  }

  return std::unique_ptr<RouterHandler>(
      new RouterHandler(std::move(ordered), options));
}

StatusOr<ScoredTopKAnswer> RouterHandler::TopKScored(
    const std::vector<int>& users, int k) const {
  if (k == 0) k = default_top_k_;
  if (k < 1)
    return Status::InvalidArgument("RouterHandler: k must be >= 1");
  const size_t n = backends_.size();

  // Scatter: one RPC per backend, concurrently (each task owns exactly
  // one backend's client, so the ParallelFor write-your-own-slot contract
  // holds). The request carries the caller's k verbatim — every backend
  // resolves 0 to the same validated default.
  std::vector<StatusOr<ScoredTopKAnswer>> answers(
      n, StatusOr<ScoredTopKAnswer>(Status::Internal("not scattered")));
  metrics_.scatter_rpcs->Increment(n);
  ParallelFor(0, static_cast<int64_t>(n), [&](int64_t i) {
    const Backend& backend = backends_[static_cast<size_t>(i)];
    Status fault = InjectFaultPoint("router.scatter");
    if (!fault.ok()) {
      answers[static_cast<size_t>(i)] = fault;
      return;
    }
    const auto start = std::chrono::steady_clock::now();
    answers[static_cast<size_t>(i)] = backend.client.TopKScored(users, k);
    const double micros = ElapsedMicros(start);
    backend.latency->Record(micros);
    metrics_.backend_latency->Record(micros);
  });

  // Gather: a shard that stayed unreachable through the client's retry
  // policy (Unavailable) degrades the answer; any other error is the
  // query's own fault (bad ids, wrong k for the selection mode) and every
  // shard would agree, so it propagates as-is.
  std::vector<const ScoredTopKAnswer*> live;
  live.reserve(n);
  bool partial = false;
  for (size_t i = 0; i < n; ++i) {
    if (answers[i].ok()) {
      if (answers[i]->candidates.size() != users.size())
        return Status::Internal(
            "RouterHandler: shard " + std::to_string(i) +
            " answered " + std::to_string(answers[i]->candidates.size()) +
            " lists for " + std::to_string(users.size()) + " users");
      partial |= answers[i]->partial;
      live.push_back(&*answers[i]);
      continue;
    }
    const Status& error = answers[i].status();
    if (error.code() != StatusCode::kUnavailable) return error;
    metrics_.scatter_failures->Increment();
    if (options_.require_all_shards)
      return Status::Unavailable(
          "RouterHandler: shard " + std::to_string(i) + " (" +
          backends_[i].address.host + ":" +
          std::to_string(backends_[i].address.port) +
          ") is down and --require-all-shards is set: " + error.message());
    partial = true;
  }
  if (live.empty())
    return Status::Unavailable("RouterHandler: all " + std::to_string(n) +
                               " shards are down");

  DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("router.merge"));
  const auto merge_start = std::chrono::steady_clock::now();
  ScoredTopKAnswer merged;
  merged.partial = partial;
  merged.candidates.reserve(users.size());
  std::vector<std::vector<ScoredUser>> per_shard(live.size());
  for (size_t u = 0; u < users.size(); ++u) {
    for (size_t s = 0; s < live.size(); ++s)
      per_shard[s] = live[s]->candidates[u];
    merged.candidates.push_back(MergeScoredTopK(per_shard, k));
  }
  metrics_.merge_micros->Record(ElapsedMicros(merge_start));
  if (partial) metrics_.partial_answers->Increment();
  return merged;
}

StatusOr<TopKAnswer> RouterHandler::TopK(const std::vector<int>& users,
                                         int k) const {
  StatusOr<ScoredTopKAnswer> scored = TopKScored(users, k);
  if (!scored.ok()) return scored.status();
  TopKAnswer answer;
  answer.partial = scored->partial;
  answer.candidates.reserve(scored->candidates.size());
  for (const std::vector<ScoredUser>& list : scored->candidates) {
    std::vector<int> ids;
    ids.reserve(list.size());
    for (const ScoredUser& c : list) ids.push_back(c.user);
    answer.candidates.push_back(std::move(ids));
  }
  return answer;
}

StatusOr<RefinedAnswer> RouterHandler::Refine(
    const std::vector<int>& users) const {
  (void)users;
  return Status::Unimplemented(
      "RouterHandler: refined DA needs universe-global training state no "
      "shard holds; query an unsharded dehealth_serve instead");
}

StatusOr<FilteredAnswer> RouterHandler::Filtered(
    const std::vector<int>& users) const {
  (void)users;
  return Status::Unimplemented(
      "RouterHandler: filtering thresholds are universe-global; query an "
      "unsharded dehealth_serve instead");
}

ShardInfoAnswer RouterHandler::ShardInfo() const {
  // Upstream, the router IS the (whole) universe: shard 0 of 1.
  ShardInfoAnswer info;
  info.shard_index = 0;
  info.shard_count = 1;
  info.shard_begin = 0;
  info.shard_total = universe_size_;
  info.universe_fingerprint = universe_fingerprint_;
  info.num_anonymized = static_cast<uint64_t>(num_anonymized_);
  info.default_top_k = static_cast<uint64_t>(default_top_k_);
  info.epoch_seq = epoch_seq_;
  return info;
}

std::string RouterHandler::ForwardedMetrics() const {
  std::lock_guard<std::mutex> lock(scrape_mutex_);
  std::string out = "# router: per-backend ingest metrics (label backend=shard index)\n";
  bool described = false;
  for (size_t i = 0; i < backends_.size(); ++i) {
    const Backend& backend = backends_[i];
    const std::string where = backend.address.host + ":" +
                              std::to_string(backend.address.port);
    // Fresh fail-fast connection per scrape: the scatter client belongs to
    // the executor thread, and a scrape must not stall behind retry
    // backoff while a shard restarts.
    RetryPolicy fail_fast;
    StatusOr<QueryClient> client = QueryClient::Connect(
        backend.address.host, backend.address.port, fail_fast);
    if (!client.ok()) {
      out += "# backend " + std::to_string(i) + " (" + where +
             ") unreachable: " + client.status().message() + "\n";
      continue;
    }
    StatusOr<ShardInfoAnswer> info = client->ShardInfo();
    if (info.ok()) {
      backend.epoch_seq->Set(static_cast<int64_t>(info->epoch_seq));
      backend.staged_segments->Set(
          static_cast<int64_t>(info->staged_segments));
    }
    StatusOr<std::string> render = client->Metrics();
    if (!render.ok()) {
      out += "# backend " + std::to_string(i) + " (" + where +
             ") scrape failed: " + render.status().message() + "\n";
      continue;
    }
    // Re-export only the ingest subsystem, labeled per backend. HELP/TYPE
    // headers come from the first backend that renders them — every
    // backend shares the metric definitions.
    size_t pos = 0;
    while (pos < render->size()) {
      size_t end = render->find('\n', pos);
      if (end == std::string::npos) end = render->size();
      const std::string line = render->substr(pos, end - pos);
      pos = end + 1;
      if (line.rfind("dehealth_ingest_", 0) == 0) {
        out += LabelSample(line, i) + "\n";
      } else if (!described && line.rfind("# ", 0) == 0 &&
                 line.find(" dehealth_ingest_") != std::string::npos) {
        out += line + "\n";
      }
    }
    described = true;
  }
  return out;
}

}  // namespace dehealth
