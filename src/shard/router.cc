#include "shard/router.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "common/fault_injection.h"
#include "common/parallel.h"
#include "core/engine_kind.h"
#include "core/top_k.h"
#include "shard/partition.h"

namespace dehealth {

namespace {

double ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Names a wire engine value for an error message; unknown values (a
/// newer peer's engine) stay numeric instead of masquerading as a name.
std::string EngineLabel(uint32_t engine) {
  if (engine <= static_cast<uint32_t>(EngineKind::kCommunity))
    return EngineKindName(static_cast<EngineKind>(engine));
  return "unknown(" + std::to_string(engine) + ")";
}

/// Parses one "host:port" entry of a --backends spec.
StatusOr<BackendAddress> ParseHostPort(const std::string& entry,
                                       const std::string& spec) {
  if (entry.empty())
    return Status::InvalidArgument(
        "--backends: empty entry in \"" + spec + "\"");
  const size_t colon = entry.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == entry.size())
    return Status::InvalidArgument(
        "--backends: \"" + entry + "\" is not host:port");
  int port = 0;
  for (size_t i = colon + 1; i < entry.size(); ++i) {
    const char c = entry[i];
    if (c < '0' || c > '9')
      return Status::InvalidArgument(
          "--backends: bad port in \"" + entry + "\"");
    port = port * 10 + (c - '0');
    if (port > 65535)
      return Status::InvalidArgument(
          "--backends: port out of range in \"" + entry + "\"");
  }
  if (port < 1)
    return Status::InvalidArgument(
        "--backends: port must be >= 1 in \"" + entry + "\"");
  return BackendAddress{entry.substr(0, colon), port};
}

/// Per-backend latency histogram in the router's registry. The MetricDef
/// strings are leaked once per (registry, backend name) — registries keep
/// the def by pointer and must outlive every render.
obs::Histogram* BackendLatencyHistogram(obs::Registry& registry,
                                        const std::string& tag) {
  auto* name = new std::string("dehealth_shard_backend" + tag +
                               "_latency_micros");
  auto* help = new std::string(
      "Round-trip latency of scatter RPCs to shard backend " + tag);
  obs::MetricDef def{name->c_str(), obs::MetricType::kHistogram, "us",
                     "shard", help->c_str()};
  return registry.GetHistogram(def);
}

/// Per-backend gauge, same leaked-def pattern as the latency histogram.
obs::Gauge* BackendGauge(obs::Registry& registry, const std::string& tag,
                         const std::string& what, const std::string& help) {
  auto* name =
      new std::string("dehealth_shard_backend" + tag + "_" + what);
  auto* help_text = new std::string(help + " of shard backend " + tag);
  obs::MetricDef def{name->c_str(), obs::MetricType::kGauge, "1", "shard",
                     help_text->c_str()};
  return registry.GetGauge(def);
}

/// "g_r" — the metric-name tag of replica r of shard group g. Collapses
/// to "g" for an unreplicated group so a PR 7 fleet keeps its metric
/// names ("dehealth_shard_backend0_latency_micros" etc.) across the
/// upgrade.
std::string BackendTag(size_t group, size_t replica, size_t group_size) {
  std::string tag = std::to_string(group);
  if (group_size > 1) tag += "_" + std::to_string(replica);
  return tag;
}

/// Re-labels one Prometheus sample line with {backend="<label>"} —
/// inserted into an existing label set when the sample already carries
/// one.
std::string LabelSample(const std::string& line, const std::string& value) {
  const std::string label = "backend=\"" + value + "\"";
  const size_t brace = line.find('{');
  const size_t space = line.find(' ');
  if (brace != std::string::npos && (space == std::string::npos ||
                                     brace < space))
    return line.substr(0, brace + 1) + label + "," + line.substr(brace + 1);
  if (space == std::string::npos) return line;  // malformed; pass through
  return line.substr(0, space) + "{" + label + "}" + line.substr(space);
}

}  // namespace

StatusOr<std::vector<BackendAddress>> ParseBackendList(
    const std::string& spec) {
  std::vector<BackendAddress> backends;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    StatusOr<BackendAddress> address = ParseHostPort(entry, spec);
    if (!address.ok()) return address.status();
    backends.push_back(std::move(address).value());
  }
  if (backends.empty())
    return Status::InvalidArgument("--backends: no backends listed");
  return backends;
}

StatusOr<std::vector<std::vector<BackendAddress>>> ParseBackendGroups(
    const std::string& spec) {
  std::vector<std::vector<BackendAddress>> groups;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string group_spec = spec.substr(pos, comma - pos);
    pos = comma + 1;
    std::vector<BackendAddress> group;
    size_t gpos = 0;
    while (gpos <= group_spec.size()) {
      size_t pipe = group_spec.find('|', gpos);
      if (pipe == std::string::npos) pipe = group_spec.size();
      StatusOr<BackendAddress> address =
          ParseHostPort(group_spec.substr(gpos, pipe - gpos), spec);
      if (!address.ok()) return address.status();
      group.push_back(std::move(address).value());
      gpos = pipe + 1;
    }
    groups.push_back(std::move(group));
  }
  if (groups.empty())
    return Status::InvalidArgument("--backends: no backends listed");
  return groups;
}

RouterHandler::RouterHandler(std::vector<std::vector<Backend>> groups,
                             RouterOptions options)
    : groups_(std::move(groups)), options_(options) {
  obs::Registry& registry =
      options_.registry != nullptr ? *options_.registry
                                   : obs::Registry::Global();
  metrics_ = obs::BindShardMetrics(registry);
  replica_metrics_ = obs::BindReplicaMetrics(registry);
  std::vector<int> sizes;
  sizes.reserve(groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    sizes.push_back(static_cast<int>(groups_[g].size()));
    for (size_t r = 0; r < groups_[g].size(); ++r) {
      Backend& backend = groups_[g][r];
      const std::string tag = BackendTag(g, r, groups_[g].size());
      backend.latency = BackendLatencyHistogram(registry, tag);
      backend.epoch_seq =
          BackendGauge(registry, tag, "epoch_seq", "Ingest epoch sequence");
      backend.staged_segments =
          BackendGauge(registry, tag, "staged_segments",
                       "Unsealed staged delta segments");
      backend.epoch_seq->Set(static_cast<int64_t>(backend.info.epoch_seq));
      backend.staged_segments->Set(
          static_cast<int64_t>(backend.info.staged_segments));
      epoch_seq_ = std::max(epoch_seq_, backend.info.epoch_seq);
    }
  }
  health_ = std::make_unique<HealthTracker>(std::move(sizes),
                                            options_.health);
  replica_metrics_.healthy_backends->Set(health_->healthy_count());
  const ShardInfoAnswer& head = groups_.front().front().info;
  num_anonymized_ = static_cast<int>(head.num_anonymized);
  default_top_k_ = static_cast<int>(head.default_top_k);
  universe_size_ = head.shard_total;
  universe_fingerprint_ = head.universe_fingerprint;
}

int RouterHandler::num_backends() const {
  int total = 0;
  for (const auto& group : groups_) total += static_cast<int>(group.size());
  return total;
}

StatusOr<std::unique_ptr<RouterHandler>> RouterHandler::Connect(
    const std::vector<BackendAddress>& backends, RouterOptions options) {
  std::vector<std::vector<BackendAddress>> groups;
  groups.reserve(backends.size());
  for (const BackendAddress& backend : backends)
    groups.push_back({backend});
  return Connect(groups, std::move(options));
}

StatusOr<std::unique_ptr<RouterHandler>> RouterHandler::Connect(
    const std::vector<std::vector<BackendAddress>>& groups,
    RouterOptions options) {
  if (groups.empty())
    return Status::InvalidArgument("RouterHandler: no backends");
  for (const auto& group : groups)
    if (group.empty())
      return Status::InvalidArgument("RouterHandler: empty shard group");
  const int n = static_cast<int>(groups.size());

  // Connect + interrogate every replica of every group. Topology
  // validation is fail-closed regardless of require_all_shards: a router
  // that cannot see the whole fleet cannot prove the fleet is one
  // universe (and with replicas, cannot prove the siblings are copies).
  std::vector<std::vector<std::pair<ShardInfoAnswer, QueryClient>>>
      connected(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const BackendAddress& address : groups[g]) {
      const std::string where =
          address.host + ":" + std::to_string(address.port);
      StatusOr<QueryClient> client =
          QueryClient::Connect(address.host, address.port, options.retry);
      if (!client.ok())
        return Status(client.status().code(),
                      "RouterHandler: backend " + where +
                          " unreachable: " + client.status().message());
      StatusOr<ShardInfoAnswer> info = client->ShardInfo();
      if (!info.ok())
        return Status(info.status().code(),
                      "RouterHandler: backend " + where +
                          " shard-info failed: " + info.status().message());
      connected[g].emplace_back(*info, std::move(client).value());
    }
  }

  // One canonical partition of one universe, or nothing. Replicas within
  // a group must be copies of the same slice.
  const ShardInfoAnswer& head = connected.front().front().first;
  if (head.shard_total >
      static_cast<uint64_t>(std::numeric_limits<int>::max()))
    return Status::InvalidArgument(
        "RouterHandler: universe too large for int ids");
  const std::vector<ShardRange> ranges =
      ComputeShardRanges(static_cast<int>(head.shard_total), n);
  std::vector<bool> claimed(static_cast<size_t>(n), false);
  // (shard index, replica set), sorted into shard order once validated.
  std::vector<std::pair<size_t, std::vector<Backend>>> tagged;
  tagged.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    std::vector<Backend> replicas;
    replicas.reserve(groups[g].size());
    const ShardInfoAnswer& group_head = connected[g].front().first;
    for (size_t r = 0; r < groups[g].size(); ++r) {
      const ShardInfoAnswer& info = connected[g][r].first;
      const std::string where = groups[g][r].host + ":" +
                                std::to_string(groups[g][r].port);
      if (static_cast<int>(info.shard_count) != n)
        return Status::FailedPrecondition(
            "RouterHandler: backend " + where + " is shard " +
            std::to_string(info.shard_index) + " of " +
            std::to_string(info.shard_count) + ", but " +
            std::to_string(n) + " shard groups are configured");
      if (info.shard_total != head.shard_total)
        return Status::FailedPrecondition(
            "RouterHandler: backend " + where +
            " serves a different-sized auxiliary universe — refusing to "
            "merge (scatter ranges would not partition either universe)");
      if (info.universe_fingerprint != head.universe_fingerprint) {
        // Sealing an ingest epoch rewrites the aux content, so a fleet
        // mid-rollout legitimately shows mixed fingerprints at equal
        // size. Only --allow-epoch-skew accepts that; the merged answers
        // are then transitional, not bitwise-reproducible — and a leg
        // that fails over between skewed siblings is not bitwise-stable
        // either.
        if (!options.allow_epoch_skew)
          return Status::FailedPrecondition(
              "RouterHandler: backend " + where +
              " serves a different auxiliary universe (fingerprint "
              "mismatch) — refusing to merge (pass --allow-epoch-skew if "
              "this fleet is mid-epoch-rollout)");
        std::fprintf(stderr,
                     "[dehealth_router] warning: backend %s universe "
                     "fingerprint differs from the first backend "
                     "(--allow-epoch-skew; merged answers are "
                     "transitional)\n",
                     where.c_str());
      }
      if (info.num_anonymized != head.num_anonymized)
        return Status::FailedPrecondition(
            "RouterHandler: backend " + where +
            " serves a different anonymized dataset");
      if (info.default_top_k != head.default_top_k)
        return Status::FailedPrecondition(
            "RouterHandler: backend " + where +
            " is configured with a different default K");
      // Mixed engines are refused unconditionally (no skew escape
      // hatch): each engine scores on its own scale, so merging a
      // blind shard's heap with a structural shard's heap would rank
      // candidates by which backend they happened to live on.
      if (info.engine != head.engine)
        return Status::FailedPrecondition(
            "RouterHandler: backend " + where + " runs --engine=" +
            EngineLabel(info.engine) +
            " but the first backend runs --engine=" +
            EngineLabel(head.engine) +
            " — a fleet must agree on one attack engine (scores from "
            "different engines are not comparable)");
      // Mixed ingest epochs mean the backends sealed different segment
      // chains — different logical forums. The fingerprint check above
      // usually fires first (sealing changes the universe fingerprint),
      // but epoch_seq names the actionable condition: a rollout
      // mid-flight.
      if (info.epoch_seq != head.epoch_seq) {
        const std::string skew =
            "RouterHandler: backend " + where + " is at ingest epoch " +
            std::to_string(info.epoch_seq) +
            " but the first backend is at " +
            std::to_string(head.epoch_seq);
        if (!options.allow_epoch_skew)
          return Status::FailedPrecondition(
              skew +
              " — mixed-epoch fleet refused (pass --allow-epoch-skew "
              "to serve through a rollout)");
        std::fprintf(stderr, "[dehealth_router] warning: %s "
                             "(--allow-epoch-skew)\n", skew.c_str());
      }
      // Replica discipline: siblings must claim the same slice. (Their
      // content equality is the fingerprint check above; this catches a
      // mis-grouped --backends spec even when every shard shares the
      // universe.)
      if (info.shard_index != group_head.shard_index ||
          info.shard_begin != group_head.shard_begin)
        return Status::FailedPrecondition(
            "RouterHandler: backend " + where + " claims shard " +
            std::to_string(info.shard_index) +
            " but its replica group's first backend claims shard " +
            std::to_string(group_head.shard_index) +
            " — replicas of one group must serve the same slice");
      replicas.push_back(Backend{groups[g][r], info,
                                 std::move(connected[g][r].second),
                                 nullptr});
    }
    const size_t index = group_head.shard_index;
    const std::string where = groups[g].front().host + ":" +
                              std::to_string(groups[g].front().port);
    if (index >= static_cast<size_t>(n) || claimed[index])
      return Status::FailedPrecondition(
          "RouterHandler: backend " + where + " claims shard " +
          std::to_string(group_head.shard_index) +
          (index < static_cast<size_t>(n) ? ", already claimed"
                                          : ", out of range"));
    if (group_head.shard_begin !=
        static_cast<uint64_t>(ranges[index].begin))
      return Status::FailedPrecondition(
          "RouterHandler: backend " + where + " starts at auxiliary id " +
          std::to_string(group_head.shard_begin) +
          "; the canonical shard " +
          std::to_string(group_head.shard_index) + " of " +
          std::to_string(n) + " starts at " +
          std::to_string(ranges[index].begin));
    claimed[index] = true;
    tagged.emplace_back(index, std::move(replicas));
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::vector<Backend>> ordered;
  ordered.reserve(tagged.size());
  for (auto& [index, replicas] : tagged) {
    (void)index;
    ordered.push_back(std::move(replicas));
  }

  return std::unique_ptr<RouterHandler>(
      new RouterHandler(std::move(ordered), options));
}

void RouterHandler::ProbeEjectedReplicas() const {
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (size_t r = 0; r < groups_[g].size(); ++r) {
      if (!health_->ShouldProbe(static_cast<int>(g), static_cast<int>(r)))
        continue;
      // ShouldProbe armed the slot: every path below must record an
      // outcome or the backend would never be probed again.
      const Backend& backend = groups_[g][r];
      replica_metrics_.probes->Increment();
      Status verdict = InjectFaultPoint("router.probe");
      StatusOr<ShardInfoAnswer> info =
          Status::Unavailable("probe suppressed");
      if (verdict.ok()) {
        // Fresh fail-fast connection: the scatter client may hold a dead
        // fd, and a probe must never stall a query behind retry backoff.
        RetryPolicy fail_fast;
        StatusOr<QueryClient> probe = QueryClient::Connect(
            backend.address.host, backend.address.port, fail_fast);
        info = probe.ok() ? probe->ShardInfo() : probe.status();
        if (!info.ok()) verdict = info.status();
      }
      if (verdict.ok()) {
        // Re-admit only a backend that still IS the replica it was:
        // same slice as a live healthy sibling (connect-time info when
        // the whole group is dark), same universe unless the operator
        // already accepted skew. A restarted backend pointed at the
        // wrong snapshot stays ejected.
        const ShardInfoAnswer* expect = &backend.info;
        StatusOr<ShardInfoAnswer> sibling_info =
            Status::NotFound("no healthy sibling");
        for (size_t s = 0; s < groups_[g].size() && verdict.ok(); ++s) {
          if (s == r ||
              !health_->healthy(static_cast<int>(g), static_cast<int>(s)))
            continue;
          RetryPolicy fail_fast;
          StatusOr<QueryClient> sibling = QueryClient::Connect(
              groups_[g][s].address.host, groups_[g][s].address.port,
              fail_fast);
          if (!sibling.ok()) continue;
          sibling_info = sibling->ShardInfo();
          if (sibling_info.ok()) {
            expect = &*sibling_info;
            break;
          }
        }
        if (info->shard_index != expect->shard_index ||
            info->shard_begin != expect->shard_begin ||
            info->shard_count != expect->shard_count ||
            info->shard_total != expect->shard_total)
          verdict = Status::FailedPrecondition(
              "probe: backend came back claiming a different slice");
        else if (!options_.allow_epoch_skew &&
                 (info->universe_fingerprint !=
                      expect->universe_fingerprint ||
                  info->epoch_seq != expect->epoch_seq))
          verdict = Status::FailedPrecondition(
              "probe: backend came back at a different epoch");
      }
      if (verdict.ok()) {
        backend.info = *info;
        backend.epoch_seq->Set(static_cast<int64_t>(info->epoch_seq));
        backend.staged_segments->Set(
            static_cast<int64_t>(info->staged_segments));
        if (health_->RecordSuccess(static_cast<int>(g),
                                   static_cast<int>(r)))
          replica_metrics_.readmissions->Increment();
      } else {
        replica_metrics_.probe_failures->Increment();
        health_->RecordFailure(static_cast<int>(g), static_cast<int>(r));
      }
      replica_metrics_.healthy_backends->Set(health_->healthy_count());
    }
  }
}

StatusOr<ScoredTopKAnswer> RouterHandler::TimedLeg(
    int g, int r, const std::vector<int>& users, int k) const {
  const Backend& backend =
      groups_[static_cast<size_t>(g)][static_cast<size_t>(r)];
  metrics_.scatter_rpcs->Increment();
  const auto start = std::chrono::steady_clock::now();
  StatusOr<ScoredTopKAnswer> result = backend.client.TopKScored(users, k);
  const double micros = ElapsedMicros(start);
  backend.latency->Record(micros);
  metrics_.backend_latency->Record(micros);
  return result;
}

StatusOr<ScoredTopKAnswer> RouterHandler::HedgedLeg(
    int g, int primary, int sibling, const std::vector<int>& users,
    int k) const {
  // The helper thread owns the primary replica's client for the duration
  // of the leg; this (task) thread touches it only through
  // CancelInFlight, the one cross-thread-safe member.
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  StatusOr<ScoredTopKAnswer> primary_result = Status::Internal("pending");
  std::thread helper([&] {
    StatusOr<ScoredTopKAnswer> result = TimedLeg(g, primary, users, k);
    {
      std::lock_guard<std::mutex> lock(m);
      primary_result = std::move(result);
      done = true;
    }
    cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lock(m);
    if (cv.wait_for(lock, std::chrono::milliseconds(options_.hedge_ms),
                    [&] { return done; })) {
      lock.unlock();
      helper.join();
      return primary_result;  // in time: behave exactly like TimedLeg
    }
  }
  // The primary is slow (or dead): fire the same request at the sibling.
  replica_metrics_.hedges->Increment();
  Status fault = InjectFaultPoint("router.hedge");
  StatusOr<ScoredTopKAnswer> hedge_result =
      fault.ok() ? TimedLeg(g, sibling, users, k)
                 : StatusOr<ScoredTopKAnswer>(fault);
  if (!hedge_result.ok()) {
    // The hedge lost its own race; its failure is health evidence the
    // caller will never see, so record it here, then fall back to
    // waiting the primary out.
    NoteFailure(g, sibling);
    helper.join();
    return primary_result;
  }
  bool primary_done;
  {
    std::lock_guard<std::mutex> lock(m);
    primary_done = done;
  }
  if (!primary_done) {
    // Cancel the in-flight primary: its socket is shut down under it, the
    // round trip returns Cancelled without retrying, and the abandoned
    // answer carries no health evidence either way.
    groups_[static_cast<size_t>(g)][static_cast<size_t>(primary)]
        .client.CancelInFlight();
    helper.join();
    replica_metrics_.hedge_wins->Increment();
    NoteSuccess(g, sibling);
    return hedge_result;
  }
  helper.join();
  if (primary_result.ok()) {
    // Both answered (the primary just after the hedge fired). The answers
    // are bitwise-identical by the replica invariant; return the
    // primary's so the caller's health accounting lands on `primary`.
    NoteSuccess(g, sibling);
    return primary_result;
  }
  // Primary failed while the hedge succeeded: the hedge is the answer and
  // the primary's failure is the hidden outcome to record.
  NoteFailure(g, primary);
  replica_metrics_.hedge_wins->Increment();
  NoteSuccess(g, sibling);
  return hedge_result;
}

void RouterHandler::NoteSuccess(int g, int r) const {
  if (health_->RecordSuccess(g, r))
    replica_metrics_.readmissions->Increment();
  replica_metrics_.healthy_backends->Set(health_->healthy_count());
}

void RouterHandler::NoteFailure(int g, int r) const {
  if (health_->RecordFailure(g, r))
    replica_metrics_.ejections->Increment();
  replica_metrics_.healthy_backends->Set(health_->healthy_count());
}

StatusOr<ScoredTopKAnswer> RouterHandler::ScatterLeg(
    int g, const std::vector<int>& users, int k) const {
  const std::vector<int> order = health_->RouteOrder(g);
  StatusOr<ScoredTopKAnswer> result =
      Status::Unavailable("RouterHandler: shard group " +
                          std::to_string(g) + " has no replicas");
  for (size_t attempt = 0; attempt < order.size(); ++attempt) {
    const int r = order[attempt];
    if (attempt > 0) replica_metrics_.failovers->Increment();
    Status fault =
        InjectFaultPoint(attempt == 0 ? "router.scatter" : "router.failover");
    if (!fault.ok()) {
      result = fault;
    } else {
      // Hedge against the next still-healthy replica in the route order,
      // if any; a group down to one live replica degrades to plain legs.
      int sibling = -1;
      if (options_.hedge_ms > 0) {
        for (size_t j = attempt + 1; j < order.size(); ++j) {
          if (health_->healthy(g, order[j])) {
            sibling = order[j];
            break;
          }
        }
      }
      result = sibling >= 0 ? HedgedLeg(g, r, sibling, users, k)
                            : TimedLeg(g, r, users, k);
    }
    if (result.ok()) {
      NoteSuccess(g, r);
      return result;
    }
    // Only transport-level unavailability justifies trying a sibling: any
    // other error (bad ids, wrong k) is the query's own fault and every
    // bitwise-identical replica would answer it the same way.
    if (result.status().code() != StatusCode::kUnavailable) return result;
    NoteFailure(g, r);
  }
  return result;
}

StatusOr<ScoredTopKAnswer> RouterHandler::TopKScored(
    const std::vector<int>& users, int k) const {
  if (k == 0) k = default_top_k_;
  if (k < 1)
    return Status::InvalidArgument("RouterHandler: k must be >= 1");
  const size_t n = groups_.size();

  // Give ejected replicas whose probe backoff elapsed their kShardInfo
  // probe before scattering — re-admission happens on the query path, so
  // an idle router still converges the moment traffic returns.
  ProbeEjectedReplicas();

  // Scatter: one leg per shard group, concurrently (each task owns
  // exactly one group's clients, so the ParallelFor write-your-own-slot
  // contract holds). The request carries the caller's k verbatim — every
  // backend resolves 0 to the same validated default.
  std::vector<StatusOr<ScoredTopKAnswer>> answers(
      n, StatusOr<ScoredTopKAnswer>(Status::Internal("not scattered")));
  ParallelFor(0, static_cast<int64_t>(n), [&](int64_t i) {
    answers[static_cast<size_t>(i)] =
        ScatterLeg(static_cast<int>(i), users, k);
  });

  // Gather: a shard group whose every replica stayed unreachable through
  // failover (Unavailable) degrades the answer; any other error is the
  // query's own fault (bad ids, wrong k for the selection mode) and every
  // shard would agree, so it propagates as-is.
  std::vector<const ScoredTopKAnswer*> live;
  live.reserve(n);
  bool partial = false;
  for (size_t i = 0; i < n; ++i) {
    if (answers[i].ok()) {
      if (answers[i]->candidates.size() != users.size())
        return Status::Internal(
            "RouterHandler: shard " + std::to_string(i) +
            " answered " + std::to_string(answers[i]->candidates.size()) +
            " lists for " + std::to_string(users.size()) + " users");
      partial |= answers[i]->partial;
      live.push_back(&*answers[i]);
      continue;
    }
    const Status& error = answers[i].status();
    if (error.code() != StatusCode::kUnavailable) return error;
    metrics_.scatter_failures->Increment();
    if (options_.require_all_shards)
      return Status::Unavailable(
          "RouterHandler: shard group " + std::to_string(i) + " (" +
          groups_[i].front().address.host + ":" +
          std::to_string(groups_[i].front().address.port) +
          (groups_[i].size() > 1 ? " and its replicas" : "") +
          ") is down and --require-all-shards is set: " + error.message());
    partial = true;
  }
  if (live.empty())
    return Status::Unavailable("RouterHandler: all " + std::to_string(n) +
                               " shard groups are down");

  DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("router.merge"));
  const auto merge_start = std::chrono::steady_clock::now();
  ScoredTopKAnswer merged;
  merged.partial = partial;
  merged.candidates.reserve(users.size());
  std::vector<std::vector<ScoredUser>> per_shard(live.size());
  for (size_t u = 0; u < users.size(); ++u) {
    for (size_t s = 0; s < live.size(); ++s)
      per_shard[s] = live[s]->candidates[u];
    merged.candidates.push_back(MergeScoredTopK(per_shard, k));
  }
  metrics_.merge_micros->Record(ElapsedMicros(merge_start));
  if (partial) metrics_.partial_answers->Increment();
  return merged;
}

StatusOr<TopKAnswer> RouterHandler::TopK(const std::vector<int>& users,
                                         int k) const {
  StatusOr<ScoredTopKAnswer> scored = TopKScored(users, k);
  if (!scored.ok()) return scored.status();
  TopKAnswer answer;
  answer.partial = scored->partial;
  answer.candidates.reserve(scored->candidates.size());
  for (const std::vector<ScoredUser>& list : scored->candidates) {
    std::vector<int> ids;
    ids.reserve(list.size());
    for (const ScoredUser& c : list) ids.push_back(c.user);
    answer.candidates.push_back(std::move(ids));
  }
  return answer;
}

StatusOr<RefinedAnswer> RouterHandler::Refine(
    const std::vector<int>& users) const {
  (void)users;
  return Status::Unimplemented(
      "RouterHandler: refined DA needs universe-global training state no "
      "shard holds; query an unsharded dehealth_serve instead");
}

StatusOr<FilteredAnswer> RouterHandler::Filtered(
    const std::vector<int>& users) const {
  (void)users;
  return Status::Unimplemented(
      "RouterHandler: filtering thresholds are universe-global; query an "
      "unsharded dehealth_serve instead");
}

ShardInfoAnswer RouterHandler::ShardInfo() const {
  // Upstream, the router IS the (whole) universe: shard 0 of 1.
  ShardInfoAnswer info;
  info.shard_index = 0;
  info.shard_count = 1;
  info.shard_begin = 0;
  info.shard_total = universe_size_;
  info.universe_fingerprint = universe_fingerprint_;
  info.num_anonymized = static_cast<uint64_t>(num_anonymized_);
  info.default_top_k = static_cast<uint64_t>(default_top_k_);
  info.epoch_seq = epoch_seq_;
  return info;
}

std::string RouterHandler::ForwardedMetrics() const {
  std::lock_guard<std::mutex> lock(scrape_mutex_);
  std::string out =
      "# router: per-backend ingest metrics (label backend=\"group\" or "
      "\"group.replica\")\n";
  bool described = false;
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (size_t r = 0; r < groups_[g].size(); ++r) {
      const Backend& backend = groups_[g][r];
      std::string label = std::to_string(g);
      if (groups_[g].size() > 1) label += "." + std::to_string(r);
      const std::string where = backend.address.host + ":" +
                                std::to_string(backend.address.port);
      // Fresh fail-fast connection per scrape: the scatter client belongs
      // to the executor thread, and a scrape must not stall behind retry
      // backoff while a shard restarts.
      RetryPolicy fail_fast;
      StatusOr<QueryClient> client = QueryClient::Connect(
          backend.address.host, backend.address.port, fail_fast);
      if (!client.ok()) {
        out += "# backend " + label + " (" + where +
               ") unreachable: " + client.status().message() + "\n";
        continue;
      }
      StatusOr<ShardInfoAnswer> info = client->ShardInfo();
      if (info.ok()) {
        backend.epoch_seq->Set(static_cast<int64_t>(info->epoch_seq));
        backend.staged_segments->Set(
            static_cast<int64_t>(info->staged_segments));
      }
      StatusOr<std::string> render = client->Metrics();
      if (!render.ok()) {
        out += "# backend " + label + " (" + where +
               ") scrape failed: " + render.status().message() + "\n";
        continue;
      }
      // Re-export only the ingest subsystem, labeled per backend.
      // HELP/TYPE headers come from the first backend that renders them —
      // every backend shares the metric definitions.
      size_t pos = 0;
      while (pos < render->size()) {
        size_t end = render->find('\n', pos);
        if (end == std::string::npos) end = render->size();
        const std::string line = render->substr(pos, end - pos);
        pos = end + 1;
        if (line.rfind("dehealth_ingest_", 0) == 0) {
          out += LabelSample(line, label) + "\n";
        } else if (!described && line.rfind("# ", 0) == 0 &&
                   line.find(" dehealth_ingest_") != std::string::npos) {
          out += line + "\n";
        }
      }
      described = true;
    }
  }
  return out;
}

}  // namespace dehealth
