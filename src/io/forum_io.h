#ifndef DEHEALTH_IO_FORUM_IO_H_
#define DEHEALTH_IO_FORUM_IO_H_

#include <string>

#include "common/status.h"
#include "datagen/corpus.h"

namespace dehealth {

/// JSON-Lines persistence for forum datasets — the adoption path for real
/// (crawled) data: one object per line,
///   {"user_id": 3, "thread_id": 17, "text": "..."}
/// with a header line {"num_users": N, "num_threads": T}.

/// Serializes `dataset` to a JSONL string.
std::string ForumDatasetToJsonl(const ForumDataset& dataset);

/// Parses a JSONL string produced by ForumDatasetToJsonl (or hand-written
/// in the same schema). Fails with InvalidArgument on malformed lines,
/// missing fields, or out-of-range user/thread ids.
StatusOr<ForumDataset> ForumDatasetFromJsonl(const std::string& jsonl);

/// File convenience wrappers.
Status SaveForumDataset(const ForumDataset& dataset,
                        const std::string& path);
StatusOr<ForumDataset> LoadForumDataset(const std::string& path);

/// JSON string escaping/unescaping used by the JSONL codec (exposed for
/// testing). EscapeJson handles quotes, backslashes, and control
/// characters; UnescapeJson fails on invalid escapes.
std::string EscapeJson(const std::string& raw);
StatusOr<std::string> UnescapeJson(const std::string& escaped);

}  // namespace dehealth

#endif  // DEHEALTH_IO_FORUM_IO_H_
