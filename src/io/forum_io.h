#ifndef DEHEALTH_IO_FORUM_IO_H_
#define DEHEALTH_IO_FORUM_IO_H_

#include <string>

#include "common/status.h"
#include "datagen/corpus.h"

namespace dehealth {

/// JSON-Lines persistence for forum datasets — the adoption path for real
/// (crawled) data: one object per line,
///   {"user_id": 3, "thread_id": 17, "text": "..."}
/// with a header line {"num_users": N, "num_threads": T}.

/// Serializes `dataset` to a JSONL string.
std::string ForumDatasetToJsonl(const ForumDataset& dataset);

/// Parses a JSONL string produced by ForumDatasetToJsonl (or hand-written
/// in the same schema). Hardened against arbitrary input — truncated
/// files, binary garbage, NUL bytes, absurd header counts, overlong lines,
/// duplicate/conflicting fields: every malformed case returns a Status
/// whose message carries the originating path (when known) and the line
/// number where parsing stopped; no input crashes or allocates
/// unboundedly. InvalidArgument for malformed content, OutOfRange for
/// user/thread ids outside the header's ranges. `path` is context only,
/// used in error messages; pass "" for in-memory buffers.
StatusOr<ForumDataset> ForumDatasetFromJsonl(const std::string& jsonl,
                                             const std::string& path = "");

/// File convenience wrappers.
Status SaveForumDataset(const ForumDataset& dataset,
                        const std::string& path);
StatusOr<ForumDataset> LoadForumDataset(const std::string& path);

/// Streaming-ingest tail reader: parses a JSONL fragment containing ONLY
/// post lines (no header — the tail of a growing forum file, or a
/// standalone append file). `skip_posts` post lines are consumed without
/// being returned, so a caller tailing the same file repeatedly passes the
/// number of posts it has already ingested and receives just the new ones.
/// Ids are validated as non-negative (upper bounds belong to the caller,
/// who knows the grown universe); text hardening matches
/// ForumDatasetFromJsonl. A line that parses as a header
/// ({"num_users":...}) is skipped, so tailing a full forum file works too.
StatusOr<std::vector<Post>> TailPostsFromJsonl(const std::string& jsonl,
                                               size_t skip_posts = 0,
                                               const std::string& path = "");

/// File wrapper for TailPostsFromJsonl, with fault site
/// `forum.tail.data` on the bytes read.
StatusOr<std::vector<Post>> LoadTailPosts(const std::string& path,
                                          size_t skip_posts = 0);

/// JSON string escaping/unescaping used by the JSONL codec (exposed for
/// testing). EscapeJson handles quotes, backslashes, and control
/// characters; UnescapeJson fails on invalid escapes.
std::string EscapeJson(const std::string& raw);
StatusOr<std::string> UnescapeJson(const std::string& escaped);

}  // namespace dehealth

#endif  // DEHEALTH_IO_FORUM_IO_H_
