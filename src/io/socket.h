#ifndef DEHEALTH_IO_SOCKET_H_
#define DEHEALTH_IO_SOCKET_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace dehealth {

/// Thin POSIX TCP helpers for the serving subsystem (src/serve/): loopback
/// or LAN sockets with blocking, exact-length I/O — the shape the
/// length-prefixed DHQP framing needs. Hosts are IPv4 literals
/// ("127.0.0.1"); name resolution is out of scope for a service that binds
/// loopback by default.

/// Owning file descriptor with close-on-destroy; move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Gives up ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the held descriptor (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Creates a listening TCP socket bound to host:port (SO_REUSEADDR; port 0
/// picks an ephemeral port — read it back with BoundPort).
StatusOr<UniqueFd> ListenTcp(const std::string& host, int port,
                             int backlog = 64);

/// Connects to a TCP server at host:port (blocking).
StatusOr<UniqueFd> ConnectTcp(const std::string& host, int port);

/// The local port a socket is bound to (resolves port-0 binds).
StatusOr<int> BoundPort(int fd);

/// Reads exactly `size` bytes (blocking, EINTR-retrying). OutOfRange when
/// the peer closed cleanly before the first byte (end of stream);
/// Unavailable when the connection dies mid-buffer (reset/refused-shaped
/// errnos — retryable); Internal for everything else.
Status ReadExact(int fd, void* buffer, size_t size);

/// Writes all `size` bytes (blocking, EINTR-retrying, no SIGPIPE — a
/// closed peer surfaces as Unavailable instead of killing the process).
Status WriteAll(int fd, const void* buffer, size_t size);

}  // namespace dehealth

#endif  // DEHEALTH_IO_SOCKET_H_
