#include "io/forum_io.h"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "common/fault_injection.h"
#include "common/string_utils.h"
#include "io/file_util.h"

namespace dehealth {

std::string EscapeJson(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

StatusOr<std::string> UnescapeJson(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (i + 1 >= escaped.size())
      return Status::InvalidArgument("UnescapeJson: dangling backslash");
    const char next = escaped[++i];
    switch (next) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (i + 4 >= escaped.size())
          return Status::InvalidArgument("UnescapeJson: truncated \\u");
        int code = 0;
        for (int d = 0; d < 4; ++d) {
          const char h = escaped[i + 1 + static_cast<size_t>(d)];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code += h - '0';
          } else if (h >= 'a' && h <= 'f') {
            code += h - 'a' + 10;
          } else if (h >= 'A' && h <= 'F') {
            code += h - 'A' + 10;
          } else {
            return Status::InvalidArgument("UnescapeJson: bad \\u digit");
          }
        }
        i += 4;
        // Only BMP-ASCII escapes are produced by EscapeJson; emit the low
        // byte for codes < 256, else a replacement '?'.
        out += code < 256 ? static_cast<char>(code) : '?';
        break;
      }
      default:
        return Status::InvalidArgument(
            StrFormat("UnescapeJson: invalid escape \\%c", next));
    }
  }
  return out;
}

namespace {

/// Minimal field scanner for our fixed one-line-object schema. Finds
/// `"key":` and returns the raw value span (number or quoted string body).
StatusOr<std::string> FindRawValue(const std::string& line,
                                   const std::string& key,
                                   bool* is_string = nullptr) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos)
    return Status::InvalidArgument("missing field: " + key);
  pos += needle.size();
  while (pos < line.size() &&
         (line[pos] == ' ' || line[pos] == ':'))
    ++pos;
  if (pos >= line.size())
    return Status::InvalidArgument("truncated field: " + key);
  if (line[pos] == '"') {
    // Quoted string: scan to the closing unescaped quote.
    std::string body;
    ++pos;
    while (pos < line.size()) {
      if (line[pos] == '\\' && pos + 1 < line.size()) {
        body += line[pos];
        body += line[pos + 1];
        pos += 2;
        continue;
      }
      if (line[pos] == '"') {
        if (is_string != nullptr) *is_string = true;
        return body;
      }
      body += line[pos++];
    }
    return Status::InvalidArgument("unterminated string for: " + key);
  }
  // Number: scan digits/sign.
  std::string number;
  while (pos < line.size() &&
         (std::isdigit(static_cast<unsigned char>(line[pos])) ||
          line[pos] == '-'))
    number += line[pos++];
  if (number.empty())
    return Status::InvalidArgument("empty value for: " + key);
  // An integer must end at a field boundary: "1.5" or "12abc" silently
  // truncated to 1 / 12 would corrupt counts instead of failing loudly.
  if (pos < line.size() && line[pos] != ',' && line[pos] != '}' &&
      line[pos] != ' ' && line[pos] != '\t' && line[pos] != '\r')
    return Status::InvalidArgument(
        StrFormat("malformed number for: %s (unexpected '%c')", key.c_str(),
                  line[pos]));
  if (is_string != nullptr) *is_string = false;
  return number;
}

StatusOr<int> FindIntValue(const std::string& line, const std::string& key) {
  StatusOr<std::string> raw = FindRawValue(line, key);
  if (!raw.ok()) return raw.status();
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0' || errno != 0)
    return Status::InvalidArgument("bad integer for: " + key);
  return static_cast<int>(value);
}

}  // namespace

std::string ForumDatasetToJsonl(const ForumDataset& dataset) {
  std::string out = StrFormat("{\"num_users\": %d, \"num_threads\": %d}\n",
                              dataset.num_users, dataset.num_threads);
  for (const Post& post : dataset.posts) {
    out += StrFormat("{\"user_id\": %d, \"thread_id\": %d, \"text\": \"%s\"}\n",
                     post.user_id, post.thread_id,
                     EscapeJson(post.text).c_str());
  }
  return out;
}

namespace {

/// Sanity ceilings for adversarial inputs: a header announcing more users
/// or threads than any real forum could hold (the paper's largest corpus
/// is 388k users) is rejected before anything downstream sizes per-user
/// state off it. Lines beyond the length cap are binary garbage or an
/// attack, not a forum post.
constexpr int kMaxHeaderCount = 100'000'000;
constexpr size_t kMaxLineBytes = 16u << 20;

/// "forum dataset 'path' (line N): what" — every parse failure names the
/// file it came from (when known) and the line where parsing stopped.
Status ParseError(const std::string& path, int line, const std::string& what,
                  StatusCode code = StatusCode::kInvalidArgument) {
  std::string message = "forum dataset ";
  if (!path.empty()) message += "'" + path + "' ";
  message += "(line " + std::to_string(line) + "): " + what;
  return Status(code, std::move(message));
}

}  // namespace

StatusOr<ForumDataset> ForumDatasetFromJsonl(const std::string& jsonl,
                                             const std::string& path) {
  std::istringstream stream(jsonl);
  std::string line;
  ForumDataset dataset;
  bool have_header = false;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    if (line.size() > kMaxLineBytes)
      return ParseError(path, line_number,
                        "line exceeds " + std::to_string(kMaxLineBytes) +
                            " bytes (binary garbage?)");
    if (line.find('\0') != std::string::npos)
      return ParseError(path, line_number,
                        "NUL byte in input (binary garbage?)");
    if (TrimAscii(line).empty()) continue;
    if (!have_header) {
      StatusOr<int> users = FindIntValue(line, "num_users");
      StatusOr<int> threads = FindIntValue(line, "num_threads");
      if (!users.ok())
        return ParseError(path, line_number, users.status().message());
      if (!threads.ok())
        return ParseError(path, line_number, threads.status().message());
      if (*users < 0 || *threads < 0)
        return ParseError(path, line_number, "negative header counts");
      if (*users > kMaxHeaderCount || *threads > kMaxHeaderCount)
        return ParseError(path, line_number,
                          StrFormat("absurd header counts (%d users, %d "
                                    "threads; max %d)",
                                    *users, *threads, kMaxHeaderCount));
      dataset.num_users = *users;
      dataset.num_threads = *threads;
      have_header = true;
      continue;
    }
    StatusOr<int> user = FindIntValue(line, "user_id");
    StatusOr<int> thread = FindIntValue(line, "thread_id");
    bool text_is_string = false;
    StatusOr<std::string> raw_text =
        FindRawValue(line, "text", &text_is_string);
    if (!user.ok())
      return ParseError(path, line_number, user.status().message());
    if (!thread.ok())
      return ParseError(path, line_number, thread.status().message());
    if (!raw_text.ok())
      return ParseError(path, line_number, raw_text.status().message());
    if (!text_is_string)
      return ParseError(path, line_number,
                        "text must be a quoted JSON string");
    if (*user < 0 || *user >= dataset.num_users)
      return ParseError(path, line_number,
                        StrFormat("user_id %d out of range [0, %d)", *user,
                                  dataset.num_users),
                        StatusCode::kOutOfRange);
    if (*thread < 0 || *thread >= dataset.num_threads)
      return ParseError(path, line_number,
                        StrFormat("thread_id %d out of range [0, %d)",
                                  *thread, dataset.num_threads),
                        StatusCode::kOutOfRange);
    StatusOr<std::string> text = UnescapeJson(*raw_text);
    if (!text.ok())
      return ParseError(path, line_number, text.status().message());
    dataset.posts.push_back({*user, *thread, std::move(*text)});
  }
  if (!have_header)
    return ParseError(path, line_number,
                      "empty input (no header line)");
  return dataset;
}

StatusOr<std::vector<Post>> TailPostsFromJsonl(const std::string& jsonl,
                                               size_t skip_posts,
                                               const std::string& path) {
  std::istringstream stream(jsonl);
  std::string line;
  std::vector<Post> posts;
  size_t seen_posts = 0;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    if (line.size() > kMaxLineBytes)
      return ParseError(path, line_number,
                        "line exceeds " + std::to_string(kMaxLineBytes) +
                            " bytes (binary garbage?)");
    if (line.find('\0') != std::string::npos)
      return ParseError(path, line_number,
                        "NUL byte in input (binary garbage?)");
    if (TrimAscii(line).empty()) continue;
    // A full forum file starts with a header line; a tail fragment has
    // none. Accept both by skipping anything that parses as a header.
    if (line.find("\"num_users\"") != std::string::npos &&
        line.find("\"user_id\"") == std::string::npos) {
      StatusOr<int> users = FindIntValue(line, "num_users");
      if (users.ok()) continue;
    }
    StatusOr<int> user = FindIntValue(line, "user_id");
    StatusOr<int> thread = FindIntValue(line, "thread_id");
    bool text_is_string = false;
    StatusOr<std::string> raw_text =
        FindRawValue(line, "text", &text_is_string);
    if (!user.ok())
      return ParseError(path, line_number, user.status().message());
    if (!thread.ok())
      return ParseError(path, line_number, thread.status().message());
    if (!raw_text.ok())
      return ParseError(path, line_number, raw_text.status().message());
    if (!text_is_string)
      return ParseError(path, line_number,
                        "text must be a quoted JSON string");
    if (*user < 0 || *user > kMaxHeaderCount)
      return ParseError(path, line_number,
                        StrFormat("user_id %d out of range", *user),
                        StatusCode::kOutOfRange);
    if (*thread < 0 || *thread > kMaxHeaderCount)
      return ParseError(path, line_number,
                        StrFormat("thread_id %d out of range", *thread),
                        StatusCode::kOutOfRange);
    if (seen_posts++ < skip_posts) continue;
    StatusOr<std::string> text = UnescapeJson(*raw_text);
    if (!text.ok())
      return ParseError(path, line_number, text.status().message());
    posts.push_back({*user, *thread, std::move(*text)});
  }
  if (seen_posts < skip_posts)
    return ParseError(path, line_number,
                      StrFormat("tail holds %zu posts but %zu were already "
                                "ingested (file truncated or rotated?)",
                                seen_posts, skip_posts));
  return posts;
}

StatusOr<std::vector<Post>> LoadTailPosts(const std::string& path,
                                          size_t skip_posts) {
  StatusOr<std::string> content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  // Simulated on-disk corruption of the tail file; the parser must fail
  // with a path+line Status, never ingest garbage posts.
  InjectDataFault("forum.tail.data", &*content);
  return TailPostsFromJsonl(*content, skip_posts, path);
}

Status SaveForumDataset(const ForumDataset& dataset,
                        const std::string& path) {
  return WriteStringToFile(ForumDatasetToJsonl(dataset), path);
}

StatusOr<ForumDataset> LoadForumDataset(const std::string& path) {
  StatusOr<std::string> content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  // Simulated on-disk corruption of the forum file; the parser must turn
  // whatever this produces into a path+line Status, never a crash.
  InjectDataFault("forum.load.data", &*content);
  return ForumDatasetFromJsonl(*content, path);
}

}  // namespace dehealth
