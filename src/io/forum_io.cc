#include "io/forum_io.h"

#include <cctype>
#include <cstdio>
#include <sstream>

#include "common/string_utils.h"
#include "io/file_util.h"

namespace dehealth {

std::string EscapeJson(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

StatusOr<std::string> UnescapeJson(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (i + 1 >= escaped.size())
      return Status::InvalidArgument("UnescapeJson: dangling backslash");
    const char next = escaped[++i];
    switch (next) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (i + 4 >= escaped.size())
          return Status::InvalidArgument("UnescapeJson: truncated \\u");
        int code = 0;
        for (int d = 0; d < 4; ++d) {
          const char h = escaped[i + 1 + static_cast<size_t>(d)];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code += h - '0';
          } else if (h >= 'a' && h <= 'f') {
            code += h - 'a' + 10;
          } else if (h >= 'A' && h <= 'F') {
            code += h - 'A' + 10;
          } else {
            return Status::InvalidArgument("UnescapeJson: bad \\u digit");
          }
        }
        i += 4;
        // Only BMP-ASCII escapes are produced by EscapeJson; emit the low
        // byte for codes < 256, else a replacement '?'.
        out += code < 256 ? static_cast<char>(code) : '?';
        break;
      }
      default:
        return Status::InvalidArgument(
            StrFormat("UnescapeJson: invalid escape \\%c", next));
    }
  }
  return out;
}

namespace {

/// Minimal field scanner for our fixed one-line-object schema. Finds
/// `"key":` and returns the raw value span (number or quoted string body).
StatusOr<std::string> FindRawValue(const std::string& line,
                                   const std::string& key,
                                   bool* is_string = nullptr) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos)
    return Status::InvalidArgument("missing field: " + key);
  pos += needle.size();
  while (pos < line.size() &&
         (line[pos] == ' ' || line[pos] == ':'))
    ++pos;
  if (pos >= line.size())
    return Status::InvalidArgument("truncated field: " + key);
  if (line[pos] == '"') {
    // Quoted string: scan to the closing unescaped quote.
    std::string body;
    ++pos;
    while (pos < line.size()) {
      if (line[pos] == '\\' && pos + 1 < line.size()) {
        body += line[pos];
        body += line[pos + 1];
        pos += 2;
        continue;
      }
      if (line[pos] == '"') {
        if (is_string != nullptr) *is_string = true;
        return body;
      }
      body += line[pos++];
    }
    return Status::InvalidArgument("unterminated string for: " + key);
  }
  // Number: scan digits/sign.
  std::string number;
  while (pos < line.size() &&
         (std::isdigit(static_cast<unsigned char>(line[pos])) ||
          line[pos] == '-'))
    number += line[pos++];
  if (number.empty())
    return Status::InvalidArgument("empty value for: " + key);
  if (is_string != nullptr) *is_string = false;
  return number;
}

StatusOr<int> FindIntValue(const std::string& line, const std::string& key) {
  StatusOr<std::string> raw = FindRawValue(line, key);
  if (!raw.ok()) return raw.status();
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0' || errno != 0)
    return Status::InvalidArgument("bad integer for: " + key);
  return static_cast<int>(value);
}

}  // namespace

std::string ForumDatasetToJsonl(const ForumDataset& dataset) {
  std::string out = StrFormat("{\"num_users\": %d, \"num_threads\": %d}\n",
                              dataset.num_users, dataset.num_threads);
  for (const Post& post : dataset.posts) {
    out += StrFormat("{\"user_id\": %d, \"thread_id\": %d, \"text\": \"%s\"}\n",
                     post.user_id, post.thread_id,
                     EscapeJson(post.text).c_str());
  }
  return out;
}

StatusOr<ForumDataset> ForumDatasetFromJsonl(const std::string& jsonl) {
  std::istringstream stream(jsonl);
  std::string line;
  ForumDataset dataset;
  bool have_header = false;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    if (TrimAscii(line).empty()) continue;
    if (!have_header) {
      StatusOr<int> users = FindIntValue(line, "num_users");
      StatusOr<int> threads = FindIntValue(line, "num_threads");
      if (!users.ok()) return users.status();
      if (!threads.ok()) return threads.status();
      if (*users < 0 || *threads < 0)
        return Status::InvalidArgument("negative header counts");
      dataset.num_users = *users;
      dataset.num_threads = *threads;
      have_header = true;
      continue;
    }
    StatusOr<int> user = FindIntValue(line, "user_id");
    StatusOr<int> thread = FindIntValue(line, "thread_id");
    StatusOr<std::string> raw_text = FindRawValue(line, "text");
    if (!user.ok()) return user.status();
    if (!thread.ok()) return thread.status();
    if (!raw_text.ok()) return raw_text.status();
    if (*user < 0 || *user >= dataset.num_users)
      return Status::OutOfRange(
          StrFormat("line %d: user_id %d out of range", line_number, *user));
    if (*thread < 0 || *thread >= dataset.num_threads)
      return Status::OutOfRange(
          StrFormat("line %d: thread_id %d out of range", line_number,
                    *thread));
    StatusOr<std::string> text = UnescapeJson(*raw_text);
    if (!text.ok()) return text.status();
    dataset.posts.push_back({*user, *thread, std::move(*text)});
  }
  if (!have_header)
    return Status::InvalidArgument("ForumDatasetFromJsonl: empty input");
  return dataset;
}

Status SaveForumDataset(const ForumDataset& dataset,
                        const std::string& path) {
  return WriteStringToFile(ForumDatasetToJsonl(dataset), path);
}

StatusOr<ForumDataset> LoadForumDataset(const std::string& path) {
  StatusOr<std::string> content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  return ForumDatasetFromJsonl(*content);
}

}  // namespace dehealth
