#include "io/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/fault_injection.h"

namespace dehealth {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Transient peer/network conditions a retry can reasonably cure map to
/// kUnavailable so retry policies (serve/client.h) can key on the code;
/// everything else stays kInternal.
bool TransientErrno(int err) {
  return err == ECONNREFUSED || err == ECONNRESET || err == EPIPE ||
         err == ETIMEDOUT || err == EHOSTUNREACH || err == ENETUNREACH ||
         err == EAGAIN;
}

Status IoError(const std::string& what) {
  return TransientErrno(errno) ? Status::Unavailable(Errno(what))
                               : Status::Internal(Errno(what));
}

StatusOr<sockaddr_in> MakeAddress(const std::string& host, int port) {
  if (port < 0 || port > 65535)
    return Status::InvalidArgument("port out of range: " +
                                   std::to_string(port));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return Status::InvalidArgument("not an IPv4 address literal: " + host);
  return addr;
}

}  // namespace

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

StatusOr<UniqueFd> ListenTcp(const std::string& host, int port, int backlog) {
  StatusOr<sockaddr_in> addr = MakeAddress(host, port);
  if (!addr.ok()) return addr.status();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Internal(Errno("socket"));
  const int enable = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0)
    return Status::Internal(
        Errno("bind " + host + ":" + std::to_string(port)));
  if (::listen(fd.get(), backlog) != 0)
    return Status::Internal(Errno("listen"));
  return fd;
}

StatusOr<UniqueFd> ConnectTcp(const std::string& host, int port) {
  DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("socket.connect"));
  StatusOr<sockaddr_in> addr = MakeAddress(host, port);
  if (!addr.ok()) return addr.status();
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Internal(Errno("socket"));
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr),
                   sizeof(*addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0)
    return IoError("connect " + host + ":" + std::to_string(port));
  return fd;
}

StatusOr<int> BoundPort(int fd) {
  sockaddr_in addr = {};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return Status::Internal(Errno("getsockname"));
  return static_cast<int>(ntohs(addr.sin_port));
}

Status ReadExact(int fd, void* buffer, size_t size) {
  DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("socket.read"));
  char* out = static_cast<char*>(buffer);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, out + done, size - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0)
      return done == 0
                 ? Status::OutOfRange("end of stream")
                 : Status::Unavailable("connection closed mid-message");
    return IoError("read");
  }
  return Status::OK();
}

Status WriteAll(int fd, const void* buffer, size_t size) {
  DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("socket.write"));
  const char* in = static_cast<const char*>(buffer);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd, in + done, size - done, MSG_NOSIGNAL);
    if (n >= 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return IoError("send");
  }
  return Status::OK();
}

}  // namespace dehealth
