#include "io/file_util.h"

#include <fstream>
#include <sstream>

namespace dehealth {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::Internal("read error: " + path);
  return buffer.str();
}

Status WriteStringToFile(const std::string& content, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open for writing: " + path);
  file.write(content.data(), static_cast<long>(content.size()));
  if (!file) return Status::Internal("short write: " + path);
  return Status::OK();
}

}  // namespace dehealth
