#include "io/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <unistd.h>

namespace dehealth {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::Internal("read error: " + path);
  return buffer.str();
}

Status WriteStringToFile(const std::string& content, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open for writing: " + path);
  file.write(content.data(), static_cast<long>(content.size()));
  if (!file) return Status::Internal("short write: " + path);
  return Status::OK();
}

Status WriteStringToFileAtomic(const std::string& content,
                               const std::string& path) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    return Status::NotFound("cannot open for writing: " + tmp + " (" +
                            std::strerror(errno) + ")");
  Status status;
  size_t done = 0;
  while (done < content.size()) {
    const ssize_t n = ::write(fd, content.data() + done,
                              content.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      status = Status::Internal("short write: " + tmp + " (" +
                                std::strerror(errno) + ")");
      break;
    }
    done += static_cast<size_t>(n);
  }
  // fsync before rename: otherwise the rename can become durable before
  // the data, re-opening the truncation window the tmp+rename dance exists
  // to close.
  if (status.ok() && ::fsync(fd) != 0)
    status = Status::Internal("fsync: " + tmp + " (" + std::strerror(errno) +
                              ")");
  if (::close(fd) != 0 && status.ok())
    status = Status::Internal("close: " + tmp + " (" + std::strerror(errno) +
                              ")");
  if (status.ok() && std::rename(tmp.c_str(), path.c_str()) != 0)
    status = Status::Internal("rename " + tmp + " -> " + path + " (" +
                              std::strerror(errno) + ")");
  if (!status.ok()) std::remove(tmp.c_str());
  return status;
}

}  // namespace dehealth
