#include "io/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/fault_injection.h"

namespace dehealth {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("file.read"));
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return Status::Internal("read error: " + path);
  std::string content = buffer.str();
  // Simulated media corruption / torn read: downstream decoders must catch
  // this via checksums or parse validation, never crash.
  InjectDataFault("file.read.data", &content);
  return content;
}

Status WriteStringToFile(const std::string& content, const std::string& path) {
  DEHEALTH_RETURN_IF_ERROR(InjectFaultPoint("file.write"));
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open for writing: " + path);
  file.write(content.data(), static_cast<long>(content.size()));
  if (!file) return Status::Internal("short write: " + path);
  return Status::OK();
}

Status WriteStringToFileAtomic(const std::string& content,
                               const std::string& path) {
  // The injected failure modes mirror the real ones this function defends
  // against: kFail/kEnospc/kShort fail after a partial tmp write (the tmp
  // is cleaned up, `path` untouched); kCrash dies mid-write, leaving a
  // stale tmp the next attempt must overwrite and `path` still intact.
  FaultKind injected_kind;
  const bool injected =
      FaultInjector::Global().Hit("file.write_atomic", &injected_kind);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    return Status::NotFound("cannot open for writing: " + tmp + " (" +
                            std::strerror(errno) + ")");
  Status status;
  size_t limit = content.size();
  if (injected) {
    limit = content.size() / 2;  // partial write, then the fault hits
    status = Status::Internal("injected fault at file.write_atomic: " +
                              std::string(injected_kind == FaultKind::kEnospc
                                              ? "No space left on device"
                                              : "short write") +
                              ": " + tmp);
  }
  size_t done = 0;
  while (done < limit) {
    const ssize_t n = ::write(fd, content.data() + done, limit - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      status = Status::Internal("short write: " + tmp + " (" +
                                std::strerror(errno) + ")");
      break;
    }
    done += static_cast<size_t>(n);
  }
  if (injected && injected_kind == FaultKind::kCrash) {
    // A kill here leaves a partial tmp and an untouched `path` — exactly
    // the window the tmp+fsync+rename dance exists to survive.
    ::_exit(kFaultCrashExitCode);
  }
  // fsync before rename: otherwise the rename can become durable before
  // the data, re-opening the truncation window the tmp+rename dance exists
  // to close.
  if (status.ok() && ::fsync(fd) != 0)
    status = Status::Internal("fsync: " + tmp + " (" + std::strerror(errno) +
                              ")");
  if (::close(fd) != 0 && status.ok())
    status = Status::Internal("close: " + tmp + " (" + std::strerror(errno) +
                              ")");
  if (status.ok() && std::rename(tmp.c_str(), path.c_str()) != 0)
    status = Status::Internal("rename " + tmp + " -> " + path + " (" +
                              std::strerror(errno) + ")");
  if (!status.ok()) std::remove(tmp.c_str());
  return status;
}

}  // namespace dehealth
