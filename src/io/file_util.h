#ifndef DEHEALTH_IO_FILE_UTIL_H_
#define DEHEALTH_IO_FILE_UTIL_H_

#include <string>

#include "common/status.h"

namespace dehealth {

/// Reads a whole file into a string (binary mode). NotFound when the file
/// cannot be opened; Internal when a read error occurs mid-stream.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `content` to `path` (binary mode, truncating). NotFound when the
/// file cannot be opened for writing; Internal on a short write.
Status WriteStringToFile(const std::string& content, const std::string& path);

/// Crash-safe variant for snapshots: writes to `<path>.tmp`, fsyncs, then
/// renames over `path`, so a crash mid-write can never leave a truncated
/// file at `path` — readers see the old content or the new, never a prefix.
/// A stale `<path>.tmp` from an interrupted earlier write is simply
/// overwritten by the next attempt. NotFound when the temp file cannot be
/// created; Internal on a short write, fsync, or rename failure (the temp
/// file is removed on failure, leaving `path` untouched).
Status WriteStringToFileAtomic(const std::string& content,
                               const std::string& path);

}  // namespace dehealth

#endif  // DEHEALTH_IO_FILE_UTIL_H_
