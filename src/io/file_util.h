#ifndef DEHEALTH_IO_FILE_UTIL_H_
#define DEHEALTH_IO_FILE_UTIL_H_

#include <string>

#include "common/status.h"

namespace dehealth {

/// Reads a whole file into a string (binary mode). NotFound when the file
/// cannot be opened; Internal when a read error occurs mid-stream.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `content` to `path` (binary mode, truncating). NotFound when the
/// file cannot be opened for writing; Internal on a short write.
Status WriteStringToFile(const std::string& content, const std::string& path);

}  // namespace dehealth

#endif  // DEHEALTH_IO_FILE_UTIL_H_
