#include "io/forum_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "datagen/forum_generator.h"

namespace dehealth {
namespace {

TEST(EscapeJsonTest, EscapesSpecials) {
  EXPECT_EQ(EscapeJson("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeJson("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(EscapeJson("tab\there"), "tab\\there");
  EXPECT_EQ(EscapeJson(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(EscapeJson("plain"), "plain");
}

TEST(UnescapeJsonTest, RoundTripsEscape) {
  for (const char* raw :
       {"plain", "with \"quotes\"", "back\\slash", "multi\nline\twith\r",
        "don't stop", ""}) {
    auto unescaped = UnescapeJson(EscapeJson(raw));
    ASSERT_TRUE(unescaped.ok()) << raw;
    EXPECT_EQ(*unescaped, raw);
  }
}

TEST(UnescapeJsonTest, RejectsBadEscapes) {
  EXPECT_FALSE(UnescapeJson("dangling\\").ok());
  EXPECT_FALSE(UnescapeJson("bad\\q").ok());
  EXPECT_FALSE(UnescapeJson("bad\\u12").ok());
  EXPECT_FALSE(UnescapeJson("bad\\u12zz").ok());
}

TEST(UnescapeJsonTest, HandlesUnicodeEscapes) {
  auto r = UnescapeJson("\\u0041");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "A");
}

ForumDataset SmallDataset() {
  ForumDataset d;
  d.num_users = 3;
  d.num_threads = 2;
  d.posts = {
      {0, 0, "hello \"world\"!"},
      {1, 0, "line1\nline2"},
      {2, 1, "plain post"},
  };
  return d;
}

TEST(ForumJsonlTest, RoundTrip) {
  const ForumDataset original = SmallDataset();
  const std::string jsonl = ForumDatasetToJsonl(original);
  auto loaded = ForumDatasetFromJsonl(jsonl);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_users, original.num_users);
  EXPECT_EQ(loaded->num_threads, original.num_threads);
  ASSERT_EQ(loaded->posts.size(), original.posts.size());
  for (size_t i = 0; i < original.posts.size(); ++i) {
    EXPECT_EQ(loaded->posts[i].user_id, original.posts[i].user_id);
    EXPECT_EQ(loaded->posts[i].thread_id, original.posts[i].thread_id);
    EXPECT_EQ(loaded->posts[i].text, original.posts[i].text);
  }
}

TEST(ForumJsonlTest, RoundTripGeneratedForum) {
  auto forum = GenerateForum(WebMdLikeConfig(40, 9));
  ASSERT_TRUE(forum.ok());
  auto loaded = ForumDatasetFromJsonl(ForumDatasetToJsonl(forum->dataset));
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->posts.size(), forum->dataset.posts.size());
  for (size_t i = 0; i < loaded->posts.size(); i += 13)
    EXPECT_EQ(loaded->posts[i].text, forum->dataset.posts[i].text);
}

TEST(ForumJsonlTest, RejectsEmptyAndMalformed) {
  EXPECT_FALSE(ForumDatasetFromJsonl("").ok());
  EXPECT_FALSE(ForumDatasetFromJsonl("{\"num_users\": 2}\n").ok());
  EXPECT_FALSE(
      ForumDatasetFromJsonl("{\"num_users\": 1, \"num_threads\": 1}\n"
                            "{\"user_id\": 0}\n")
          .ok());
}

TEST(ForumJsonlTest, RejectsOutOfRangeIds) {
  const char* bad_user =
      "{\"num_users\": 1, \"num_threads\": 1}\n"
      "{\"user_id\": 5, \"thread_id\": 0, \"text\": \"x\"}\n";
  auto r = ForumDatasetFromJsonl(bad_user);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  const char* bad_thread =
      "{\"num_users\": 1, \"num_threads\": 1}\n"
      "{\"user_id\": 0, \"thread_id\": 7, \"text\": \"x\"}\n";
  EXPECT_FALSE(ForumDatasetFromJsonl(bad_thread).ok());
}

TEST(ForumJsonlTest, ToleratesBlankLines) {
  const char* with_blanks =
      "{\"num_users\": 1, \"num_threads\": 1}\n\n"
      "{\"user_id\": 0, \"thread_id\": 0, \"text\": \"ok\"}\n\n";
  auto r = ForumDatasetFromJsonl(with_blanks);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->posts.size(), 1u);
}

TEST(ForumFileIoTest, SaveAndLoad) {
  const ForumDataset original = SmallDataset();
  const std::string path = "/tmp/dehealth_forum_io_test.jsonl";
  ASSERT_TRUE(SaveForumDataset(original, path).ok());
  auto loaded = LoadForumDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->posts.size(), original.posts.size());
  std::remove(path.c_str());
}

TEST(ForumFileIoTest, TruncatedFileFailsCleanly) {
  auto forum = GenerateForum(WebMdLikeConfig(10, 3));
  ASSERT_TRUE(forum.ok());
  const std::string path = "/tmp/dehealth_forum_truncated.jsonl";
  ASSERT_TRUE(SaveForumDataset(forum->dataset, path).ok());
  const std::string full = ForumDatasetToJsonl(forum->dataset);
  // Cut mid-record: the dangling line must come back as a Status error.
  std::ofstream(path, std::ios::binary)
      << full.substr(0, full.size() - 5);
  auto r = LoadForumDataset(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(ForumFileIoTest, LoadMissingFileFails) {
  auto r = LoadForumDataset("/tmp/definitely_missing_dehealth.jsonl");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// A parse failure from disk must name the file AND the line where parsing
// stopped — a bad record among millions is attributable, not a mystery.
TEST(ForumFileIoTest, ParseErrorsCarryPathAndLine) {
  const std::string path = "/tmp/dehealth_forum_badline.jsonl";
  std::ofstream(path, std::ios::binary)
      << "{\"num_users\": 3, \"num_threads\": 2}\n"
      << "{\"user_id\": 0, \"thread_id\": 0, \"text\": \"ok\"}\n"
      << "{\"user_id\": 1, \"thread_id\": 0}\n";
  auto r = LoadForumDataset(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find(path), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("(line 3)"), std::string::npos)
      << r.status().ToString();
  std::remove(path.c_str());
}

// Malformed-corpus sweep: every adversarial shape a crawler or a corrupted
// disk can hand us must come back as a typed Status carrying the line
// where parsing stopped — never a crash, never unbounded allocation.
TEST(ForumJsonlTest, MalformedCorpusSweep) {
  const std::string valid_header =
      "{\"num_users\": 2, \"num_threads\": 2}\n";
  struct Case {
    const char* label;
    std::string jsonl;
  };
  const Case cases[] = {
      {"binary garbage", std::string("\x7f""ELF\x02\x01\x01\x00\x19\x88")},
      {"NUL byte", valid_header + std::string("{\"user_id\"\0: 0}\n", 17)},
      {"header missing threads", "{\"num_users\": 2}\n"},
      {"negative header", "{\"num_users\": -4, \"num_threads\": 1}\n"},
      {"absurd header",
       "{\"num_users\": 2000000000, \"num_threads\": 1}\n"},
      {"float header", "{\"num_users\": 1.5, \"num_threads\": 1}\n"},
      {"duplicate conflicting header line treated as post",
       valid_header + "{\"num_users\": 9, \"num_threads\": 9}\n"},
      {"record missing text",
       valid_header + "{\"user_id\": 0, \"thread_id\": 0}\n"},
      {"record with bare number text",
       valid_header + "{\"user_id\": 0, \"thread_id\": 0, \"text\": 7}\n"},
      {"unterminated string",
       valid_header +
           "{\"user_id\": 0, \"thread_id\": 0, \"text\": \"oops}\n"},
      {"bad escape",
       valid_header +
           "{\"user_id\": 0, \"thread_id\": 0, \"text\": \"a\\q\"}\n"},
      {"truncated unicode escape",
       valid_header +
           "{\"user_id\": 0, \"thread_id\": 0, \"text\": \"a\\u12\"}\n"},
      {"non-numeric id",
       valid_header +
           "{\"user_id\": x, \"thread_id\": 0, \"text\": \"a\"}\n"},
      {"truncated mid-record",
       valid_header + "{\"user_id\": 1, \"thr"},
  };
  for (const Case& c : cases) {
    auto r = ForumDatasetFromJsonl(c.jsonl, "sweep.jsonl");
    ASSERT_FALSE(r.ok()) << c.label;
    EXPECT_TRUE(r.status().code() == StatusCode::kInvalidArgument ||
                r.status().code() == StatusCode::kOutOfRange)
        << c.label << ": " << r.status().ToString();
    EXPECT_NE(r.status().message().find("line "), std::string::npos)
        << c.label << ": " << r.status().ToString();
    EXPECT_NE(r.status().message().find("sweep.jsonl"), std::string::npos)
        << c.label;
  }
}

// Injected on-disk corruption of a real generated corpus: a mid-file bit
// flip or a torn read surfaces as a path-carrying Status, never UB.
TEST(ForumFileIoTest, InjectedCorruptionFailsCleanly) {
  auto forum = GenerateForum(WebMdLikeConfig(10, 5));
  ASSERT_TRUE(forum.ok());
  const std::string path = "/tmp/dehealth_forum_faulted.jsonl";
  ASSERT_TRUE(SaveForumDataset(forum->dataset, path).ok());
  // A read-side I/O error is always surfaced.
  ASSERT_TRUE(FaultInjector::Global().Configure("file.read:fail:1").ok());
  EXPECT_EQ(LoadForumDataset(path).status().code(), StatusCode::kInternal);
  FaultInjector::Global().Reset();
  // Corruption (bit flip / torn read) must never crash; when the damage
  // lands on structure the error names the file. (A flip inside post text
  // can still parse — JSONL has no checksum; that is the documented
  // contract difference vs the DHIX/DHSH binary formats.)
  for (const char* spec :
       {"forum.load.data:flip:1", "forum.load.data:short:1"}) {
    ASSERT_TRUE(FaultInjector::Global().Configure(spec).ok());
    auto r = LoadForumDataset(path);
    FaultInjector::Global().Reset();
    if (!r.ok())
      EXPECT_NE(r.status().message().find(path), std::string::npos)
          << spec << ": " << r.status().ToString();
  }
  // Disarmed, the same file loads fine: the faults were injected, not real.
  EXPECT_TRUE(LoadForumDataset(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dehealth
