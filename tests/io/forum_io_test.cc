#include "io/forum_io.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "datagen/forum_generator.h"

namespace dehealth {
namespace {

TEST(EscapeJsonTest, EscapesSpecials) {
  EXPECT_EQ(EscapeJson("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeJson("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(EscapeJson("tab\there"), "tab\\there");
  EXPECT_EQ(EscapeJson(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(EscapeJson("plain"), "plain");
}

TEST(UnescapeJsonTest, RoundTripsEscape) {
  for (const char* raw :
       {"plain", "with \"quotes\"", "back\\slash", "multi\nline\twith\r",
        "don't stop", ""}) {
    auto unescaped = UnescapeJson(EscapeJson(raw));
    ASSERT_TRUE(unescaped.ok()) << raw;
    EXPECT_EQ(*unescaped, raw);
  }
}

TEST(UnescapeJsonTest, RejectsBadEscapes) {
  EXPECT_FALSE(UnescapeJson("dangling\\").ok());
  EXPECT_FALSE(UnescapeJson("bad\\q").ok());
  EXPECT_FALSE(UnescapeJson("bad\\u12").ok());
  EXPECT_FALSE(UnescapeJson("bad\\u12zz").ok());
}

TEST(UnescapeJsonTest, HandlesUnicodeEscapes) {
  auto r = UnescapeJson("\\u0041");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "A");
}

ForumDataset SmallDataset() {
  ForumDataset d;
  d.num_users = 3;
  d.num_threads = 2;
  d.posts = {
      {0, 0, "hello \"world\"!"},
      {1, 0, "line1\nline2"},
      {2, 1, "plain post"},
  };
  return d;
}

TEST(ForumJsonlTest, RoundTrip) {
  const ForumDataset original = SmallDataset();
  const std::string jsonl = ForumDatasetToJsonl(original);
  auto loaded = ForumDatasetFromJsonl(jsonl);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_users, original.num_users);
  EXPECT_EQ(loaded->num_threads, original.num_threads);
  ASSERT_EQ(loaded->posts.size(), original.posts.size());
  for (size_t i = 0; i < original.posts.size(); ++i) {
    EXPECT_EQ(loaded->posts[i].user_id, original.posts[i].user_id);
    EXPECT_EQ(loaded->posts[i].thread_id, original.posts[i].thread_id);
    EXPECT_EQ(loaded->posts[i].text, original.posts[i].text);
  }
}

TEST(ForumJsonlTest, RoundTripGeneratedForum) {
  auto forum = GenerateForum(WebMdLikeConfig(40, 9));
  ASSERT_TRUE(forum.ok());
  auto loaded = ForumDatasetFromJsonl(ForumDatasetToJsonl(forum->dataset));
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->posts.size(), forum->dataset.posts.size());
  for (size_t i = 0; i < loaded->posts.size(); i += 13)
    EXPECT_EQ(loaded->posts[i].text, forum->dataset.posts[i].text);
}

TEST(ForumJsonlTest, RejectsEmptyAndMalformed) {
  EXPECT_FALSE(ForumDatasetFromJsonl("").ok());
  EXPECT_FALSE(ForumDatasetFromJsonl("{\"num_users\": 2}\n").ok());
  EXPECT_FALSE(
      ForumDatasetFromJsonl("{\"num_users\": 1, \"num_threads\": 1}\n"
                            "{\"user_id\": 0}\n")
          .ok());
}

TEST(ForumJsonlTest, RejectsOutOfRangeIds) {
  const char* bad_user =
      "{\"num_users\": 1, \"num_threads\": 1}\n"
      "{\"user_id\": 5, \"thread_id\": 0, \"text\": \"x\"}\n";
  auto r = ForumDatasetFromJsonl(bad_user);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  const char* bad_thread =
      "{\"num_users\": 1, \"num_threads\": 1}\n"
      "{\"user_id\": 0, \"thread_id\": 7, \"text\": \"x\"}\n";
  EXPECT_FALSE(ForumDatasetFromJsonl(bad_thread).ok());
}

TEST(ForumJsonlTest, ToleratesBlankLines) {
  const char* with_blanks =
      "{\"num_users\": 1, \"num_threads\": 1}\n\n"
      "{\"user_id\": 0, \"thread_id\": 0, \"text\": \"ok\"}\n\n";
  auto r = ForumDatasetFromJsonl(with_blanks);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->posts.size(), 1u);
}

TEST(ForumFileIoTest, SaveAndLoad) {
  const ForumDataset original = SmallDataset();
  const std::string path = "/tmp/dehealth_forum_io_test.jsonl";
  ASSERT_TRUE(SaveForumDataset(original, path).ok());
  auto loaded = LoadForumDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->posts.size(), original.posts.size());
  std::remove(path.c_str());
}

TEST(ForumFileIoTest, TruncatedFileFailsCleanly) {
  auto forum = GenerateForum(WebMdLikeConfig(10, 3));
  ASSERT_TRUE(forum.ok());
  const std::string path = "/tmp/dehealth_forum_truncated.jsonl";
  ASSERT_TRUE(SaveForumDataset(forum->dataset, path).ok());
  const std::string full = ForumDatasetToJsonl(forum->dataset);
  // Cut mid-record: the dangling line must come back as a Status error.
  std::ofstream(path, std::ios::binary)
      << full.substr(0, full.size() - 5);
  auto r = LoadForumDataset(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(ForumFileIoTest, LoadMissingFileFails) {
  auto r = LoadForumDataset("/tmp/definitely_missing_dehealth.jsonl");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dehealth
