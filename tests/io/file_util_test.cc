#include "io/file_util.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace dehealth {
namespace {

TEST(FileUtilTest, RoundTripsBinaryContent) {
  const std::string path = "/tmp/dehealth_file_util_test.bin";
  std::string content = "binary\0payload\nwith\tstuff";
  content += '\0';
  content += '\xFF';
  ASSERT_TRUE(WriteStringToFile(content, path).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, content);
  std::remove(path.c_str());
}

TEST(FileUtilTest, RoundTripsEmptyFile) {
  const std::string path = "/tmp/dehealth_file_util_empty.bin";
  ASSERT_TRUE(WriteStringToFile("", path).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
  std::remove(path.c_str());
}

TEST(FileUtilTest, MissingFileIsNotFound) {
  auto r = ReadFileToString("/tmp/definitely_missing_dehealth_util.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(FileUtilTest, UnwritableDirectoryIsNotFound) {
  auto s = WriteStringToFile("x", "/nonexistent_dir/file.bin");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dehealth
