#include "io/file_util.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace dehealth {
namespace {

TEST(FileUtilTest, RoundTripsBinaryContent) {
  const std::string path = "/tmp/dehealth_file_util_test.bin";
  std::string content = "binary\0payload\nwith\tstuff";
  content += '\0';
  content += '\xFF';
  ASSERT_TRUE(WriteStringToFile(content, path).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, content);
  std::remove(path.c_str());
}

TEST(FileUtilTest, RoundTripsEmptyFile) {
  const std::string path = "/tmp/dehealth_file_util_empty.bin";
  ASSERT_TRUE(WriteStringToFile("", path).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
  std::remove(path.c_str());
}

TEST(FileUtilTest, MissingFileIsNotFound) {
  auto r = ReadFileToString("/tmp/definitely_missing_dehealth_util.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(FileUtilTest, UnwritableDirectoryIsNotFound) {
  auto s = WriteStringToFile("x", "/nonexistent_dir/file.bin");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(FileUtilTest, AtomicWriteRoundTripsAndLeavesNoTempFile) {
  const std::string path = "/tmp/dehealth_file_util_atomic.bin";
  std::string content = "snapshot\0bytes";
  content += '\xFE';
  ASSERT_TRUE(WriteStringToFileAtomic(content, path).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, content);
  // The crash-window staging file must not survive a successful write.
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
  std::remove(path.c_str());
}

TEST(FileUtilTest, AtomicWriteReplacesExistingFileWholesale) {
  const std::string path = "/tmp/dehealth_file_util_atomic_replace.bin";
  ASSERT_TRUE(WriteStringToFile("old content, longer than new", path).ok());
  ASSERT_TRUE(WriteStringToFileAtomic("new", path).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  // Rename semantics: the old bytes are gone entirely, never a mixed
  // prefix/suffix as in-place truncating writes can leave on a crash.
  EXPECT_EQ(*read, "new");
  std::remove(path.c_str());
}

TEST(FileUtilTest, AtomicWriteRecoversFromStaleTempFile) {
  const std::string path = "/tmp/dehealth_file_util_atomic_stale.bin";
  // Simulate a crash mid-write from an earlier process: a stale .tmp left
  // behind must not block (or corrupt) the next atomic write.
  ASSERT_TRUE(WriteStringToFile("half-written garb", path + ".tmp").ok());
  ASSERT_TRUE(WriteStringToFileAtomic("fresh", path).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "fresh");
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
  std::remove(path.c_str());
}

TEST(FileUtilTest, AtomicWriteToUnwritableDirectoryIsNotFound) {
  auto s = WriteStringToFileAtomic("x", "/nonexistent_dir/file.bin");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("cannot open for writing"), std::string::npos);
}

}  // namespace
}  // namespace dehealth
