#include "ml/dataset.h"

#include <gtest/gtest.h>

namespace dehealth {
namespace {

TEST(DatasetTest, AddFixesDimensionality) {
  Dataset d;
  ASSERT_TRUE(d.Add({{1.0, 2.0}, 0}).ok());
  EXPECT_EQ(d.dims(), 2u);
  EXPECT_FALSE(d.Add({{1.0}, 0}).ok());  // mismatched size rejected
  EXPECT_EQ(d.size(), 1u);
}

TEST(DatasetTest, ExplicitDims) {
  Dataset d(3);
  EXPECT_FALSE(d.Add({{1.0}, 0}).ok());
  EXPECT_TRUE(d.Add({{1.0, 2.0, 3.0}, 1}).ok());
}

TEST(DatasetTest, LabelsSortedUnique) {
  Dataset d;
  ASSERT_TRUE(d.Add({{1.0}, 5}).ok());
  ASSERT_TRUE(d.Add({{2.0}, 1}).ok());
  ASSERT_TRUE(d.Add({{3.0}, 5}).ok());
  auto labels = d.Labels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], 1);
  EXPECT_EQ(labels[1], 5);
}

TEST(DatasetTest, Indexing) {
  Dataset d;
  ASSERT_TRUE(d.Add({{1.0, 2.0}, 7}).ok());
  EXPECT_EQ(d[0].label, 7);
  EXPECT_EQ(d[0].features[1], 2.0);
}

TEST(StandardScalerTest, FitRejectsEmpty) {
  StandardScaler s;
  Dataset d;
  EXPECT_FALSE(s.Fit(d).ok());
  EXPECT_FALSE(s.fitted());
}

TEST(StandardScalerTest, StandardizesToZeroMeanUnitVariance) {
  Dataset d;
  ASSERT_TRUE(d.Add({{1.0, 10.0}, 0}).ok());
  ASSERT_TRUE(d.Add({{3.0, 10.0}, 1}).ok());
  StandardScaler s;
  ASSERT_TRUE(s.Fit(d).ok());
  EXPECT_TRUE(s.fitted());
  EXPECT_NEAR(s.mean()[0], 2.0, 1e-12);

  auto t0 = s.Transform({1.0, 10.0});
  auto t1 = s.Transform({3.0, 10.0});
  EXPECT_NEAR(t0[0], -1.0, 1e-12);
  EXPECT_NEAR(t1[0], 1.0, 1e-12);
  // Constant feature maps to 0.
  EXPECT_EQ(t0[1], 0.0);
}

TEST(StandardScalerTest, TransformDatasetPreservesLabels) {
  Dataset d;
  ASSERT_TRUE(d.Add({{0.0}, 3}).ok());
  ASSERT_TRUE(d.Add({{2.0}, 4}).ok());
  StandardScaler s;
  ASSERT_TRUE(s.Fit(d).ok());
  Dataset t = s.TransformDataset(d);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].label, 3);
  EXPECT_EQ(t[1].label, 4);
  EXPECT_NEAR(t[0].features[0], -1.0, 1e-12);
}

}  // namespace
}  // namespace dehealth
