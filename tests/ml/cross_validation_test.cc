#include "ml/cross_validation.h"

#include <set>

#include <gtest/gtest.h>

#include "ml/knn.h"
#include "ml/nearest_centroid.h"

namespace dehealth {
namespace {

TEST(KFoldIndicesTest, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_FALSE(KFoldIndices(10, 1, rng).ok());
  EXPECT_FALSE(KFoldIndices(3, 5, rng).ok());
}

TEST(KFoldIndicesTest, PartitionsIndices) {
  Rng rng(2);
  auto folds = KFoldIndices(23, 5, rng);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds->size(), 5u);
  std::set<size_t> seen;
  size_t min_size = 100, max_size = 0;
  for (const auto& fold : *folds) {
    min_size = std::min(min_size, fold.size());
    max_size = std::max(max_size, fold.size());
    for (size_t i : fold) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), 23u);
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(KFoldIndicesTest, DeterministicInSeed) {
  Rng a(7), b(7);
  auto fa = KFoldIndices(12, 3, a);
  auto fb = KFoldIndices(12, 3, b);
  ASSERT_TRUE(fa.ok() && fb.ok());
  EXPECT_EQ(*fa, *fb);
}

Dataset Separable(uint64_t seed, int per_class = 20) {
  Rng rng(seed);
  Dataset d;
  for (int i = 0; i < per_class; ++i) {
    EXPECT_TRUE(
        d.Add({{rng.NextGaussian(-3.0, 0.5), rng.NextGaussian(0, 0.5)}, 0})
            .ok());
    EXPECT_TRUE(
        d.Add({{rng.NextGaussian(3.0, 0.5), rng.NextGaussian(0, 0.5)}, 1})
            .ok());
  }
  return d;
}

TEST(CrossValidateTest, RejectsEmptyData) {
  Dataset empty;
  auto r = CrossValidate(
      [] { return std::make_unique<NearestCentroidClassifier>(); }, empty,
      3, 1);
  EXPECT_FALSE(r.ok());
}

TEST(CrossValidateTest, HighAccuracyOnSeparableData) {
  auto r = CrossValidate(
      [] { return std::make_unique<NearestCentroidClassifier>(); },
      Separable(9), 5, 11);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->fold_accuracies.size(), 5u);
  EXPECT_GT(r->mean_accuracy, 0.95);
  EXPECT_LT(r->stddev_accuracy, 0.2);
}

TEST(CrossValidateTest, ChanceLevelOnRandomLabels) {
  Rng rng(13);
  Dataset d;
  for (int i = 0; i < 60; ++i)
    ASSERT_TRUE(d.Add({{rng.NextGaussian(), rng.NextGaussian()},
                       static_cast<int>(rng.NextBounded(2))})
                    .ok());
  auto r = CrossValidate(
      [] { return std::make_unique<KnnClassifier>(3); }, d, 5, 17);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->mean_accuracy, 0.5, 0.2);
}

TEST(CrossValidateTest, SelectsBetterHyperparameter) {
  // k=1 overfits random noise less gracefully than larger k on a noisy
  // problem; just assert the machinery produces usable comparisons.
  Dataset d = Separable(21, 30);
  double best = -1.0;
  for (int k : {1, 3, 7}) {
    auto r = CrossValidate(
        [k] { return std::make_unique<KnnClassifier>(k); }, d, 4, 23);
    ASSERT_TRUE(r.ok());
    best = std::max(best, r->mean_accuracy);
  }
  EXPECT_GT(best, 0.95);
}

}  // namespace
}  // namespace dehealth
