#include "ml/rlsc.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dehealth {
namespace {

Dataset TwoGaussians(uint64_t seed, int per_class = 20) {
  Rng rng(seed);
  Dataset d;
  for (int i = 0; i < per_class; ++i) {
    EXPECT_TRUE(d.Add({{rng.NextGaussian(-2.0, 0.6),
                        rng.NextGaussian(0.0, 0.6)},
                       0})
                    .ok());
    EXPECT_TRUE(d.Add({{rng.NextGaussian(2.0, 0.6),
                        rng.NextGaussian(0.0, 0.6)},
                       1})
                    .ok());
  }
  return d;
}

TEST(RlscTest, RejectsEmpty) {
  RlscClassifier rlsc;
  Dataset d;
  EXPECT_FALSE(rlsc.Fit(d).ok());
}

TEST(RlscTest, SeparatesTwoClasses) {
  RlscClassifier rlsc(0.1);
  Dataset d = TwoGaussians(21);
  ASSERT_TRUE(rlsc.Fit(d).ok());
  int correct = 0;
  for (size_t i = 0; i < d.size(); ++i)
    if (rlsc.Predict(d[i].features) == d[i].label) ++correct;
  EXPECT_GE(correct, static_cast<int>(d.size()) - 1);
}

TEST(RlscTest, BiasTermLearned) {
  // Classes separated only by an offset along one axis: bias must help.
  Dataset d;
  ASSERT_TRUE(d.Add({{1.0}, 0}).ok());
  ASSERT_TRUE(d.Add({{2.0}, 0}).ok());
  ASSERT_TRUE(d.Add({{8.0}, 1}).ok());
  ASSERT_TRUE(d.Add({{9.0}, 1}).ok());
  RlscClassifier rlsc(0.01);
  ASSERT_TRUE(rlsc.Fit(d).ok());
  EXPECT_EQ(rlsc.Predict({1.5}), 0);
  EXPECT_EQ(rlsc.Predict({8.5}), 1);
}

TEST(RlscTest, MulticlassOneVsRest) {
  // Non-collinear centers: with collinear classes a *linear* one-vs-rest
  // machine can never represent the middle class's "bump".
  Rng rng(23);
  Dataset d;
  const double centers[3][2] = {{-6.0, 0.0}, {6.0, 0.0}, {0.0, 6.0}};
  for (int c = 0; c < 3; ++c)
    for (int i = 0; i < 15; ++i)
      ASSERT_TRUE(d.Add({{centers[c][0] + rng.NextGaussian(0.0, 0.5),
                          centers[c][1] + rng.NextGaussian(0.0, 0.5)},
                         c})
                      .ok());
  RlscClassifier rlsc(0.1);
  ASSERT_TRUE(rlsc.Fit(d).ok());
  EXPECT_EQ(rlsc.Predict({-6.0, 0.0}), 0);
  EXPECT_EQ(rlsc.Predict({6.0, 0.0}), 1);
  EXPECT_EQ(rlsc.Predict({0.0, 6.0}), 2);
}

TEST(RlscTest, HeavyRegularizationShrinksConfidence) {
  Dataset d = TwoGaussians(29);
  RlscClassifier weak(0.01), strong(1000.0);
  ASSERT_TRUE(weak.Fit(d).ok());
  ASSERT_TRUE(strong.Fit(d).ok());
  auto sw = weak.DecisionScores({2.0, 0.0});
  auto ss = strong.DecisionScores({2.0, 0.0});
  // Strong regularization pulls scores toward 0.
  EXPECT_LT(std::abs(ss[1]), std::abs(sw[1]));
}

TEST(RlscTest, HighDimensionalFewSamples) {
  // dims >> samples is the refined-DA regime; regularization keeps the
  // normal equations solvable.
  Rng rng(31);
  Dataset d(50);
  for (int i = 0; i < 8; ++i) {
    std::vector<double> x(50);
    for (double& v : x) v = rng.NextGaussian();
    x[0] += i % 2 == 0 ? 4.0 : -4.0;
    ASSERT_TRUE(d.Add({std::move(x), i % 2}).ok());
  }
  RlscClassifier rlsc(1.0);
  ASSERT_TRUE(rlsc.Fit(d).ok());
  std::vector<double> probe(50, 0.0);
  probe[0] = 4.0;
  EXPECT_EQ(rlsc.Predict(probe), 0);
}

}  // namespace
}  // namespace dehealth
