#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace dehealth {
namespace {

TEST(AccuracyTest, Basics) {
  EXPECT_EQ(Accuracy({}, {}), 0.0);
  EXPECT_EQ(Accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_EQ(Accuracy({1, 0, 3}, {1, 2, 3}), 2.0 / 3.0);
  EXPECT_EQ(Accuracy({0}, {1}), 0.0);
}

TEST(ConfusionMatrixTest, CountsPairs) {
  auto m = ConfusionMatrix({1, 1, 0}, {1, 0, 0});
  EXPECT_EQ((m[{1, 1}]), 1);
  EXPECT_EQ((m[{0, 1}]), 1);
  EXPECT_EQ((m[{0, 0}]), 1);
  EXPECT_EQ(m.size(), 3u);
}

TEST(OpenWorldCountsTest, AccuracyAndFpRate) {
  OpenWorldCounts c;
  c.overlapping = 10;
  c.correct_overlapping = 7;
  c.non_overlapping = 4;
  c.false_positives = 1;
  EXPECT_NEAR(c.Accuracy(), 0.7, 1e-12);
  EXPECT_NEAR(c.FalsePositiveRate(), 0.25, 1e-12);
}

TEST(OpenWorldCountsTest, ZeroDenominators) {
  OpenWorldCounts c;
  EXPECT_EQ(c.Accuracy(), 0.0);
  EXPECT_EQ(c.FalsePositiveRate(), 0.0);
}

TEST(TallyOpenWorldTest, MixedOutcomes) {
  // Users: 0 overlapping correct, 1 overlapping wrong, 2 overlapping
  // rejected, 3 non-overlapping accepted (FP), 4 non-overlapping rejected.
  const std::vector<int> predicted = {5, 9, kNotPresent, 2, kNotPresent};
  const std::vector<int> truth = {5, 6, 7, kNotPresent, kNotPresent};
  auto c = TallyOpenWorld(predicted, truth);
  EXPECT_EQ(c.overlapping, 3);
  EXPECT_EQ(c.correct_overlapping, 1);
  EXPECT_EQ(c.non_overlapping, 2);
  EXPECT_EQ(c.false_positives, 1);
}

TEST(TallyOpenWorldTest, ClosedWorldEquivalence) {
  const std::vector<int> predicted = {1, 2, 3};
  const std::vector<int> truth = {1, 2, 9};
  auto c = TallyOpenWorld(predicted, truth);
  EXPECT_EQ(c.non_overlapping, 0);
  EXPECT_NEAR(c.Accuracy(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace dehealth
